// Baseline comparison (ours): GeoGrid's geographic node-to-region mapping
// versus a CAN-style bootstrap where joiners split the region covering a
// uniformly random point.
//
// The paper's introduction argues that geographic mapping lets GeoGrid
// "take advantage of the similarity between physical and network
// proximity".  This bench quantifies what the mapping buys:
//   * owner-to-region distance (how far a request executor is from the
//     data's physical area — the proxy for physical-network detours);
//   * workload balance under the same hot-spot field;
//   * routing hops (both systems pay O(sqrt(N))).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "metrics/collector.h"

using namespace geogrid;

namespace {

/// Mean distance between each region's center and its primary owner's
/// physical coordinate — zero-ish when the geographic mapping holds.
double owner_displacement(const overlay::Partition& p) {
  RunningStats d;
  for (const auto& [rid, r] : p.regions()) {
    d.add(distance(r.rect.center(), p.node(r.primary).coord));
  }
  return d.mean();
}

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point(3);
  std::printf(
      "Baseline: geographic mapping (GeoGrid) vs random split (CAN-style), "
      "%zu runs/point\n",
      runs);
  auto csv = bench::csv_for("baseline_can");
  if (csv) {
    csv->header({"system", "nodes", "owner_displacement_miles",
                 "stddev_index", "mean_hops"});
  }
  std::printf("%-26s %7s  %18s %12s %10s\n", "system", "nodes",
              "owner-displacement", "stddev", "mean_hops");

  for (const auto mode :
       {core::GridMode::kBasic, core::GridMode::kCanBaseline}) {
    for (const std::size_t nodes : {1000UL, 4000UL}) {
      RunningStats disp, sd, hops;
      for (std::size_t run = 0; run < runs; ++run) {
        core::SimulationOptions opt;
        opt.mode = mode;
        opt.node_count = nodes;
        opt.seed = 3000 + run;
        core::GridSimulation sim(opt);
        disp.add(owner_displacement(sim.partition()));
        sd.add(sim.workload_summary().stddev);
        Rng rng(31 + run);
        hops.add(
            metrics::routing_hop_summary(sim.partition(), rng, 300).mean);
      }
      std::printf("%-26s %7zu  %18.2f %12.6f %10.2f\n",
                  core::grid_mode_name(mode).data(), nodes, disp.mean(),
                  sd.mean(), hops.mean());
      if (csv) {
        csv->row(core::grid_mode_name(mode), nodes, disp.mean(), sd.mean(),
                 hops.mean());
      }
    }
  }
  std::printf(
      "\n(GeoGrid keeps owners inside or next to their regions; the CAN\n"
      " baseline scatters them across the plane, which in a deployment\n"
      " turns every query into a long physical-network detour.)\n");
  return 0;
}
