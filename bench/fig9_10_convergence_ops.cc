// Figures 9 and 10: convergence of the standard deviation (Fig 9) and mean
// (Fig 10) of the workload index, plotted by cumulative number of
// adaptation operations (up to 500), for 2,000 peers under static and
// moving hot spots.
//
// In the moving scenario, hot spots advance several epochs while a round's
// worth of adaptations executes — realized here by migrating 4-10 epochs
// every 20 operations.  Expected shape (paper): the static series
// converges after few operations; the moving one needs more operations,
// with mid-course surges caused by hot spots relocating, before the system
// handles further migration gracefully.
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

using namespace geogrid;

namespace {

constexpr std::size_t kPeers = 2000;
constexpr int kOps = 500;
constexpr int kOpsPerMigration = 20;
constexpr int kSampleEvery = 10;

struct Series {
  std::vector<double> stddev, mean, max;
};

Series run_scenario(std::uint64_t seed, bool moving) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = kPeers;
  opt.seed = seed;
  core::GridSimulation sim(opt);
  Rng step_rng(seed ^ 0xfeed);

  Series out;
  for (int op = 0; op <= kOps; ++op) {
    if (op % kSampleEvery == 0) {
      const Summary s = sim.workload_summary();
      out.stddev.push_back(s.stddev);
      out.mean.push_back(s.mean);
      out.max.push_back(s.max);
    }
    if (op == kOps) break;
    if (moving && op > 0 && op % kOpsPerMigration == 0) {
      sim.migrate_hotspots(
          static_cast<std::size_t>(step_rng.uniform_int(4, 10)));
    }
    // One adaptation operation; a quiescent system just waits for the next
    // hot-spot migration (static systems stay quiescent once converged).
    sim.driver().step();
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point(3);
  std::printf(
      "Figures 9-10: convergence by adaptation count, %zu peers (%zu "
      "runs)\n",
      kPeers, runs);

  std::vector<Series> stat, dyn;
  for (std::size_t run = 0; run < runs; ++run) {
    stat.push_back(run_scenario(900 + run, /*moving=*/false));
    dyn.push_back(run_scenario(900 + run, /*moving=*/true));
  }

  auto csv = bench::csv_for("fig9_10");
  if (csv) {
    csv->header({"adaptations", "static_stddev", "static_mean",
                 "moving_stddev", "moving_mean"});
  }
  std::printf("%12s  %13s %13s  %13s %13s\n", "adaptations", "static.sd",
              "static.mean", "moving.sd", "moving.mean");
  const std::size_t samples = stat.front().stddev.size();
  for (std::size_t i = 0; i < samples; ++i) {
    RunningStats ss, sm, ds, dm;
    for (std::size_t run = 0; run < runs; ++run) {
      ss.add(stat[run].stddev[i]);
      sm.add(stat[run].mean[i]);
      ds.add(dyn[run].stddev[i]);
      dm.add(dyn[run].mean[i]);
    }
    const std::size_t ops = i * kSampleEvery;
    std::printf("%12zu  %13.6f %13.6f  %13.6f %13.6f\n", ops, ss.mean(),
                sm.mean(), ds.mean(), dm.mean());
    if (csv) csv->row(ops, ss.mean(), sm.mean(), ds.mean(), dm.mean());
  }
  return 0;
}
