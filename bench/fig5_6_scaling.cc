// Figures 5 and 6: standard deviation (Fig 5) and mean (Fig 6) of the
// per-node workload index versus population, for the three system
// variants.  Populations follow the paper (1,000 to 16,000 end users);
// each point averages GEOGRID_RUNS randomly generated networks (the paper
// uses 100; default here is smaller for quick sweeps).
//
// Expected shape (paper): both metrics fall with N; GeoGrid+DualPeer beats
// Basic; GeoGrid+DualPeer+Adaptation beats Basic by about an order of
// magnitude at every population.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine.h"

using namespace geogrid;

namespace {

constexpr std::size_t kPopulations[] = {1000, 2000, 4000, 8000, 16000};
constexpr core::GridMode kModes[] = {core::GridMode::kBasic,
                                     core::GridMode::kDualPeer,
                                     core::GridMode::kDualPeerAdaptive};

struct PointResult {
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
};

PointResult measure(core::GridMode mode, std::size_t nodes,
                    std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = mode;
  opt.node_count = nodes;
  opt.seed = seed;
  core::GridSimulation sim(opt);
  // Hot spots migrate after the build, as in the paper's moving-hot-spot
  // workload; the adaptive system then runs its adaptation process.
  sim.migrate_hotspots(4);
  if (mode == core::GridMode::kDualPeerAdaptive) {
    for (int round = 0; round < 15; ++round) {
      if (sim.driver().run_round().executed == 0) break;
    }
  }
  const Summary s = sim.workload_summary();
  return PointResult{s.mean, s.stddev, s.max};
}

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point();
  std::printf("Figures 5-6: workload index vs population (%zu runs/point)\n",
              runs);
  auto csv = bench::csv_for("fig5_6");
  if (csv) {
    csv->header({"system", "nodes", "runs", "mean_index", "stddev_index",
                 "max_index"});
  }

  std::printf("%-32s %7s  %12s %12s %12s\n", "system", "nodes", "mean",
              "stddev", "max");
  for (const auto mode : kModes) {
    for (const std::size_t nodes : kPopulations) {
      RunningStats mean_acc, stddev_acc, max_acc;
      for (std::size_t run = 0; run < runs; ++run) {
        const auto r = measure(mode, nodes, 1000 + run);
        mean_acc.add(r.mean);
        stddev_acc.add(r.stddev);
        max_acc.add(r.max);
      }
      std::printf("%-32s %7zu  %12.6f %12.6f %12.6f\n",
                  core::grid_mode_name(mode).data(), nodes, mean_acc.mean(),
                  stddev_acc.mean(), max_acc.mean());
      if (csv) {
        csv->row(core::grid_mode_name(mode), nodes, runs, mean_acc.mean(),
                 stddev_acc.mean(), max_acc.mean());
      }
    }
  }
  return 0;
}
