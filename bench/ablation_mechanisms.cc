// Ablation (ours, beyond the paper): how much of the load-balance quality
// comes from which adaptation mechanisms?  Re-runs the Figure 7/8 setup
// (2,000 dual-peer nodes, moving hot spots, 25 rounds) with mechanism
// subsets enabled:
//   all          (a)-(h)         the full system
//   local-only   (a)-(e)         no TTL search
//   seat-moves   (a),(b),(e)-(h) no merge/split (geometry frozen)
//   geometry     (c),(d)         only merge/split
//   none         --              the no-adaptation reference
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

using namespace geogrid;
using loadbalance::Mechanism;

namespace {

constexpr std::size_t kPeers = 2000;
constexpr int kRounds = 25;

struct Variant {
  const char* name;
  std::array<bool, loadbalance::kMechanismCount> enabled;
};

constexpr std::array<bool, 8> mask(std::initializer_list<Mechanism> ms) {
  std::array<bool, 8> m{};
  for (const Mechanism mech : ms) m[static_cast<std::size_t>(mech)] = true;
  return m;
}

const Variant kVariants[] = {
    {"all", mask({Mechanism::kStealSecondary, Mechanism::kSwitchPrimary,
                  Mechanism::kMergeNeighbor, Mechanism::kSplitRegion,
                  Mechanism::kSwitchWithNeighborSecondary,
                  Mechanism::kStealRemoteSecondary,
                  Mechanism::kSwitchWithRemoteSecondary,
                  Mechanism::kSwitchWithRemotePrimary})},
    {"local-only", mask({Mechanism::kStealSecondary, Mechanism::kSwitchPrimary,
                         Mechanism::kMergeNeighbor, Mechanism::kSplitRegion,
                         Mechanism::kSwitchWithNeighborSecondary})},
    {"seat-moves", mask({Mechanism::kStealSecondary, Mechanism::kSwitchPrimary,
                         Mechanism::kSwitchWithNeighborSecondary,
                         Mechanism::kStealRemoteSecondary,
                         Mechanism::kSwitchWithRemoteSecondary,
                         Mechanism::kSwitchWithRemotePrimary})},
    {"geometry", mask({Mechanism::kMergeNeighbor, Mechanism::kSplitRegion})},
    {"none", mask({})},
};

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point(3);
  std::printf(
      "Ablation: adaptation mechanism subsets, %zu peers, %d rounds, "
      "moving hot spots (%zu runs)\n",
      kPeers, kRounds, runs);
  auto csv = bench::csv_for("ablation");
  if (csv) {
    csv->header({"variant", "stddev_index", "mean_index", "max_index",
                 "adaptations"});
  }
  std::printf("%-12s  %12s %12s %12s  %12s\n", "variant", "stddev", "mean",
              "max", "adaptations");

  for (const Variant& variant : kVariants) {
    RunningStats sd, mn, mx, ops;
    for (std::size_t run = 0; run < runs; ++run) {
      core::SimulationOptions opt;
      opt.mode = core::GridMode::kDualPeerAdaptive;
      opt.node_count = kPeers;
      opt.seed = 7000 + run;
      opt.planner.enabled = variant.enabled;
      core::GridSimulation sim(opt);
      Rng step_rng(911 + run);
      for (int round = 0; round < kRounds; ++round) {
        sim.migrate_hotspots(
            static_cast<std::size_t>(step_rng.uniform_int(4, 10)));
        sim.driver().run_round();
      }
      const Summary s = sim.workload_summary();
      sd.add(s.stddev);
      mn.add(s.mean);
      mx.add(s.max);
      ops.add(static_cast<double>(sim.driver().total().executed));
    }
    std::printf("%-12s  %12.6f %12.6f %12.6f  %12.0f\n", variant.name,
                sd.mean(), mn.mean(), mx.mean(), ops.mean());
    if (csv) {
      csv->row(variant.name, sd.mean(), mn.mean(), mx.mean(), ops.mean());
    }
  }

  // Per-mechanism usage under the full system, for the breakdown table.
  bench::banner("mechanism usage (full system)");
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = kPeers;
  opt.seed = 7000;
  core::GridSimulation sim(opt);
  Rng step_rng(911);
  for (int round = 0; round < kRounds; ++round) {
    sim.migrate_hotspots(
        static_cast<std::size_t>(step_rng.uniform_int(4, 10)));
    sim.driver().run_round();
  }
  const auto& total = sim.driver().total();
  for (std::size_t i = 0; i < loadbalance::kMechanismCount; ++i) {
    std::printf("  (%c) %-34s %6zu\n",
                loadbalance::mechanism_letter(static_cast<Mechanism>(i)),
                loadbalance::mechanism_name(static_cast<Mechanism>(i)).data(),
                total.per_mechanism[i]);
  }
  return 0;
}
