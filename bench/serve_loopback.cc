// The serving edge over real sockets: every engine behind the wire.
//
// Where bench_notifications and bench_queries time the engines called
// in-process, this harness pays for the whole serving path: framed bytes
// over loopback TCP, per-connection reassembly, adaptive batching in the
// event loop, engine execution, and the reply/ack/notification frames back
// out.  One serve::Server fronts the headline engine configuration (K=8
// delta-tracking directory, 8 query threads, 8 match threads); blocking
// clients drive a mixed workload against it:
//
//   ingest  — kUpdaterClients parallel connections stream the whole
//             population as LocationUpdate frames in 4096-record batches,
//             each batch fenced by a locate (the query forces the staged
//             ingest visible, so pacing never depends on the flush
//             deadline).  updates_per_sec counts acked wire updates.
//   subs    — one subscriber connection registers the standing
//             subscription mix (10% friend / 45% range / 45% geofence,
//             hot-spot-weighted areas from the workload generator).
//   epochs  — kMoveFraction of the population moves and reports per epoch
//             over the mover connection; the server's ingest flush drains
//             the notification engine and pushes Notify frames to the
//             subscriber connection, and a separate query connection runs
//             a mixed locate/range/kNN batch (queries_per_sec).
//
// Consistency is enforced, not assumed: a serial reference stack (K=1
// directory, single-threaded engines) replays the identical workload
// in-process, and the bench aborts unless the wire results match
// byte-for-byte — every epoch's notification stream, every query batch's
// serialized results, and the final directory image after the server
// stops.  The numbers and the correctness contract come from one run.
//
// Per-message-type latency percentiles come from the server's own
// histograms: read() delivering the request to its reply/ack being queued
// — codec + batching wait + engine time, i.e. the server-side residence a
// client observes minus the wire.
//
// Populations sweep 10k-100k users by default; GEOGRID_BENCH_LARGE=1 adds
// the 1M point, GEOGRID_BENCH_POPS picks the sweep explicitly, and
// --smoke runs the single 10k CI point.  GEOGRID_JSON_OUT=<path> writes
// the machine-readable baseline (BENCH_serve.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/options.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "net/messages.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/query_gen.h"

using namespace geogrid;

namespace {

constexpr std::size_t kNodes = 1000;
constexpr double kMoveFraction = 0.01;  ///< population reporting per epoch
constexpr double kFriendFraction = 0.10;
constexpr double kRangeFraction = 0.45;  ///< rest of the rect subs: geofence
constexpr std::size_t kUpdaterClients = 4;
constexpr std::size_t kIngestChunk = 4096;  ///< records per fenced wire batch
constexpr std::size_t kSubscriptions = 10'000;
constexpr double kLocateFraction = 0.60;  ///< query mix; 30% range, 10% kNN
constexpr double kRangeQueryFraction = 0.30;
constexpr std::uint32_t kNearestK = 8;

struct RunResult {
  std::size_t users = 0;
  std::size_t subs = 0;
  std::size_t epochs = 0;
  std::uint64_t queries = 0;        ///< mixed wire queries over all epochs
  std::uint64_t notifications = 0;  ///< Notify frames pushed and verified
  double updates_per_sec = 0.0;     ///< acked wire ingest, parallel clients
  double subs_per_sec = 0.0;        ///< synchronous subscribe round trips
  double queries_per_sec = 0.0;     ///< batched wire queries, round trip
  double mean_ingest_batch = 0.0;   ///< records per server-side flush
  double p99_update_us = 0.0;
  double p99_locate_us = 0.0;
  double p99_range_us = 0.0;
  double p99_nearest_us = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void fail(const char* what) {
  std::fprintf(stderr, "divergence abort: %s\n", what);
  std::exit(1);
}

std::vector<std::byte> result_bytes(
    std::span<const mobility::QueryResult> results) {
  net::Writer w;
  mobility::QueryEngine::serialize(w, results);
  return std::move(w).take();
}

std::vector<std::byte> directory_bytes(const mobility::ShardedDirectory& dir) {
  net::Writer w;
  dir.serialize(w);
  return std::move(w).take();
}

RunResult measure(std::size_t user_count, std::size_t sub_count,
                  std::size_t epochs, std::size_t queries_per_epoch,
                  std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeer;
  opt.node_count = kNodes;
  opt.seed = seed;
  core::GridSimulation sim(opt);
  const Rect plane = sim.partition().plane();

  RunResult r;
  r.users = user_count;
  r.subs = sub_count;
  r.epochs = epochs;

  const double cell_size = std::clamp(
      std::sqrt(4096.0 * 16.0 / static_cast<double>(user_count)), 0.25, 2.0);

  // The served stack: the headline engine configuration behind the wire.
  mobility::ShardedDirectory dir(
      sim.partition(),
      {.shards = 8, .cell_size = cell_size, .track_deltas = true});
  mobility::QueryEngine queries(dir, {.threads = 8});
  pubsub::SubscriptionIndex subs(plane);
  pubsub::NotificationEngine notify(dir, subs, {.threads = 8});

  // The determinism reference: same workload, in-process, K=1, serial.
  mobility::ShardedDirectory ref_dir(
      sim.partition(),
      {.shards = 1, .cell_size = cell_size, .track_deltas = true});
  mobility::QueryEngine ref_queries(ref_dir, {.threads = 1});
  pubsub::SubscriptionIndex ref_subs(plane);
  pubsub::NotificationEngine ref_notify(ref_dir, ref_subs, {.threads = 1});

  core::ServeOptions sopt;
  // Movers per epoch (~users * kMoveFraction) must stage below the size
  // watermark so each epoch batch flushes exactly once — the fence query
  // forces it; the deadline is parked out of the way so epoch boundaries
  // are never split by the clock.
  sopt.ingest_flush_records =
      std::max<std::size_t>(kIngestChunk, user_count / 50);
  sopt.flush_deadline_ms = 10'000;
  // One flushed query batch queues every reply before the next write
  // pass; at 100k users a 2048-query batch of hot-spot range replies is
  // megabytes, so the output gate must clear the largest reply burst or
  // the server would cut the querier as a slow consumer mid-batch.
  sopt.outbuf_gate_bytes = 16u << 20;
  serve::Server server({dir, queries, subs, notify}, sopt);
  server.start();

  // Initial placement: hot-spot attracted like the motion workloads.
  // Timestamps are 0.0 throughout — the server stamps wire-ingested
  // records the same way, and the final directory images are compared.
  Rng rng(seed * 131 + 3);
  std::vector<Point> positions(user_count);
  std::vector<std::uint64_t> seqs(user_count, 0);
  std::vector<mobility::LocationRecord> initial(user_count);
  for (std::size_t i = 0; i < user_count; ++i) {
    positions[i] = rng.chance(0.3)
                       ? Point{rng.uniform(plane.x, plane.right()),
                               rng.uniform(plane.y, plane.top())}
                       : sim.field().sample_weighted_point(rng);
    initial[i] = {UserId{static_cast<std::uint32_t>(i + 1)}, positions[i],
                  ++seqs[i], 0.0};
  }

  // --- Ingest phase: parallel updater connections, fenced batches. ---
  std::vector<serve::Client> updaters;
  for (std::size_t c = 0; c < kUpdaterClients; ++c) {
    updaters.emplace_back(
        serve::Client::Options{.port = server.port()});
    updaters.back().connect();
  }
  const std::size_t share =
      (user_count + kUpdaterClients - 1) / kUpdaterClients;
  const auto t_ingest = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kUpdaterClients; ++c) {
      threads.emplace_back([&, c] {
        const std::size_t lo = c * share;
        const std::size_t hi = std::min(user_count, lo + share);
        for (std::size_t i = lo; i < hi; i += kIngestChunk) {
          const std::size_t n = std::min(kIngestChunk, hi - i);
          updaters[c].update_batch({initial.data() + i, n},
                                   /*wait_acks=*/false);
          // The locate fences the batch: it forces the staged ingest
          // visible (one flush), paces the pipeline, and drains the acks
          // buffered on this connection.
          (void)updaters[c].locate(initial[i].user);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double ingest_secs = seconds_since(t_ingest);
  r.updates_per_sec = static_cast<double>(user_count) / ingest_secs;

  ref_dir.apply_updates(initial);
  if (!ref_notify.drain().empty()) {
    fail("bootstrap drain emitted against an empty index");
  }

  // --- Subscription phase: the standing mix over one connection. ---
  // Areas come from the workload generator's subscription radii, shrunk
  // with 1/sqrt(S) so per-report fan-out stays constant as S scales.
  serve::Client subscriber(serve::Client::Options{.port = server.port()});
  subscriber.connect();
  workload::QueryGenerator::Options gopt =
      workload::QueryGenerator::Options::presence_tracking();
  const double scale =
      std::min(1.0, std::sqrt(10'000.0 / static_cast<double>(sub_count)));
  gopt.sub_min_radius_miles = 0.02 * scale;
  gopt.sub_max_radius_miles = 0.12 * scale;
  workload::QueryGenerator gen(sim.field(), gopt, Rng(seed + 17));
  Rng roll_rng((seed + 17) ^ 0x5eed50b5ULL);
  net::NodeInfo gen_subscriber;
  gen_subscriber.id = NodeId{1};
  const auto t_subs = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sub_count; ++i) {
    const std::uint64_t sub_id = i + 1;
    const Rect area = gen.next_subscription(gen_subscriber, 3600.0).area;
    const double roll = roll_rng.uniform();
    net::Subscribe mirror;  // what the server decodes, re-built for ref
    mirror.sub_id = sub_id;
    if (roll < kFriendFraction) {
      const UserId tracked{
          static_cast<std::uint32_t>(1 + roll_rng.uniform_index(user_count))};
      subscriber.subscribe_friend(sub_id, tracked);
      mirror.filter = serve::friend_filter(tracked);
      ref_subs.subscribe_friend(mirror, tracked);
    } else if (roll < kFriendFraction + kRangeFraction) {
      mirror.area = area;
      mirror.filter = serve::range_filter(sub_id);
      subscriber.subscribe_area(sub_id, area, mirror.filter);
      ref_subs.subscribe(mirror, pubsub::SubKind::kRange);
    } else {
      mirror.area = area;
      mirror.filter = serve::geofence_filter(sub_id);
      subscriber.subscribe_area(sub_id, area, mirror.filter);
      ref_subs.subscribe(mirror, pubsub::SubKind::kGeofence);
    }
    ref_subs.refresh();
  }
  r.subs_per_sec = static_cast<double>(sub_count) / seconds_since(t_subs);

  // --- Epoch loop: movers report, Notifys push, query batches run. ---
  serve::Client querier(serve::Client::Options{.port = server.port()});
  querier.connect();
  serve::Client& mover = updaters[0];
  std::vector<mobility::LocationRecord> batch;
  std::vector<mobility::Query> qbatch;
  double query_secs = 0.0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    batch.clear();
    for (std::size_t i = 0; i < user_count; ++i) {
      if (!rng.chance(kMoveFraction)) continue;
      Point p = positions[i];
      p.x = std::clamp(p.x + rng.uniform(-0.5, 0.5), plane.x + 1e-9,
                       plane.right());
      p.y = std::clamp(p.y + rng.uniform(-0.5, 0.5), plane.y + 1e-9,
                       plane.top());
      positions[i] = p;
      batch.push_back(
          {UserId{static_cast<std::uint32_t>(i + 1)}, p, ++seqs[i], 0.0});
    }
    if (batch.empty()) continue;
    if (batch.size() >= sopt.ingest_flush_records) {
      fail("epoch batch crossed the size watermark (epoch would split)");
    }
    mover.update_batch(batch, /*wait_acks=*/false);
    (void)mover.locate(batch.front().user);  // fence: one flush, one drain

    // Reference drain for this epoch, then wait for the wire to match.
    ref_dir.apply_updates(batch);
    const std::vector<pubsub::Notification> ref_drain = ref_notify.drain();
    std::vector<std::byte> want;
    for (const pubsub::Notification& n : ref_drain) {
      const std::vector<std::byte> one =
          net::encode_message(net::Message{ref_notify.to_notify(n)});
      want.insert(want.end(), one.begin(), one.end());
    }
    const auto t_wait = std::chrono::steady_clock::now();
    while (subscriber.poll_notifications(10) < ref_drain.size() &&
           seconds_since(t_wait) < 10.0) {
    }
    const std::vector<net::Notify> got = subscriber.take_notifications();
    if (got.size() != ref_drain.size()) {
      fail("notification count diverged from the serial reference");
    }
    std::vector<std::byte> have;
    for (const net::Notify& n : got) {
      const std::vector<std::byte> one = net::encode_message(net::Message{n});
      have.insert(have.end(), one.begin(), one.end());
    }
    if (have != want) {
      fail("notification stream diverged from the serial reference");
    }
    r.notifications += got.size();

    // Mixed query batch: one wire round trip, compared as one serialized
    // result stream against the in-process reference engine.
    qbatch.clear();
    for (std::size_t i = 0; i < queries_per_epoch; ++i) {
      const double qroll = rng.uniform();
      if (qroll < kLocateFraction) {
        qbatch.push_back(mobility::Query::locate(UserId{
            static_cast<std::uint32_t>(1 + rng.uniform_index(user_count))}));
      } else if (qroll < kLocateFraction + kRangeQueryFraction) {
        const Point c = sim.field().sample_weighted_point(rng);
        const double w = rng.uniform(0.5, 2.0);
        const double h = rng.uniform(0.5, 2.0);
        Rect rect{std::clamp(c.x - w / 2.0, plane.x, plane.right() - w),
                  std::clamp(c.y - h / 2.0, plane.y, plane.top() - h), w, h};
        qbatch.push_back(mobility::Query::range(rect));
      } else {
        qbatch.push_back(mobility::Query::nearest(
            sim.field().sample_weighted_point(rng), kNearestK));
      }
    }
    const auto t_q = std::chrono::steady_clock::now();
    const std::vector<mobility::QueryResult> wire_results =
        querier.query_batch(qbatch);
    query_secs += seconds_since(t_q);
    const std::vector<mobility::QueryResult> ref_results =
        ref_queries.run(qbatch);
    if (result_bytes(wire_results) != result_bytes(ref_results)) {
      fail("query result stream diverged from the serial reference");
    }
    r.queries += qbatch.size();
  }
  r.queries_per_sec = static_cast<double>(r.queries) / query_secs;

  const serve::Server::Counters c = server.counters();
  if (c.malformed_frames != 0) fail("server counted malformed frames");
  if (c.slow_consumer_closes != 0) fail("server closed a slow consumer");
  r.mean_ingest_batch =
      c.ingest_flushes == 0
          ? 0.0
          : static_cast<double>(c.updates_in) /
                static_cast<double>(c.ingest_flushes);
  r.p99_update_us =
      server.latency(net::MsgType::kLocationUpdate).percentile_micros(99);
  r.p99_locate_us =
      server.latency(net::MsgType::kLocateRequest).percentile_micros(99);
  r.p99_range_us =
      server.latency(net::MsgType::kLocationQuery).percentile_micros(99);
  r.p99_nearest_us =
      server.latency(net::MsgType::kNearestRequest).percentile_micros(99);

  // Stop first: the join is the synchronisation point that makes reading
  // the served directory from this thread well-defined.
  server.stop();
  if (directory_bytes(dir) != directory_bytes(ref_dir)) {
    fail("final directory image diverged (K=8 wire vs K=1 in-process)");
  }
  return r;
}

std::vector<std::size_t> pick_populations(bool smoke) {
  if (smoke) return {10'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_POPS")) {
    std::vector<std::size_t> pops;
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      if (v > 0) pops.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (!pops.empty()) return pops;
  }
  std::vector<std::size_t> pops = {10'000, 100'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_LARGE");
      env != nullptr && env[0] != '0') {
    pops.push_back(1'000'000);
  }
  return pops;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t epochs = smoke ? 5 : 10;
  const std::size_t queries_per_epoch = smoke ? 512 : 2048;
  const std::size_t host_cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::printf(
      "Serve loopback: %zu-node engine grid behind a real TCP edge, "
      "%zu updater clients, %zu standing subscriptions, %.0f%% of the "
      "population moves per epoch, %zu epochs (host cores: %zu)\n",
      kNodes, kUpdaterClients, kSubscriptions, kMoveFraction * 100.0, epochs,
      host_cores);
  auto csv = bench::csv_for("serve_loopback");
  if (csv) {
    csv->header({"users", "subs", "epochs", "queries", "notifications",
                 "updates_per_sec", "subs_per_sec", "queries_per_sec",
                 "mean_ingest_batch", "p99_update_us", "p99_locate_us",
                 "p99_range_us", "p99_nearest_us"});
  }

  std::vector<RunResult> results;
  std::printf("%9s %7s %12s %12s %13s %10s %10s %11s\n", "users", "subs",
              "updates/sec", "queries/sec", "notifications", "p99 upd", "p99 loc",
              "mean batch");
  for (const std::size_t users : pick_populations(smoke)) {
    const RunResult r =
        measure(users, kSubscriptions, epochs, queries_per_epoch, 4242);
    results.push_back(r);
    std::printf("%9zu %7zu %12.0f %12.0f %13llu %8.0fus %8.0fus %11.0f\n",
                r.users, r.subs, r.updates_per_sec, r.queries_per_sec,
                static_cast<unsigned long long>(r.notifications),
                r.p99_update_us, r.p99_locate_us, r.mean_ingest_batch);
    std::printf("          subscribe %.0f/sec, p99 range/kNN %.0f/%.0fus\n",
                r.subs_per_sec, r.p99_range_us, r.p99_nearest_us);
    if (csv) {
      csv->row(r.users, r.subs, r.epochs, r.queries, r.notifications,
               r.updates_per_sec, r.subs_per_sec, r.queries_per_sec,
               r.mean_ingest_batch, r.p99_update_us, r.p99_locate_us,
               r.p99_range_us, r.p99_nearest_us);
    }
  }
  std::printf(
      "divergence aborts: 0 (notification, query, and directory streams "
      "byte-identical to the in-process serial reference)\n");

  if (const char* path = std::getenv("GEOGRID_JSON_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serve\",\n  \"nodes\": %zu,\n"
                 "  \"move_fraction\": %.3f,\n  \"updater_clients\": %zu,\n"
                 "  \"host_cores\": %zu,\n  \"points\": [\n",
                 kNodes, kMoveFraction, kUpdaterClients, host_cores);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "    {\"users\": %zu, \"subs\": %zu, \"epochs\": %zu, "
          "\"queries\": %llu, \"notifications\": %llu,\n"
          "     \"updates_per_sec\": %.0f, \"subs_per_sec\": %.0f, "
          "\"queries_per_sec\": %.0f, \"mean_ingest_batch\": %.0f,\n"
          "     \"p99_update_us\": %.2f, \"p99_locate_us\": %.2f, "
          "\"p99_range_us\": %.2f, \"p99_nearest_us\": %.2f}%s\n",
          r.users, r.subs, r.epochs,
          static_cast<unsigned long long>(r.queries),
          static_cast<unsigned long long>(r.notifications),
          r.updates_per_sec, r.subs_per_sec, r.queries_per_sec,
          r.mean_ingest_batch, r.p99_update_us, r.p99_locate_us,
          r.p99_range_us, r.p99_nearest_us,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  }
  return 0;
}
