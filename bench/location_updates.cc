// Mobile-user ingestion throughput: sustained location updates/sec and
// locate cost versus user population, over the engine-mode fast path.
//
// Each population runs the full motion loop for 60 virtual seconds: every
// virtual second the seeded random-waypoint/hot-spot walk advances and every
// user reports its position, so the numbers include region lookup, handoff
// eviction and spatial-index maintenance — not just hash-map inserts.
// The engines run on identical traces:
//
//   serial   — mobility::LocationDirectory, one apply_update per report
//              (the committed-baseline configuration; updates_per_sec)
//   K-shard  — mobility::ShardedDirectory swept over explicit shard counts
//              (1, 2, 4, 8, 16): the batched fast path with the rect-memo
//              locate.  K = 1 is the single-threaded batched configuration
//              (updates_per_sec_k1); K = 8 is the headline parallel
//              configuration (updates_per_sec_sharded), recorded together
//              with the real thread count it ran and the host's core count
//              — never a silently-collapsed default.
//
// The engines' applied/stale/handoff counters are cross-checked after every
// run — a mismatch aborts the bench, so the throughput numbers can only
// come from equivalent work.  On top of the counters, every swept shard
// count serializes its final directory canonically and the bytes must match
// the K = 1 reference exactly: the parallel path is held to byte-identical
// results, not just matching tallies.
//
// Locate cost is measured two ways: wall-clock latency of point lookups,
// and the greedy-routing hop count a LocateRequest would pay on the wire
// (metrics::target_hop_summary against sampled user positions).
//
// Populations sweep 10k-100k by default; set GEOGRID_BENCH_LARGE=1 to add
// the 1M-user point, or GEOGRID_BENCH_POPS=10000,50000 to pick the sweep
// explicitly.  Set GEOGRID_JSON_OUT=<path> to write the machine-readable
// baseline (BENCH_location_updates.json).  The JSON carries the full
// per-population thread curve plus "host_cores", so a scaling gate can
// judge the curve against what the host could physically deliver.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine.h"
#include "metrics/collector.h"
#include "mobility/directory.h"
#include "mobility/motion.h"
#include "mobility/sharded_directory.h"
#include "net/codec.h"

using namespace geogrid;

namespace {

constexpr double kVirtualSeconds = 60.0;
constexpr std::size_t kNodes = 1000;
constexpr std::size_t kLocateSamples = 100'000;
constexpr std::size_t kHopTargets = 2'000;
/// Explicit shard counts for the scaling curve.  Every entry runs the same
/// trace; K = 1 and K = 8 double as the baseline keys.
constexpr std::size_t kShardSweep[] = {1, 2, 4, 8, 16};
constexpr std::size_t kHeadlineShards = 8;

struct CurvePoint {
  std::size_t shards = 0;   ///< requested and actual shard count
  std::size_t threads = 0;  ///< pool tasks executing the batch (== shards)
  double updates_per_sec = 0.0;
};

struct RunResult {
  std::size_t users = 0;
  double updates_per_sec = 0.0;  ///< serial LocationDirectory (baseline key)
  double updates_per_sec_k1 = 0.0;       ///< ShardedDirectory, 1 shard
  double updates_per_sec_sharded = 0.0;  ///< ShardedDirectory, 8 shards
  std::size_t shards = 0;   ///< shard count of the headline sharded run
  std::size_t threads = 0;  ///< thread count of the headline sharded run
  std::vector<CurvePoint> curve;  ///< the full shard sweep
  double locate_ns = 0.0;         ///< mean wall-clock point-lookup latency
  double locate_hops_mean = 0.0;  ///< greedy-routing hops to the owner
  double locate_hops_max = 0.0;
  std::uint64_t handoffs = 0;  ///< region-boundary crossings
  std::uint64_t updates = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

mobility::UserPopulation make_population(std::size_t user_count,
                                         std::uint64_t seed,
                                         workload::HotSpotField* field) {
  mobility::UserPopulation::Options mopt;
  mopt.model = mobility::MotionModel::kHotspotAttracted;
  return mobility::UserPopulation(user_count, mopt, field,
                                  Rng(seed * 31 + 7));
}

/// Serial reference: one apply_update per report, per-tick motion stepping
/// inside the timed loop (the committed baseline's methodology).
double run_serial(core::GridSimulation& sim, std::size_t user_count,
                  std::uint64_t seed, mobility::LocationDirectory& dir) {
  auto pop = make_population(user_count, seed, &sim.field());
  const auto start = std::chrono::steady_clock::now();
  double now = 0.0;
  for (int tick = 0; tick < static_cast<int>(kVirtualSeconds); ++tick) {
    now += 1.0;
    pop.step(1.0, now);
    for (auto& u : pop.users()) {
      dir.apply_update({u.id, u.position, u.next_seq++, now});
    }
  }
  return seconds_since(start);
}

/// Batched path: same trace, same in-loop motion stepping, one
/// apply_updates call per tick.
double run_sharded(core::GridSimulation& sim, std::size_t user_count,
                   std::uint64_t seed, mobility::ShardedDirectory& dir) {
  auto pop = make_population(user_count, seed, &sim.field());
  std::vector<mobility::LocationRecord> batch(user_count);
  const auto start = std::chrono::steady_clock::now();
  double now = 0.0;
  for (int tick = 0; tick < static_cast<int>(kVirtualSeconds); ++tick) {
    now += 1.0;
    pop.step(1.0, now);
    auto& users = pop.users();
    for (std::size_t i = 0; i < users.size(); ++i) {
      batch[i] = {users[i].id, users[i].position, users[i].next_seq++, now};
    }
    dir.apply_updates(batch);
  }
  return seconds_since(start);
}

void check_parity(const char* what, std::uint64_t a, std::uint64_t b) {
  if (a != b) {
    std::fprintf(stderr, "engine mismatch on %s: %llu vs %llu\n", what,
                 static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b));
    std::exit(1);
  }
}

std::vector<std::byte> canonical_bytes(const mobility::ShardedDirectory& dir) {
  net::Writer w;
  dir.serialize(w);
  return std::move(w).take();
}

RunResult measure(std::size_t user_count, std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeer;
  opt.node_count = kNodes;
  opt.seed = seed;
  core::GridSimulation sim(opt);

  RunResult r;
  r.users = user_count;

  mobility::LocationDirectory serial_dir(sim.partition());
  const double serial_secs = run_serial(sim, user_count, seed, serial_dir);
  r.updates = serial_dir.counters().updates_applied +
              serial_dir.counters().updates_stale;
  r.updates_per_sec = static_cast<double>(r.updates) / serial_secs;
  r.handoffs = serial_dir.counters().handoffs;

  // Explicit shard sweep on the same trace.  Every configuration must
  // reproduce the serial counters AND the K = 1 canonical bytes.
  std::vector<std::byte> reference_bytes;
  for (const std::size_t k : kShardSweep) {
    mobility::ShardedDirectory dir(sim.partition(), {.shards = k});
    const double secs = run_sharded(sim, user_count, seed, dir);
    check_parity("updates_applied", serial_dir.counters().updates_applied,
                 dir.counters().updates_applied);
    check_parity("updates_stale", serial_dir.counters().updates_stale,
                 dir.counters().updates_stale);
    check_parity("handoffs", serial_dir.counters().handoffs,
                 dir.counters().handoffs);
    const std::vector<std::byte> bytes = canonical_bytes(dir);
    if (reference_bytes.empty()) {
      reference_bytes = bytes;
    } else if (bytes != reference_bytes) {
      std::fprintf(stderr,
                   "shard-count divergence: K=%zu serializes differently "
                   "from K=%zu\n",
                   k, kShardSweep[0]);
      std::exit(1);
    }

    CurvePoint pt;
    pt.shards = dir.shard_count();
    pt.threads = dir.shard_count();
    pt.updates_per_sec = static_cast<double>(r.updates) / secs;
    r.curve.push_back(pt);
    if (k == 1) r.updates_per_sec_k1 = pt.updates_per_sec;
    if (k == kHeadlineShards) {
      r.updates_per_sec_sharded = pt.updates_per_sec;
      r.shards = pt.shards;
      r.threads = pt.threads;

      // Point-lookup latency over a deterministic sample of the population,
      // against this (headline) engine's per-user memo.
      Rng sample_rng(seed + 1);
      std::vector<UserId> probes(kLocateSamples);
      for (auto& p : probes) {
        p = UserId{static_cast<std::uint32_t>(
            sample_rng.uniform_index(user_count) + 1)};
      }
      const auto locate_start = std::chrono::steady_clock::now();
      std::size_t found = 0;
      for (const UserId u : probes) {
        if (dir.locate(u).has_value()) ++found;
      }
      const double locate_secs = seconds_since(locate_start);
      r.locate_ns = locate_secs * 1e9 / static_cast<double>(probes.size());
      if (found != probes.size()) {
        std::fprintf(stderr, "locate lost users: %zu/%zu\n", found,
                     probes.size());
        std::exit(1);
      }

      // Routing cost a LocateRequest pays to reach the owning region.
      std::vector<Point> targets;
      targets.reserve(kHopTargets);
      for (std::size_t i = 0; i < kHopTargets; ++i) {
        const UserId u{static_cast<std::uint32_t>(
            sample_rng.uniform_index(user_count) + 1)};
        targets.push_back(dir.locate(u)->position);
      }
      Rng hop_rng(seed + 2);
      const Summary hops =
          metrics::target_hop_summary(sim.partition(), hop_rng, targets);
      r.locate_hops_mean = hops.mean;
      r.locate_hops_max = hops.max;
    }
  }
  return r;
}

std::vector<std::size_t> pick_populations() {
  if (const char* env = std::getenv("GEOGRID_BENCH_POPS")) {
    std::vector<std::size_t> pops;
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      if (v > 0) pops.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (!pops.empty()) return pops;
  }
  std::vector<std::size_t> pops = {10'000, 30'000, 100'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_LARGE");
      env != nullptr && env[0] != '0') {
    pops.push_back(1'000'000);
  }
  return pops;
}

}  // namespace

int main() {
  const std::vector<std::size_t> populations = pick_populations();
  const std::size_t host_cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::printf("Location updates: %zu-node engine grid, %.0f virtual seconds "
              "of motion per point (host cores: %zu)\n",
              kNodes, kVirtualSeconds, host_cores);
  auto csv = bench::csv_for("location_updates");
  if (csv) {
    csv->header({"users", "updates", "shards", "threads", "updates_per_sec",
                 "locate_ns", "locate_hops_mean", "locate_hops_max",
                 "handoffs"});
  }

  std::vector<RunResult> results;
  std::printf("%9s %12s %13s %13s %16s %7s %8s %11s %12s %9s\n", "users",
              "updates", "serial/sec", "batched/sec", "sharded/sec", "shards",
              "threads", "locate ns", "locate hops", "handoffs");
  for (const std::size_t users : populations) {
    const RunResult r = measure(users, 4242);
    results.push_back(r);
    std::printf(
        "%9zu %12llu %13.0f %13.0f %16.0f %7zu %8zu %11.1f %12.2f %9llu\n",
        r.users, static_cast<unsigned long long>(r.updates), r.updates_per_sec,
        r.updates_per_sec_k1, r.updates_per_sec_sharded, r.shards, r.threads,
        r.locate_ns, r.locate_hops_mean,
        static_cast<unsigned long long>(r.handoffs));
    for (const CurvePoint& pt : r.curve) {
      std::printf("          shards=%-3zu threads=%-3zu %16.0f updates/sec\n",
                  pt.shards, pt.threads, pt.updates_per_sec);
      if (csv) {
        csv->row(r.users, r.updates, pt.shards, pt.threads, pt.updates_per_sec,
                 r.locate_ns, r.locate_hops_mean, r.locate_hops_max,
                 r.handoffs);
      }
    }
  }

  if (const char* path = std::getenv("GEOGRID_JSON_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"location_updates\",\n"
                    "  \"nodes\": %zu,\n  \"virtual_seconds\": %.0f,\n"
                    "  \"host_cores\": %zu,\n"
                    "  \"points\": [\n",
                 kNodes, kVirtualSeconds, host_cores);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "    {\"users\": %zu, \"updates\": %llu, "
          "\"updates_per_sec\": %.0f, \"updates_per_sec_k1\": %.0f, "
          "\"updates_per_sec_sharded\": %.0f, \"shards\": %zu, "
          "\"threads\": %zu, \"locate_ns\": %.1f, "
          "\"locate_hops_mean\": %.3f, \"locate_hops_max\": %.0f, "
          "\"handoffs\": %llu,\n     \"thread_curve\": [",
          r.users, static_cast<unsigned long long>(r.updates),
          r.updates_per_sec, r.updates_per_sec_k1, r.updates_per_sec_sharded,
          r.shards, r.threads, r.locate_ns, r.locate_hops_mean,
          r.locate_hops_max, static_cast<unsigned long long>(r.handoffs));
      for (std::size_t c = 0; c < r.curve.size(); ++c) {
        const CurvePoint& pt = r.curve[c];
        std::fprintf(f, "%s{\"threads\": %zu, \"shards\": %zu, "
                        "\"updates_per_sec\": %.0f}",
                     c == 0 ? "" : ", ", pt.threads, pt.shards,
                     pt.updates_per_sec);
      }
      std::fprintf(f, "]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  }
  return 0;
}
