// Mobile-user ingestion throughput: sustained location updates/sec and
// locate cost versus user population, over the engine-mode fast path
// (mobility::LocationDirectory on an authoritative Partition).
//
// Each population runs the full motion loop for 60 virtual seconds: every
// virtual second the seeded random-waypoint/hot-spot walk advances and every
// user reports its position, so the numbers include region lookup, handoff
// eviction and spatial-index maintenance — not just hash-map inserts.
// Locate cost is measured two ways: wall-clock latency of point lookups,
// and the greedy-routing hop count a LocateRequest would pay on the wire
// (metrics::target_hop_summary against sampled user positions).
//
// Populations sweep 10k-100k by default; set GEOGRID_BENCH_LARGE=1 to add
// the 1M-user point.  Set GEOGRID_JSON_OUT=<path> to write the machine-
// readable baseline (BENCH_location_updates.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine.h"
#include "metrics/collector.h"
#include "mobility/directory.h"
#include "mobility/motion.h"

using namespace geogrid;

namespace {

constexpr double kVirtualSeconds = 60.0;
constexpr std::size_t kNodes = 1000;
constexpr std::size_t kLocateSamples = 100'000;
constexpr std::size_t kHopTargets = 2'000;

struct RunResult {
  std::size_t users = 0;
  double updates_per_sec = 0.0;    ///< sustained ingest throughput
  double locate_ns = 0.0;          ///< mean wall-clock point-lookup latency
  double locate_hops_mean = 0.0;   ///< greedy-routing hops to the owner
  double locate_hops_max = 0.0;
  std::uint64_t handoffs = 0;      ///< region-boundary crossings
  std::uint64_t updates = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

RunResult measure(std::size_t user_count, std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeer;
  opt.node_count = kNodes;
  opt.seed = seed;
  core::GridSimulation sim(opt);

  mobility::UserPopulation::Options mopt;
  mopt.model = mobility::MotionModel::kHotspotAttracted;
  mobility::UserPopulation pop(user_count, mopt, &sim.field(),
                               Rng(seed * 31 + 7));
  mobility::LocationDirectory dir(sim.partition());

  RunResult r;
  r.users = user_count;
  const auto ingest_start = std::chrono::steady_clock::now();
  double now = 0.0;
  for (int tick = 0; tick < static_cast<int>(kVirtualSeconds); ++tick) {
    now += 1.0;
    pop.step(1.0, now);
    for (auto& u : pop.users()) {
      dir.apply_update({u.id, u.position, u.next_seq++, now});
    }
  }
  const double ingest_secs = seconds_since(ingest_start);
  r.updates = dir.counters().updates_applied + dir.counters().updates_stale;
  r.updates_per_sec = static_cast<double>(r.updates) / ingest_secs;
  r.handoffs = dir.counters().handoffs;

  // Point-lookup latency over a deterministic sample of the population.
  Rng sample_rng(seed + 1);
  std::vector<UserId> probes(kLocateSamples);
  for (auto& p : probes) {
    p = pop.users()[sample_rng.uniform_index(pop.users().size())].id;
  }
  const auto locate_start = std::chrono::steady_clock::now();
  std::size_t found = 0;
  for (const UserId u : probes) {
    if (dir.locate(u) != nullptr) ++found;
  }
  const double locate_secs = seconds_since(locate_start);
  r.locate_ns = locate_secs * 1e9 / static_cast<double>(probes.size());
  if (found != probes.size()) {
    std::fprintf(stderr, "locate lost users: %zu/%zu\n", found,
                 probes.size());
    std::exit(1);
  }

  // Routing cost a LocateRequest pays to reach the owning region.
  std::vector<Point> targets;
  targets.reserve(kHopTargets);
  for (std::size_t i = 0; i < kHopTargets; ++i) {
    targets.push_back(
        pop.users()[sample_rng.uniform_index(pop.users().size())].position);
  }
  Rng hop_rng(seed + 2);
  const Summary hops =
      metrics::target_hop_summary(sim.partition(), hop_rng, targets);
  r.locate_hops_mean = hops.mean;
  r.locate_hops_max = hops.max;
  return r;
}

}  // namespace

int main() {
  std::vector<std::size_t> populations = {10'000, 30'000, 100'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_LARGE");
      env != nullptr && env[0] != '0') {
    populations.push_back(1'000'000);
  }

  std::printf("Location updates: %zu-node engine grid, %.0f virtual seconds "
              "of motion per point\n",
              kNodes, kVirtualSeconds);
  auto csv = bench::csv_for("location_updates");
  if (csv) {
    csv->header({"users", "updates", "updates_per_sec", "locate_ns",
                 "locate_hops_mean", "locate_hops_max", "handoffs"});
  }

  std::vector<RunResult> results;
  std::printf("%9s %12s %14s %12s %12s %10s\n", "users", "updates",
              "updates/sec", "locate ns", "locate hops", "handoffs");
  for (const std::size_t users : populations) {
    const RunResult r = measure(users, 4242);
    results.push_back(r);
    std::printf("%9zu %12llu %14.0f %12.1f %12.2f %10llu\n", r.users,
                static_cast<unsigned long long>(r.updates), r.updates_per_sec,
                r.locate_ns, r.locate_hops_mean,
                static_cast<unsigned long long>(r.handoffs));
    if (csv) {
      csv->row(r.users, r.updates, r.updates_per_sec, r.locate_ns,
               r.locate_hops_mean, r.locate_hops_max, r.handoffs);
    }
  }

  if (const char* path = std::getenv("GEOGRID_JSON_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"location_updates\",\n"
                    "  \"nodes\": %zu,\n  \"virtual_seconds\": %.0f,\n"
                    "  \"points\": [\n",
                 kNodes, kVirtualSeconds);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "    {\"users\": %zu, \"updates\": %llu, "
          "\"updates_per_sec\": %.0f, \"locate_ns\": %.1f, "
          "\"locate_hops_mean\": %.3f, \"locate_hops_max\": %.0f, "
          "\"handoffs\": %llu}%s\n",
          r.users, static_cast<unsigned long long>(r.updates),
          r.updates_per_sec, r.locate_ns, r.locate_hops_mean,
          r.locate_hops_max, static_cast<unsigned long long>(r.handoffs),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  }
  return 0;
}
