// Figures 7 and 8: convergence of the mean (Fig 7) and standard deviation
// (Fig 8) of the workload index, plotted by round of adaptation, for 2,000
// peers.  Three series:
//   * static hot spots  — hot spots appear once and never move;
//   * moving hot spots  — hot spots advance 4-10 epochs per round (the
//     paper: "hot spots move 4 to 10 steps before a round of adaptation
//     ends");
//   * no adaptation     — reference line under the moving scenario.
//
// Expected shape (paper): both scenarios converge within the first few
// rounds; the moving scenario shows surges before settling; the
// no-adaptation line stays roughly an order of magnitude above.
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

using namespace geogrid;

namespace {

constexpr std::size_t kPeers = 2000;
constexpr int kRounds = 25;

core::GridSimulation make_sim(std::uint64_t seed, bool adaptive) {
  core::SimulationOptions opt;
  // "The service network is setup first using only dual peer technique.
  // When hot spots appear, we turn on the load balance adaptation."
  opt.mode = adaptive ? core::GridMode::kDualPeerAdaptive
                      : core::GridMode::kDualPeer;
  opt.node_count = kPeers;
  opt.seed = seed;
  return core::GridSimulation(opt);
}

struct Series {
  std::vector<double> mean, stddev, max;
};

Series run_scenario(std::uint64_t seed, bool moving, bool adaptive) {
  core::GridSimulation sim = make_sim(seed, adaptive);
  Rng step_rng(seed ^ 0x5eed);
  Series out;
  for (int round = 0; round < kRounds; ++round) {
    if (moving) {
      sim.migrate_hotspots(
          static_cast<std::size_t>(step_rng.uniform_int(4, 10)));
    }
    if (adaptive) sim.driver().run_round();
    const Summary s = sim.workload_summary();
    out.mean.push_back(s.mean);
    out.stddev.push_back(s.stddev);
    out.max.push_back(s.max);
  }
  return out;
}

Series average(const std::vector<Series>& all) {
  Series avg;
  for (int round = 0; round < kRounds; ++round) {
    RunningStats m, s, x;
    for (const auto& series : all) {
      m.add(series.mean[round]);
      s.add(series.stddev[round]);
      x.add(series.max[round]);
    }
    avg.mean.push_back(m.mean());
    avg.stddev.push_back(s.mean());
    avg.max.push_back(x.mean());
  }
  return avg;
}

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point();
  std::printf(
      "Figures 7-8: convergence by adaptation round, %zu peers (%zu runs)\n",
      kPeers, runs);

  std::vector<Series> stat, dyn, none;
  for (std::size_t run = 0; run < runs; ++run) {
    stat.push_back(run_scenario(500 + run, /*moving=*/false, true));
    dyn.push_back(run_scenario(500 + run, /*moving=*/true, true));
    none.push_back(run_scenario(500 + run, /*moving=*/true, false));
  }
  const Series s_static = average(stat);
  const Series s_moving = average(dyn);
  const Series s_none = average(none);

  auto csv = bench::csv_for("fig7_8");
  if (csv) {
    csv->header({"round", "static_mean", "static_stddev", "moving_mean",
                 "moving_stddev", "noadapt_mean", "noadapt_stddev"});
  }
  std::printf("%5s  %12s %12s  %12s %12s  %12s %12s\n", "round",
              "static.mean", "static.sd", "moving.mean", "moving.sd",
              "noadapt.mean", "noadapt.sd");
  for (int round = 0; round < kRounds; ++round) {
    std::printf("%5d  %12.6f %12.6f  %12.6f %12.6f  %12.6f %12.6f\n", round,
                s_static.mean[round], s_static.stddev[round],
                s_moving.mean[round], s_moving.stddev[round],
                s_none.mean[round], s_none.stddev[round]);
    if (csv) {
      csv->row(round, s_static.mean[round], s_static.stddev[round],
               s_moving.mean[round], s_moving.stddev[round],
               s_none.mean[round], s_none.stddev[round]);
    }
  }
  return 0;
}
