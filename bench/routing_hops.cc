// Routing-cost claim of §2.2: "routing between a pair of randomly chosen
// regions has the overhead of O(2*sqrt(N)) in terms of the number of
// routing hops."  This harness measures mean and p99 hops over random
// region pairs for growing populations and reports the ratio against
// 2*sqrt(N).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "metrics/collector.h"
#include "overlay/router.h"

using namespace geogrid;

namespace {

constexpr std::size_t kPopulations[] = {256, 1024, 4096, 16384};

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point(3);
  std::printf("Routing hops vs population (%zu runs/point)\n", runs);
  auto csv = bench::csv_for("routing_hops");
  if (csv) {
    csv->header({"system", "nodes", "regions", "mean_hops", "max_hops",
                 "two_sqrt_n", "ratio"});
  }
  std::printf("%-20s %7s %8s  %10s %8s  %10s %7s\n", "system", "nodes",
              "regions", "mean_hops", "max", "2*sqrt(R)", "ratio");

  for (const auto mode :
       {core::GridMode::kBasic, core::GridMode::kDualPeer}) {
    for (const std::size_t nodes : kPopulations) {
      RunningStats mean_acc, max_acc, region_acc;
      for (std::size_t run = 0; run < runs; ++run) {
        core::SimulationOptions opt;
        opt.mode = mode;
        opt.node_count = nodes;
        opt.seed = 40 + run;
        core::GridSimulation sim(opt);
        Rng rng(777 + run);
        const Summary hops =
            metrics::routing_hop_summary(sim.partition(), rng, 500);
        mean_acc.add(hops.mean);
        max_acc.add(hops.max);
        region_acc.add(static_cast<double>(sim.partition().region_count()));
      }
      const double bound = 2.0 * std::sqrt(region_acc.mean());
      std::printf("%-20s %7zu %8.0f  %10.2f %8.1f  %10.2f %7.3f\n",
                  core::grid_mode_name(mode).data(), nodes,
                  region_acc.mean(), mean_acc.mean(), max_acc.mean(), bound,
                  mean_acc.mean() / bound);
      if (csv) {
        csv->row(core::grid_mode_name(mode), nodes, region_acc.mean(),
                 mean_acc.mean(), max_acc.mean(), bound,
                 mean_acc.mean() / bound);
      }
    }
  }
  return 0;
}
