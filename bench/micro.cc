// Micro-benchmarks (google-benchmark): per-operation costs of the building
// blocks — greedy routing, joins, adaptation planning, field integration,
// and the wire codec.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "loadbalance/planner.h"
#include "loadbalance/workload_index.h"
#include "metrics/collector.h"
#include "mobility/sharded_directory.h"
#include "net/messages.h"
#include "overlay/router.h"
#include "pubsub/notification_engine.h"

using namespace geogrid;

namespace {

core::GridSimulation make_sim(core::GridMode mode, std::size_t nodes) {
  core::SimulationOptions opt;
  opt.mode = mode;
  opt.node_count = nodes;
  opt.seed = 99;
  return core::GridSimulation(opt);
}

void BM_RouteGreedy(benchmark::State& state) {
  auto sim = make_sim(core::GridMode::kBasic,
                      static_cast<std::size_t>(state.range(0)));
  const auto& p = sim.partition();
  std::vector<RegionId> ids;
  for (const auto& [id, r] : p.regions()) ids.push_back(id);
  Rng rng(5);
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const RegionId from = ids[rng.uniform_index(ids.size())];
    const Point target{rng.uniform(0.01, 64.0), rng.uniform(0.01, 64.0)};
    const auto route = overlay::route_greedy(p, from, target);
    hops += route.hops;
    benchmark::DoNotOptimize(route.executor);
  }
  state.counters["mean_hops"] =
      static_cast<double>(hops) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_RouteGreedy)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BasicJoin(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sim = make_sim(core::GridMode::kBasic, 512);
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) sim.add_node();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BasicJoin);

void BM_DualJoin(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sim = make_sim(core::GridMode::kDualPeer, 512);
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) sim.add_node();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DualJoin);

void BM_PlanAdaptation(benchmark::State& state) {
  auto sim = make_sim(core::GridMode::kDualPeerAdaptive, 1000);
  const auto load = sim.load_fn();
  std::vector<RegionId> ids;
  for (const auto& [id, r] : sim.partition().regions()) ids.push_back(id);
  Rng rng(7);
  const loadbalance::PlannerConfig config;
  for (auto _ : state) {
    const RegionId subject = ids[rng.uniform_index(ids.size())];
    benchmark::DoNotOptimize(
        loadbalance::plan_adaptation(sim.partition(), load, subject, config));
  }
}
BENCHMARK(BM_PlanAdaptation);

void BM_AdaptationRound(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sim = make_sim(core::GridMode::kDualPeerAdaptive,
                        static_cast<std::size_t>(state.range(0)));
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.driver().run_round().executed);
  }
}
BENCHMARK(BM_AdaptationRound)->Arg(500)->Arg(2000);

void BM_RegionLoad(benchmark::State& state) {
  Rng rng(3);
  workload::HotSpotField field({}, rng);
  Rng probe(4);
  for (auto _ : state) {
    const Rect r{probe.uniform(0, 32), probe.uniform(0, 32),
                 probe.uniform(1, 32), probe.uniform(1, 32)};
    benchmark::DoNotOptimize(field.region_load(r));
  }
}
BENCHMARK(BM_RegionLoad);

void BM_FieldMigrate(benchmark::State& state) {
  Rng rng(3);
  workload::HotSpotField field({}, rng);
  for (auto _ : state) {
    field.migrate(rng);
    benchmark::DoNotOptimize(field.total_load());
  }
}
BENCHMARK(BM_FieldMigrate);

void BM_EncodeDecodeSnapshotMessage(benchmark::State& state) {
  net::LoadStatsExchange msg;
  for (std::uint32_t i = 0; i < 8; ++i) {
    net::RegionSnapshot s;
    s.region = RegionId{i};
    s.rect = Rect{0, 0, 8, 8};
    s.primary.id = NodeId{i};
    s.primary.capacity = 100.0;
    s.load = 1.5;
    msg.regions.push_back(s);
  }
  const net::Message m = msg;
  for (auto _ : state) {
    const auto bytes = net::encode_message(m);
    benchmark::DoNotOptimize(net::decode_message(bytes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                net::encode_message(m).size()));
}
BENCHMARK(BM_EncodeDecodeSnapshotMessage);

void BM_NotifySerialize(benchmark::State& state) {
  // Cost of turning one drained notification into a wire message:
  // to_notify into caller-provided scratch (steady-state: no allocation)
  // plus the codec encode of the resulting Notify.
  overlay::Partition partition{Rect{0, 0, 64, 64}};
  const NodeId n = partition.add_node({NodeId{1}, Point{32, 32}, 10.0});
  partition.create_root(n);
  mobility::ShardedDirectory directory(partition);
  pubsub::SubscriptionIndex subs(Rect{0, 0, 64, 64});
  for (std::uint64_t id = 1; id <= 64; ++id) {
    net::Subscribe s;
    s.sub_id = id;
    s.subscriber.id = NodeId{1};
    s.area = Rect{static_cast<double>(id % 8) * 8.0,
                  static_cast<double>(id / 8) * 6.0, 8, 8};
    s.filter = "geofence-alerts/topic";
    subs.subscribe(s, pubsub::SubKind::kRange);
  }
  pubsub::NotificationEngine engine(directory, subs,
                                    {.threads = 1});
  std::vector<mobility::LocationRecord> batch;
  for (std::uint32_t u = 1; u <= 256; ++u) {
    batch.push_back(mobility::LocationRecord{
        UserId{u}, Point{(u % 64) + 0.5, (u / 8) % 48 + 0.5}, 1, 0.0});
  }
  directory.apply_updates(batch);
  const std::vector<pubsub::Notification> drained = engine.drain();
  net::Notify scratch;  // reused: steady-state serialization allocates nothing
  std::size_t i = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    engine.to_notify(drained[i], scratch);
    const net::Message m = scratch;
    const auto encoded = net::encode_message(m);
    bytes += static_cast<std::int64_t>(encoded.size());
    benchmark::DoNotOptimize(encoded.data());
    i = (i + 1) % drained.size();
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_NotifySerialize);

void BM_WorkloadSummary(benchmark::State& state) {
  auto sim = make_sim(core::GridMode::kDualPeer, 2000);
  const auto load = sim.load_fn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::workload_summary(sim.partition(), load));
  }
}
BENCHMARK(BM_WorkloadSummary);

}  // namespace

BENCHMARK_MAIN();
