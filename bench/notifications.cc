// Pub/sub notification throughput: standing subscriptions matched against
// per-epoch ingest deltas, incremental versus re-query-per-epoch.
//
// Each population point installs S standing subscriptions (geofence /
// range / friend mix from the workload generator's subscription radii)
// over a plane of N resident users, then replays a motion trace where a
// small fraction of the population moves (and reports) per epoch — the
// regime continuous location-based middleware lives in.  Three engine
// configurations drain every epoch:
//
//   serial      — NotificationEngine over a K=1 directory, 1 match thread
//                 (the determinism reference)
//   incremental — NotificationEngine over a K=8 delta-tracking directory,
//                 swept over explicit match-thread counts (1, 2, 4, 8,
//                 16): matches only the epoch's ingest delta.  The
//                 8-thread entry is the headline configuration
//                 (notifications_per_sec); the full curve and the host's
//                 core count land in the baseline JSON.
//   re-query    — an 8-thread engine over a directory without delta
//                 tracking: every drain falls back to rescanning all N
//                 resident users, the per-epoch re-query baseline
//                 (notifications_per_sec_requery)
//
// Consistency is enforced, not assumed: all three configurations must
// emit byte-identical serialized notification streams every epoch — any
// divergence across shard counts, thread counts, or the
// incremental/rescan boundary aborts the bench.
//
// Match latency percentiles come from the incremental engine's
// metrics::LatencyHistogram.  Timing is sampled (every Nth candidate
// user, NotificationEngine::Options::timing_sample_every), so the two
// steady_clock reads bracketing a measured match no longer run once per
// candidate — the percentiles describe matching cost, and the sub-
// microsecond clock overhead stops inflating both match_p50_us and the
// throughput denominator.  Sampling never changes the emitted bytes.
//
// Populations sweep 10k-100k users (subscriptions = users) by default;
// GEOGRID_BENCH_LARGE=1 adds the 1M/1M point, GEOGRID_BENCH_POPS picks
// the sweep explicitly, and --smoke runs the single 10k CI point.
// GEOGRID_JSON_OUT=<path> writes the machine-readable baseline
// (BENCH_notifications.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "metrics/latency.h"
#include "mobility/sharded_directory.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"
#include "workload/query_gen.h"

using namespace geogrid;

namespace {

constexpr std::size_t kNodes = 1000;
constexpr double kMoveFraction = 0.01;  ///< population reporting per epoch
constexpr double kFriendFraction = 0.10;
constexpr double kRangeFraction = 0.45;  ///< rest of the rect subs: geofence
/// Explicit match-thread counts for the scaling curve; 8 is the headline.
constexpr std::size_t kThreadSweep[] = {1, 2, 4, 8, 16};
constexpr std::size_t kHeadlineThreads = 8;

struct CurvePoint {
  std::size_t threads = 0;
  double notifications_per_sec = 0.0;
};

struct RunResult {
  std::size_t users = 0;
  std::size_t subs = 0;
  std::size_t epochs = 0;
  std::uint64_t notifications = 0;         ///< emitted over measured epochs
  std::uint64_t delta_users = 0;           ///< candidates matched (incremental)
  double notifications_per_sec = 0.0;      ///< incremental drain throughput
  double notifications_per_sec_requery = 0.0;
  double speedup_incremental = 0.0;        ///< requery time / incremental time
  std::size_t threads = 0;
  std::vector<CurvePoint> curve;           ///< the full thread sweep
  double match_p50_us = 0.0;
  double match_p99_us = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void fail(const char* what) {
  std::fprintf(stderr, "divergence abort: %s\n", what);
  std::exit(1);
}

std::vector<std::byte> stream_bytes(
    std::span<const pubsub::Notification> batch) {
  net::Writer w;
  pubsub::NotificationEngine::serialize(w, batch);
  return std::move(w).take();
}

/// Installs the subscription mix: hot-spot-weighted geofence and range
/// areas from the workload generator's subscription radii, plus friend
/// trackers over uniform user ids.  Radii shrink with 1/sqrt(S) so the
/// expected subscriptions covering a point — the notification fan-out of
/// one report — stays constant as the population scales, the regime a
/// real deployment provisions for.
void install_subscriptions(pubsub::SubscriptionIndex& idx,
                           const workload::HotSpotField& field,
                           std::size_t count, std::size_t user_count,
                           std::uint64_t seed) {
  workload::QueryGenerator::Options opt =
      workload::QueryGenerator::Options::presence_tracking();
  const double scale =
      std::min(1.0, std::sqrt(10'000.0 / static_cast<double>(count)));
  opt.sub_min_radius_miles = 0.02 * scale;
  opt.sub_max_radius_miles = 0.12 * scale;
  workload::QueryGenerator gen(field, opt, Rng(seed));
  Rng rng(seed ^ 0x5eed50b5ULL);
  net::NodeInfo subscriber;
  subscriber.id = NodeId{1};
  for (std::size_t i = 0; i < count; ++i) {
    const net::Subscribe msg = gen.next_subscription(subscriber, 3600.0);
    const double roll = rng.uniform();
    if (roll < kFriendFraction) {
      idx.subscribe_friend(msg, UserId{static_cast<std::uint32_t>(
                                    1 + rng.uniform_index(user_count))});
    } else if (roll < kFriendFraction + kRangeFraction) {
      idx.subscribe(msg, pubsub::SubKind::kRange);
    } else {
      idx.subscribe(msg, pubsub::SubKind::kGeofence);
    }
    // Keep the grid pitch tracking the growing population (log-many
    // rebuilds, geometric total cost) so inserts never degenerate into
    // one giant bucket.
    idx.refresh();
  }
}

RunResult measure(std::size_t user_count, std::size_t sub_count,
                  std::size_t epochs, std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeer;
  opt.node_count = kNodes;
  opt.seed = seed;
  core::GridSimulation sim(opt);
  const Rect plane = sim.partition().plane();

  RunResult r;
  r.users = user_count;
  r.subs = sub_count;
  r.epochs = epochs;

  const double cell_size = std::clamp(
      std::sqrt(4096.0 * 16.0 / static_cast<double>(user_count)), 0.25, 2.0);
  mobility::ShardedDirectory dir_serial(
      sim.partition(),
      {.shards = 1, .cell_size = cell_size, .track_deltas = true});
  mobility::ShardedDirectory dir_inc(
      sim.partition(),
      {.shards = 8, .cell_size = cell_size, .track_deltas = true});
  mobility::ShardedDirectory dir_requery(
      sim.partition(), {.shards = 8, .cell_size = cell_size});

  // One shared subscription index: drains are sequential and matching is
  // read-only, so all the engines can probe the same frozen grid.  The
  // sweep engines share dir_inc, so none of them may trim its delta
  // history out from under the others.
  pubsub::SubscriptionIndex subs(plane);
  pubsub::NotificationEngine serial(dir_serial, subs, {.threads = 1});
  std::vector<std::unique_ptr<pubsub::NotificationEngine>> sweep;
  for (const std::size_t t : kThreadSweep) {
    sweep.push_back(std::make_unique<pubsub::NotificationEngine>(
        dir_inc, subs,
        pubsub::NotificationEngine::Options{.threads = t,
                                            .trim_consumed = false}));
  }
  pubsub::NotificationEngine requery(dir_requery, subs,
                                     {.threads = kHeadlineThreads});

  // Initial placement (hot-spot attracted, like the motion workloads) and
  // the bootstrap drain — taken against an empty index so the steady-state
  // measurement below starts from "everyone resident, nobody new".
  Rng rng(seed * 131 + 3);
  std::vector<Point> positions(user_count);
  std::vector<std::uint64_t> seqs(user_count, 0);
  {
    std::vector<mobility::LocationRecord> batch(user_count);
    for (std::size_t i = 0; i < user_count; ++i) {
      positions[i] = rng.chance(0.3)
                         ? Point{rng.uniform(plane.x, plane.right()),
                                 rng.uniform(plane.y, plane.top())}
                         : sim.field().sample_weighted_point(rng);
      batch[i] = {UserId{static_cast<std::uint32_t>(i + 1)}, positions[i],
                  ++seqs[i], 0.0};
    }
    dir_serial.apply_updates(batch);
    dir_inc.apply_updates(batch);
    dir_requery.apply_updates(batch);
  }
  if (!serial.drain().empty() || !requery.drain().empty()) {
    fail("bootstrap drain emitted against an empty index");
  }
  for (auto& engine : sweep) {
    if (!engine->drain().empty()) {
      fail("bootstrap drain emitted against an empty index");
    }
  }

  install_subscriptions(subs, sim.field(), sub_count, user_count, seed + 17);
  subs.refresh();  // final pitch tune outside every timed drain

  // Steady state: kMoveFraction of the population moves (a local random
  // walk) and reports per epoch; everyone else is silent.  Every sweep
  // engine drains every epoch and must reproduce the serial reference
  // stream byte-for-byte.
  std::vector<double> sweep_secs(sweep.size(), 0.0);
  double req_secs = 0.0;
  std::uint64_t notifications = 0;
  std::vector<mobility::LocationRecord> batch;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    batch.clear();
    for (std::size_t i = 0; i < user_count; ++i) {
      if (!rng.chance(kMoveFraction)) continue;
      Point p = positions[i];
      p.x = std::clamp(p.x + rng.uniform(-0.5, 0.5), plane.x + 1e-9,
                       plane.right());
      p.y = std::clamp(p.y + rng.uniform(-0.5, 0.5), plane.y + 1e-9,
                       plane.top());
      positions[i] = p;
      batch.push_back({UserId{static_cast<std::uint32_t>(i + 1)}, p,
                       ++seqs[i], static_cast<double>(epoch + 1)});
    }
    dir_serial.apply_updates(batch);
    dir_inc.apply_updates(batch);
    dir_requery.apply_updates(batch);

    const auto reference = serial.drain();
    const auto want = stream_bytes(reference);

    // Build each directory's copy-on-write snapshot outside the timed
    // region: the first drain at a new epoch pays the snapshot build and
    // later drains reuse it, which would otherwise bill that one-off cost
    // to whichever sweep entry happens to run first.  The curve times
    // matching, not snapshot construction.
    (void)dir_inc.publish_snapshot();
    (void)dir_requery.publish_snapshot();

    for (std::size_t s = 0; s < sweep.size(); ++s) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto inc = sweep[s]->drain();
      sweep_secs[s] += seconds_since(t0);
      if (stream_bytes(inc) != want) {
        fail("incremental (K=8) vs serial (K=1, 1 thread)");
      }
      if (s == 0) notifications += inc.size();
    }

    const auto t_req = std::chrono::steady_clock::now();
    const auto req = requery.drain();
    req_secs += seconds_since(t_req);
    if (stream_bytes(req) != want) {
      fail("re-query rescan vs incremental");
    }
  }

  r.notifications = notifications;
  double headline_secs = sweep_secs.back();
  for (std::size_t s = 0; s < sweep.size(); ++s) {
    CurvePoint pt;
    pt.threads = sweep[s]->thread_count();
    pt.notifications_per_sec =
        static_cast<double>(notifications) / sweep_secs[s];
    r.curve.push_back(pt);
    if (kThreadSweep[s] == kHeadlineThreads) {
      headline_secs = sweep_secs[s];
      r.notifications_per_sec = pt.notifications_per_sec;
      r.threads = pt.threads;
      r.delta_users = sweep[s]->counters().delta_users;
      r.match_p50_us = sweep[s]->match_latency().percentile_micros(50);
      r.match_p99_us = sweep[s]->match_latency().percentile_micros(99);
    }
    if (sweep[s]->counters().full_rescans != 0) {
      fail("incremental engine fell back to a rescan");
    }
  }
  r.notifications_per_sec_requery =
      static_cast<double>(notifications) / req_secs;
  r.speedup_incremental = req_secs / headline_secs;
  return r;
}

std::vector<std::size_t> pick_populations(bool smoke) {
  if (smoke) return {10'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_POPS")) {
    std::vector<std::size_t> pops;
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      if (v > 0) pops.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (!pops.empty()) return pops;
  }
  std::vector<std::size_t> pops = {10'000, 100'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_LARGE");
      env != nullptr && env[0] != '0') {
    pops.push_back(1'000'000);
  }
  return pops;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t epochs = smoke ? 10 : 20;
  const std::vector<std::size_t> populations = pick_populations(smoke);
  const std::size_t host_cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::printf("Notifications: %zu-node engine grid, subscriptions = users, "
              "%.0f%% of the population moves per epoch, %zu epochs "
              "(host cores: %zu)\n",
              kNodes, kMoveFraction * 100.0, epochs, host_cores);
  auto csv = bench::csv_for("notifications");
  if (csv) {
    csv->header({"users", "subs", "epochs", "notifications",
                 "notifications_per_sec", "notifications_per_sec_requery",
                 "speedup_incremental", "threads", "match_p50_us",
                 "match_p99_us"});
  }

  std::vector<RunResult> results;
  std::printf("%9s %9s %14s %16s %14s %8s %8s\n", "users", "subs",
              "notifications", "incremental/sec", "requery/sec", "speedup",
              "threads");
  for (const std::size_t users : populations) {
    const RunResult r = measure(users, users, epochs, 4242);
    results.push_back(r);
    std::printf("%9zu %9zu %14llu %16.0f %14.0f %7.1fx %8zu\n", r.users,
                r.subs, static_cast<unsigned long long>(r.notifications),
                r.notifications_per_sec, r.notifications_per_sec_requery,
                r.speedup_incremental, r.threads);
    std::printf("          match p50/p99 %.2f/%.2fus (sampled) over %llu "
                "candidate users\n",
                r.match_p50_us, r.match_p99_us,
                static_cast<unsigned long long>(r.delta_users));
    for (const CurvePoint& pt : r.curve) {
      std::printf("          threads=%-3zu %16.0f notifications/sec\n",
                  pt.threads, pt.notifications_per_sec);
    }
    if (csv) {
      csv->row(r.users, r.subs, r.epochs, r.notifications,
               r.notifications_per_sec, r.notifications_per_sec_requery,
               r.speedup_incremental, r.threads, r.match_p50_us,
               r.match_p99_us);
    }
  }
  std::printf("divergence aborts: 0 (all streams byte-identical across "
              "shard/thread counts and the re-query baseline)\n");

  if (const char* path = std::getenv("GEOGRID_JSON_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"notifications\",\n"
                    "  \"nodes\": %zu,\n  \"move_fraction\": %.3f,\n"
                    "  \"host_cores\": %zu,\n"
                    "  \"points\": [\n",
                 kNodes, kMoveFraction, host_cores);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "    {\"users\": %zu, \"subs\": %zu, \"epochs\": %zu, "
          "\"notifications\": %llu, \"notifications_per_sec\": %.0f, "
          "\"notifications_per_sec_requery\": %.0f, "
          "\"speedup_incremental\": %.2f, \"threads\": %zu, "
          "\"match_p50_us\": %.2f, \"match_p99_us\": %.2f,\n"
          "     \"thread_curve\": [",
          r.users, r.subs, r.epochs,
          static_cast<unsigned long long>(r.notifications),
          r.notifications_per_sec, r.notifications_per_sec_requery,
          r.speedup_incremental, r.threads, r.match_p50_us, r.match_p99_us);
      for (std::size_t c = 0; c < r.curve.size(); ++c) {
        std::fprintf(f,
                     "%s{\"threads\": %zu, \"notifications_per_sec\": %.0f}",
                     c == 0 ? "" : ", ", r.curve[c].threads,
                     r.curve[c].notifications_per_sec);
      }
      std::fprintf(f, "]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  }
  return 0;
}
