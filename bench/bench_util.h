// Shared plumbing for the figure-reproduction harnesses.
//
// Every figure binary prints a human-readable table to stdout and, when
// GEOGRID_CSV_DIR is set, writes the same series as CSV there.  GEOGRID_RUNS
// overrides the number of random networks averaged per data point (the
// paper uses 100; the default here keeps a full bench sweep under a minute
// on a laptop).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/csv.h"

namespace geogrid::bench {

inline std::size_t runs_per_point(std::size_t fallback = 5) {
  if (const char* env = std::getenv("GEOGRID_RUNS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// CSV sink for a figure, or null when GEOGRID_CSV_DIR is unset.
inline std::unique_ptr<CsvWriter> csv_for(const std::string& figure) {
  const char* dir = std::getenv("GEOGRID_CSV_DIR");
  if (dir == nullptr) return nullptr;
  return std::make_unique<CsvWriter>(std::string(dir) + "/" + figure +
                                     ".csv");
}

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace geogrid::bench
