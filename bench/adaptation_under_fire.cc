// Latency during adaptation: the live mobile-user path (sharded ingest,
// batched queries, standing subscriptions) measured while the overlay
// splits, merges, switches owners and fails over underneath it.
//
// Each population point drives sim::AdaptationHarness over a
// dual-peer-adaptive engine grid: migrating hot spots steer the reporting
// population tick by tick, and at the scheduled event ticks a dual-peer
// failover plus the full load-balance mechanism set fire against the live
// partition, followed by ShardedDirectory::migrate_regions under the
// dropped-transfer fault (each pass's vetoed transfers stay behind and are
// retried, so adaptation-window latency includes the retry cost a lossy
// transfer channel causes).
//
// The headline numbers are the update and query latency percentiles split
// into before / during / after adaptation windows — what a mobile user
// experiences while the overlay reshapes — plus overall ingest and query
// throughput.  Correctness is enforced, not assumed: the harness byte-
// compares canonicalized query results and notification streams against a
// never-adapted reference directory every tick and byte-verifies each
// migration against a rebuilt-from-scratch directory; any divergence,
// lost user or duplicate notification aborts the bench.
//
// Populations sweep 10k-100k users by default; GEOGRID_BENCH_LARGE=1 adds
// the 1M point, GEOGRID_BENCH_POPS picks the sweep explicitly, and
// --smoke runs the single 10k CI point (gated by check_bench_smoke.py on
// updates_per_sec / queries_per_sec and the required
// p99_query_us_during_adaptation series).  GEOGRID_JSON_OUT=<path> writes
// the machine-readable baseline (BENCH_adaptation.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "sim/adaptation_harness.h"

using namespace geogrid;

namespace {

constexpr std::size_t kNodes = 600;
constexpr std::uint64_t kSeed = 4242;

struct RunResult {
  std::size_t users = 0;
  sim::AdaptationHarness::Report report;
  double updates_per_sec = 0.0;
  double queries_per_sec = 0.0;
};

void fail(const char* what) {
  std::fprintf(stderr, "divergence abort: %s\n", what);
  std::exit(1);
}

sim::AdaptationHarness::Options harness_options(std::size_t users) {
  sim::AdaptationHarness::Options ho;
  ho.users = users;
  // One schedule for smoke and full runs: the CI gate compares the smoke
  // point against the committed baseline, so the workload must be
  // identical and only machine noise may differ.
  ho.ticks = 16;
  ho.event_ticks = {5, 9};
  ho.during_window = 2;
  ho.queries_per_tick = 256;
  ho.subscriptions = 512;
  ho.sub_batches = 16;  // latency sampling granularity per tick
  ho.report_rate = 0.9;
  ho.use_driver = true;
  ho.failover = true;  // every event also crashes the hottest primary
  ho.ops_per_event = 6;
  ho.fault = sim::FaultKind::kDroppedTransfer;
  ho.deep_parity_every_tick = false;  // events + final tick at bench scale
  ho.seed = kSeed;
  ho.ingest_shards = 8;
  ho.query_threads = 0;   // hardware
  ho.notify_threads = 0;  // hardware
  return ho;
}

RunResult measure(std::size_t users) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = kNodes;
  opt.seed = kSeed;
  opt.field.cells_x = 128;
  opt.field.cells_y = 128;
  core::GridSimulation sim_grid(opt);

  sim::AdaptationHarness harness(sim_grid.partition(), sim_grid.field(),
                                 harness_options(users));
  RunResult r;
  r.users = users;
  r.report = harness.run();

  if (!r.report.clean()) {
    std::fprintf(stderr,
                 "lost=%llu parity=%llu query=%llu notify=%llu dup=%llu "
                 "migration=%llu\n",
                 (unsigned long long)r.report.lost_users,
                 (unsigned long long)r.report.record_parity_failures,
                 (unsigned long long)r.report.query_divergences,
                 (unsigned long long)r.report.notify_divergences,
                 (unsigned long long)r.report.duplicate_notifications,
                 (unsigned long long)r.report.migration_verify_failures);
    fail("adapted run diverged from the never-adapted reference");
  }
  if (r.report.failovers == 0) fail("no failover executed");
  if (r.report.migrated_records == 0) fail("no records migrated");

  r.updates_per_sec =
      static_cast<double>(r.report.updates_sent) / r.report.update_secs;
  r.queries_per_sec =
      static_cast<double>(r.report.queries_run) / r.report.query_secs;
  return r;
}

std::vector<std::size_t> pick_populations(bool smoke) {
  if (smoke) return {10'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_POPS")) {
    std::vector<std::size_t> pops;
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      if (v > 0) pops.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (!pops.empty()) return pops;
  }
  std::vector<std::size_t> pops = {10'000, 100'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_LARGE");
      env != nullptr && env[0] != '0') {
    pops.push_back(1'000'000);
  }
  return pops;
}

void print_phase(const char* label,
                 const sim::AdaptationHarness::PhaseLatency& lat) {
  std::printf("          %-7s update p99/p999 %8.1f/%8.1fus   "
              "query p99/p999 %8.1f/%8.1fus\n",
              label, lat.update.percentile_micros(99),
              lat.update.percentile_micros(99.9),
              lat.query.percentile_micros(99),
              lat.query.percentile_micros(99.9));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<std::size_t> populations = pick_populations(smoke);

  std::printf("Adaptation under fire: %zu-node adaptive grid, failover + "
              "all mechanisms + dropped-transfer fault at each event\n",
              kNodes);
  auto csv = bench::csv_for("adaptation_under_fire");
  if (csv) {
    csv->header({"users", "updates_per_sec", "queries_per_sec",
                 "p99_update_us_before", "p99_update_us_during",
                 "p99_update_us_after", "p99_query_us_before",
                 "p99_query_us_during", "p99_query_us_after", "adaptations",
                 "failovers", "migrated_records", "dropped_transfers",
                 "migration_retries", "adaptation_stall_us"});
  }

  std::vector<RunResult> results;
  for (const std::size_t users : populations) {
    const RunResult r = measure(users);
    results.push_back(r);
    const auto& rep = r.report;
    std::printf("%9zu users: %10.0f updates/s %9.0f queries/s   "
                "%llu adaptations, %llu failovers, %llu migrated "
                "(%llu dropped, %llu retries), stall %.1fms\n",
                r.users, r.updates_per_sec, r.queries_per_sec,
                (unsigned long long)rep.adaptations_executed,
                (unsigned long long)rep.failovers,
                (unsigned long long)rep.migrated_records,
                (unsigned long long)rep.dropped_transfers,
                (unsigned long long)rep.migration_retries,
                static_cast<double>(rep.adaptation_stall_us) / 1000.0);
    print_phase("before", rep.before);
    print_phase("during", rep.during);
    print_phase("after", rep.after);
    std::printf("          replays %llu delivered late, %llu rejected by "
                "the seq guard; %llu notifications, streams byte-identical\n",
                (unsigned long long)rep.replayed_updates,
                (unsigned long long)rep.replays_rejected,
                (unsigned long long)rep.notifications);
    if (csv) {
      csv->row(r.users, r.updates_per_sec, r.queries_per_sec,
               rep.before.update.percentile_micros(99),
               rep.during.update.percentile_micros(99),
               rep.after.update.percentile_micros(99),
               rep.before.query.percentile_micros(99),
               rep.during.query.percentile_micros(99),
               rep.after.query.percentile_micros(99),
               rep.adaptations_executed, rep.failovers, rep.migrated_records,
               rep.dropped_transfers, rep.migration_retries,
               rep.adaptation_stall_us);
    }
  }
  std::printf("divergence aborts: 0 (query results, notification streams "
              "and migrated snapshots byte-verified)\n");

  if (const char* path = std::getenv("GEOGRID_JSON_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"adaptation_under_fire\",\n"
                    "  \"nodes\": %zu,\n  \"fault\": \"dropped-transfer\",\n"
                    "  \"points\": [\n",
                 kNodes);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      const auto& rep = r.report;
      std::fprintf(
          f,
          "    {\"users\": %zu, "
          "\"updates_per_sec\": %.0f, \"queries_per_sec\": %.0f,\n"
          "     \"p99_update_us_before_adaptation\": %.2f, "
          "\"p99_update_us_during_adaptation\": %.2f, "
          "\"p99_update_us_after_adaptation\": %.2f,\n"
          "     \"p999_update_us_before_adaptation\": %.2f, "
          "\"p999_update_us_during_adaptation\": %.2f, "
          "\"p999_update_us_after_adaptation\": %.2f,\n"
          "     \"p99_query_us_before_adaptation\": %.2f, "
          "\"p99_query_us_during_adaptation\": %.2f, "
          "\"p99_query_us_after_adaptation\": %.2f,\n"
          "     \"p999_query_us_before_adaptation\": %.2f, "
          "\"p999_query_us_during_adaptation\": %.2f, "
          "\"p999_query_us_after_adaptation\": %.2f,\n"
          "     \"adaptations\": %llu, \"failovers\": %llu, "
          "\"geometry_changes\": %llu, \"migrated_records\": %llu, "
          "\"dropped_transfers\": %llu, \"migration_retries\": %llu,\n"
          "     \"replayed_updates\": %llu, \"replays_rejected\": %llu, "
          "\"notifications\": %llu, \"adaptation_stall_us\": %llu}%s\n",
          r.users, r.updates_per_sec, r.queries_per_sec,
          rep.before.update.percentile_micros(99),
          rep.during.update.percentile_micros(99),
          rep.after.update.percentile_micros(99),
          rep.before.update.percentile_micros(99.9),
          rep.during.update.percentile_micros(99.9),
          rep.after.update.percentile_micros(99.9),
          rep.before.query.percentile_micros(99),
          rep.during.query.percentile_micros(99),
          rep.after.query.percentile_micros(99),
          rep.before.query.percentile_micros(99.9),
          rep.during.query.percentile_micros(99.9),
          rep.after.query.percentile_micros(99.9),
          (unsigned long long)rep.adaptations_executed,
          (unsigned long long)rep.failovers,
          (unsigned long long)rep.geometry_changes,
          (unsigned long long)rep.migrated_records,
          (unsigned long long)rep.dropped_transfers,
          (unsigned long long)rep.migration_retries,
          (unsigned long long)rep.replayed_updates,
          (unsigned long long)rep.replays_rejected,
          (unsigned long long)rep.notifications,
          (unsigned long long)rep.adaptation_stall_us,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  }
  return 0;
}
