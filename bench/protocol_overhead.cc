// Protocol overhead (ours): the wire cost of operating a GeoGrid — what
// the paper's prototype discussion calls the management messages
// ("splitting and merging region, heart-beat, request routing,
// load-balancing, routing table maintenance").
//
// Runs a protocol-mode deployment end to end — staggered joins, hot-spot
// load, adaptation handshakes, a query workload — and breaks the traffic
// down per message family and per node-minute.  It also demonstrates that
// the wire-level adaptation converges the same way the engine does.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "core/cluster.h"

using namespace geogrid;

namespace {

const char* family_of(net::MsgType type) {
  using T = net::MsgType;
  switch (type) {
    case T::kBootstrapRegister:
    case T::kBootstrapEntryRequest:
    case T::kBootstrapEntryReply:
    case T::kJoinRequest:
    case T::kJoinProbeReply:
    case T::kSecondaryJoinRequest:
    case T::kSplitJoinRequest:
    case T::kJoinGrant:
    case T::kJoinReject:
      return "join";
    case T::kNeighborUpdate:
    case T::kNeighborRemove:
    case T::kLeaveNotice:
    case T::kTakeoverNotice:
    case T::kRegionHandoff:
      return "membership";
    case T::kHeartbeat:
    case T::kHeartbeatAck:
    case T::kSyncState:
      return "heartbeat/sync";
    case T::kLoadStatsExchange:
      return "load-gossip";
    case T::kStealSecondaryRequest:
    case T::kStealSecondaryGrant:
    case T::kStealSecondaryReject:
    case T::kSwitchRequest:
    case T::kSwitchGrant:
    case T::kSwitchReject:
    case T::kMergeRequest:
    case T::kMergeGrant:
    case T::kMergeReject:
    case T::kSplitRegionNotice:
    case T::kTtlSearchRequest:
    case T::kTtlSearchReply:
      return "adaptation";
    case T::kOwnerProbe:
      return "membership";
    case T::kRouted:
    case T::kLocationQuery:
    case T::kQueryResult:
    case T::kSubscribe:
    case T::kSubscribeAck:
    case T::kPublish:
    case T::kNotify:
    case T::kUnsubscribe:
      return "application";
    case T::kLocationUpdate:
    case T::kLocationUpdateAck:
    case T::kUserHandoff:
    case T::kLocateRequest:
    case T::kLocateReply:
      return "mobile-user";
  }
  return "other";
}

double cluster_imbalance(core::Cluster& cluster) {
  RunningStats rs;
  for (const auto& node : cluster.nodes()) {
    if (node->joined()) rs.add(node->workload_index());
  }
  return rs.stddev();
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 80;
  constexpr double kRunSeconds = 240.0;

  core::Cluster::Options opt;
  opt.node.mode = core::GridMode::kDualPeerAdaptive;
  opt.seed = 4242;
  core::Cluster cluster(opt);

  std::printf("Protocol overhead: %zu-node wire-protocol deployment, %.0f "
              "virtual seconds\n",
              kNodes, kRunSeconds);

  for (std::size_t i = 0; i < kNodes; ++i) cluster.spawn();
  cluster.run_until_joined();
  cluster.run_for(10.0);

  Rng field_rng(99);
  workload::HotSpotField::Options fopt;
  fopt.hotspot_count = 6;
  workload::HotSpotField field(fopt, field_rng);

  cluster.apply_field(field);
  const double imbalance_before = cluster_imbalance(cluster);

  // Steady state: loads refresh, hot spots drift, queries flow.
  Rng query_rng(7);
  for (int second = 0; second < static_cast<int>(kRunSeconds); ++second) {
    cluster.apply_field(field);
    if (second % 30 == 29) field.migrate(field_rng, 2);
    if (second % 4 == 0) {
      auto& issuer =
          *cluster.nodes()[query_rng.uniform_index(cluster.nodes().size())];
      const Point c = field.sample_weighted_point(query_rng);
      const Rect area{std::max(0.0, c.x - 1.0), std::max(0.0, c.y - 1.0),
                      2.0, 2.0};
      issuer.submit_query(area, "traffic");
    }
    cluster.run_for(1.0);
  }
  // Settle window: let adaptation catch up with the last migration before
  // measuring (matching the engine benches, which measure at round ends).
  for (int second = 0; second < 60; ++second) {
    cluster.apply_field(field);
    cluster.run_for(1.0);
  }
  cluster.apply_field(field);
  const double imbalance_after = cluster_imbalance(cluster);

  const auto& stats = cluster.network().stats();
  std::map<std::string, std::uint64_t> per_family;
  for (std::size_t t = 0; t < stats.per_type.size(); ++t) {
    if (stats.per_type[t] == 0) continue;
    per_family[family_of(static_cast<net::MsgType>(t))] += stats.per_type[t];
  }

  auto csv = bench::csv_for("protocol_overhead");
  if (csv) csv->header({"family", "messages", "msgs_per_node_minute"});
  const double node_minutes =
      static_cast<double>(kNodes) * kRunSeconds / 60.0;
  std::printf("\n%-16s %12s %22s\n", "family", "messages", "msgs/node/min");
  for (const auto& [family, count] : per_family) {
    std::printf("%-16s %12llu %22.1f\n", family.c_str(),
                static_cast<unsigned long long>(count),
                static_cast<double>(count) / node_minutes);
    if (csv) {
      csv->row(family, count, static_cast<double>(count) / node_minutes);
    }
  }
  std::printf("\ntotal %llu messages, %.2f MB on the wire, %llu dropped\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<double>(stats.bytes_sent) / 1e6,
              static_cast<unsigned long long>(stats.messages_dropped));

  std::uint64_t started = 0, completed = 0;
  for (const auto& node : cluster.nodes()) {
    started += node->counters().adaptations_started;
    completed += node->counters().adaptations_completed;
  }
  std::printf("adaptations: %llu started, %llu completed over the wire\n",
              static_cast<unsigned long long>(started),
              static_cast<unsigned long long>(completed));
  std::printf("workload imbalance (stddev): %.5f -> %.5f\n",
              imbalance_before, imbalance_after);
  const auto errors = cluster.check_consistency();
  std::printf("consistency violations: %zu\n", errors.size());
  for (const auto& e : errors) std::printf("  %s\n", e.c_str());
  return errors.empty() ? 0 : 1;
}
