// Mobile-user read-path throughput: aggregate queries/sec of a mixed
// locate / range / k-nearest workload versus user population.
//
// Each population is ingested once (batched motion trace over the
// engine-mode grid), then an identical pre-generated query list runs
// through three read configurations:
//
//   serial   — ShardedDirectory's per-call locate/range/k_nearest: every
//              range scans all R partition regions, every kNN orders all
//              resident stores by rect distance (the committed-baseline
//              configuration; queries_per_sec)
//   batched  — mobility::QueryEngine with 1 thread against a published
//              DirectorySnapshot: grid-indexed region discovery through
//              the shared RegionResolver, still single-threaded
//   parallel — QueryEngine swept over explicit thread counts (1, 2, 4, 8,
//              16) on the run_pinned epoch-reclamation hot path; the
//              headline parallel number is the 8-thread entry, recorded
//              with the host's core count so a scaling gate can judge the
//              curve against what the machine could physically deliver
//
// The range footprints come from services::Geolocator::query_area — the
// paper's radius-γ area query mapped to its plane-clamped bounding box
// around a plane-uniform origin.
//
// Consistency is enforced, not assumed: the batched and parallel engines
// must produce byte-identical serialized results, an engine over a K=8
// directory must match the K=1 engine byte-for-byte, and a sampled
// cross-check pins engine answers to the serial path (exact for locate
// and kNN, multiset-equal for range).  Any mismatch aborts the bench.
//
// Latency is reported from metrics::LatencyHistogram: per-call
// percentiles by query kind for the serial path, and per-query amortized
// batch latency for the batched path.
//
// Populations sweep 10k-100k by default; set GEOGRID_BENCH_LARGE=1 to add
// the 1M-user point, or GEOGRID_BENCH_POPS=10000,50000 to pick the sweep
// explicitly.  Set GEOGRID_JSON_OUT=<path> to write the machine-readable
// baseline (BENCH_queries.json).  GEOGRID_BENCH_KIND=0|1|2 forces a
// homogeneous locate/range/kNN workload for per-kind profiling.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "metrics/latency.h"
#include "mobility/motion.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "services/geolocator.h"

using namespace geogrid;

namespace {

constexpr std::size_t kNodes = 1000;
constexpr int kIngestTicks = 10;
constexpr std::size_t kQueries = 120'000;
constexpr std::size_t kBatchSize = 4096;
constexpr std::size_t kLatencySample = 30'000;
constexpr std::size_t kNearestK = 16;
/// Explicit thread counts for the scaling curve; 8 is the headline entry.
constexpr std::size_t kThreadSweep[] = {1, 2, 4, 8, 16};
constexpr std::size_t kHeadlineThreads = 8;

struct CurvePoint {
  std::size_t threads = 0;
  double queries_per_sec = 0.0;
};

struct RunResult {
  std::size_t users = 0;
  std::size_t queries = 0;
  double queries_per_sec = 0.0;           ///< serial per-call (baseline key)
  double queries_per_sec_batched = 0.0;   ///< QueryEngine, 1 thread
  double queries_per_sec_parallel = 0.0;  ///< QueryEngine, 8 threads, pinned
  std::size_t threads = 0;                ///< thread count of the parallel run
  std::vector<CurvePoint> curve;          ///< the full thread sweep
  double speedup_batched = 0.0;
  std::uint64_t records_returned = 0;
  double locate_p50_us = 0.0, locate_p99_us = 0.0;
  double range_p50_us = 0.0, range_p99_us = 0.0;
  double knn_p50_us = 0.0, knn_p99_us = 0.0;
  double batched_p50_us = 0.0, batched_p99_us = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void ingest_population(core::GridSimulation& sim, std::size_t user_count,
                       std::uint64_t seed, mobility::ShardedDirectory& dir) {
  mobility::UserPopulation::Options mopt;
  mopt.model = mobility::MotionModel::kHotspotAttracted;
  mobility::UserPopulation pop(user_count, mopt, &sim.field(),
                               Rng(seed * 31 + 7));
  std::vector<mobility::LocationRecord> batch(user_count);
  double now = 0.0;
  for (int tick = 0; tick < kIngestTicks; ++tick) {
    now += 1.0;
    pop.step(1.0, now);
    auto& users = pop.users();
    for (std::size_t i = 0; i < users.size(); ++i) {
      batch[i] = {users[i].id, users[i].position, users[i].next_seq++, now};
    }
    dir.apply_updates(batch);
  }
}

/// The mixed workload: one third locate (uniform over user ids), one third
/// range (Geolocator query areas around plane-uniform origins), one third
/// k-nearest from plane-uniform origins.
std::vector<mobility::Query> make_queries(services::Geolocator& geo,
                                          std::size_t user_count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<mobility::Query> qs;
  qs.reserve(kQueries);
  int force = -1;  // debug: GEOGRID_BENCH_KIND=0|1|2 for a homogeneous mix
  if (const char* env = std::getenv("GEOGRID_BENCH_KIND")) force = env[0] - '0';
  for (std::size_t i = 0; i < kQueries; ++i) {
    switch (force >= 0 ? static_cast<std::size_t>(force) : i % 3) {
      case 0:
        qs.push_back(mobility::Query::locate(UserId{
            static_cast<std::uint32_t>(1 + rng.uniform_index(user_count))}));
        break;
      case 1: {
        const double radius = rng.uniform(0.1, 0.35);
        qs.push_back(mobility::Query::range(
            geo.query_area(geo.random_position(), radius)));
        break;
      }
      default:
        qs.push_back(
            mobility::Query::nearest(geo.random_position(), kNearestK));
    }
  }
  return qs;
}

std::vector<std::byte> result_bytes(
    std::span<const mobility::QueryResult> results) {
  net::Writer w;
  mobility::QueryEngine::serialize(w, results);
  return std::move(w).take();
}

void fail(const char* what) {
  std::fprintf(stderr, "consistency violation: %s\n", what);
  std::exit(1);
}

/// Sampled serial-vs-engine answer check: exact for locate and kNN,
/// multiset-equal for range (the two paths merge regions in different
/// orders, which is not part of either contract).
void cross_check(const mobility::ShardedDirectory& dir,
                 std::span<const mobility::Query> queries,
                 std::span<const mobility::QueryResult> results) {
  const auto sorted = [](std::vector<mobility::LocationRecord> v) {
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.user < b.user; });
    return v;
  };
  for (std::size_t i = 0; i < queries.size(); i += 37) {
    const auto& q = queries[i];
    const auto& r = results[i];
    switch (q.kind) {
      case mobility::Query::Kind::kLocate: {
        const auto expect = dir.locate(q.user);
        if (r.found != expect.has_value()) fail("locate presence");
        if (expect && !(r.located == *expect)) fail("locate record");
        break;
      }
      case mobility::Query::Kind::kRange:
        if (sorted(r.records) != sorted(dir.range(q.rect))) {
          fail("range multiset");
        }
        break;
      case mobility::Query::Kind::kNearest: {
        const auto expect = dir.k_nearest(q.point, q.k);
        if (r.records != expect) fail("k_nearest order");
        break;
      }
    }
  }
}

RunResult measure(std::size_t user_count, std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeer;
  opt.node_count = kNodes;
  opt.seed = seed;
  core::GridSimulation sim(opt);

  RunResult r;
  r.users = user_count;
  r.queries = kQueries;

  // Store-cell pitch scaled to the population: ~16 users per cell at
  // uniform density.  A fixed pitch either leaves 1M-user hot cells with
  // five-digit populations (in-cell scans dominate every read path
  // identically) or forces sparse-population kNN to sweep hundreds of
  // empty cells.  Both directories get the same pitch, so the serial and
  // batched paths always read identical stores.
  const double cell_size = std::clamp(
      std::sqrt(4096.0 * 16.0 / static_cast<double>(user_count)), 0.25, 2.0);
  mobility::ShardedDirectory dir(sim.partition(),
                                 {.shards = 1, .cell_size = cell_size});
  ingest_population(sim, user_count, seed, dir);
  // A K=8 twin of the same trace pins shard-count invariance end to end.
  mobility::ShardedDirectory dir_k8(sim.partition(),
                                    {.shards = 8, .cell_size = cell_size});
  ingest_population(sim, user_count, seed, dir_k8);

  services::Geolocator geo(sim.partition().plane(), {}, Rng(seed + 5));
  const auto queries = make_queries(geo, user_count, seed + 13);

  // --- serial per-call path -------------------------------------------
  std::uint64_t serial_records = 0;
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& q : queries) {
    switch (q.kind) {
      case mobility::Query::Kind::kLocate:
        serial_records += dir.locate(q.user).has_value() ? 1 : 0;
        break;
      case mobility::Query::Kind::kRange:
        serial_records += dir.range(q.rect).size();
        break;
      case mobility::Query::Kind::kNearest:
        serial_records += dir.k_nearest(q.point, q.k).size();
        break;
    }
  }
  const double serial_secs = seconds_since(serial_start);
  r.queries_per_sec = static_cast<double>(kQueries) / serial_secs;

  // Per-kind serial latency percentiles over a deterministic sample
  // (clocked separately so timer overhead never inflates the throughput
  // numbers above).
  metrics::LatencyHistogram locate_lat, range_lat, knn_lat;
  for (std::size_t i = 0; i < std::min(kLatencySample, queries.size()); ++i) {
    const auto& q = queries[i];
    const auto t0 = std::chrono::steady_clock::now();
    switch (q.kind) {
      case mobility::Query::Kind::kLocate:
        (void)dir.locate(q.user);
        locate_lat.record_seconds(seconds_since(t0));
        break;
      case mobility::Query::Kind::kRange:
        (void)dir.range(q.rect);
        range_lat.record_seconds(seconds_since(t0));
        break;
      case mobility::Query::Kind::kNearest:
        (void)dir.k_nearest(q.point, q.k);
        knn_lat.record_seconds(seconds_since(t0));
        break;
    }
  }
  r.locate_p50_us = locate_lat.percentile_micros(50);
  r.locate_p99_us = locate_lat.percentile_micros(99);
  r.range_p50_us = range_lat.percentile_micros(50);
  r.range_p99_us = range_lat.percentile_micros(99);
  r.knn_p50_us = knn_lat.percentile_micros(50);
  r.knn_p99_us = knn_lat.percentile_micros(99);

  // --- batched engine, 1 thread ---------------------------------------
  mobility::QueryEngine batched(dir, {.threads = 1});
  metrics::LatencyHistogram batched_lat;
  std::vector<std::byte> batched_bytes;
  {
    std::vector<mobility::QueryResult> all;
    all.reserve(kQueries);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t lo = 0; lo < queries.size(); lo += kBatchSize) {
      const std::size_t n = std::min(kBatchSize, queries.size() - lo);
      const auto t0 = std::chrono::steady_clock::now();
      auto part = batched.run(std::span(queries).subspan(lo, n));
      batched_lat.record_seconds(seconds_since(t0) /
                                 static_cast<double>(n));
      for (auto& res : part) all.push_back(std::move(res));
    }
    const double secs = seconds_since(start);
    r.queries_per_sec_batched = static_cast<double>(kQueries) / secs;
    r.records_returned = batched.counters().records_returned;
    if (r.records_returned != serial_records) fail("records_returned total");
    cross_check(dir, queries, all);
    batched_bytes = result_bytes(all);
  }
  r.batched_p50_us = batched_lat.percentile_micros(50);
  r.batched_p99_us = batched_lat.percentile_micros(99);

  // --- parallel engine thread sweep, pinned-snapshot hot path ----------
  // One publish up front; every engine in the sweep then acquires the
  // snapshot through run_pinned (epoch reclamation, no shared refcount) —
  // the concurrent-reader deployment measured at each thread count.
  // Every entry must reproduce the batched engine's bytes exactly.
  (void)dir.publish_snapshot();
  for (const std::size_t t : kThreadSweep) {
    mobility::QueryEngine engine(dir, {.threads = t});
    std::vector<mobility::QueryResult> all;
    all.reserve(kQueries);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t lo = 0; lo < queries.size(); lo += kBatchSize) {
      const std::size_t n = std::min(kBatchSize, queries.size() - lo);
      auto part = engine.run_pinned(std::span(queries).subspan(lo, n));
      for (auto& res : part) all.push_back(std::move(res));
    }
    const double secs = seconds_since(start);
    if (result_bytes(all) != batched_bytes) fail("thread-count invariance");
    CurvePoint pt;
    pt.threads = engine.thread_count();
    pt.queries_per_sec = static_cast<double>(kQueries) / secs;
    r.curve.push_back(pt);
    if (t == kHeadlineThreads) {
      r.queries_per_sec_parallel = pt.queries_per_sec;
      r.threads = pt.threads;
    }
  }

  // --- shard-count invariance: K=8 engine, same queries ----------------
  {
    mobility::QueryEngine k8_engine(dir_k8, {.threads = 1});
    std::vector<mobility::QueryResult> all;
    all.reserve(kQueries);
    for (std::size_t lo = 0; lo < queries.size(); lo += kBatchSize) {
      const std::size_t n = std::min(kBatchSize, queries.size() - lo);
      auto part = k8_engine.run(std::span(queries).subspan(lo, n));
      for (auto& res : part) all.push_back(std::move(res));
    }
    if (result_bytes(all) != batched_bytes) fail("shard-count invariance");
  }

  r.speedup_batched = r.queries_per_sec_batched / r.queries_per_sec;
  return r;
}

std::vector<std::size_t> pick_populations() {
  if (const char* env = std::getenv("GEOGRID_BENCH_POPS")) {
    std::vector<std::size_t> pops;
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      if (v > 0) pops.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (!pops.empty()) return pops;
  }
  std::vector<std::size_t> pops = {10'000, 30'000, 100'000};
  if (const char* env = std::getenv("GEOGRID_BENCH_LARGE");
      env != nullptr && env[0] != '0') {
    pops.push_back(1'000'000);
  }
  return pops;
}

}  // namespace

int main() {
  const std::vector<std::size_t> populations = pick_populations();
  const std::size_t host_cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::printf("Queries: %zu-node engine grid, %zu mixed locate/range/kNN "
              "queries per point (k=%zu, host cores: %zu)\n",
              kNodes, kQueries, kNearestK, host_cores);
  auto csv = bench::csv_for("queries");
  if (csv) {
    csv->header({"users", "queries", "queries_per_sec",
                 "queries_per_sec_batched", "queries_per_sec_parallel",
                 "threads", "speedup_batched", "records_returned",
                 "locate_p50_us", "locate_p99_us", "range_p50_us",
                 "range_p99_us", "knn_p50_us", "knn_p99_us",
                 "batched_p50_us", "batched_p99_us"});
  }

  std::vector<RunResult> results;
  std::printf("%9s %12s %13s %13s %14s %8s %8s %14s\n", "users", "queries",
              "serial/sec", "batched/sec", "parallel/sec", "threads",
              "speedup", "records");
  for (const std::size_t users : populations) {
    const RunResult r = measure(users, 4242);
    results.push_back(r);
    std::printf("%9zu %12zu %13.0f %13.0f %14.0f %8zu %7.2fx %14llu\n",
                r.users, r.queries, r.queries_per_sec,
                r.queries_per_sec_batched, r.queries_per_sec_parallel,
                r.threads, r.speedup_batched,
                static_cast<unsigned long long>(r.records_returned));
    std::printf("          serial   locate p50/p99 %.1f/%.1fus   "
                "range %.1f/%.1fus   knn %.1f/%.1fus\n",
                r.locate_p50_us, r.locate_p99_us, r.range_p50_us,
                r.range_p99_us, r.knn_p50_us, r.knn_p99_us);
    std::printf("          batched  per-query p50/p99 %.2f/%.2fus "
                "(amortized over %zu-query batches)\n",
                r.batched_p50_us, r.batched_p99_us, kBatchSize);
    for (const CurvePoint& pt : r.curve) {
      std::printf("          threads=%-3zu %14.0f queries/sec\n", pt.threads,
                  pt.queries_per_sec);
    }
    if (csv) {
      csv->row(r.users, r.queries, r.queries_per_sec,
               r.queries_per_sec_batched, r.queries_per_sec_parallel,
               r.threads, r.speedup_batched, r.records_returned,
               r.locate_p50_us, r.locate_p99_us, r.range_p50_us,
               r.range_p99_us, r.knn_p50_us, r.knn_p99_us, r.batched_p50_us,
               r.batched_p99_us);
    }
  }
  std::printf("consistency violations: 0\n");

  if (const char* path = std::getenv("GEOGRID_JSON_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"queries\",\n"
                    "  \"nodes\": %zu,\n  \"queries\": %zu,\n"
                    "  \"host_cores\": %zu,\n"
                    "  \"points\": [\n",
                 kNodes, kQueries, host_cores);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "    {\"users\": %zu, \"queries\": %zu, "
          "\"queries_per_sec\": %.0f, \"queries_per_sec_batched\": %.0f, "
          "\"queries_per_sec_parallel\": %.0f, \"threads\": %zu, "
          "\"speedup_batched\": %.2f, \"records_returned\": %llu, "
          "\"locate_p50_us\": %.2f, \"locate_p99_us\": %.2f, "
          "\"range_p50_us\": %.2f, \"range_p99_us\": %.2f, "
          "\"knn_p50_us\": %.2f, \"knn_p99_us\": %.2f, "
          "\"batched_p50_us\": %.2f, \"batched_p99_us\": %.2f,\n"
          "     \"thread_curve\": [",
          r.users, r.queries, r.queries_per_sec, r.queries_per_sec_batched,
          r.queries_per_sec_parallel, r.threads, r.speedup_batched,
          static_cast<unsigned long long>(r.records_returned),
          r.locate_p50_us, r.locate_p99_us, r.range_p50_us, r.range_p99_us,
          r.knn_p50_us, r.knn_p99_us, r.batched_p50_us, r.batched_p99_us);
      for (std::size_t c = 0; c < r.curve.size(); ++c) {
        std::fprintf(f, "%s{\"threads\": %zu, \"queries_per_sec\": %.0f}",
                     c == 0 ? "" : ", ", r.curve[c].threads,
                     r.curve[c].queries_per_sec);
      }
      std::fprintf(f, "]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  }
  return 0;
}
