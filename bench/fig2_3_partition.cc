// Figures 2 and 3: region size and load distribution of a 500-node GeoGrid
// under random bootstrapping (Figure 2, basic system) and under the dual
// peer technique (Figure 3).
//
// The paper's figures are shaded maps of the partition.  This harness
// renders the same maps as ASCII (shade = workload index of the region's
// primary owner, '|' and '-' = region borders) and quantifies the two
// claims made in the text: (1) dual peer yields fewer regions with sizes
// tracking owner capacity, and (2) far fewer heavily loaded regions remain.
#include <cstdio>

#include "bench_util.h"
#include "common/ascii_render.h"
#include "core/engine.h"
#include "metrics/collector.h"

using namespace geogrid;

namespace {

void show(core::GridMode mode, std::uint64_t seed, CsvWriter* csv) {
  core::SimulationOptions opt;
  opt.mode = mode;
  opt.node_count = 500;
  opt.seed = seed;
  core::GridSimulation sim(opt);
  const auto load = sim.load_fn();

  bench::banner(core::grid_mode_name(mode).data());
  const auto shaded = metrics::shaded_regions(sim.partition(), load);
  std::printf("%s", render_partition(opt.field.plane, shaded, 24, 48).c_str());

  const auto occ = metrics::occupancy(sim.partition());
  const Summary s = sim.workload_summary();
  const double corr = metrics::area_capacity_correlation(sim.partition());

  std::size_t hot = 0;  // "heavily loaded": index above 10x the mean
  for (const auto& r : shaded) {
    if (s.mean > 0.0 && r.value > 10.0 * s.mean) ++hot;
  }

  std::printf(
      "regions=%zu (full=%zu half=%zu)  workload index: mean=%.5f "
      "stddev=%.5f max=%.5f\n",
      occ.regions, occ.full, occ.half_full, s.mean, s.stddev, s.max);
  std::printf("area-capacity correlation=%.3f  heavily-loaded regions=%zu\n",
              corr, hot);
  std::printf("region area distribution (sq miles):\n%s",
              metrics::region_area_histogram(sim.partition(), 8)
                  .render(40)
                  .c_str());

  if (csv != nullptr) {
    csv->row(core::grid_mode_name(mode), occ.regions, occ.full, occ.half_full,
             s.mean, s.stddev, s.max, corr, hot);
  }
}

}  // namespace

int main() {
  std::printf("Figures 2-3: 500-node partition visualization\n");
  auto csv = bench::csv_for("fig2_3");
  if (csv) {
    csv->header({"system", "regions", "full", "half_full", "mean_index",
                 "stddev_index", "max_index", "area_capacity_corr",
                 "hot_regions"});
  }
  show(core::GridMode::kBasic, 20070401, csv.get());      // Figure 2
  show(core::GridMode::kDualPeer, 20070401, csv.get());   // Figure 3
  return 0;
}
