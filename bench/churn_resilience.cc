// Churn resilience (ours): the paper lists "unpredictable rate of node
// join, departure and failure" among the conditions GeoGrid must balance
// under.  This bench holds the hot-spot workload fixed-but-moving and
// sweeps the per-round churn rate (fraction of nodes replaced per
// adaptation round, half departures half crashes), reporting the
// steady-state balance the adaptive system maintains.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"

using namespace geogrid;

namespace {

constexpr std::size_t kPeers = 2000;
constexpr int kRounds = 20;

struct Result {
  double stddev = 0.0;
  double mean = 0.0;
  double adaptations = 0.0;
};

Result run_with_churn(double churn_rate, std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = kPeers;
  opt.seed = seed;
  core::GridSimulation sim(opt);
  Rng rng(seed ^ 0xc0ffee);

  std::vector<NodeId> members;
  for (const auto& [id, info] : sim.partition().nodes()) {
    members.push_back(id);
  }

  for (int round = 0; round < kRounds; ++round) {
    sim.migrate_hotspots(static_cast<std::size_t>(rng.uniform_int(4, 10)));
    // Churn: replace churn_rate of the population.
    const auto replaced =
        static_cast<std::size_t>(churn_rate * static_cast<double>(kPeers));
    for (std::size_t k = 0; k < replaced; ++k) {
      const auto idx = rng.uniform_index(members.size());
      sim.remove_node(members[idx], /*crash=*/rng.chance(0.5));
      members[idx] = members.back();
      members.pop_back();
    }
    for (std::size_t k = 0; k < replaced; ++k) {
      members.push_back(sim.add_node());
    }
    sim.driver().run_round();
  }
  const Summary s = sim.workload_summary();
  return Result{s.stddev, s.mean,
                static_cast<double>(sim.driver().total().executed)};
}

}  // namespace

int main() {
  const std::size_t runs = bench::runs_per_point(3);
  std::printf(
      "Churn resilience: %zu peers, %d rounds, moving hot spots (%zu "
      "runs/point)\n",
      kPeers, kRounds, runs);
  auto csv = bench::csv_for("churn");
  if (csv) {
    csv->header({"churn_rate", "stddev_index", "mean_index", "adaptations"});
  }
  std::printf("%12s  %12s %12s %12s\n", "churn/round", "stddev", "mean",
              "adaptations");
  for (const double rate : {0.0, 0.01, 0.05, 0.10}) {
    RunningStats sd, mn, ops;
    for (std::size_t run = 0; run < runs; ++run) {
      const Result r = run_with_churn(rate, 5000 + run);
      sd.add(r.stddev);
      mn.add(r.mean);
      ops.add(r.adaptations);
    }
    std::printf("%11.0f%%  %12.6f %12.6f %12.0f\n", rate * 100.0, sd.mean(),
                mn.mean(), ops.mean());
    if (csv) csv->row(rate, sd.mean(), mn.mean(), ops.mean());
  }
  return 0;
}
