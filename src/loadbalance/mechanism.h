// Load-balance adaptation vocabulary.
//
// The eight mechanisms of §2.4, in the paper's order of increasing cost.
// Local adaptations (a)-(e) act on the overloaded region and its immediate
// neighbors; remote adaptations (f)-(h) first run a TTL-guided search.  A
// Plan names the chosen mechanism and its operands so the engine executor,
// the protocol executor, the ablation benches, and the logs all speak the
// same language.
#pragma once

#include <array>
#include <cstdint>
#include <numbers>
#include <string_view>

#include "common/ids.h"

namespace geogrid::loadbalance {

enum class Mechanism : std::uint8_t {
  kStealSecondary = 0,             ///< (a) steal a neighbor's secondary
  kSwitchPrimary = 1,              ///< (b) switch primaries with a neighbor
  kMergeNeighbor = 2,              ///< (c) merge with a neighbor
  kSplitRegion = 3,                ///< (d) split between equal dual peers
  kSwitchWithNeighborSecondary = 4,///< (e) primary <-> neighbor's secondary
  kStealRemoteSecondary = 5,       ///< (f) steal a remote secondary
  kSwitchWithRemoteSecondary = 6,  ///< (g) primary <-> remote secondary
  kSwitchWithRemotePrimary = 7,    ///< (h) primary <-> remote primary
};

inline constexpr std::size_t kMechanismCount = 8;

std::string_view mechanism_name(Mechanism m);

/// Letter used in the paper's Figure 4 ('a'..'h').
constexpr char mechanism_letter(Mechanism m) noexcept {
  return static_cast<char>('a' + static_cast<int>(m));
}

constexpr bool is_remote(Mechanism m) noexcept {
  return static_cast<int>(m) >= static_cast<int>(Mechanism::kStealRemoteSecondary);
}

/// One planned adaptation.
struct Plan {
  Mechanism mechanism = Mechanism::kStealSecondary;
  RegionId subject{};   ///< the overloaded region
  RegionId partner{};   ///< neighbor/remote region involved (invalid for (d))
  bool valid = false;   ///< false = no applicable mechanism found

  explicit operator bool() const noexcept { return valid; }
};

/// Tunables of the adaptation process.
struct PlannerConfig {
  /// Trigger: adapt when own index > trigger_ratio * min neighbor index.
  double trigger_ratio = std::numbers::sqrt2;
  /// TTL of the guided search for remote candidates (graph rings searched:
  /// 2..search_ttl; ring 1 is covered by the local mechanisms).
  int search_ttl = 3;
  /// Per-mechanism enable switches (for the ablation benches).
  std::array<bool, kMechanismCount> enabled{true, true, true, true,
                                            true, true, true, true};

  bool mechanism_enabled(Mechanism m) const noexcept {
    return enabled[static_cast<std::size_t>(m)];
  }
};

}  // namespace geogrid::loadbalance
