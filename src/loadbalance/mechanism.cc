#include "loadbalance/mechanism.h"

namespace geogrid::loadbalance {

std::string_view mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kStealSecondary: return "steal-secondary";
    case Mechanism::kSwitchPrimary: return "switch-primary";
    case Mechanism::kMergeNeighbor: return "merge-neighbor";
    case Mechanism::kSplitRegion: return "split-region";
    case Mechanism::kSwitchWithNeighborSecondary:
      return "switch-with-neighbor-secondary";
    case Mechanism::kStealRemoteSecondary: return "steal-remote-secondary";
    case Mechanism::kSwitchWithRemoteSecondary:
      return "switch-with-remote-secondary";
    case Mechanism::kSwitchWithRemotePrimary:
      return "switch-with-remote-primary";
  }
  return "unknown";
}

}  // namespace geogrid::loadbalance
