#include "loadbalance/workload_index.h"

#include <algorithm>
#include <limits>

namespace geogrid::loadbalance {

using overlay::LoadFn;
using overlay::Partition;

double node_load(const Partition& partition, const LoadFn& load_of,
                 NodeId node) {
  double total = 0.0;
  for (RegionId rid : partition.primary_regions(node)) total += load_of(rid);
  return total;
}

double node_index(const Partition& partition, const LoadFn& load_of,
                  NodeId node) {
  const double capacity = partition.node(node).capacity;
  const double load = node_load(partition, load_of, node);
  return capacity > 0.0 ? load / capacity : load;
}

double region_index(const Partition& partition, const LoadFn& load_of,
                    RegionId region) {
  const auto& r = partition.region(region);
  const double capacity = partition.node(r.primary).capacity;
  const double load = load_of(region);
  return capacity > 0.0 ? load / capacity : load;
}

std::vector<NodeId> neighbor_owners(const Partition& partition, NodeId node) {
  std::vector<NodeId> owners;
  for (RegionId rid : partition.primary_regions(node)) {
    for (RegionId n : partition.neighbors(rid)) {
      const NodeId owner = partition.region(n).primary;
      if (owner == node) continue;
      if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
        owners.push_back(owner);
      }
    }
  }
  return owners;
}

double min_neighbor_index(const Partition& partition, const LoadFn& load_of,
                          NodeId node) {
  double lowest = std::numeric_limits<double>::infinity();
  for (NodeId owner : neighbor_owners(partition, node)) {
    lowest = std::min(lowest, node_index(partition, load_of, owner));
  }
  return lowest;
}

bool should_adapt(const Partition& partition, const LoadFn& load_of,
                  NodeId node, double trigger_ratio) {
  const double own = node_index(partition, load_of, node);
  if (own <= 0.0) return false;
  const double lowest = min_neighbor_index(partition, load_of, node);
  if (!std::isfinite(lowest)) return false;
  return own > trigger_ratio * lowest;
}

std::vector<double> all_node_indexes(const Partition& partition,
                                     const LoadFn& load_of) {
  std::vector<double> indexes;
  indexes.reserve(partition.node_count());
  for (const auto& [id, info] : partition.nodes()) {
    indexes.push_back(node_index(partition, load_of, id));
  }
  return indexes;
}

}  // namespace geogrid::loadbalance
