// Snapshot-based adaptation planning.
//
// The mechanism-selection rules of §2.4, expressed purely over
// RegionSnapshots — the information a real node actually holds (its own
// region plus gossiped neighbor snapshots, plus TTL-search replies for the
// remote mechanisms).  Protocol-mode nodes call these directly; the
// engine-mode planner (planner.h) builds snapshots from the authoritative
// Partition and delegates here, so both modes choose identical adaptations
// given identical knowledge.
#pragma once

#include <span>

#include "loadbalance/mechanism.h"
#include "net/node_info.h"

namespace geogrid::loadbalance {

/// Plans the cheapest applicable *local* mechanism (a)-(e) for `subject`
/// given its neighbor snapshots.  Returns an invalid Plan when none apply.
Plan plan_local(const net::RegionSnapshot& subject,
                std::span<const net::RegionSnapshot> neighbors,
                const PlannerConfig& config);

/// Plans the cheapest applicable *remote* mechanism (f)-(h) for `subject`
/// given TTL-search candidate snapshots (graph rings 2..ttl).
Plan plan_remote(const net::RegionSnapshot& subject,
                 std::span<const net::RegionSnapshot> candidates,
                 const PlannerConfig& config);

/// The trigger rule over snapshots: `own_index` exceeds trigger_ratio times
/// the lowest neighbor workload index.  Returns false when there are no
/// neighbors.
bool should_adapt_snapshots(double own_index,
                            std::span<const net::RegionSnapshot> neighbors,
                            double trigger_ratio);

}  // namespace geogrid::loadbalance
