// Adaptation driver.
//
// The paper evaluates adaptation in "rounds": every node periodically
// compares its workload index against its neighbors and, when the sqrt(2)
// trigger fires, performs the cheapest applicable mechanism.  The driver
// realizes both x-axes of the evaluation: run_round() gives Figures 7/8
// (metrics per round of adaptation) and step() gives Figures 9/10 (metrics
// per individual adaptation operation).
#pragma once

#include <array>
#include <optional>

#include "loadbalance/mechanism.h"
#include "loadbalance/planner.h"
#include "overlay/partition.h"
#include "overlay/snapshot.h"

namespace geogrid::loadbalance {

/// Counters for adaptations performed.
struct AdaptationStats {
  std::size_t triggered = 0;  ///< trigger evaluations that fired
  std::size_t executed = 0;   ///< plans successfully executed
  std::array<std::size_t, kMechanismCount> per_mechanism{};

  void account(const Plan& plan) {
    ++executed;
    ++per_mechanism[static_cast<std::size_t>(plan.mechanism)];
  }
  void merge(const AdaptationStats& other) {
    triggered += other.triggered;
    executed += other.executed;
    for (std::size_t i = 0; i < per_mechanism.size(); ++i) {
      per_mechanism[i] += other.per_mechanism[i];
    }
  }
};

class AdaptationDriver {
 public:
  AdaptationDriver(overlay::Partition& partition, overlay::LoadFn load_of,
                   PlannerConfig config)
      : partition_(partition), load_of_(std::move(load_of)),
        config_(config) {}

  /// One round: every node, visited in descending workload-index order (as
  /// measured at round start), re-checks its trigger and performs at most
  /// one adaptation.  Returns the round's counters.
  AdaptationStats run_round();

  /// One adaptation: the most overloaded node whose trigger fires and that
  /// has an applicable mechanism executes it.  Returns the plan, or nullopt
  /// when the system is stable (no trigger fires or no mechanism applies).
  std::optional<Plan> step();

  const AdaptationStats& total() const noexcept { return total_; }
  const PlannerConfig& config() const noexcept { return config_; }

 private:
  /// The node's most loaded primary region (subject of its adaptation).
  RegionId hottest_region(NodeId node) const;

  overlay::Partition& partition_;
  overlay::LoadFn load_of_;
  PlannerConfig config_;
  AdaptationStats total_;
};

}  // namespace geogrid::loadbalance
