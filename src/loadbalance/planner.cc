#include "loadbalance/planner.h"

#include <cassert>
#include <vector>

#include "loadbalance/snapshot_planner.h"
#include "loadbalance/ttl_search.h"

namespace geogrid::loadbalance {

using overlay::LoadFn;
using overlay::Partition;
using overlay::Region;

Plan plan_adaptation(const Partition& partition, const LoadFn& load_of,
                     RegionId subject, const PlannerConfig& config) {
  assert(partition.has_region(subject));

  // Engine mode builds the same snapshots a protocol node would hold and
  // delegates to the pure snapshot planner, so both modes decide alike.
  const net::RegionSnapshot subject_snap =
      overlay::make_snapshot(partition, subject, load_of);
  const std::vector<net::RegionSnapshot> neighbor_snaps =
      overlay::neighbor_snapshots(partition, subject, load_of);

  if (const Plan local = plan_local(subject_snap, neighbor_snaps, config)) {
    return local;
  }

  const bool any_remote =
      config.mechanism_enabled(Mechanism::kStealRemoteSecondary) ||
      config.mechanism_enabled(Mechanism::kSwitchWithRemoteSecondary) ||
      config.mechanism_enabled(Mechanism::kSwitchWithRemotePrimary);
  if (!any_remote) return Plan{};

  std::vector<net::RegionSnapshot> remote_snaps;
  for (RegionId rid :
       remote_regions(partition, subject, config.search_ttl)) {
    remote_snaps.push_back(overlay::make_snapshot(partition, rid, load_of));
  }
  return plan_remote(subject_snap, remote_snaps, config);
}

bool execute_plan(Partition& partition, const Plan& plan) {
  if (!plan.valid || !partition.has_region(plan.subject)) return false;
  const Region& subject = partition.region(plan.subject);

  switch (plan.mechanism) {
    case Mechanism::kStealSecondary:
    case Mechanism::kStealRemoteSecondary: {
      if (subject.full()) return false;
      if (!partition.has_region(plan.partner)) return false;
      const Region& donor = partition.region(plan.partner);
      if (!donor.full()) return false;
      const NodeId stolen = *donor.secondary;
      partition.clear_secondary(plan.partner);
      partition.set_secondary(plan.subject, stolen);
      // The stolen (stronger) node takes the primary seat; the overloaded
      // primary resigns to secondary.
      partition.swap_roles(plan.subject);
      return true;
    }
    case Mechanism::kSwitchPrimary:
    case Mechanism::kSwitchWithRemotePrimary: {
      if (!partition.has_region(plan.partner)) return false;
      partition.swap_primaries(plan.subject, plan.partner);
      return true;
    }
    case Mechanism::kMergeNeighbor: {
      if (!partition.has_region(plan.partner)) return false;
      const Region& other = partition.region(plan.partner);
      if (subject.full() || other.full()) return false;
      if (!subject.rect.mergeable(other.rect)) return false;
      const double cap_subject = partition.node(subject.primary).capacity;
      const double cap_other = partition.node(other.primary).capacity;
      if (cap_other > cap_subject) {
        const NodeId weaker = subject.primary;
        partition.merge(plan.partner, plan.subject);
        partition.set_secondary(plan.partner, weaker);
      } else {
        const NodeId weaker = other.primary;
        partition.merge(plan.subject, plan.partner);
        partition.set_secondary(plan.subject, weaker);
      }
      return true;
    }
    case Mechanism::kSplitRegion: {
      if (!subject.full()) return false;
      const NodeId secondary = *subject.secondary;
      partition.clear_secondary(plan.subject);
      partition.split(plan.subject, secondary);
      return true;
    }
    case Mechanism::kSwitchWithNeighborSecondary:
    case Mechanism::kSwitchWithRemoteSecondary: {
      if (!partition.has_region(plan.partner)) return false;
      if (!partition.region(plan.partner).full()) return false;
      partition.swap_primary_with_secondary(plan.subject, plan.partner);
      return true;
    }
  }
  return false;
}

}  // namespace geogrid::loadbalance
