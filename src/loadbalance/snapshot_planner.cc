#include "loadbalance/snapshot_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "overlay/region.h"

namespace geogrid::loadbalance {
namespace {

/// Pairwise max workload index after swapping primaries across loads
/// (la, lb) and capacities (ca, cb).
double swapped_max_index(double la, double lb, double ca, double cb) {
  return std::max(la / cb, lb / ca);
}

/// Keeps the candidate with the smallest key; ties break on region id.
struct Best {
  RegionId region = kInvalidRegion;
  double key = std::numeric_limits<double>::infinity();

  void offer(RegionId rid, double key_value) {
    if (key_value < key - 1e-12 ||
        (std::abs(key_value - key) <= 1e-12 &&
         (!region.valid() || rid < region))) {
      key = key_value;
      region = rid;
    }
  }
};

Plan make_plan(Mechanism m, RegionId subject, RegionId partner) {
  Plan plan;
  plan.mechanism = m;
  plan.subject = subject;
  plan.partner = partner;
  plan.valid = true;
  return plan;
}

}  // namespace

Plan plan_local(const net::RegionSnapshot& subject,
                std::span<const net::RegionSnapshot> neighbors,
                const PlannerConfig& config) {
  const double cap_primary = subject.primary.capacity;
  const double subject_load = subject.load;
  const double subject_index =
      cap_primary > 0.0 ? subject_load / cap_primary : subject_load;

  // (a) Steal Secondary Owner -- subject half-full; qualifying neighbor
  // with the lowest workload index donates its secondary.
  if (config.mechanism_enabled(Mechanism::kStealSecondary) &&
      !subject.full()) {
    Best best;
    for (const auto& nb : neighbors) {
      if (!nb.full()) continue;
      if (nb.secondary->capacity <= cap_primary) continue;
      best.offer(nb.region, nb.workload_index);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kStealSecondary, subject.region,
                       best.region);
    }
  }

  // (b) Switch Primary Owners -- stronger neighbor primary, strict
  // improvement of the pairwise max index.
  if (config.mechanism_enabled(Mechanism::kSwitchPrimary)) {
    Best best;
    for (const auto& nb : neighbors) {
      const double cap_other = nb.primary.capacity;
      if (cap_other <= cap_primary) continue;
      const double old_max = std::max(subject_index, nb.workload_index);
      const double new_max =
          swapped_max_index(subject_load, nb.load, cap_primary, cap_other);
      if (new_max < old_max - 1e-12) best.offer(nb.region, new_max);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kSwitchPrimary, subject.region, best.region);
    }
  }

  // (c) Merge with a Neighbor -- both half-full, rectangular union, merged
  // index below the average of the two.
  if (config.mechanism_enabled(Mechanism::kMergeNeighbor) && !subject.full()) {
    Best best;
    for (const auto& nb : neighbors) {
      if (nb.full()) continue;
      if (!subject.rect.mergeable(nb.rect)) continue;
      const double merged_cap =
          std::max(cap_primary, nb.primary.capacity);
      const double merged_index =
          merged_cap > 0.0 ? (subject_load + nb.load) / merged_cap : 0.0;
      const double average = (subject_index + nb.workload_index) / 2.0;
      if (merged_index < average - 1e-12) best.offer(nb.region, merged_index);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kMergeNeighbor, subject.region, best.region);
    }
  }

  // (d) Split a Region -- full, equal owner capacities, region still
  // large enough to split.
  if (config.mechanism_enabled(Mechanism::kSplitRegion) && subject.full() &&
      overlay::splittable(subject.rect) &&
      subject.secondary->capacity == cap_primary) {
    return make_plan(Mechanism::kSplitRegion, subject.region, kInvalidRegion);
  }

  // (e) Switch Primary with a Neighbor's Secondary -- subject full.
  if (config.mechanism_enabled(Mechanism::kSwitchWithNeighborSecondary) &&
      subject.full()) {
    Best best;
    for (const auto& nb : neighbors) {
      if (!nb.full()) continue;
      const double cap_secondary = nb.secondary->capacity;
      if (cap_secondary <= cap_primary) continue;
      best.offer(nb.region, subject_load / cap_secondary);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kSwitchWithNeighborSecondary,
                       subject.region, best.region);
    }
  }

  return Plan{};
}

Plan plan_remote(const net::RegionSnapshot& subject,
                 std::span<const net::RegionSnapshot> candidates,
                 const PlannerConfig& config) {
  const double cap_primary = subject.primary.capacity;
  const double subject_load = subject.load;
  const double subject_index =
      cap_primary > 0.0 ? subject_load / cap_primary : subject_load;

  // (f) Steal Remote Secondary -- donor full, stronger secondary, less
  // loaded than the subject.
  if (config.mechanism_enabled(Mechanism::kStealRemoteSecondary) &&
      !subject.full()) {
    Best best;
    for (const auto& c : candidates) {
      if (!c.full()) continue;
      if (c.secondary->capacity <= cap_primary) continue;
      if (c.workload_index >= subject_index) continue;
      best.offer(c.region, c.workload_index);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kStealRemoteSecondary, subject.region,
                       best.region);
    }
  }

  // (g) Switch Primary with Remote Secondary.
  if (config.mechanism_enabled(Mechanism::kSwitchWithRemoteSecondary) &&
      subject.full()) {
    Best best;
    for (const auto& c : candidates) {
      if (!c.full()) continue;
      const double cap_secondary = c.secondary->capacity;
      if (cap_secondary <= cap_primary) continue;
      best.offer(c.region, subject_load / cap_secondary);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kSwitchWithRemoteSecondary, subject.region,
                       best.region);
    }
  }

  // (h) Switch Primary with Remote Primary.
  if (config.mechanism_enabled(Mechanism::kSwitchWithRemotePrimary) &&
      subject.full()) {
    Best best;
    for (const auto& c : candidates) {
      const double cap_other = c.primary.capacity;
      if (cap_other <= cap_primary) continue;
      const double old_max = std::max(subject_index, c.workload_index);
      const double new_max =
          swapped_max_index(subject_load, c.load, cap_primary, cap_other);
      if (new_max < old_max - 1e-12) best.offer(c.region, new_max);
    }
    if (best.region.valid()) {
      return make_plan(Mechanism::kSwitchWithRemotePrimary, subject.region,
                       best.region);
    }
  }

  return Plan{};
}

bool should_adapt_snapshots(double own_index,
                            std::span<const net::RegionSnapshot> neighbors,
                            double trigger_ratio) {
  if (own_index <= 0.0 || neighbors.empty()) return false;
  double lowest = std::numeric_limits<double>::infinity();
  for (const auto& nb : neighbors) {
    lowest = std::min(lowest, nb.workload_index);
  }
  return own_index > trigger_ratio * lowest;
}

}  // namespace geogrid::loadbalance
