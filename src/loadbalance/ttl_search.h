// TTL-guided search for remote adaptation candidates.
//
// When a region and all its immediate neighbors are overloaded, GeoGrid
// "runs a Time to Live (TTL) guided search for the remote region whose
// secondary owner has more capacity than the primary owner of the
// overloaded region and is less loaded" (§2.4 f-h).  Engine mode realizes
// the search as a breadth-first walk over the region adjacency graph,
// visiting rings 2..ttl (ring 1 is what the local mechanisms already
// probed); protocol mode floods TtlSearchRequest messages with the same
// ring semantics.
#pragma once

#include <vector>

#include "common/ids.h"
#include "overlay/partition.h"

namespace geogrid::loadbalance {

/// Regions whose graph distance from `origin` is in [2, ttl], in BFS order
/// (ring by ring, ids ascending within a ring for determinism).
std::vector<RegionId> remote_regions(const overlay::Partition& partition,
                                     RegionId origin, int ttl);

}  // namespace geogrid::loadbalance
