// Adaptation planning and execution.
//
// plan_adaptation() evaluates the eight mechanisms of §2.4 for one
// overloaded region in the paper's order of increasing cost and returns the
// first applicable one; execute_plan() applies a plan to the partition via
// the owner-seat mechanics.  Both are deterministic: candidate ties break
// on fixed keys, so a seeded experiment replays exactly.
//
// Applicability rules implemented (letters as in Figure 4):
//  (a) subject half-full; a neighbor's secondary is stronger than the
//      subject's primary; choose the qualifying neighbor with the lowest
//      workload index; the stolen node becomes the subject's primary and
//      the old primary resigns to secondary.
//  (b) a neighbor's primary is stronger than the subject's primary and
//      swapping strictly lowers the pairwise max workload index.
//  (c) subject and a neighbor are geometrically mergeable, both half-full
//      (so no owner loses a seat), and the merged region's index is lower
//      than the average of the two; the stronger primary keeps the merged
//      region, the weaker becomes its secondary.
//  (d) subject full and the two owners have equal capacity: split between
//      them, halving the primary's index.
//  (e) subject full; a neighbor's secondary is stronger than the subject's
//      primary: swap those two seats.
//  (f) like (a) but the donor is found by TTL search (rings 2..ttl) and
//      must be less loaded than the subject.
//  (g) like (e) with a TTL-searched donor.
//  (h) like (b) with a TTL-searched counterpart.
#pragma once

#include <optional>

#include "loadbalance/mechanism.h"
#include "overlay/partition.h"
#include "overlay/snapshot.h"

namespace geogrid::loadbalance {

/// Picks the cheapest applicable mechanism for overloaded region `subject`.
/// Returns an invalid Plan when nothing applies.
Plan plan_adaptation(const overlay::Partition& partition,
                     const overlay::LoadFn& load_of, RegionId subject,
                     const PlannerConfig& config);

/// Applies `plan`; returns false when its preconditions no longer hold
/// (stale plan) in which case the partition is unchanged.
bool execute_plan(overlay::Partition& partition, const Plan& plan);

}  // namespace geogrid::loadbalance
