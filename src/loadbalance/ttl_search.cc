#include "loadbalance/ttl_search.h"

#include <algorithm>
#include <unordered_set>

namespace geogrid::loadbalance {

std::vector<RegionId> remote_regions(const overlay::Partition& partition,
                                     RegionId origin, int ttl) {
  std::vector<RegionId> result;
  if (ttl < 2 || !partition.has_region(origin)) return result;

  std::unordered_set<RegionId> seen{origin};
  std::vector<RegionId> ring{origin};
  for (int depth = 1; depth <= ttl && !ring.empty(); ++depth) {
    std::vector<RegionId> next;
    for (RegionId rid : ring) {
      for (RegionId n : partition.neighbors(rid)) {
        if (seen.insert(n).second) next.push_back(n);
      }
    }
    std::sort(next.begin(), next.end());
    if (depth >= 2) result.insert(result.end(), next.begin(), next.end());
    ring = std::move(next);
  }
  return result;
}

}  // namespace geogrid::loadbalance
