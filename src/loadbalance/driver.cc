#include "loadbalance/driver.h"

#include <algorithm>

#include "loadbalance/workload_index.h"

namespace geogrid::loadbalance {

RegionId AdaptationDriver::hottest_region(NodeId node) const {
  RegionId hottest = kInvalidRegion;
  double max_load = -1.0;
  for (RegionId rid : partition_.primary_regions(node)) {
    const double load = load_of_(rid);
    if (load > max_load || (load == max_load && rid < hottest)) {
      max_load = load;
      hottest = rid;
    }
  }
  return hottest;
}

AdaptationStats AdaptationDriver::run_round() {
  AdaptationStats round;

  // Visit order: descending workload index at round start (the overloaded
  // nodes act first, which is what their shorter trigger timers do in the
  // real system); ids break ties for determinism.
  std::vector<std::pair<double, NodeId>> order;
  order.reserve(partition_.node_count());
  for (const auto& [id, info] : partition_.nodes()) {
    order.emplace_back(node_index(partition_, load_of_, id), id);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  for (const auto& [index_at_start, node] : order) {
    if (!partition_.has_node(node)) continue;  // departed mid-round
    if (!should_adapt(partition_, load_of_, node, config_.trigger_ratio)) {
      continue;
    }
    ++round.triggered;
    const RegionId subject = hottest_region(node);
    if (!subject.valid()) continue;
    const Plan plan =
        plan_adaptation(partition_, load_of_, subject, config_);
    if (plan && execute_plan(partition_, plan)) {
      round.account(plan);
    }
  }

  total_.merge(round);
  return round;
}

std::optional<Plan> AdaptationDriver::step() {
  std::vector<std::pair<double, NodeId>> order;
  order.reserve(partition_.node_count());
  for (const auto& [id, info] : partition_.nodes()) {
    order.emplace_back(node_index(partition_, load_of_, id), id);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  for (const auto& [index, node] : order) {
    if (!should_adapt(partition_, load_of_, node, config_.trigger_ratio)) {
      continue;
    }
    ++total_.triggered;
    const RegionId subject = hottest_region(node);
    if (!subject.valid()) continue;
    const Plan plan =
        plan_adaptation(partition_, load_of_, subject, config_);
    if (plan && execute_plan(partition_, plan)) {
      total_.account(plan);
      return plan;
    }
  }
  return std::nullopt;
}

}  // namespace geogrid::loadbalance
