// Workload index computation.
//
// The workload index of a node is the load it actually carries divided by
// the capacity it dedicates to GeoGrid.  A primary owner carries the full
// load of its regions; a secondary owner carries none until activated.
// The adaptation trigger compares a node's index against the lowest index
// among the owners of adjacent regions (§2.4: "a node starts its load
// balance adaptation process only when its workload index is higher than
// sqrt(2) times of the lowest one among its neighbors").
#pragma once

#include <vector>

#include "common/ids.h"
#include "overlay/partition.h"
#include "overlay/snapshot.h"

namespace geogrid::loadbalance {

/// Load carried by a node: the sum of loads of its primary regions.
double node_load(const overlay::Partition& partition,
                 const overlay::LoadFn& load_of, NodeId node);

/// Workload index of a node: node_load / capacity.
double node_index(const overlay::Partition& partition,
                  const overlay::LoadFn& load_of, NodeId node);

/// Workload index of a region under its current primary owner.
double region_index(const overlay::Partition& partition,
                    const overlay::LoadFn& load_of, RegionId region);

/// Owners of regions adjacent to any region of `node` (primary owners
/// only; each appears once, `node` excluded).
std::vector<NodeId> neighbor_owners(const overlay::Partition& partition,
                                    NodeId node);

/// Lowest workload index among the neighbor owners; +inf when the node has
/// no neighbors (isolated root region).
double min_neighbor_index(const overlay::Partition& partition,
                          const overlay::LoadFn& load_of, NodeId node);

/// The adaptation trigger for `node` under `trigger_ratio`.
bool should_adapt(const overlay::Partition& partition,
                  const overlay::LoadFn& load_of, NodeId node,
                  double trigger_ratio);

/// Workload indexes of every node in the partition (order unspecified);
/// the raw series behind the paper's max/mean/stddev plots.
std::vector<double> all_node_indexes(const overlay::Partition& partition,
                                     const overlay::LoadFn& load_of);

}  // namespace geogrid::loadbalance
