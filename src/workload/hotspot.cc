#include "workload/hotspot.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace geogrid::workload {

HotSpotField::HotSpotField(Options options, Rng& rng)
    : options_(options) {
  assert(options_.cells_x > 0 && options_.cells_y > 0);
  assert(options_.min_radius > 0.0 &&
         options_.max_radius >= options_.min_radius);
  cell_w_ = options_.plane.width / static_cast<double>(options_.cells_x);
  cell_h_ = options_.plane.height / static_cast<double>(options_.cells_y);
  hotspots_.reserve(options_.hotspot_count);
  for (std::size_t i = 0; i < options_.hotspot_count; ++i) {
    hotspots_.push_back(HotSpot{
        Point{rng.uniform(options_.plane.x, options_.plane.right()),
              rng.uniform(options_.plane.y, options_.plane.top())},
        rng.uniform(options_.min_radius, options_.max_radius)});
  }
  rebuild();
}

namespace {

// Reflect at the plane boundary so hot spots stay in the service area.
double reflect(double v, double lo, double hi) {
  while (v < lo || v > hi) {
    if (v < lo) v = lo + (lo - v);
    if (v > hi) v = hi - (v - hi);
  }
  return v;
}

// One hot spot's migration step: random direction, step U(0, 2r).
void step_hotspot(HotSpot& h, Rng& rng, const Rect& plane) {
  const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double step = rng.uniform(0.0, 2.0 * h.radius);
  h.center.x = reflect(h.center.x + step * std::cos(angle), plane.x,
                       plane.right());
  h.center.y = reflect(h.center.y + step * std::sin(angle), plane.y,
                       plane.top());
}

}  // namespace

void HotSpotField::migrate(Rng& rng) {
  for (auto& h : hotspots_) step_hotspot(h, rng, options_.plane);
  rebuild();
}

void HotSpotField::migrate(Rng& rng, std::size_t steps) {
  for (std::size_t i = 0; i < steps; ++i) migrate(rng);
}

void HotSpotField::advance(std::uint64_t seed, std::uint64_t tick) {
  for (std::size_t i = 0; i < hotspots_.size(); ++i) {
    // Key each hot spot's draw stream by (seed, tick, index); the Rng
    // constructor runs the key through SplitMix64, which decorrelates the
    // linear combination into an independent stream per triple.
    Rng rng(seed + tick * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ULL);
    step_hotspot(hotspots_[i], rng, options_.plane);
  }
  rebuild();
}

double HotSpotField::at(const Point& p) const noexcept {
  double v = 0.0;
  for (const auto& h : hotspots_) v += h.intensity_at(p);
  return v;
}

Point HotSpotField::cell_center(std::size_t ix, std::size_t iy) const noexcept {
  return Point{options_.plane.x + (static_cast<double>(ix) + 0.5) * cell_w_,
               options_.plane.y + (static_cast<double>(iy) + 0.5) * cell_h_};
}

double HotSpotField::cell_workload(std::size_t ix, std::size_t iy) const {
  assert(ix < options_.cells_x && iy < options_.cells_y);
  const std::size_t stride = options_.cells_y + 1;
  return prefix_[(ix + 1) * stride + (iy + 1)] -
         prefix_[ix * stride + (iy + 1)] -
         prefix_[(ix + 1) * stride + iy] + prefix_[ix * stride + iy];
}

void HotSpotField::rebuild() {
  const std::size_t nx = options_.cells_x;
  const std::size_t ny = options_.cells_y;
  const std::size_t stride = ny + 1;
  prefix_.assign((nx + 1) * stride, 0.0);
  cell_cdf_.assign(nx * ny, 0.0);
  double cumulative = 0.0;
  const double cell_area = cell_w_ * cell_h_;
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      // Cell workload = field intensity integrated over the cell, so region
      // loads are independent of raster resolution (finer grids refine the
      // same integral instead of inflating sums).
      const double w = at(cell_center(ix, iy)) * cell_area;
      prefix_[(ix + 1) * stride + (iy + 1)] =
          w + prefix_[ix * stride + (iy + 1)] +
          prefix_[(ix + 1) * stride + iy] - prefix_[ix * stride + iy];
      cumulative += w;
      cell_cdf_[ix * ny + iy] = cumulative;
    }
  }
}

double HotSpotField::region_load(const Rect& rect) const noexcept {
  // Cells whose center c satisfies rect.x < c.x <= rect.right() (half-open,
  // matching the region cover test).  Center of cell i is at
  // plane.x + (i + 0.5) * cell_w, so the index window is
  //   i > (rect.x - plane.x)/cell_w - 0.5   and
  //   i <= (rect.right - plane.x)/cell_w - 0.5.
  const auto lo_index = [](double offset, double cell) {
    return static_cast<std::ptrdiff_t>(
        std::floor(offset / cell - 0.5 + 1e-9)) + 1;
  };
  const auto hi_index = [](double offset, double cell) {
    return static_cast<std::ptrdiff_t>(std::floor(offset / cell - 0.5 + 1e-9));
  };
  const std::ptrdiff_t x0 = std::clamp<std::ptrdiff_t>(
      lo_index(rect.x - options_.plane.x, cell_w_), 0,
      static_cast<std::ptrdiff_t>(options_.cells_x));
  const std::ptrdiff_t x1 = std::clamp<std::ptrdiff_t>(
      hi_index(rect.right() - options_.plane.x, cell_w_) + 1, 0,
      static_cast<std::ptrdiff_t>(options_.cells_x));
  const std::ptrdiff_t y0 = std::clamp<std::ptrdiff_t>(
      lo_index(rect.y - options_.plane.y, cell_h_), 0,
      static_cast<std::ptrdiff_t>(options_.cells_y));
  const std::ptrdiff_t y1 = std::clamp<std::ptrdiff_t>(
      hi_index(rect.top() - options_.plane.y, cell_h_) + 1, 0,
      static_cast<std::ptrdiff_t>(options_.cells_y));
  if (x0 >= x1 || y0 >= y1) return 0.0;
  const std::size_t stride = options_.cells_y + 1;
  const auto ux0 = static_cast<std::size_t>(x0);
  const auto ux1 = static_cast<std::size_t>(x1);
  const auto uy0 = static_cast<std::size_t>(y0);
  const auto uy1 = static_cast<std::size_t>(y1);
  return prefix_[ux1 * stride + uy1] - prefix_[ux0 * stride + uy1] -
         prefix_[ux1 * stride + uy0] + prefix_[ux0 * stride + uy0];
}

Point HotSpotField::sample_weighted_point(Rng& rng) const {
  const double total = cell_cdf_.empty() ? 0.0 : cell_cdf_.back();
  const std::size_t ny = options_.cells_y;
  if (total <= 0.0) {
    return Point{rng.uniform(options_.plane.x, options_.plane.right()),
                 rng.uniform(options_.plane.y, options_.plane.top())};
  }
  const double draw = rng.uniform(0.0, total);
  const auto it =
      std::upper_bound(cell_cdf_.begin(), cell_cdf_.end(), draw);
  const auto flat = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cell_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cell_cdf_.size()) - 1));
  const std::size_t ix = flat / ny;
  const std::size_t iy = flat % ny;
  // Uniform point inside the chosen cell.
  return Point{options_.plane.x + (static_cast<double>(ix) + rng.uniform()) * cell_w_,
               options_.plane.y + (static_cast<double>(iy) + rng.uniform()) * cell_h_};
}

}  // namespace geogrid::workload
