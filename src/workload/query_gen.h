// Location-query workload generator.
//
// End-user requests in GeoGrid carry a rectangular spatial area (a circular
// radius-γ query maps to a (x, y, 2γ, 2γ) rectangle).  The generator draws
// query centers proportionally to the hot-spot field — so query traffic
// concentrates where the paper's Super-Bowl-parking narrative says it does —
// with radii drawn from a configurable range, and stamps each query with a
// filter condition drawn from a topic vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "net/messages.h"
#include "workload/hotspot.h"

namespace geogrid::workload {

class QueryGenerator {
 public:
  struct Options {
    double min_radius_miles = 0.25;
    double max_radius_miles = 2.0;
    /// Radius range for standing subscriptions (next_subscription).
    /// Negative = follow the query radii above; pub/sub workloads set
    /// smaller geofences than one-shot queries.
    double sub_min_radius_miles = -1.0;
    double sub_max_radius_miles = -1.0;
    /// Probability that a query ignores the hot spots (uniform background
    /// traffic).
    double background_fraction = 0.1;
    std::vector<std::string> topics = {"traffic", "parking", "gas", "events"};

    /// A workload whose subscriptions track mobile-user presence: every
    /// filter is the presence topic, so each subscription fires when a
    /// user's reported position enters its area.
    static Options presence_tracking() {
      Options o;
      o.topics = {"presence"};
      return o;
    }
  };

  QueryGenerator(const HotSpotField& field, Options options, Rng rng)
      : field_(field), options_(options), rng_(rng) {}

  /// Draws the spatial area of the next query.
  Rect next_area();

  /// Draws the spatial area of the next standing subscription (the
  /// subscription radius range when configured, the query range else).
  Rect next_subscription_area();

  /// Builds a complete LocationQuery issued by `focal`.
  net::LocationQuery next_query(const net::NodeInfo& focal);

  /// Builds a standing subscription (continuous query) for `subscriber`.
  net::Subscribe next_subscription(const net::NodeInfo& subscriber,
                                   double duration_seconds);

  std::uint64_t issued() const noexcept { return next_id_; }

 private:
  Rect area_with(double min_radius, double max_radius);

  const HotSpotField& field_;
  Options options_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
};

}  // namespace geogrid::workload
