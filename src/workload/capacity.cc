#include "workload/capacity.h"

#include <cassert>

namespace geogrid::workload {

CapacityDistribution::CapacityDistribution(std::vector<CapacityTier> tiers)
    : tiers_(std::move(tiers)) {
  assert(!tiers_.empty());
  double total = 0.0;
  for (const auto& t : tiers_) {
    assert(t.probability >= 0.0 && t.capacity > 0.0);
    total += t.probability;
  }
  assert(total > 0.0);
  weights_.reserve(tiers_.size());
  for (auto& t : tiers_) {
    t.probability /= total;
    weights_.push_back(t.probability);
  }
}

CapacityDistribution CapacityDistribution::gnutella() {
  return CapacityDistribution({{1.0, 0.20},
                               {10.0, 0.45},
                               {100.0, 0.30},
                               {1000.0, 0.049},
                               {10000.0, 0.001}});
}

CapacityDistribution CapacityDistribution::homogeneous(double capacity) {
  return CapacityDistribution({{capacity, 1.0}});
}

double CapacityDistribution::sample(Rng& rng) const {
  return tiers_[rng.weighted_index(weights_)].capacity;
}

double CapacityDistribution::mean() const noexcept {
  double m = 0.0;
  for (const auto& t : tiers_) m += t.capacity * t.probability;
  return m;
}

}  // namespace geogrid::workload
