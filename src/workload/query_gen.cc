#include "workload/query_gen.h"

#include <algorithm>

namespace geogrid::workload {

Rect QueryGenerator::next_area() {
  return area_with(options_.min_radius_miles, options_.max_radius_miles);
}

Rect QueryGenerator::next_subscription_area() {
  const double min = options_.sub_min_radius_miles < 0.0
                         ? options_.min_radius_miles
                         : options_.sub_min_radius_miles;
  const double max = options_.sub_max_radius_miles < 0.0
                         ? options_.max_radius_miles
                         : options_.sub_max_radius_miles;
  return area_with(min, max);
}

Rect QueryGenerator::area_with(double min_radius, double max_radius) {
  const Point center = rng_.chance(options_.background_fraction)
                           ? Point{rng_.uniform(field_.plane().x,
                                                field_.plane().right()),
                                   rng_.uniform(field_.plane().y,
                                                field_.plane().top())}
                           : field_.sample_weighted_point(rng_);
  const double radius = rng_.uniform(min_radius, max_radius);
  // Circle of radius γ -> rectangle (x, y, 2γ, 2γ) anchored so the circle
  // center is the rectangle center, clipped to the plane.
  const Rect& plane = field_.plane();
  const double x = std::clamp(center.x - radius, plane.x, plane.right());
  const double y = std::clamp(center.y - radius, plane.y, plane.top());
  const double w = std::min(2.0 * radius, plane.right() - x);
  const double h = std::min(2.0 * radius, plane.top() - y);
  return Rect{x, y, w, h};
}

net::LocationQuery QueryGenerator::next_query(const net::NodeInfo& focal) {
  net::LocationQuery q;
  q.query_id = ++next_id_;
  q.focal = focal;
  q.area = next_area();
  q.filter = options_.topics.empty()
                 ? std::string{}
                 : options_.topics[rng_.uniform_index(options_.topics.size())];
  return q;
}

net::Subscribe QueryGenerator::next_subscription(
    const net::NodeInfo& subscriber, double duration_seconds) {
  net::Subscribe s;
  s.sub_id = ++next_id_;
  s.subscriber = subscriber;
  s.area = next_subscription_area();
  s.filter = options_.topics.empty()
                 ? std::string{}
                 : options_.topics[rng_.uniform_index(options_.topics.size())];
  s.duration = duration_seconds;
  return s;
}

}  // namespace geogrid::workload
