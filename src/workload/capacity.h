// Node capacity model.
//
// The paper draws proxy capacities from "a skewed distribution based on a
// measurement study of Gnutella P2P network" (Saroiu et al., MMCN'02).  The
// standard discretization of that measurement — used by Gia, Chord load
// studies and others — puts peers in decade-wide bandwidth tiers spanning
// five orders of magnitude.  CapacityDistribution is that tiered PMF, fully
// configurable; `gnutella()` is the default used throughout the evaluation.
#pragma once

#include <vector>

#include "common/rng.h"

namespace geogrid::workload {

/// One capacity tier: a capacity value and its probability mass.
struct CapacityTier {
  double capacity = 1.0;
  double probability = 1.0;
};

/// Discrete skewed capacity distribution.
class CapacityDistribution {
 public:
  /// Builds from tiers; probabilities are normalized to sum to one.
  /// Precondition: at least one tier, all masses >= 0, sum > 0.
  explicit CapacityDistribution(std::vector<CapacityTier> tiers);

  /// Gnutella-derived default: tiers {1, 10, 100, 1000, 10000} with masses
  /// {20%, 45%, 30%, 4.9%, 0.1%}.
  static CapacityDistribution gnutella();

  /// Degenerate distribution (homogeneous capacities) for ablations.
  static CapacityDistribution homogeneous(double capacity = 1.0);

  double sample(Rng& rng) const;

  const std::vector<CapacityTier>& tiers() const noexcept { return tiers_; }

  /// Expected capacity.
  double mean() const noexcept;

 private:
  std::vector<CapacityTier> tiers_;
  std::vector<double> weights_;
};

}  // namespace geogrid::workload
