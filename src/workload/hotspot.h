// Hot-spot workload field.
//
// The paper's workload model (§3.1): the plane is rasterized into cells;
// each hot spot is a circle whose center cell has normalized workload 1 and
// whose border cells have workload 0, with linear falloff 1 - d/r in
// between.  Hot spots start with a random radius in [0.1, 10] miles and, at
// the end of every epoch, migrate along a random direction with a step size
// uniform in (0, 2r).  A region's load is the sum of the workloads of the
// cells it covers; a node's workload index is its regions' load divided by
// its capacity.
//
// The field keeps a summed-area table over the raster so region loads are
// O(1) per query — the adaptation planner evaluates many candidate regions
// per round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace geogrid::workload {

/// One circular hot spot.
struct HotSpot {
  Point center{};
  double radius = 1.0;

  /// Normalized workload contribution at `p`: 1 at the center, 0 at and
  /// beyond the border, linear in between.
  double intensity_at(const Point& p) const noexcept {
    const double d = distance(center, p);
    return d >= radius ? 0.0 : 1.0 - d / radius;
  }
};

/// The rasterized, multi-hot-spot workload field.
class HotSpotField {
 public:
  struct Options {
    Rect plane{0.0, 0.0, 64.0, 64.0};  ///< the paper's 64 x 64 mile area
    std::size_t cells_x = 256;
    std::size_t cells_y = 256;
    std::size_t hotspot_count = 8;
    double min_radius = 0.1;  ///< miles, paper's lower bound
    double max_radius = 10.0; ///< miles, paper's upper bound
  };

  /// Creates `hotspot_count` hot spots at uniform random centers with
  /// radius U(min_radius, max_radius) and rasterizes the field.
  HotSpotField(Options options, Rng& rng);

  /// Migrates every hot spot one epoch: random direction, step U(0, 2r),
  /// reflected at the plane boundary; then re-rasterizes.
  void migrate(Rng& rng);

  /// Migrates `steps` epochs at once (the paper's moving-hot-spot scenario
  /// advances hot spots 4-10 steps per adaptation round).
  void migrate(Rng& rng, std::size_t steps);

  /// Deterministic replayable migration: one epoch whose direction and step
  /// for hot spot i are a pure function of (seed, tick, i), independent of
  /// every other draw in the program.  Two fields with equal hot spots that
  /// advance through the same (seed, tick) sequence stay bit-identical —
  /// which is what lets an adaptation harness drive a live directory and a
  /// never-adapted reference from the same workload without sharing an Rng
  /// whose consumption order differs between the two.
  void advance(std::uint64_t seed, std::uint64_t tick);

  /// Field value at a point (sum over hot spots, no rasterization).
  double at(const Point& p) const noexcept;

  /// Workload of one raster cell: the field intensity at the cell center
  /// times the cell area (i.e. the integral of the field over the cell),
  /// so workloads are independent of raster resolution.
  double cell_workload(std::size_t ix, std::size_t iy) const;

  /// Sum of cell workloads for cells whose centers the rect covers
  /// (half-open cover, matching region semantics) — the integral of the
  /// hot-spot field over the region. O(1) via prefix sums.
  double region_load(const Rect& rect) const noexcept;

  /// Total workload over the whole plane.
  double total_load() const noexcept { return region_load(options_.plane); }

  /// Samples a point with probability proportional to cell workload; falls
  /// back to uniform when the field is everywhere zero.  Used by query
  /// generators so query traffic concentrates on hot spots.
  Point sample_weighted_point(Rng& rng) const;

  const std::vector<HotSpot>& hotspots() const noexcept { return hotspots_; }
  std::vector<HotSpot>& mutable_hotspots() noexcept { return hotspots_; }
  const Options& options() const noexcept { return options_; }
  const Rect& plane() const noexcept { return options_.plane; }

  /// Re-rasterizes after external mutation of the hot spots.
  void rebuild();

 private:
  Point cell_center(std::size_t ix, std::size_t iy) const noexcept;

  Options options_;
  std::vector<HotSpot> hotspots_;
  /// prefix_[(ix+1) * (cells_y+1) + (iy+1)] = sum of cell workloads with
  /// index <= (ix, iy) in both dimensions.
  std::vector<double> prefix_;
  std::vector<double> cell_cdf_;  ///< for weighted point sampling
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
};

}  // namespace geogrid::workload
