#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mobility/batcher.h"
#include "net/framing.h"

namespace geogrid::serve {

namespace {

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Readiness backend: identical add/mod/del/wait semantics over epoll or
/// poll(2), chosen at runtime so both paths stay tested.  The poll backend
/// rebuilds its pollfd array per wait — O(connections), fine for the
/// portable fallback; the epoll backend is the serving configuration.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  explicit Poller(bool use_poll) : use_poll_(use_poll) {
    if (!use_poll_) {
      epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
      if (epfd_ < 0) throw std::runtime_error("epoll_create1 failed");
    }
  }
  ~Poller() {
    if (epfd_ >= 0) ::close(epfd_);
  }
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, bool want_read, bool want_write) {
    if (use_poll_) {
      interest_[fd] = events_of(want_read, want_write);
      return;
    }
    epoll_event ev{};
    ev.events = epoll_events_of(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void mod(int fd, bool want_read, bool want_write) {
    if (use_poll_) {
      interest_[fd] = events_of(want_read, want_write);
      return;
    }
    epoll_event ev{};
    ev.events = epoll_events_of(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void del(int fd) {
    if (use_poll_) {
      interest_.erase(fd);
      return;
    }
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  /// Fills `out` with ready fds; returns their count (0 on timeout).
  int wait(std::vector<Event>& out, int timeout_ms) {
    out.clear();
    if (use_poll_) {
      pfds_.clear();
      for (const auto& [fd, ev] : interest_) {
        pfds_.push_back(pollfd{fd, ev, 0});
      }
      const int n = ::poll(pfds_.data(),
                           static_cast<nfds_t>(pfds_.size()), timeout_ms);
      if (n <= 0) return 0;
      for (const pollfd& p : pfds_) {
        if (p.revents == 0) continue;
        Event e;
        e.fd = p.fd;
        e.readable = (p.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
        e.writable = (p.revents & POLLOUT) != 0;
        e.hangup = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out.push_back(e);
      }
      return static_cast<int>(out.size());
    }
    eevents_.resize(256);
    const int n =
        ::epoll_wait(epfd_, eevents_.data(),
                     static_cast<int>(eevents_.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = eevents_[static_cast<std::size_t>(i)].data.fd;
      const auto evs = eevents_[static_cast<std::size_t>(i)].events;
      e.readable = (evs & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
      e.writable = (evs & EPOLLOUT) != 0;
      e.hangup = (evs & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return n < 0 ? 0 : n;
  }

 private:
  static short events_of(bool r, bool w) {
    short ev = 0;
    if (r) ev |= POLLIN;
    if (w) ev |= POLLOUT;
    return ev;
  }
  static std::uint32_t epoll_events_of(bool r, bool w) {
    std::uint32_t ev = 0;
    if (r) ev |= EPOLLIN;
    if (w) ev |= EPOLLOUT;
    return ev;
  }

  bool use_poll_;
  int epfd_ = -1;
  std::unordered_map<int, short> interest_;  // poll backend
  std::vector<pollfd> pfds_;
  std::vector<epoll_event> eevents_;
};

}  // namespace

std::string friend_filter(UserId user) {
  return "friend:" + std::to_string(user.value);
}

std::string geofence_filter(std::uint64_t sub_id) {
  return "geofence:" + std::to_string(sub_id);
}

std::string range_filter(std::uint64_t sub_id) {
  return "range:" + std::to_string(sub_id);
}

SubscriptionSpec subscription_spec(const net::Subscribe& msg) {
  SubscriptionSpec spec;
  if (msg.filter.starts_with("friend:")) {
    spec.kind = pubsub::SubKind::kFriend;
    std::uint32_t uid = kInvalidUser.value;
    const char* first = msg.filter.data() + 7;
    const char* last = msg.filter.data() + msg.filter.size();
    std::from_chars(first, last, uid);
    spec.friend_user = UserId{uid};
  } else if (msg.filter.starts_with("geofence")) {
    spec.kind = pubsub::SubKind::kGeofence;
  } else {
    spec.kind = pubsub::SubKind::kRange;
  }
  return spec;
}

struct Server::Impl {
  enum class ReplyStyle : std::uint8_t { kLocate, kPayload };
  enum class FlushReason : std::uint8_t { kSize, kDeadline, kForced };

  struct Conn {
    int fd = -1;
    std::uint64_t serial = 0;
    net::FrameDecoder decoder;
    std::vector<std::byte> out;
    std::size_t out_pos = 0;
    bool want_read = true;
    bool want_write = false;
    bool gated_backpressure = false;
    bool gated_outbuf = false;
    bool closing = false;
    bool is_updater = false;  ///< has ever sent a LocationUpdate
    std::vector<std::uint64_t> sub_ids;
  };

  struct PendingAck {
    std::uint64_t serial = 0;
    UserId user{};
    std::uint64_t seq = 0;
    Clock::time_point arrived{};
  };

  struct PendingReply {
    std::uint64_t serial = 0;
    std::uint64_t id = 0;
    ReplyStyle style = ReplyStyle::kLocate;
    net::MsgType req_type = net::MsgType::kLocateRequest;
    UserId user{};  ///< locate only: echoed in the reply
    Clock::time_point arrived{};
  };

  Impl(ServerEngines engines, const core::ServeOptions& o)
      : opt(o),
        eng(engines),
        sink(engines.directory,
             mobility::IngestSink::Options{opt.ingest_flush_records}),
        batcher(engines.queries,
                mobility::QueryBatcher::Options{opt.query_flush_requests}) {}

  core::ServeOptions opt;
  ServerEngines eng;
  mobility::IngestSink sink;
  mobility::QueryBatcher batcher;

  int listen_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  std::uint16_t bound_port = 0;
  std::unique_ptr<Poller> poller;
  std::thread thread;
  std::atomic<bool> stop_flag{false};
  std::atomic<bool> is_running{false};
  std::atomic<std::size_t> live_conns{0};

  std::unordered_map<std::uint64_t, Conn> conns;     ///< by serial
  std::unordered_map<int, std::uint64_t> by_fd;      ///< fd -> serial
  std::unordered_map<std::uint64_t, std::uint64_t> sub_owner;  ///< sub -> serial
  std::uint64_t next_serial = 1;

  std::vector<PendingAck> pending_acks;
  std::deque<PendingReply> pending_replies;
  Clock::time_point ingest_deadline{};
  std::vector<std::uint64_t> to_close;

  /// Shared with reader threads; the loop folds its per-cycle deltas and
  /// latency samples in under one lock per cycle.
  mutable std::mutex stats_mu;
  Counters counters;
  std::array<metrics::LatencyHistogram, net::kMsgTypeSlots> hists{};

  /// Loop-local staging folded at cycle end.
  Counters delta{};
  std::vector<std::pair<net::MsgType, double>> samples;

  // ---- lifecycle -------------------------------------------------------

  void start() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) throw std::runtime_error("socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt.port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("bind() failed: " +
                               std::string(std::strerror(errno)));
    }
    if (::listen(listen_fd, static_cast<int>(opt.listen_backlog)) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("listen() failed");
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port = ntohs(bound.sin_port);

    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("pipe2() failed");
    }
    wake_r = pipefd[0];
    wake_w = pipefd[1];

    poller = std::make_unique<Poller>(opt.use_poll);
    poller->add(listen_fd, /*read=*/true, /*write=*/false);
    poller->add(wake_r, /*read=*/true, /*write=*/false);

    stop_flag.store(false, std::memory_order_relaxed);
    is_running.store(true, std::memory_order_release);
    thread = std::thread([this] { loop(); });
  }

  void stop() {
    if (!is_running.load(std::memory_order_acquire) && !thread.joinable()) {
      return;
    }
    stop_flag.store(true, std::memory_order_relaxed);
    if (wake_w >= 0) {
      const char b = 'x';
      [[maybe_unused]] ssize_t n = ::write(wake_w, &b, 1);
    }
    if (thread.joinable()) thread.join();
    is_running.store(false, std::memory_order_release);
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
    wake_r = wake_w = -1;
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    poller.reset();
  }

  ~Impl() { stop(); }

  // ---- event loop ------------------------------------------------------

  void loop() {
    std::vector<Poller::Event> events;
    while (!stop_flag.load(std::memory_order_relaxed)) {
      poller->wait(events, wait_timeout_ms());
      for (const Poller::Event& ev : events) {
        if (ev.fd == listen_fd) {
          accept_all();
          continue;
        }
        if (ev.fd == wake_r) {
          char buf[64];
          while (::read(wake_r, buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        auto it = by_fd.find(ev.fd);
        if (it == by_fd.end()) continue;  // closed earlier this batch
        Conn& c = conns.at(it->second);
        if (ev.writable && !c.closing) drain_out(c);
        if ((ev.readable || ev.hangup) && !c.closing) read_conn(c);
        if (c.closing) to_close.push_back(c.serial);
      }
      end_cycle();
    }
    // Loop thread owns the connection table: tear it down here.
    to_close.clear();
    for (auto& [serial, c] : conns) {
      ::close(c.fd);
    }
    conns.clear();
    by_fd.clear();
    sub_owner.clear();
    live_conns.store(0, std::memory_order_relaxed);
  }

  int wait_timeout_ms() const {
    if (sink.pending() == 0) return -1;
    const auto now = Clock::now();
    if (now >= ingest_deadline) return 0;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        ingest_deadline - now)
                        .count();
    return static_cast<int>(ms) + 1;
  }

  void accept_all() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const std::uint64_t serial = next_serial++;
      Conn c;
      c.fd = fd;
      c.serial = serial;
      c.decoder = net::FrameDecoder(
          net::FrameDecoder::Options{opt.max_frame_bytes});
      conns.emplace(serial, std::move(c));
      by_fd.emplace(fd, serial);
      poller->add(fd, /*read=*/true, /*write=*/false);
      live_conns.fetch_add(1, std::memory_order_relaxed);
      delta.accepted += 1;
    }
  }

  void close_conn(std::uint64_t serial) {
    auto it = conns.find(serial);
    if (it == conns.end()) return;
    Conn& c = it->second;
    for (std::uint64_t sub : c.sub_ids) {
      eng.subscriptions.unsubscribe(sub);
      sub_owner.erase(sub);
    }
    poller->del(c.fd);
    by_fd.erase(c.fd);
    ::close(c.fd);
    conns.erase(it);
    live_conns.fetch_sub(1, std::memory_order_relaxed);
    delta.closed += 1;
  }

  void update_interest(Conn& c) {
    const bool want_read =
        !c.closing && !c.gated_backpressure && !c.gated_outbuf;
    const bool want_write = !c.closing && c.out_pos < c.out.size();
    if (want_read == c.want_read && want_write == c.want_write) return;
    c.want_read = want_read;
    c.want_write = want_write;
    poller->mod(c.fd, want_read, want_write);
  }

  // ---- reading ---------------------------------------------------------

  void read_conn(Conn& c) {
    std::byte buf[65536];
    while (!c.closing) {
      // Backpressure: a staged-ingest queue past the watermark means the
      // directory is the bottleneck; stop consuming from the writers that
      // feed it and let TCP flow control push back.  Re-opened at the
      // next ingest flush.
      if (c.is_updater && sink.pending() >= opt.backpressure_records &&
          !c.gated_backpressure) {
        c.gated_backpressure = true;
        delta.backpressure_gates += 1;
        update_interest(c);
        return;
      }
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        const auto arrived = Clock::now();
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        drain_frames(c, arrived);
        if (static_cast<std::size_t>(n) < sizeof(buf)) return;
        continue;
      }
      if (n == 0) {  // orderly peer shutdown
        c.closing = true;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c.closing = true;
      return;
    }
  }

  void drain_frames(Conn& c, Clock::time_point arrived) {
    while (!c.closing) {
      net::FrameDecoder::Result r = c.decoder.next();
      if (r.status == net::FrameDecoder::Status::kNeedMore) return;
      if (r.status == net::FrameDecoder::Status::kError) {
        delta.malformed_frames += 1;
        c.closing = true;
        return;
      }
      delta.frames_in += 1;
      handle_message(c, *r.message, arrived);
    }
  }

  void handle_message(Conn& c, const net::Message& m,
                      Clock::time_point arrived) {
    if (const auto* upd = std::get_if<net::LocationUpdate>(&m)) {
      c.is_updater = true;
      if (sink.pending() == 0) {
        ingest_deadline =
            arrived + std::chrono::milliseconds(opt.flush_deadline_ms);
      }
      // The wire carries no timestamp; stamp 0.0 so the stored bytes are a
      // pure function of the message stream (the byte-identity contract).
      sink.add(mobility::LocationRecord{upd->user, upd->location, upd->seq,
                                        0.0});
      pending_acks.push_back(PendingAck{c.serial, upd->user, upd->seq,
                                        arrived});
      delta.updates_in += 1;
      return;
    }
    if (const auto* loc = std::get_if<net::LocateRequest>(&m)) {
      delta.locates_in += 1;
      stage_query(c, mobility::Query::locate(loc->user), loc->request_id,
                  ReplyStyle::kLocate, net::MsgType::kLocateRequest,
                  loc->user, arrived);
      return;
    }
    if (const auto* rq = std::get_if<net::LocationQuery>(&m)) {
      delta.ranges_in += 1;
      stage_query(c, mobility::Query::range(rq->area), rq->query_id,
                  ReplyStyle::kPayload, net::MsgType::kLocationQuery,
                  UserId{}, arrived);
      return;
    }
    if (const auto* nr = std::get_if<net::NearestRequest>(&m)) {
      delta.nearests_in += 1;
      stage_query(c, mobility::Query::nearest(nr->center, nr->k),
                  nr->query_id, ReplyStyle::kPayload,
                  net::MsgType::kNearestRequest, UserId{}, arrived);
      return;
    }
    if (const auto* sub = std::get_if<net::Subscribe>(&m)) {
      delta.subscribes_in += 1;
      const SubscriptionSpec spec = subscription_spec(*sub);
      if (spec.kind == pubsub::SubKind::kFriend) {
        eng.subscriptions.subscribe_friend(*sub, spec.friend_user);
      } else {
        eng.subscriptions.subscribe(*sub, spec.kind);
      }
      sub_owner[sub->sub_id] = c.serial;
      c.sub_ids.push_back(sub->sub_id);
      // Keep the index grid pitch tracking the subscription population
      // (log-many rebuilds, geometric total cost); never changes which
      // notifications match, only how fast matching runs.
      eng.subscriptions.refresh();
      net::SubscribeAck ack;
      ack.sub_id = sub->sub_id;
      ack.region = kInvalidRegion;
      queue(c, net::Message{ack});
      samples.emplace_back(net::MsgType::kSubscribe,
                           micros_between(arrived, Clock::now()));
      return;
    }
    if (const auto* unsub = std::get_if<net::Unsubscribe>(&m)) {
      delta.unsubscribes_in += 1;
      eng.subscriptions.unsubscribe(unsub->sub_id);
      sub_owner.erase(unsub->sub_id);
      return;
    }
    // A validly encoded message this edge does not serve (overlay
    // control traffic and the like): counted, not fatal.
    delta.unexpected_messages += 1;
  }

  void stage_query(Conn& c, const mobility::Query& q, std::uint64_t id,
                   ReplyStyle style, net::MsgType req_type, UserId user,
                   Clock::time_point arrived) {
    const bool at_cap =
        batcher.add(q, mobility::QueryBatcher::Token{c.serial, id});
    pending_replies.push_back(
        PendingReply{c.serial, id, style, req_type, user, arrived});
    if (at_cap) {
      // Mid-cycle hard cap: run the batch now rather than letting one
      // giant read burst grow it without bound.  Visibility rule first.
      flush_ingest(FlushReason::kForced);
      flush_queries();
    }
  }

  // ---- flushing --------------------------------------------------------

  void flush_ingest(FlushReason reason) {
    if (sink.pending() == 0) return;
    sink.flush();
    delta.ingest_flushes += 1;
    switch (reason) {
      case FlushReason::kSize: delta.size_flushes += 1; break;
      case FlushReason::kDeadline: delta.deadline_flushes += 1; break;
      case FlushReason::kForced: delta.forced_flushes += 1; break;
    }

    // Acks carry the post-apply owning region — only now knowable.
    const auto now = Clock::now();
    for (const PendingAck& a : pending_acks) {
      auto it = conns.find(a.serial);
      if (it == conns.end() || it->second.closing) continue;
      net::LocationUpdateAck ack;
      ack.user = a.user;
      ack.seq = a.seq;
      ack.region = eng.directory.region_of(a.user);
      queue(it->second, net::Message{ack});
      delta.acks_out += 1;
      samples.emplace_back(net::MsgType::kLocationUpdate,
                           micros_between(a.arrived, now));
    }
    pending_acks.clear();

    // Each flush is a notification epoch: drain the movement the batch
    // just made visible and push to the owning connections.
    const std::vector<pubsub::Notification> batch = eng.notifications.drain();
    net::Notify msg;
    for (const pubsub::Notification& n : batch) {
      auto owner = sub_owner.find(n.sub_id);
      if (owner == sub_owner.end()) continue;
      auto it = conns.find(owner->second);
      if (it == conns.end() || it->second.closing) continue;
      eng.notifications.to_notify(n, msg);
      queue(it->second, net::Message{msg});
      delta.notifies_out += 1;
    }

    // The queue drained: re-open every connection parked on backpressure.
    for (auto& [serial, c] : conns) {
      if (c.gated_backpressure) {
        c.gated_backpressure = false;
        update_interest(c);
      }
    }
  }

  void flush_queries() {
    if (batcher.pending() == 0) return;
    delta.query_flushes += 1;
    batcher.flush([this](mobility::QueryBatcher::Token,
                         const mobility::QueryResult& r) {
      const PendingReply meta = pending_replies.front();
      pending_replies.pop_front();
      auto it = conns.find(meta.serial);
      if (it == conns.end() || it->second.closing) return;
      Conn& c = it->second;
      if (meta.style == ReplyStyle::kLocate) {
        net::LocateReply reply;
        reply.request_id = meta.id;
        reply.user = meta.user;
        reply.found = r.found;
        if (r.found) {
          reply.location = r.located.position;
          reply.seq = r.located.seq;
          reply.region = eng.directory.region_of(meta.user);
        } else {
          reply.region = kInvalidRegion;
        }
        queue(c, net::Message{reply});
      } else {
        net::QueryResult reply;
        reply.query_id = meta.id;
        reply.from_region = kInvalidRegion;
        net::Writer w;
        r.encode(w);
        reply.payload.assign(
            reinterpret_cast<const char*>(w.bytes().data()),
            w.bytes().size());
        queue(c, net::Message{reply});
      }
      delta.replies_out += 1;
      samples.emplace_back(meta.req_type,
                           micros_between(meta.arrived, Clock::now()));
    });
  }

  void end_cycle() {
    const bool force = batcher.pending() > 0;
    const bool at_size = sink.pending() >= opt.ingest_flush_records;
    const bool at_deadline =
        sink.pending() > 0 && Clock::now() >= ingest_deadline;
    if (at_size) {
      flush_ingest(FlushReason::kSize);
    } else if (at_deadline) {
      flush_ingest(FlushReason::kDeadline);
    } else if (force) {
      flush_ingest(FlushReason::kForced);
    }
    if (force) flush_queries();

    // One write pass: everything queued this cycle leaves in as few
    // send() calls as the kernel allows.
    for (auto& [serial, c] : conns) {
      if (!c.closing && c.out_pos < c.out.size()) drain_out(c);
      if (c.closing) to_close.push_back(serial);
    }
    for (std::uint64_t serial : to_close) close_conn(serial);
    to_close.clear();

    fold_stats();
  }

  // ---- writing ---------------------------------------------------------

  void queue(Conn& c, const net::Message& m) {
    net::append_frame(m, c.out);
    const std::size_t backlog = c.out.size() - c.out_pos;
    if (backlog > 4 * opt.outbuf_gate_bytes) {
      // The peer is not consuming; buffering further is self-harm.
      delta.slow_consumer_closes += 1;
      c.closing = true;
      return;
    }
    if (backlog > opt.outbuf_gate_bytes && !c.gated_outbuf) {
      c.gated_outbuf = true;
      delta.outbuf_gates += 1;
    }
    update_interest(c);
  }

  void drain_out(Conn& c) {
    while (c.out_pos < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                               c.out.size() - c.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      c.closing = true;
      return;
    }
    if (c.out_pos == c.out.size()) {
      c.out.clear();
      c.out_pos = 0;
    } else if (c.out_pos > 65536 && c.out_pos >= c.out.size() / 2) {
      c.out.erase(c.out.begin(),
                  c.out.begin() + static_cast<std::ptrdiff_t>(c.out_pos));
      c.out_pos = 0;
    }
    if (c.gated_outbuf &&
        c.out.size() - c.out_pos <= opt.outbuf_gate_bytes / 2) {
      c.gated_outbuf = false;
    }
    update_interest(c);
  }

  // ---- stats -----------------------------------------------------------

  void fold_stats() {
    if (samples.empty() && !counters_dirty()) return;
    std::lock_guard<std::mutex> lock(stats_mu);
    fold_counters();
    for (const auto& [type, micros] : samples) {
      hists[static_cast<std::size_t>(type)].record_micros(micros);
    }
    samples.clear();
  }

  bool counters_dirty() const {
    static const Counters kZero{};
    return std::memcmp(&delta, &kZero, sizeof(Counters)) != 0;
  }

  void fold_counters() {
    auto add = [](std::uint64_t& into, std::uint64_t& from) {
      into += from;
      from = 0;
    };
    add(counters.accepted, delta.accepted);
    add(counters.closed, delta.closed);
    add(counters.frames_in, delta.frames_in);
    add(counters.updates_in, delta.updates_in);
    add(counters.locates_in, delta.locates_in);
    add(counters.ranges_in, delta.ranges_in);
    add(counters.nearests_in, delta.nearests_in);
    add(counters.subscribes_in, delta.subscribes_in);
    add(counters.unsubscribes_in, delta.unsubscribes_in);
    add(counters.acks_out, delta.acks_out);
    add(counters.replies_out, delta.replies_out);
    add(counters.notifies_out, delta.notifies_out);
    add(counters.ingest_flushes, delta.ingest_flushes);
    add(counters.size_flushes, delta.size_flushes);
    add(counters.deadline_flushes, delta.deadline_flushes);
    add(counters.forced_flushes, delta.forced_flushes);
    add(counters.query_flushes, delta.query_flushes);
    add(counters.backpressure_gates, delta.backpressure_gates);
    add(counters.outbuf_gates, delta.outbuf_gates);
    add(counters.slow_consumer_closes, delta.slow_consumer_closes);
    add(counters.malformed_frames, delta.malformed_frames);
    add(counters.unexpected_messages, delta.unexpected_messages);
  }
};

Server::Server(ServerEngines engines, core::ServeOptions options)
    : options_(options), impl_(std::make_unique<Impl>(engines, options_)) {}

Server::~Server() { stop(); }

void Server::start() { impl_->start(); }

void Server::stop() { impl_->stop(); }

bool Server::running() const noexcept {
  return impl_->is_running.load(std::memory_order_acquire);
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

std::size_t Server::connection_count() const {
  return impl_->live_conns.load(std::memory_order_relaxed);
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->counters;
}

metrics::LatencyHistogram Server::latency(net::MsgType type) const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->hists[static_cast<std::size_t>(type)];
}

}  // namespace geogrid::serve
