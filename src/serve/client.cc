#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/server.h"

namespace geogrid::serve {

namespace {

/// Reconstructs the engine-level locate answer from its wire reply.
mobility::QueryResult from_locate_reply(const net::LocateReply& reply) {
  mobility::QueryResult r;
  r.kind = mobility::Query::Kind::kLocate;
  r.found = reply.found;
  if (reply.found) {
    r.located = mobility::LocationRecord{reply.user, reply.location,
                                         reply.seq, 0.0};
  }
  return r;
}

mobility::QueryResult from_payload_reply(const net::QueryResult& reply) {
  net::Reader r(reinterpret_cast<const std::byte*>(reply.payload.data()),
                reply.payload.size());
  mobility::QueryResult out = mobility::QueryResult::decode(r);
  if (!r.done()) {
    throw std::runtime_error("trailing bytes in query reply payload");
  }
  return out;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : options_(std::move(other.options_)),
      fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      notifications_(std::move(other.notifications_)),
      next_id_(other.next_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    options_ = std::move(other.options_);
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    notifications_ = std::move(other.notifications_);
    next_id_ = other.next_id_;
  }
  return *this;
}

void Client::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("client socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bad client host: " + options_.host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client connect() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = net::FrameDecoder(
      net::FrameDecoder::Options{options_.max_frame_bytes});
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::send_all(const std::vector<std::byte>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("client send() failed");
  }
}

net::Message Client::read_message() {
  while (true) {
    net::FrameDecoder::Result r = decoder_.next();
    if (r.status == net::FrameDecoder::Status::kError) {
      throw std::runtime_error("client stream malformed: " + r.error);
    }
    if (r.status == net::FrameDecoder::Status::kFrame) {
      if (auto* notify = std::get_if<net::Notify>(&*r.message)) {
        notifications_.push_back(std::move(*notify));
        continue;
      }
      return std::move(*r.message);
    }
    std::byte buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(n == 0 ? "server closed the connection"
                                    : "client recv() failed");
  }
}

std::size_t Client::update_batch(
    std::span<const mobility::LocationRecord> records, bool wait_acks) {
  std::vector<std::byte> wire;
  for (const mobility::LocationRecord& rec : records) {
    net::LocationUpdate upd;
    upd.user = rec.user;
    upd.location = rec.position;
    upd.seq = rec.seq;
    net::append_frame(net::Message{upd}, wire);
  }
  send_all(wire);
  if (!wait_acks) return 0;
  std::size_t acked = 0;
  while (acked < records.size()) {
    const net::Message m = read_message();
    if (!std::holds_alternative<net::LocationUpdateAck>(m)) {
      throw std::runtime_error("expected LocationUpdateAck, got " +
                               std::string(net::message_name(
                                   net::message_type(m))));
    }
    ++acked;
  }
  return acked;
}

mobility::QueryResult Client::locate(UserId user) {
  const mobility::Query q = mobility::Query::locate(user);
  return query_batch(std::span<const mobility::Query>(&q, 1)).front();
}

std::vector<mobility::QueryResult> Client::query_batch(
    std::span<const mobility::Query> queries) {
  std::vector<std::byte> wire;
  std::vector<std::uint64_t> ids;
  ids.reserve(queries.size());
  for (const mobility::Query& q : queries) {
    const std::uint64_t id = next_id_++;
    ids.push_back(id);
    switch (q.kind) {
      case mobility::Query::Kind::kLocate: {
        net::LocateRequest req;
        req.request_id = id;
        req.user = q.user;
        net::append_frame(net::Message{req}, wire);
        break;
      }
      case mobility::Query::Kind::kRange: {
        net::LocationQuery req;
        req.query_id = id;
        req.area = q.rect;
        net::append_frame(net::Message{req}, wire);
        break;
      }
      case mobility::Query::Kind::kNearest: {
        net::NearestRequest req;
        req.query_id = id;
        req.center = q.point;
        req.k = q.k;
        net::append_frame(net::Message{req}, wire);
        break;
      }
    }
  }
  send_all(wire);

  std::vector<mobility::QueryResult> results;
  results.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const net::Message m = read_message();
    if (const auto* reply = std::get_if<net::LocateReply>(&m)) {
      if (reply->request_id != ids[i]) {
        throw std::runtime_error("locate reply id mismatch");
      }
      results.push_back(from_locate_reply(*reply));
      continue;
    }
    if (const auto* reply = std::get_if<net::QueryResult>(&m)) {
      if (reply->query_id != ids[i]) {
        throw std::runtime_error("query reply id mismatch");
      }
      results.push_back(from_payload_reply(*reply));
      continue;
    }
    // Acks from a preceding unacked update batch may still be in flight
    // on this connection; skip them, fail on anything else.
    if (std::holds_alternative<net::LocationUpdateAck>(m)) {
      --i;
      continue;
    }
    throw std::runtime_error("unexpected reply " +
                             std::string(net::message_name(
                                 net::message_type(m))));
  }
  return results;
}

void Client::subscribe_area(std::uint64_t sub_id, const Rect& area,
                            std::string filter) {
  net::Subscribe msg;
  msg.sub_id = sub_id;
  msg.area = area;
  msg.filter = std::move(filter);
  send_all(net::encode_frame(net::Message{msg}));
  const net::Message m = read_message();
  const auto* ack = std::get_if<net::SubscribeAck>(&m);
  if (ack == nullptr || ack->sub_id != sub_id) {
    throw std::runtime_error("expected SubscribeAck for sub " +
                             std::to_string(sub_id));
  }
}

void Client::subscribe_friend(std::uint64_t sub_id, UserId user) {
  net::Subscribe msg;
  msg.sub_id = sub_id;
  msg.filter = friend_filter(user);
  send_all(net::encode_frame(net::Message{msg}));
  const net::Message m = read_message();
  const auto* ack = std::get_if<net::SubscribeAck>(&m);
  if (ack == nullptr || ack->sub_id != sub_id) {
    throw std::runtime_error("expected SubscribeAck for sub " +
                             std::to_string(sub_id));
  }
}

void Client::unsubscribe(std::uint64_t sub_id) {
  net::Unsubscribe msg;
  msg.sub_id = sub_id;
  send_all(net::encode_frame(net::Message{msg}));
}

std::size_t Client::poll_notifications(int timeout_ms) {
  // Drain whatever is already buffered in the decoder first.
  while (true) {
    net::FrameDecoder::Result r = decoder_.next();
    if (r.status == net::FrameDecoder::Status::kError) {
      throw std::runtime_error("client stream malformed: " + r.error);
    }
    if (r.status == net::FrameDecoder::Status::kNeedMore) break;
    if (auto* notify = std::get_if<net::Notify>(&*r.message)) {
      notifications_.push_back(std::move(*notify));
    } else {
      throw std::runtime_error("unexpected frame while polling notifys");
    }
  }
  pollfd p{fd_, POLLIN, 0};
  if (::poll(&p, 1, timeout_ms) > 0 && (p.revents & POLLIN) != 0) {
    std::byte buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      while (true) {
        net::FrameDecoder::Result r = decoder_.next();
        if (r.status != net::FrameDecoder::Status::kFrame) break;
        if (auto* notify = std::get_if<net::Notify>(&*r.message)) {
          notifications_.push_back(std::move(*notify));
        }
      }
    }
  }
  return notifications_.size();
}

std::vector<net::Notify> Client::take_notifications() {
  return std::exchange(notifications_, {});
}

}  // namespace geogrid::serve
