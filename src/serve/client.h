// Minimal blocking client for the serving edge.
//
// One Client is one TCP connection speaking the framed wire protocol.  It
// is deliberately synchronous — the test/bench harness wants a precise
// "send these, now wait for exactly those" discipline, not another event
// loop — and deliberately thin: every reply is decoded back into the same
// engine-level types (mobility::QueryResult, net::Notify) the in-process
// reference path produces, so byte-identity comparisons need no
// translation layer.
//
// Demultiplexing: the server pushes Notify frames on the same connection
// that carries acks and replies, interleaved at flush boundaries.  Every
// blocking wait therefore buffers Notify frames aside
// (take_notifications() hands them over) and returns on the frame it was
// actually waiting for.  Not thread-safe; one thread per Client.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "mobility/location_store.h"
#include "mobility/query_engine.h"
#include "net/framing.h"
#include "net/messages.h"

namespace geogrid::serve {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  };

  Client() = default;
  explicit Client(Options options) : options_(std::move(options)) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (blocking).  Throws std::runtime_error on failure.
  void connect();
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one LocationUpdate per record (one send() for the whole batch)
  /// and, when `wait_acks`, blocks until every ack arrived.  The server
  /// acks at its next ingest flush, so an unacked send returns as soon as
  /// the bytes are written.  Returns the number of acks consumed.
  std::size_t update_batch(std::span<const mobility::LocationRecord> records,
                           bool wait_acks = true);

  /// Synchronous locate; the reply is reconstructed into the engine's
  /// result type (timestamp 0.0, matching what the server stores for
  /// wire-ingested records).
  mobility::QueryResult locate(UserId user);

  /// Sends a mixed batch (locate / range / nearest) in one write and
  /// blocks for all replies, returned in request order.
  std::vector<mobility::QueryResult> query_batch(
      std::span<const mobility::Query> queries);

  /// Registers a rect subscription under `filter` (see
  /// serve::geofence_filter / range_filter for the kind convention) and
  /// waits for the ack.
  void subscribe_area(std::uint64_t sub_id, const Rect& area,
                      std::string filter);

  /// Registers a friend-tracking subscription for `user`.
  void subscribe_friend(std::uint64_t sub_id, UserId user);

  /// Fire-and-forget removal.
  void unsubscribe(std::uint64_t sub_id);

  /// Blocks up to `timeout_ms` for pushed frames, then returns the number
  /// of Notify frames buffered in total (0 on timeout with none pending).
  std::size_t poll_notifications(int timeout_ms);

  /// Hands over every buffered Notify (pushed during any prior wait).
  std::vector<net::Notify> take_notifications();

 private:
  /// Blocks until one non-Notify frame arrives (Notifys are buffered
  /// aside); throws on EOF or malformed stream.
  net::Message read_message();
  void send_all(const std::vector<std::byte>& bytes);

  Options options_{};
  int fd_ = -1;
  net::FrameDecoder decoder_;
  std::vector<net::Notify> notifications_;
  std::uint64_t next_id_ = 1;
};

}  // namespace geogrid::serve
