// The serving edge: a single-threaded non-blocking TCP event loop that
// puts every engine in the repo behind the wire protocol.
//
// Everything below src/serve/ until now was a library called in-process:
// ShardedDirectory ingests spans, QueryEngine answers batches,
// NotificationEngine drains deltas — all earning their throughput from
// batching.  A network edge naively written ("read one message, call one
// engine, write one reply") would forfeit exactly that batching and
// serialize every engine behind per-message syscalls.  Server instead
// treats the event loop cycle as the batching unit:
//
//   * decoded LocationUpdates stage into a mobility::IngestSink and are
//     applied as one apply_updates batch when a size watermark is crossed,
//     a deadline expires, or a query needs the writes visible;
//   * Locate/Range/kNN requests stage into a mobility::QueryBatcher and
//     run as one QueryEngine batch at the end of every cycle — batch size
//     adapts to the arrival rate for free (whatever one cycle read);
//   * every ingest flush drains the NotificationEngine once, and each
//     emitted notification is pushed as a Notify frame to the connection
//     that registered the subscription.
//
// Ordering guarantee, per connection: replies and acks appear in the order
// the requests arrived, and a query observes every update the server read
// before it (ingest always flushes before queries run).  Globally the
// flush boundaries define the notification epochs.
//
// Backpressure is first-class rather than accidental: when the staged
// ingest queue exceeds ServeOptions::backpressure_records the loop stops
// *reading* from contributing sockets (poller interest dropped) until the
// next flush — TCP's own flow control then pushes back on the writers.  A
// connection whose output buffer exceeds outbuf_gate_bytes likewise stops
// being read (its requests only generate more output), and at 4x the gate
// it is closed as a dead consumer.
//
// Untrusted input: every byte from a socket goes through net::FrameDecoder
// (see net/framing.h); a malformed stream costs the peer its connection
// and increments a counter — never an exception out of the loop, never an
// overread.
//
// The loop runs on one thread started by start().  Counters and latency
// histograms are snapshotted under a mutex so tests and benches read them
// while the loop runs.  Per-type latency is measured from the read()
// syscall that delivered a message's final byte to the moment its
// reply/ack/notification batch is queued for write — it includes codec
// time, batching wait, and engine time, i.e. what a client actually sees
// minus the wire.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "core/options.h"
#include "metrics/latency.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "net/messages.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"

namespace geogrid::serve {

/// The engines a server fronts.  The server owns none of them — tests and
/// benches build the exact engine configuration they want to expose
/// (shard counts, thread counts, delta tracking) and keep direct access
/// for reference comparisons.  The caller must not touch the directory,
/// query engine, subscription index, or notification engine while the
/// server is running: the loop thread is their single writer.
struct ServerEngines {
  mobility::ShardedDirectory& directory;
  mobility::QueryEngine& queries;
  pubsub::SubscriptionIndex& subscriptions;
  pubsub::NotificationEngine& notifications;
};

/// Filter-string conventions mapping the wire Subscribe message onto
/// SubscriptionIndex kinds.  Shared by server, client, tests, and bench so
/// both sides of a byte-identity comparison build identical filters.
std::string friend_filter(UserId user);
std::string geofence_filter(std::uint64_t sub_id);
std::string range_filter(std::uint64_t sub_id);

struct SubscriptionSpec {
  pubsub::SubKind kind = pubsub::SubKind::kRange;
  UserId friend_user{};  ///< meaningful only for kFriend
};

/// Parses the filter: "friend:<uid>" -> kFriend tracking that user,
/// prefix "geofence" -> kGeofence, anything else -> kRange.
SubscriptionSpec subscription_spec(const net::Subscribe& msg);

class Server {
 public:
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t updates_in = 0;
    std::uint64_t locates_in = 0;
    std::uint64_t ranges_in = 0;
    std::uint64_t nearests_in = 0;
    std::uint64_t subscribes_in = 0;
    std::uint64_t unsubscribes_in = 0;
    std::uint64_t acks_out = 0;
    std::uint64_t replies_out = 0;
    std::uint64_t notifies_out = 0;
    std::uint64_t ingest_flushes = 0;
    std::uint64_t size_flushes = 0;      ///< watermark-triggered
    std::uint64_t deadline_flushes = 0;  ///< deadline-triggered
    std::uint64_t forced_flushes = 0;    ///< query-visibility-triggered
    std::uint64_t query_flushes = 0;
    std::uint64_t backpressure_gates = 0;  ///< read-gating events
    std::uint64_t outbuf_gates = 0;
    std::uint64_t slow_consumer_closes = 0;
    std::uint64_t malformed_frames = 0;  ///< connections cut for bad bytes
    std::uint64_t unexpected_messages = 0;
  };

  Server(ServerEngines engines, core::ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the loopback listening socket and starts the loop thread.
  /// Throws std::runtime_error when the socket cannot be set up.
  void start();

  /// Stops the loop, closes every connection, joins the thread.
  /// Idempotent.
  void stop();

  bool running() const noexcept;

  /// The bound TCP port (resolves ServeOptions::port == 0), valid after
  /// start().
  std::uint16_t port() const noexcept;

  std::size_t connection_count() const;

  Counters counters() const;

  /// Per-message-type latency (see file comment for what the interval
  /// covers).  Indexed by the wire MsgType of the *request*.
  metrics::LatencyHistogram latency(net::MsgType type) const;

  const core::ServeOptions& options() const noexcept { return options_; }

 private:
  struct Impl;  ///< all OS plumbing lives in server.cc

  core::ServeOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace geogrid::serve
