// Lightweight leveled logging.
//
// The simulator is single-threaded and deterministic, so the logger is a
// plain global with a level gate; protocol traces (kTrace) are invaluable
// when debugging join/adaptation message flows but are off by default.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace geogrid {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are skipped (and their streaming
/// arguments never rendered).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Reads GEOGRID_LOG (trace|debug|info|warn|error|off) once at startup.
void init_logging_from_env();

namespace detail {
void emit(LogLevel level, std::string_view message);
}

}  // namespace geogrid

#define GEOGRID_LOG(level, expr)                                        \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::geogrid::log_level())) { \
      std::ostringstream geogrid_log_os;                                \
      geogrid_log_os << expr;                                           \
      ::geogrid::detail::emit(level, geogrid_log_os.str());             \
    }                                                                   \
  } while (false)

#define GEOGRID_TRACE(expr) GEOGRID_LOG(::geogrid::LogLevel::kTrace, expr)
#define GEOGRID_DEBUG(expr) GEOGRID_LOG(::geogrid::LogLevel::kDebug, expr)
#define GEOGRID_INFO(expr) GEOGRID_LOG(::geogrid::LogLevel::kInfo, expr)
#define GEOGRID_WARN(expr) GEOGRID_LOG(::geogrid::LogLevel::kWarn, expr)
#define GEOGRID_ERROR(expr) GEOGRID_LOG(::geogrid::LogLevel::kError, expr)
