#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace geogrid {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / bin_width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lower(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  char label[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof(label), "[%9.4f, %9.4f) %7zu ",
                  bin_lower(b), bin_lower(b) + bin_width_, counts_[b]);
    os << label;
    const std::size_t len =
        peak == 0 ? 0 : counts_[b] * bar_width / peak;
    os << std::string(len, '#') << '\n';
  }
  return os.str();
}

}  // namespace geogrid
