// Geometry primitives for the GeoGrid coordinate space.
//
// GeoGrid (ICDCS'07) models the world as a two-dimensional geographic plane
// that is dynamically partitioned into disjoint axis-aligned rectangles, one
// per owner node.  This header provides the exact region algebra the paper
// relies on:
//
//  * the half-open cover test  (r.x < o.x <= r.x+w) && (r.y < o.y <= r.y+h)
//  * edge adjacency ("two regions are neighbors when their intersection is a
//    line segment")
//  * half-splits along alternating dimensions and the inverse merge
//
// All coordinates are in miles on the simulated plane (the paper evaluates a
// 64 x 64 mile metropolitan area), stored as doubles.  Splits always halve a
// side, so every region produced from a power-of-two plane is exactly
// representable; nevertheless all comparisons accept a small absolute
// tolerance (kGeoEps) to stay robust under arbitrary plane sizes.
#pragma once

#include <cmath>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace geogrid {

/// Absolute tolerance for coordinate comparisons (miles).
inline constexpr double kGeoEps = 1e-9;

/// Returns true when |a - b| <= kGeoEps.
constexpr bool almost_equal(double a, double b) noexcept {
  return (a > b ? a - b : b - a) <= kGeoEps;
}

/// Split axis. The paper splits "latitude dimension first and then longitude
/// dimension"; we encode latitude as Y and longitude as X.
enum class Axis : unsigned char { kX = 0, kY = 1 };

/// The other axis.
constexpr Axis opposite(Axis a) noexcept {
  return a == Axis::kX ? Axis::kY : Axis::kX;
}

/// A point in the geographic plane (longitude = x, latitude = y), in miles.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance between two points.
inline double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

std::ostream& operator<<(std::ostream& os, const Point& p);

/// An axis-aligned rectangle <x, y, width, height> where (x, y) is the
/// southwest corner, exactly the region quadruple of the paper.
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  friend bool operator==(const Rect&, const Rect&) = default;

  constexpr double right() const noexcept { return x + width; }
  constexpr double top() const noexcept { return y + height; }
  constexpr double area() const noexcept { return width * height; }

  /// Center point (the routing target of a query with this spatial region).
  constexpr Point center() const noexcept {
    return Point{x + width / 2.0, y + height / 2.0};
  }

  /// The paper's cover test: strictly greater than the west/south edge,
  /// less-or-equal the east/north edge.  With this convention a point on a
  /// shared edge belongs to exactly one of the adjacent regions, so the
  /// partition stays a function.
  bool covers(const Point& o) const noexcept {
    return x < o.x && o.x <= right() && y < o.y && o.y <= top();
  }

  /// Cover test with tolerance for the plane's own west/south border, so the
  /// root region covers points lying exactly on the plane boundary.
  bool covers_inclusive(const Point& o) const noexcept {
    return x - kGeoEps <= o.x && o.x <= right() + kGeoEps &&
           y - kGeoEps <= o.y && o.y <= top() + kGeoEps;
  }

  /// True when the rectangles overlap with positive area.
  bool intersects(const Rect& r) const noexcept;

  /// The overlapping rectangle, if the overlap has positive area.
  std::optional<Rect> intersection(const Rect& r) const noexcept;

  /// True when the intersection of the two (closed) rectangles is a line
  /// segment of positive length — the paper's neighbor-region relation.
  bool edge_adjacent(const Rect& r) const noexcept;

  /// Splits the rectangle in half along `axis`; returns {low, high} where
  /// `low` keeps the southwest corner.
  std::pair<Rect, Rect> split(Axis axis) const noexcept;

  /// True when the union of the two rectangles is itself a rectangle
  /// (identical extent on one axis, touching on the other) — the condition
  /// for the merge adaptation.
  bool mergeable(const Rect& r) const noexcept;

  /// The rectangular union; precondition: mergeable(r).
  Rect merged(const Rect& r) const noexcept;

  /// Shortest Euclidean distance from the rectangle to a point (0 inside).
  double distance_to(const Point& p) const noexcept;

  /// Clamps a point into the closed rectangle.
  Point clamp(const Point& p) const noexcept;

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace geogrid
