#include "common/logging.h"

#include <cstdlib>
#include <string>

namespace geogrid {
namespace {

LogLevel g_level = LogLevel::kWarn;

/// Applies GEOGRID_LOG automatically at program start.
const struct EnvInit {
  EnvInit() { init_logging_from_env(); }
} g_env_init;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void init_logging_from_env() {
  const char* env = std::getenv("GEOGRID_LOG");
  if (env == nullptr) return;
  const std::string value(env);
  if (value == "trace") g_level = LogLevel::kTrace;
  else if (value == "debug") g_level = LogLevel::kDebug;
  else if (value == "info") g_level = LogLevel::kInfo;
  else if (value == "warn") g_level = LogLevel::kWarn;
  else if (value == "error") g_level = LogLevel::kError;
  else if (value == "off") g_level = LogLevel::kOff;
}

namespace detail {

void emit(LogLevel level, std::string_view message) {
  std::clog << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace geogrid
