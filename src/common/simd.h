// SIMD point-in-rect band filter over structure-of-arrays coordinate
// columns.
//
// The spatial hot loops of the mobile-user layer (range queries, geofence
// member scans) reduce to one primitive: given parallel columns of x and y
// coordinates, find every index whose point lies inside a closed coordinate
// band [x_lo, x_hi] x [y_lo, y_hi].  Laid out as SoA doubles that test is
// four vector compares, two ANDs and a movemask per lane group — no
// branches in the loop body, no gather, and the columns stream through the
// cache linearly.
//
// The x86-64 baseline guarantees SSE2, so the 2-lane path below compiles
// everywhere this repo builds (CI runners included) with no -march flags;
// an AVX 4-lane path engages when the compiler is allowed to emit it.
// Other architectures fall back to the scalar loop, which the compiler is
// free to autovectorize.  All paths emit indices in ascending order, so
// callers that serialize results canonically get identical bytes whatever
// the vector width — lane count affects speed, never output.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace geogrid::common {

/// Appends to `out` the index of every i in [0, n) with
/// x_lo <= xs[i] <= x_hi and y_lo <= ys[i] <= y_hi, in ascending order.
/// Returns the number of indices written.  `out` must have room for n.
inline std::size_t filter_points_in_band(const double* xs, const double* ys,
                                         std::size_t n, double x_lo,
                                         double x_hi, double y_lo, double y_hi,
                                         std::uint32_t* out) {
  std::size_t found = 0;
  std::size_t i = 0;
#if defined(__AVX__)
  const __m256d vxlo = _mm256_set1_pd(x_lo);
  const __m256d vxhi = _mm256_set1_pd(x_hi);
  const __m256d vylo = _mm256_set1_pd(y_lo);
  const __m256d vyhi = _mm256_set1_pd(y_hi);
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    const __m256d y = _mm256_loadu_pd(ys + i);
    const __m256d inx = _mm256_and_pd(_mm256_cmp_pd(vxlo, x, _CMP_LE_OQ),
                                      _mm256_cmp_pd(x, vxhi, _CMP_LE_OQ));
    const __m256d iny = _mm256_and_pd(_mm256_cmp_pd(vylo, y, _CMP_LE_OQ),
                                      _mm256_cmp_pd(y, vyhi, _CMP_LE_OQ));
    int mask = _mm256_movemask_pd(_mm256_and_pd(inx, iny));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[found++] = static_cast<std::uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
#elif defined(__SSE2__)
  const __m128d vxlo = _mm_set1_pd(x_lo);
  const __m128d vxhi = _mm_set1_pd(x_hi);
  const __m128d vylo = _mm_set1_pd(y_lo);
  const __m128d vyhi = _mm_set1_pd(y_hi);
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(xs + i);
    const __m128d y = _mm_loadu_pd(ys + i);
    const __m128d inx =
        _mm_and_pd(_mm_cmple_pd(vxlo, x), _mm_cmple_pd(x, vxhi));
    const __m128d iny =
        _mm_and_pd(_mm_cmple_pd(vylo, y), _mm_cmple_pd(y, vyhi));
    int mask = _mm_movemask_pd(_mm_and_pd(inx, iny));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[found++] = static_cast<std::uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
#endif
  for (; i < n; ++i) {
    if (x_lo <= xs[i] && xs[i] <= x_hi && y_lo <= ys[i] && ys[i] <= y_hi) {
      out[found++] = static_cast<std::uint32_t>(i);
    }
  }
  return found;
}

/// Appends to `out` the index of every i in [0, n) whose rect
/// [lo_x[i], hi_x[i]] x [lo_y[i], hi_y[i]] covers the point (px, py) under
/// the region algebra's half-open test (Rect::covers): strictly greater
/// than the west/south edge, less-or-equal the east/north edge.  This is
/// the transpose of filter_points_in_band — one point probed against
/// columns of rects instead of one rect against columns of points — and is
/// the subscription-match primitive: a SubscriptionIndex cell's rect
/// columns stream through four compares, two ANDs and a movemask per lane
/// group.  Indices emit in ascending order on every path, so the match
/// pipeline's canonical (ascending sub-id) ordering is free.  `out` must
/// have room for n.  A degenerate rect (zero width or height) covers
/// nothing: lo < p and p <= hi cannot both hold when lo == hi.
inline std::size_t filter_rects_covering_point(
    const double* lo_x, const double* lo_y, const double* hi_x,
    const double* hi_y, std::size_t n, double px, double py,
    std::uint32_t* out) {
  std::size_t found = 0;
  std::size_t i = 0;
#if defined(__AVX__)
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  for (; i + 4 <= n; i += 4) {
    const __m256d inx =
        _mm256_and_pd(_mm256_cmp_pd(_mm256_loadu_pd(lo_x + i), vpx, _CMP_LT_OQ),
                      _mm256_cmp_pd(vpx, _mm256_loadu_pd(hi_x + i), _CMP_LE_OQ));
    const __m256d iny =
        _mm256_and_pd(_mm256_cmp_pd(_mm256_loadu_pd(lo_y + i), vpy, _CMP_LT_OQ),
                      _mm256_cmp_pd(vpy, _mm256_loadu_pd(hi_y + i), _CMP_LE_OQ));
    int mask = _mm256_movemask_pd(_mm256_and_pd(inx, iny));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[found++] = static_cast<std::uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
#elif defined(__SSE2__)
  const __m128d vpx = _mm_set1_pd(px);
  const __m128d vpy = _mm_set1_pd(py);
  for (; i + 2 <= n; i += 2) {
    const __m128d inx = _mm_and_pd(_mm_cmplt_pd(_mm_loadu_pd(lo_x + i), vpx),
                                   _mm_cmple_pd(vpx, _mm_loadu_pd(hi_x + i)));
    const __m128d iny = _mm_and_pd(_mm_cmplt_pd(_mm_loadu_pd(lo_y + i), vpy),
                                   _mm_cmple_pd(vpy, _mm_loadu_pd(hi_y + i)));
    int mask = _mm_movemask_pd(_mm_and_pd(inx, iny));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[found++] = static_cast<std::uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
#endif
  for (; i < n; ++i) {
    if (lo_x[i] < px && px <= hi_x[i] && lo_y[i] < py && py <= hi_y[i]) {
      out[found++] = static_cast<std::uint32_t>(i);
    }
  }
  return found;
}

/// Counts the points inside the band without materializing indices — the
/// membership-cardinality probe (geofence occupancy, cell density stats).
inline std::size_t count_points_in_band(const double* xs, const double* ys,
                                        std::size_t n, double x_lo,
                                        double x_hi, double y_lo,
                                        double y_hi) {
  std::size_t count = 0;
  std::size_t i = 0;
#if defined(__AVX__)
  const __m256d vxlo = _mm256_set1_pd(x_lo);
  const __m256d vxhi = _mm256_set1_pd(x_hi);
  const __m256d vylo = _mm256_set1_pd(y_lo);
  const __m256d vyhi = _mm256_set1_pd(y_hi);
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    const __m256d y = _mm256_loadu_pd(ys + i);
    const __m256d inx = _mm256_and_pd(_mm256_cmp_pd(vxlo, x, _CMP_LE_OQ),
                                      _mm256_cmp_pd(x, vxhi, _CMP_LE_OQ));
    const __m256d iny = _mm256_and_pd(_mm256_cmp_pd(vylo, y, _CMP_LE_OQ),
                                      _mm256_cmp_pd(y, vyhi, _CMP_LE_OQ));
    count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(inx, iny)))));
  }
#elif defined(__SSE2__)
  const __m128d vxlo = _mm_set1_pd(x_lo);
  const __m128d vxhi = _mm_set1_pd(x_hi);
  const __m128d vylo = _mm_set1_pd(y_lo);
  const __m128d vyhi = _mm_set1_pd(y_hi);
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(xs + i);
    const __m128d y = _mm_loadu_pd(ys + i);
    const __m128d inx =
        _mm_and_pd(_mm_cmple_pd(vxlo, x), _mm_cmple_pd(x, vxhi));
    const __m128d iny =
        _mm_and_pd(_mm_cmple_pd(vylo, y), _mm_cmple_pd(y, vyhi));
    count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
        _mm_movemask_pd(_mm_and_pd(inx, iny)))));
  }
#endif
  for (; i < n; ++i) {
    if (x_lo <= xs[i] && xs[i] <= x_hi && y_lo <= ys[i] && ys[i] <= y_hi) {
      ++count;
    }
  }
  return count;
}

}  // namespace geogrid::common
