// Minimal CSV emission for bench harnesses and the experiment engine.
//
// Every figure-reproduction binary prints a human-readable table to stdout
// and, when given a path, writes the same series as CSV so the results can
// be re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace geogrid {

/// Streams rows of comma-separated values; quotes fields when needed.
class CsvWriter {
 public:
  /// Writes to an owned file. Throws std::runtime_error when the file
  /// cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Writes to a caller-owned stream (kept by reference).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::initializer_list<std::string_view> names) {
    write_fields(names.begin(), names.end());
  }

  /// Writes one row; accepts any streamable field types.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> rendered;
    rendered.reserve(sizeof...(fields));
    (rendered.push_back(render(fields)), ...);
    write_fields(rendered.begin(), rendered.end());
  }

 private:
  template <typename T>
  static std::string render(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(std::string_view field);

  template <typename It>
  void write_fields(It first, It last) {
    bool leading = true;
    for (; first != last; ++first) {
      if (!leading) *out_ << ',';
      leading = false;
      *out_ << escape(*first);
    }
    *out_ << '\n';
  }

  std::ofstream file_;
  std::ostream* out_ = nullptr;
};

}  // namespace geogrid
