#include "common/ascii_render.h"

#include <algorithm>
#include <cmath>

namespace geogrid {
namespace {

constexpr std::string_view kRamp = " .:-=+*#%@";

char shade_char(double value, double peak) {
  if (peak <= 0.0) return kRamp.front();
  const double t = std::clamp(value / peak, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(t * static_cast<double>(kRamp.size() - 1));
  return kRamp[idx];
}

}  // namespace

std::string render_partition(const Rect& plane,
                             const std::vector<ShadedRect>& regions,
                             std::size_t rows, std::size_t cols) {
  double peak = 0.0;
  for (const auto& r : regions) peak = std::max(peak, r.value);

  std::string out;
  out.reserve((cols + 1) * rows);
  // Render north-to-south so the top line of text is the top of the plane.
  for (std::size_t row = 0; row < rows; ++row) {
    const double y = plane.top() -
                     (static_cast<double>(row) + 0.5) * plane.height /
                         static_cast<double>(rows);
    for (std::size_t col = 0; col < cols; ++col) {
      const double x = plane.x + (static_cast<double>(col) + 0.5) *
                                     plane.width / static_cast<double>(cols);
      const Point p{x, y};
      char c = '?';
      for (const auto& r : regions) {
        if (!r.rect.covers_inclusive(p)) continue;
        // Mark cells near a region border so the partition is visible.
        const double dx = std::min(p.x - r.rect.x, r.rect.right() - p.x);
        const double dy = std::min(p.y - r.rect.y, r.rect.top() - p.y);
        const double cell_w = plane.width / static_cast<double>(cols);
        const double cell_h = plane.height / static_cast<double>(rows);
        if (dx < cell_w * 0.5) {
          c = '|';
        } else if (dy < cell_h * 0.5) {
          c = '-';
        } else {
          c = shade_char(r.value, peak);
        }
        break;
      }
      out += c;
    }
    out += '\n';
  }
  return out;
}

std::string render_field(const Rect& plane,
                         const std::function<double(Point)>& field,
                         std::size_t rows, std::size_t cols) {
  std::vector<double> samples(rows * cols, 0.0);
  double peak = 0.0;
  for (std::size_t row = 0; row < rows; ++row) {
    const double y = plane.top() -
                     (static_cast<double>(row) + 0.5) * plane.height /
                         static_cast<double>(rows);
    for (std::size_t col = 0; col < cols; ++col) {
      const double x = plane.x + (static_cast<double>(col) + 0.5) *
                                     plane.width / static_cast<double>(cols);
      const double v = field(Point{x, y});
      samples[row * cols + col] = v;
      peak = std::max(peak, v);
    }
  }
  std::string out;
  out.reserve((cols + 1) * rows);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t col = 0; col < cols; ++col) {
      out += shade_char(samples[row * cols + col], peak);
    }
    out += '\n';
  }
  return out;
}

}  // namespace geogrid
