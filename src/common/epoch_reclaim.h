// Epoch-based reclamation for single-writer, many-reader published objects.
//
// The snapshot read path's original handoff was a mutex-guarded
// shared_ptr<const DirectorySnapshot> copy: every reader acquiring a
// snapshot locked the writer's mutex and bumped the control block's atomic
// refcount — one contended cacheline shared by every reader on every
// acquire, which is exactly the kind of shared write that caps read-side
// scaling long before memory bandwidth does.
//
// EpochDomain replaces the refcount with reader *announcements*.  The
// domain keeps a global epoch counter and a fixed table of cacheline-
// aligned reader slots.  A reader pins by writing the current global epoch
// into its own slot (a store to a cacheline nobody else writes), reads the
// published pointer, and unpins by resetting the slot.  The writer retires
// a superseded object by tagging it with the current epoch and advancing
// the counter; a retired object is freed only once every announced slot has
// moved past its retire epoch.  Readers therefore share *nothing* writable:
// steady-state acquisition costs two uncontended stores and one load, and
// scales linearly with reader count.
//
// Ordering contract (the classic EBR handshake, Dekker-style fences):
//
//   reader:  slot.store(E);   fence(seq_cst);   ptr = published.load()
//   writer:  published.store(new);   fence(seq_cst);   scan slots
//
// Both sides fence between "my write" and "their read", so in the single
// total order of seq_cst fences either the writer's slot scan observes the
// pin (and the retired object is kept), or the reader's fence follows the
// writer's — in which case the reader's pointer load is ordered after the
// swap and can only return the *new* object, making the old one safe to
// free.  A reader that pinned epoch E blocks every object retired at epoch
// >= E until it unpins.
//
// One writer at a time calls retire()/advance()/reclaim(); any number of
// readers pin concurrently.  Slot registration is lock-free and permanent
// for the domain's lifetime (readers are expected to be long-lived engine
// threads, not ephemeral).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace geogrid::common {

class EpochDomain {
 public:
  /// Maximum concurrently registered readers.  Each costs one cacheline.
  static constexpr std::size_t kMaxReaders = 64;
  /// Slot value meaning "not inside a read-side critical section".
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// A registered reader's handle.  Cheap to copy; all copies share the
  /// same slot, so only one thread may use a given handle at a time.
  class Reader {
   public:
    Reader() = default;

    /// Enters a read-side critical section: announces the current epoch.
    /// Objects retired at or after this epoch outlive the pin.  The
    /// trailing fence keeps the protected pointer load from reordering
    /// ahead of the announcement (see the handshake above).
    void pin() noexcept {
      slot_->store(domain_->epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    /// Leaves the critical section.  Pointers read under the pin are dead.
    void unpin() noexcept { slot_->store(kIdle, std::memory_order_release); }

    bool registered() const noexcept { return slot_ != nullptr; }

   private:
    friend class EpochDomain;
    Reader(EpochDomain* domain, std::atomic<std::uint64_t>* slot)
        : domain_(domain), slot_(slot) {}

    EpochDomain* domain_ = nullptr;
    std::atomic<std::uint64_t>* slot_ = nullptr;
  };

  /// RAII pin over a Reader.
  class Guard {
   public:
    explicit Guard(Reader& reader) noexcept : reader_(reader) {
      reader_.pin();
    }
    ~Guard() { reader_.unpin(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Reader& reader_;
  };

  /// Claims a reader slot for the domain's lifetime.  Returns an
  /// unregistered Reader when the table is full — callers must fall back
  /// to a refcounted acquisition path in that case.
  Reader register_reader() noexcept {
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      bool expected = false;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return Reader(this, &slots_[i].epoch);
      }
    }
    return Reader();
  }

  /// Current global epoch (the value a pinning reader announces).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Writer side: stamps the moment an object was superseded, then opens a
  /// new epoch.  Returns the retire stamp: the object is reclaimable once
  /// safe_epoch() exceeds it.
  std::uint64_t retire_epoch() noexcept {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    return e;
  }

  /// Writer side: the exclusive upper bound of reclaimable retire stamps —
  /// every object retired at an epoch strictly below this is unreachable
  /// by any current or future reader.  The caller must have published the
  /// superseding object before calling (the fence below is the writer half
  /// of the handshake).
  std::uint64_t safe_epoch() const noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint64_t min = epoch_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      if (!slots_[i].claimed.load(std::memory_order_acquire)) continue;
      const std::uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e < min) min = e;
    }
    return min;
  }

 private:
  /// One reader's announcement, alone on its cacheline: pin/unpin are
  /// stores to memory no other reader ever touches.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
    std::atomic<bool> claimed{false};
  };

  std::atomic<std::uint64_t> epoch_{1};
  Slot slots_[kMaxReaders];
};

}  // namespace geogrid::common
