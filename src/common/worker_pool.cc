#include "common/worker_pool.h"

#include <algorithm>

namespace geogrid::common {

WorkerPool::WorkerPool(std::size_t tasks)
    : tasks_(tasks == 0
                 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                 : tasks) {
  workers_.reserve(tasks_ - 1);
  for (std::size_t w = 0; w + 1 < tasks_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // Worker w always takes task w+1; the dispatching thread takes task 0.
    (*job)(worker_index + 1);
    {
      std::lock_guard lock(mutex_);
      ++done_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    for (std::size_t i = 0; i < tasks_; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return done_ == workers_.size(); });
}

}  // namespace geogrid::common
