#include "common/worker_pool.h"

#include <algorithm>

namespace geogrid::common {

namespace {

/// Completion-spin budget before the dispatcher parks on the condvar.  On a
/// many-core host the workers' tasks end within microseconds of task 0, so
/// a short spin removes the futex round trip from the steady-state batch
/// loop entirely.  On a single-core host spinning only delays the very
/// threads being waited on, so the budget is zero and the dispatcher yields
/// the core immediately.
std::uint32_t spin_budget() noexcept {
  static const std::uint32_t budget =
      std::thread::hardware_concurrency() > 1 ? 16384 : 0;
  return budget;
}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

WorkerPool::WorkerPool(std::size_t tasks)
    : tasks_(tasks == 0
                 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                 : tasks) {
  workers_.reserve(tasks_ - 1);
  for (std::size_t w = 0; w + 1 < tasks_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerPool::record_exception() noexcept {
  // First thrower wins; the acq_rel exchange orders the exception_ptr
  // write before the barrier decrement that publishes it.
  bool expected = false;
  if (failed_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    first_error_ = std::current_exception();
  }
}

void WorkerPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_.load(std::memory_order_relaxed) != seen;
      });
      if (stop_) return;
      seen = generation_.load(std::memory_order_relaxed);
    }
    // Worker w always takes task w+1; the dispatching thread takes task 0.
    // A throwing task must still reach the barrier — the dispatcher cannot
    // unwind until every task of the generation retired.
    try {
      job_.invoke(job_.ctx, worker_index + 1);
    } catch (...) {
      record_exception();
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: wake the dispatcher iff it actually went to sleep
      // (the common fast path sees the countdown hit zero mid-spin and
      // never touches done_mutex_).
      std::unique_lock lock(done_mutex_);
      if (dispatcher_sleeping_) {
        lock.unlock();
        done_cv_.notify_one();
      }
    }
  }
}

void WorkerPool::dispatch() {
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  remaining_.store(workers_.size(), std::memory_order_relaxed);
  {
    // The lock pairs with the workers' wait predicate so the generation
    // bump cannot slip between a worker's predicate check and its sleep.
    std::lock_guard lock(mutex_);
    generation_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();

  try {
    job_.invoke(job_.ctx, 0);
  } catch (...) {
    // Capture, don't unwind: workers are still executing through job_,
    // which points into this stack frame.  The barrier below drains the
    // generation first; the exception resurfaces after.
    record_exception();
  }

  // Atomic countdown barrier: spin briefly (multicore hosts — the workers
  // finish around the same time task 0 does), then park.
  if (remaining_.load(std::memory_order_acquire) != 0) {
    for (std::uint32_t i = spin_budget(); i != 0; --i) {
      cpu_relax();
      if (remaining_.load(std::memory_order_acquire) == 0) break;
    }
    if (remaining_.load(std::memory_order_acquire) != 0) {
      std::unique_lock lock(done_mutex_);
      dispatcher_sleeping_ = true;
      done_cv_.wait(lock, [&] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
      dispatcher_sleeping_ = false;
    }
  }

  job_ = Job{};
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace geogrid::common
