// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (node placement, capacity
// draws, hot-spot motion, entry-node selection, ...) takes an explicit
// `Rng&` so that experiments and tests are bit-reproducible from a seed.
// The generator is xoshiro256++, seeded through SplitMix64; it is fast,
// high-quality, and — unlike std::mt19937 + std::uniform_*_distribution —
// produces identical streams across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace geogrid {

/// xoshiro256++ generator with convenience draw helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 so any 64-bit seed is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64-bit draw (satisfies UniformRandomBitGenerator).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Samples an index from a discrete distribution given by `weights`
  /// (non-negative, not all zero).
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Derives an independent child generator (for per-run streams).
  Rng fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace geogrid
