// Strongly typed identifiers.
//
// NodeId identifies a GeoGrid participant for the lifetime of a simulation;
// it doubles as the simulated network address (the paper's <IP, port> pair).
// RegionId identifies a region of the space partition; regions survive
// ownership changes, so the id is stable across the load-balance adaptations
// that re-assign owners.  UserId identifies a mobile end user of the
// location service; users are not overlay members — their location records
// live in the region that covers their current position.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace geogrid {

namespace detail {

/// CRTP-free tagged integer id: comparable, hashable, printable.
template <typename Tag>
struct TaggedId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr bool valid() const noexcept { return value != kInvalid; }

  friend constexpr bool operator==(TaggedId, TaggedId) = default;
  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value;
  }
};

}  // namespace detail

struct NodeTag {
  static constexpr const char* prefix() { return "n"; }
};
struct RegionTag {
  static constexpr const char* prefix() { return "r"; }
};
struct UserTag {
  static constexpr const char* prefix() { return "u"; }
};

using NodeId = detail::TaggedId<NodeTag>;
using RegionId = detail::TaggedId<RegionTag>;
using UserId = detail::TaggedId<UserTag>;

inline constexpr NodeId kInvalidNode{};
inline constexpr RegionId kInvalidRegion{};
inline constexpr UserId kInvalidUser{};

}  // namespace geogrid

template <typename Tag>
struct std::hash<geogrid::detail::TaggedId<Tag>> {
  std::size_t operator()(geogrid::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
