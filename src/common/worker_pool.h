// Fixed-size fork/join worker pool for batch-parallel engines.
//
// Both halves of the mobile-user layer run the same execution shape: a
// dispatching thread partitions a batch into T independent tasks, all T run
// at once, and a barrier ends the batch (ShardedDirectory's locate/drain
// phases, QueryEngine's per-chunk query execution).  WorkerPool is that
// shape extracted once: `run(fn)` invokes fn(0..tasks-1), task 0 on the
// calling thread and the rest on persistent workers, and returns only when
// every task finished.  With tasks == 1 no threads are ever spawned and
// run() degenerates to a plain call — the serial configurations stay
// genuinely single-threaded.
//
// The batch barrier is an atomic countdown, not a mutex+condvar round trip:
// the dispatcher publishes the job once (a raw callable pointer plus a
// static trampoline — run() is a template, so there is no std::function
// re-dispatch or allocation per batch), bumps the generation, and after
// running task 0 spins briefly on the countdown before falling back to a
// futex-style sleep.  Workers park on a condvar between generations (they
// must not burn a core while the dispatcher is preparing the next batch)
// but completion costs one relaxed-spin-visible fetch_sub — on an
// oversubscribed or many-core host the barrier is contention on exactly one
// cacheline, once per task per batch.
//
// Task affinity is fixed: worker w always executes task w + 1 and the
// dispatcher always executes task 0, so engines that keep per-task scratch
// (shard queues, query scratch, counter tallies) get thread-affine reuse
// for free — task i's scratch is touched by one thread for the pool's whole
// lifetime.
//
// Exceptions: if any task throws — including task 0 on the dispatching
// thread — the pool still drains the full generation (every worker finishes
// its task and reaches the barrier) and then rethrows the first captured
// exception from run().  The barrier must complete before the stack
// unwinds: workers hold a pointer into the dispatcher's frame, so returning
// early would leave them executing through a dangling job.  After a throw
// the pool remains usable; subsequent run() calls behave normally.
//
// The pool is NOT re-entrant and has exactly one dispatcher at a time: the
// thread that constructed it calls run().  Determinism is the caller's
// business — the pool guarantees only that every task ran to completion
// before run() returns, so engines that partition work by pure functions of
// the task index (as all users here do) get thread-count-independent
// results for free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace geogrid::common {

class WorkerPool {
 public:
  /// Spawns `tasks - 1` worker threads (0 = hardware concurrency).
  explicit WorkerPool(std::size_t tasks);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of tasks each run() call fans out to.
  std::size_t task_count() const noexcept { return tasks_; }

  /// Number of spawned worker threads: task_count() - 1, and 0 for a
  /// serial pool (the no-thread-spawn guarantee the tests pin).
  std::size_t worker_thread_count() const noexcept { return workers_.size(); }

  /// Runs fn(0..tasks-1): fn(0) on the caller, task w+1 on worker w.
  /// Returns after every task completed (the batch barrier).  If any task
  /// threw, the generation is drained first and the first captured
  /// exception is rethrown here.
  template <typename Fn>
  void run(Fn&& fn) {
    if (workers_.empty()) {
      for (std::size_t i = 0; i < tasks_; ++i) fn(i);
      return;
    }
    using Callable = std::remove_reference_t<Fn>;
    job_.invoke = [](void* ctx, std::size_t task) {
      (*static_cast<Callable*>(ctx))(task);
    };
    job_.ctx = const_cast<void*>(static_cast<const void*>(std::addressof(fn)));
    dispatch();
  }

 private:
  /// The published batch: a raw callable pointer and its static trampoline.
  /// Written by the dispatcher before the generation bump (the
  /// release/acquire edge workers synchronize on), read-only during a
  /// generation.
  struct Job {
    void (*invoke)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
  };

  void dispatch();
  void worker_loop(std::size_t worker_index);
  void record_exception() noexcept;

  std::size_t tasks_;
  std::vector<std::thread> workers_;

  // Generation handoff: workers park on work_cv_ between batches and are
  // released by the generation bump.  generation_ is atomic so the
  // dispatcher's completion spin and the workers' wake predicate never
  // race; the mutex only orders sleep/notify.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  Job job_{};
  std::atomic<std::uint64_t> generation_{0};
  bool stop_ = false;

  // Completion barrier on its own cacheline: every worker hits this word
  // once per batch, and it must not false-share with the job the workers
  // are concurrently reading.
  alignas(64) std::atomic<std::size_t> remaining_{0};

  // Dispatcher sleep state, used only when the completion spin expires.
  alignas(64) std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool dispatcher_sleeping_ = false;

  // First exception thrown by any task of the current generation.
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
};

}  // namespace geogrid::common
