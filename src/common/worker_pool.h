// Fixed-size fork/join worker pool for batch-parallel engines.
//
// Both halves of the mobile-user layer run the same execution shape: a
// dispatching thread partitions a batch into T independent tasks, all T run
// at once, and a barrier ends the batch (ShardedDirectory's locate/drain
// phases, QueryEngine's per-chunk query execution).  WorkerPool is that
// shape extracted once: `run(fn)` invokes fn(0..tasks-1), task 0 on the
// calling thread and the rest on persistent workers, and returns only when
// every task finished.  With tasks == 1 no threads are ever spawned and
// run() degenerates to a plain call — the serial configurations stay
// genuinely single-threaded.
//
// The pool is NOT re-entrant and has exactly one dispatcher at a time: the
// thread that constructed it calls run().  Determinism is the caller's
// business — the pool guarantees only that every task ran to completion
// before run() returns, so engines that partition work by pure functions of
// the task index (as both users here do) get thread-count-independent
// results for free.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace geogrid::common {

class WorkerPool {
 public:
  /// Spawns `tasks - 1` worker threads (0 = hardware concurrency).
  explicit WorkerPool(std::size_t tasks);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of tasks each run() call fans out to.
  std::size_t task_count() const noexcept { return tasks_; }

  /// Runs fn(0..tasks-1): fn(0) on the caller, the rest on the pool.
  /// Returns after every task completed (the batch barrier).
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker_index);

  std::size_t tasks_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t done_ = 0;
  bool stop_ = false;
};

}  // namespace geogrid::common
