#include "common/geometry.h"

#include <algorithm>
#include <sstream>

namespace geogrid {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

bool Rect::intersects(const Rect& r) const noexcept {
  return x < r.right() - kGeoEps && r.x < right() - kGeoEps &&
         y < r.top() - kGeoEps && r.y < top() - kGeoEps;
}

std::optional<Rect> Rect::intersection(const Rect& r) const noexcept {
  const double ix = std::max(x, r.x);
  const double iy = std::max(y, r.y);
  const double ir = std::min(right(), r.right());
  const double it = std::min(top(), r.top());
  if (ir - ix <= kGeoEps || it - iy <= kGeoEps) return std::nullopt;
  return Rect{ix, iy, ir - ix, it - iy};
}

bool Rect::edge_adjacent(const Rect& r) const noexcept {
  // Vertical shared edge: one rectangle's east side meets the other's west
  // side, and the y-extents overlap in a segment of positive length.
  const double y_overlap = std::min(top(), r.top()) - std::max(y, r.y);
  if ((almost_equal(right(), r.x) || almost_equal(r.right(), x)) &&
      y_overlap > kGeoEps) {
    return true;
  }
  // Horizontal shared edge.
  const double x_overlap = std::min(right(), r.right()) - std::max(x, r.x);
  if ((almost_equal(top(), r.y) || almost_equal(r.top(), y)) &&
      x_overlap > kGeoEps) {
    return true;
  }
  return false;
}

std::pair<Rect, Rect> Rect::split(Axis axis) const noexcept {
  if (axis == Axis::kX) {
    const double half = width / 2.0;
    return {Rect{x, y, half, height}, Rect{x + half, y, width - half, height}};
  }
  const double half = height / 2.0;
  return {Rect{x, y, width, half}, Rect{x, y + half, width, height - half}};
}

bool Rect::mergeable(const Rect& r) const noexcept {
  const bool same_x =
      almost_equal(x, r.x) && almost_equal(width, r.width);
  const bool same_y =
      almost_equal(y, r.y) && almost_equal(height, r.height);
  if (same_x) {
    return almost_equal(top(), r.y) || almost_equal(r.top(), y);
  }
  if (same_y) {
    return almost_equal(right(), r.x) || almost_equal(r.right(), x);
  }
  return false;
}

Rect Rect::merged(const Rect& r) const noexcept {
  const double mx = std::min(x, r.x);
  const double my = std::min(y, r.y);
  return Rect{mx, my, std::max(right(), r.right()) - mx,
              std::max(top(), r.top()) - my};
}

double Rect::distance_to(const Point& p) const noexcept {
  const double dx = std::max({x - p.x, 0.0, p.x - right()});
  const double dy = std::max({y - p.y, 0.0, p.y - top()});
  return std::hypot(dx, dy);
}

Point Rect::clamp(const Point& p) const noexcept {
  return Point{std::clamp(p.x, x, right()), std::clamp(p.y, y, top())};
}

std::string Rect::to_string() const {
  std::ostringstream os;
  os << '<' << x << ", " << y << ", " << width << ", " << height << '>';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << r.to_string();
}

}  // namespace geogrid
