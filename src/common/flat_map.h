// Flat open-addressing hash map for the hot paths.
//
// The mobile-user layer lives or dies on point lookups against maps with
// hundreds of thousands of entries (user -> record index, user -> region,
// cell -> bucket).  `std::unordered_map` pays a pointer chase into a
// node allocation on every hit; at 1M users that is two or three cache
// misses per operation and the ingest benchmark collapses on exactly that.
// FlatMap keeps key/value slots in one contiguous power-of-two array with
// linear probing, so a hit is typically a single cache line and a scan is
// a prefetchable sweep.
//
// Deletion uses backward-shift (no tombstones), which keeps probe
// sequences short under the ingest/evict churn of region handoffs.
// Iteration order is a pure function of the insert/erase history — two
// maps that saw the same operation sequence iterate identically, which is
// what lets ShardedDirectory prove shard-count invariance byte-for-byte.
//
// The default hasher finalizes std::hash with a splitmix64 mix because
// libstdc++ hashes integers to themselves; packed cell keys and region
// ids need the high bits spread before masking to a power of two.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace geogrid::common {

/// splitmix64 finalizer: spreads entropy across all 64 bits.
constexpr std::uint64_t mix_hash(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Default FlatMap hasher: std::hash then a full-width mix.
template <typename Key>
struct MixHash {
  std::size_t operator()(const Key& key) const noexcept {
    return static_cast<std::size_t>(
        mix_hash(static_cast<std::uint64_t>(std::hash<Key>{}(key))));
  }
};

template <typename Key, typename Value, typename Hash = MixHash<Key>>
class FlatMap {
 public:
  FlatMap() = default;
  explicit FlatMap(std::size_t expected) { reserve(expected); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Current slot-table size.  A reserve() or insert that changes this has
  /// rehashed: every previously obtained entry pointer is invalidated.
  std::size_t capacity() const noexcept { return slots_.size(); }

  void clear() {
    states_.assign(states_.size(), kEmpty);
    slots_.clear();
    slots_.resize(states_.size());
    size_ = 0;
  }

  /// Grows the table so `expected` entries fit without rehashing.
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < expected * kMaxLoadDen) cap <<= 1;
    if (cap > capacity()) rehash(cap);
  }

  Value* find(const Key& key) noexcept {
    const std::size_t i = find_slot(key);
    return i == kNotFound ? nullptr : &slots_[i].value;
  }
  const Value* find(const Key& key) const noexcept {
    const std::size_t i = find_slot(key);
    return i == kNotFound ? nullptr : &slots_[i].value;
  }
  bool contains(const Key& key) const noexcept {
    return find_slot(key) != kNotFound;
  }

  /// Inserts {key, Value(args...)} unless present.  Returns the value slot
  /// and whether an insert happened.  Pointers are invalidated by any
  /// mutation, like every other flat container here.
  template <typename... Args>
  std::pair<Value*, bool> try_emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    std::size_t i = home(key);
    while (states_[i] == kFull) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask();
    }
    states_[i] = kFull;
    slots_[i].key = key;
    slots_[i].value = Value(std::forward<Args>(args)...);
    ++size_;
    return {&slots_[i].value, true};
  }

  Value& operator[](const Key& key) { return *try_emplace(key).first; }

  /// Removes `key` with backward-shift deletion.  Returns true on removal.
  bool erase(const Key& key) {
    std::size_t i = find_slot(key);
    if (i == kNotFound) return false;
    // Shift later slots of the probe chain back so no gap splits a chain.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask();
      if (states_[j] != kFull) break;
      const std::size_t h = home(slots_[j].key);
      // Slot j may move into the hole at i only if its home position does
      // not lie strictly between i (exclusive) and j (inclusive) cyclically.
      if (((j - h) & mask()) >= ((j - i) & mask())) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    states_[i] = kEmpty;
    slots_[i] = Slot{};
    --size_;
    return true;
  }

  /// Visits every entry as fn(key, value).  Order is a deterministic
  /// function of the operation history (see header comment).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (states_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (states_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
  };

  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probing stays short, memory stays tight.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  std::size_t mask() const noexcept { return slots_.size() - 1; }
  std::size_t home(const Key& key) const noexcept {
    return Hash{}(key)&mask();
  }

  std::size_t find_slot(const Key& key) const noexcept {
    if (size_ == 0) return kNotFound;
    std::size_t i = home(key);
    while (states_[i] == kFull) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask();
    }
    return kNotFound;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      rehash(capacity() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    slots_.assign(new_capacity, Slot{});
    states_.assign(new_capacity, kEmpty);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_states[i] != kFull) continue;
      std::size_t j = home(old_slots[i].key);
      while (states_[j] == kFull) j = (j + 1) & mask();
      states_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;
};

}  // namespace geogrid::common
