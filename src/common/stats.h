// Streaming summary statistics.
//
// The GeoGrid evaluation reports the max, mean, and standard deviation of
// the per-node workload index, averaged over many randomly generated
// networks.  RunningStats accumulates those moments in a single pass with
// Welford's numerically stable update; Summary is the frozen result.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace geogrid {

/// Frozen snapshot of a statistic accumulation.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Single-pass accumulator for count/mean/stddev/min/max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel/Chan update).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  /// Population variance (divides by n).
  double variance() const noexcept { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  Summary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Convenience: summary of a value sequence.
Summary summarize(std::span<const double> values) noexcept;

/// p-th percentile (0..100) by linear interpolation; values need not be
/// sorted (a sorted copy is made).
double percentile(std::vector<double> values, double p) noexcept;

}  // namespace geogrid
