// Fixed-bin histogram used by the report renderers (region-size and
// workload-index distributions of Figures 2 and 3) and by test assertions on
// the capacity distribution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace geogrid {

/// Uniform-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Inclusive lower edge of a bin.
  double bin_lower(std::size_t bin) const;

  /// Fraction of samples in a bin (0 when empty).
  double fraction(std::size_t bin) const;

  /// Multi-line ASCII bar rendering, for report output.
  std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace geogrid
