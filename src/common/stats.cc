#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace geogrid {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Summary RunningStats::summary() const noexcept {
  return Summary{n_, mean(), stddev(), min(), max(), sum_};
}

Summary summarize(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.summary();
}

double percentile(std::vector<double> values, double p) noexcept {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace geogrid
