// ASCII rendering of the partitioned plane.
//
// Figures 2 and 3 of the paper are visualizations of a 500-node GeoGrid:
// region outlines with a shade proportional to the region's workload.  We
// reproduce them as terminal art: the plane is rasterized onto a character
// grid, region borders are drawn with box characters, and the interior shade
// encodes the normalized per-region workload index.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace geogrid {

/// One renderable region: its rectangle plus the value driving the shade.
struct ShadedRect {
  Rect rect;
  double value = 0.0;  ///< shade driver (e.g. workload index), >= 0
};

/// Renders the plane as `rows` x `cols` characters. The shade ramp is
/// " .:-=+*#%@" scaled to the maximum value across regions; borders are '|'
/// and '-'.
std::string render_partition(const Rect& plane,
                             const std::vector<ShadedRect>& regions,
                             std::size_t rows = 32, std::size_t cols = 64);

/// Renders a scalar field sampled at cell centers (used to visualize the
/// hot-spot workload field itself).
std::string render_field(const Rect& plane,
                         const std::function<double(Point)>& field,
                         std::size_t rows = 32, std::size_t cols = 64);

}  // namespace geogrid
