#include "common/csv.h"

#include <stdexcept>

namespace geogrid {

CsvWriter::CsvWriter(const std::string& path) : file_(path) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  out_ = &file_;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace geogrid
