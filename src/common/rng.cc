#include "common/rng.h"

#include <cassert>

namespace geogrid {
namespace {

constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's unbiased bounded draw.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: draw landed on `total`.
}

}  // namespace geogrid
