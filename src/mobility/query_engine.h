// Batched parallel query engine for the mobile-user read path.
//
// The paper's location service answers three question shapes: "where is
// user u" (locate), "who is inside this rectangle" (range, the radius-γ
// friend query mapped to its bounding box), and "who are the k nearest
// users to p".  The per-call implementations on ShardedDirectory answer
// each question by walking the live write-side structures — correct
// between batches, but every range call sweeps all R partition regions and
// every k-nearest call sorts all resident stores by rect distance, and
// none of it may overlap ingestion.
//
// QueryEngine is the read path rebuilt around two ideas:
//
//   1. Snapshot isolation.  A batch executes against one epoch-versioned
//      immutable DirectorySnapshot (see directory_snapshot.h), so queries
//      never block ingestion, never tear mid-batch state, and the whole
//      batch observes exactly one epoch.
//   2. Indexed region discovery.  The shared overlay::RegionResolver (the
//      same rect memo the write path's locate fast path uses) carries a
//      uniform spatial grid over the region rects: a range query touches
//      only the grid cells its rect covers instead of scanning all R
//      regions, and k-nearest discovers stores in expanding distance rings
//      with an exact pruning bound instead of ordering every store first.
//
// Batches fan out over a fixed WorkerPool by contiguous request chunks;
// each request is computed entirely by one task against frozen state, and
// chunk boundaries are a pure function of (batch size, task count), so
// results — down to serialized bytes — are identical for every shard count
// and every thread count.  Range partials merge in ascending region-id
// order; k-nearest is exact with ties broken on user id.
//
// Geometry caveat: the resolver reflects the partition as of the last
// applied batch.  Partition mutations (splits/merges) must be quiesced
// relative to query execution, exactly as they must be for ingestion.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/epoch_reclaim.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/worker_pool.h"
#include "mobility/directory_snapshot.h"
#include "mobility/location_store.h"
#include "mobility/sharded_directory.h"
#include "net/codec.h"
#include "overlay/region_resolver.h"

namespace geogrid::mobility {

/// One read request.  Exactly the fields of its kind are meaningful.
struct Query {
  enum class Kind : std::uint8_t {
    kLocate = 0,   ///< where is `user`
    kRange = 1,    ///< everyone inside `rect`
    kNearest = 2,  ///< the `k` users nearest `point`
  };

  Kind kind = Kind::kLocate;
  UserId user{};
  Rect rect{};
  Point point{};
  std::uint32_t k = 0;

  static Query locate(UserId user) {
    Query q;
    q.kind = Kind::kLocate;
    q.user = user;
    return q;
  }
  static Query range(const Rect& rect) {
    Query q;
    q.kind = Kind::kRange;
    q.rect = rect;
    return q;
  }
  static Query nearest(const Point& point, std::uint32_t k) {
    Query q;
    q.kind = Kind::kNearest;
    q.point = point;
    q.k = k;
    return q;
  }
};

/// The answer to one Query, in the result slot matching the request index.
struct QueryResult {
  Query::Kind kind = Query::Kind::kLocate;
  bool found = false;            ///< locate only: record exists
  LocationRecord located{};      ///< locate only: valid when `found`
  std::vector<LocationRecord> records;  ///< range / nearest

  /// Canonical encoding (kind tag + payload).  Equal answers mean equal
  /// bytes — the unit the invariance tests compare.
  void encode(net::Writer& w) const;

  /// Inverse of encode, for the wire client reconstructing an engine
  /// answer from a reply payload.  Throws net::CodecError on malformed
  /// input, like every other decode in the codec.
  static QueryResult decode(net::Reader& r);
};

class QueryEngine {
 public:
  struct Options {
    /// Worker-thread fan-out for a batch.  0 = hardware threads; 1 = fully
    /// serial (no threads spawned).  Results never depend on this.
    std::size_t threads = 0;
  };

  struct Counters {
    std::uint64_t batches = 0;
    std::uint64_t queries = 0;
    std::uint64_t locates = 0;
    std::uint64_t locate_hits = 0;
    std::uint64_t ranges = 0;
    std::uint64_t nearests = 0;
    std::uint64_t records_returned = 0;
    /// Non-empty stores actually merged (range partials + kNN probes) —
    /// the number the indexed discovery keeps far below R * queries.
    std::uint64_t regions_scanned = 0;
    std::uint64_t last_epoch = 0;  ///< epoch of the last snapshot queried
  };

  /// The engine reads the directory's shared RegionResolver and publishes
  /// snapshots through it.  One engine instance serves one querying thread
  /// at a time (run is not re-entrant); any number of engines may share a
  /// directory's snapshots.
  explicit QueryEngine(ShardedDirectory& directory);
  QueryEngine(ShardedDirectory& directory, Options options);

  /// Publishes (or reuses) the directory's snapshot at the current ingest
  /// epoch, then executes the batch against it.  Writer-side convenience:
  /// must not overlap apply_updates, like publish_snapshot itself.
  std::vector<QueryResult> run(std::span<const Query> batch);

  /// Executes the batch against a caller-held snapshot.  Touches only
  /// frozen state — safe while another thread ingests and publishes, which
  /// is exactly the concurrent-reader deployment.
  std::vector<QueryResult> run_on(const DirectorySnapshot& snapshot,
                                  std::span<const Query> batch);

  /// Concurrent-reader hot path: pins this engine's reclamation-domain
  /// reader, executes the batch against the latest published snapshot, and
  /// unpins.  No mutex, no shared_ptr refcount — snapshot lifetime is
  /// guaranteed by epoch-based reclamation, so any number of engines on
  /// separate threads acquire snapshots without writing one shared byte.
  /// Before the first publish the batch answers as an empty directory.
  std::vector<QueryResult> run_pinned(std::span<const Query> batch);

  std::size_t thread_count() const noexcept { return pool_.task_count(); }
  const Counters& counters() const noexcept { return counters_; }

  /// Canonical serialization of a whole result batch: count then each
  /// result's encoding in request order.
  static void serialize(net::Writer& w, std::span<const QueryResult> results);

 private:
  /// Per-task working state, reused across every query of a task's chunk
  /// so region discovery never allocates in steady state.
  struct Scratch {
    std::vector<RegionId> regions;
    overlay::RegionResolver::NearScratch near;
    std::vector<double> knn_dists;  ///< distances parallel to the kNN best
  };

  /// Persistent per-task slab, one cacheline-aligned slot per pool task.
  /// Task t always runs on the same pool thread (fixed affinity), so its
  /// scratch vectors stay warm in that thread's cache across batches, and
  /// the per-task counter tallies written during a batch never false-share
  /// with a neighbouring task's.
  struct alignas(64) TaskState {
    Scratch scratch;
    Counters tally;
  };

  void exec(const DirectorySnapshot& snapshot, const Query& q,
            QueryResult& out, Scratch& scratch, Counters& c) const;

  ShardedDirectory& directory_;
  const overlay::RegionResolver& resolver_;
  Counters counters_;
  common::WorkerPool pool_;
  std::vector<TaskState> task_states_;
  common::EpochDomain::Reader reader_;  ///< run_pinned's domain slot
};

}  // namespace geogrid::mobility
