#include "mobility/directory.h"

#include <algorithm>

namespace geogrid::mobility {

LocationDirectory::ApplyResult LocationDirectory::apply_update(
    const LocationRecord& record) {
  ApplyResult result;
  RegionId prev = kInvalidRegion;
  if (const RegionId* it = user_region_.find(record.user)) prev = *it;
  const RegionId hint = partition_.has_region(prev) ? prev : kInvalidRegion;
  result.region = partition_.locate(record.position, hint);
  if (result.region == kInvalidRegion) return result;  // empty partition

  if (prev != kInvalidRegion && prev != result.region) {
    // Boundary crossing: a newer report already in the old store (possible
    // only if the caller reordered its own reports) keeps authority.
    auto& old_store = stores_[prev];
    if (const auto old_seq = old_store.seq_of(record.user);
        old_seq && *old_seq >= record.seq) {
      ++counters_.updates_stale;
      return result;
    }
    old_store.erase(record.user);
    result.handoff = true;
    ++counters_.handoffs;
  }

  auto [store, inserted] =
      stores_.try_emplace(result.region, LocationStore(cell_size_));
  (void)inserted;
  result.applied = store->ingest(record);
  if (result.applied) {
    user_region_[record.user] = result.region;
    ++counters_.updates_applied;
  } else {
    ++counters_.updates_stale;
  }
  return result;
}

std::optional<LocationRecord> LocationDirectory::locate(UserId user) {
  if (const RegionId* region = user_region_.find(user)) {
    if (const LocationStore* store = stores_.find(*region)) {
      if (auto rec = store->locate(user)) {
        ++counters_.locate_hits;
        return rec;
      }
    }
  }
  ++counters_.locate_misses;
  return std::nullopt;
}

RegionId LocationDirectory::region_of(UserId user) const {
  const RegionId* region = user_region_.find(user);
  return region == nullptr ? kInvalidRegion : *region;
}

const LocationStore* LocationDirectory::store(RegionId region) const {
  return stores_.find(region);
}

std::vector<LocationRecord> LocationDirectory::range(const Rect& rect) const {
  std::vector<LocationRecord> out;
  for (const auto& [id, region] : partition_.regions()) {
    if (!region.rect.intersects(rect) && !region.rect.edge_adjacent(rect)) {
      continue;
    }
    const LocationStore* store = stores_.find(id);
    if (store == nullptr) continue;
    auto part = store->range(rect);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<LocationRecord> LocationDirectory::k_nearest(
    const Point& p, std::size_t k) const {
  std::vector<LocationRecord> best;
  if (k == 0) return best;
  // Regions sorted by how close their rect can possibly get to p; once the
  // next region's floor distance exceeds the kth-best hit, stop.
  std::vector<std::pair<double, RegionId>> order;
  order.reserve(stores_.size());
  stores_.for_each([&](RegionId id, const LocationStore& store) {
    if (store.empty() || !partition_.has_region(id)) return;
    order.emplace_back(partition_.region(id).rect.distance_to(p), id);
  });
  std::sort(order.begin(), order.end());
  const auto better = [&p](const LocationRecord& a, const LocationRecord& b) {
    const double da = distance(a.position, p);
    const double db = distance(b.position, p);
    if (da != db) return da < db;
    return a.user < b.user;
  };
  for (const auto& [floor_dist, id] : order) {
    if (best.size() >= k && floor_dist > distance(best.back().position, p)) {
      break;
    }
    for (const LocationRecord& rec : stores_.find(id)->k_nearest(p, k)) {
      const auto pos = std::lower_bound(best.begin(), best.end(), rec, better);
      best.insert(pos, rec);
      if (best.size() > k) best.pop_back();
    }
  }
  return best;
}

}  // namespace geogrid::mobility
