#include "mobility/directory.h"

#include <algorithm>

namespace geogrid::mobility {

LocationDirectory::ApplyResult LocationDirectory::apply_update(
    const LocationRecord& record) {
  ApplyResult result;
  RegionId prev = kInvalidRegion;
  if (const auto it = user_region_.find(record.user);
      it != user_region_.end()) {
    prev = it->second;
  }
  const RegionId hint = partition_.has_region(prev) ? prev : kInvalidRegion;
  result.region = partition_.locate(record.position, hint);
  if (result.region == kInvalidRegion) return result;  // empty partition

  if (prev != kInvalidRegion && prev != result.region) {
    // Boundary crossing: a newer report already in the old store (possible
    // only if the caller reordered its own reports) keeps authority.
    auto& old_store = stores_[prev];
    if (const LocationRecord* old = old_store.locate(record.user);
        old != nullptr && old->seq >= record.seq) {
      ++counters_.updates_stale;
      return result;
    }
    old_store.erase(record.user);
    result.handoff = true;
    ++counters_.handoffs;
  }

  auto [it, inserted] =
      stores_.try_emplace(result.region, LocationStore(cell_size_));
  result.applied = it->second.ingest(record);
  if (result.applied) {
    user_region_[record.user] = result.region;
    ++counters_.updates_applied;
  } else {
    ++counters_.updates_stale;
  }
  return result;
}

const LocationRecord* LocationDirectory::locate(UserId user) {
  const auto it = user_region_.find(user);
  if (it != user_region_.end()) {
    if (const auto sit = stores_.find(it->second); sit != stores_.end()) {
      if (const LocationRecord* rec = sit->second.locate(user)) {
        ++counters_.locate_hits;
        return rec;
      }
    }
  }
  ++counters_.locate_misses;
  return nullptr;
}

RegionId LocationDirectory::region_of(UserId user) const {
  const auto it = user_region_.find(user);
  return it == user_region_.end() ? kInvalidRegion : it->second;
}

const LocationStore* LocationDirectory::store(RegionId region) const {
  const auto it = stores_.find(region);
  return it == stores_.end() ? nullptr : &it->second;
}

std::vector<LocationRecord> LocationDirectory::range(const Rect& rect) const {
  std::vector<LocationRecord> out;
  for (const auto& [id, region] : partition_.regions()) {
    if (!region.rect.intersects(rect) && !region.rect.edge_adjacent(rect)) {
      continue;
    }
    const auto it = stores_.find(id);
    if (it == stores_.end()) continue;
    auto part = it->second.range(rect);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<LocationRecord> LocationDirectory::k_nearest(
    const Point& p, std::size_t k) const {
  std::vector<LocationRecord> best;
  if (k == 0) return best;
  // Regions sorted by how close their rect can possibly get to p; once the
  // next region's floor distance exceeds the kth-best hit, stop.
  std::vector<std::pair<double, RegionId>> order;
  order.reserve(stores_.size());
  for (const auto& [id, store] : stores_) {
    if (store.empty() || !partition_.has_region(id)) continue;
    order.emplace_back(partition_.region(id).rect.distance_to(p), id);
  }
  std::sort(order.begin(), order.end());
  const auto better = [&p](const LocationRecord& a, const LocationRecord& b) {
    const double da = distance(a.position, p);
    const double db = distance(b.position, p);
    if (da != db) return da < db;
    return a.user < b.user;
  };
  for (const auto& [floor_dist, id] : order) {
    if (best.size() >= k && floor_dist > distance(best.back().position, p)) {
      break;
    }
    for (const LocationRecord& rec : stores_.at(id).k_nearest(p, k)) {
      const auto pos = std::lower_bound(best.begin(), best.end(), rec, better);
      best.insert(pos, rec);
      if (best.size() > k) best.pop_back();
    }
  }
  return best;
}

}  // namespace geogrid::mobility
