// Sharded, batched, parallel ingestion engine for the mobile-user layer.
//
// The paper's workload is dominated by location updates, and spatial
// partitioning makes region state independent: a record lives in exactly
// the region covering its position, so two updates landing in different
// regions never touch the same store.  ShardedDirectory exploits that by
// assigning every region to one of K shards (stable hash of the region id,
// so the assignment survives partition changes); each shard owns its
// regions' LocationStores, and a batch of updates is drained by K workers
// with zero locking on the hot structures.  The user -> region map lives
// with the dispatcher (the per-user memo below), which is the single
// authority on which region currently holds a user.
//
// A batch runs in three phases:
//
//   A. locate (parallel) — each record's target region is resolved through
//      the shared overlay::RegionResolver against a frozen per-user
//      {region, seq} memo: when the cached region's rect still covers the
//      new position (the overwhelmingly common case — a user rarely leaves
//      its region between reports) the partition walk is skipped entirely.
//      The resolver invalidates on Partition::geometry_version(), so
//      splits/merges are observed at the next batch.  Resolution is a pure
//      function of the frozen state, so the result is independent of how
//      records are chunked over threads.
//   B. dispatch (serial) — the seq guard filters stale/replayed records
//      against the per-user memo, boundary crossings enqueue a small
//      eviction message to the shard owning the user's previous region,
//      and the surviving record is appended to its target shard's queue.
//      This is the only serial stage and does O(1) flat-map work per
//      record.
//   C. drain (parallel) — each worker drains exactly one shard's queue in
//      dispatch order.  Evictions use erase_if_stale, so the seq-guard
//      idempotence invariant holds even if an eviction is replayed.
//
// Determinism contract: each region's store receives the same operation
// sequence in the same order for every shard count and every thread
// interleaving — ops for one region always live in one queue, queues
// preserve dispatch order, and the batch barrier between B and C means no
// worker races the dispatcher.  serialize() writes stores sorted by region
// id with canonically-ordered records, so ShardedDirectory(K=1) and (K=8)
// produce byte-identical snapshots from the same update trace; a tier-1
// test pins exactly that.
//
// Read side: the per-call locate/range/k_nearest below walk the live
// structures and are valid only between batches (the serial reference
// path).  Readers that must overlap ingestion go through publish_snapshot /
// current_snapshot: an epoch-versioned immutable DirectorySnapshot built
// copy-on-write at shard granularity (only shards that drained an op since
// the last publish are recopied).  mobility::QueryEngine is the batched
// consumer of those snapshots.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include <atomic>

#include "common/epoch_reclaim.h"
#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/worker_pool.h"
#include "mobility/directory_snapshot.h"
#include "mobility/location_store.h"
#include "net/codec.h"
#include "overlay/partition.h"
#include "overlay/region_resolver.h"

namespace geogrid::mobility {

class ShardedDirectory {
 public:
  struct Options {
    /// Shard/worker count.  0 = hardware threads; 1 = fully serial (no
    /// worker threads are spawned, matching the single-threaded engine).
    std::size_t shards = 0;
    double cell_size = 1.0;
    /// Record the per-epoch list of users whose record was applied, so
    /// incremental consumers (pubsub::NotificationEngine) can match only
    /// the ingest delta instead of rescanning the population.  Off by
    /// default: the hot ingest path stays byte-for-byte untouched.
    bool track_deltas = false;
    /// Epochs of delta history retained before the oldest list is
    /// discarded; a consumer that fell further behind must full-rescan.
    std::size_t delta_retention = 1024;
  };

  struct Counters {
    std::uint64_t updates_applied = 0;
    std::uint64_t updates_stale = 0;  ///< rejected by the seq guard
    std::uint64_t handoffs = 0;       ///< updates that crossed a region edge
    std::uint64_t cross_shard_handoffs = 0;  ///< handoffs that crossed shards
    std::uint64_t batches = 0;
    std::uint64_t locate_fast_path = 0;  ///< rect-memo hits (no partition walk)
    std::uint64_t snapshots_published = 0;   ///< fresh DirectorySnapshots built
    std::uint64_t snapshot_slices_copied = 0;  ///< shard slices recopied
    std::uint64_t migration_passes = 0;    ///< migrate_regions calls
    std::uint64_t migrated_records = 0;    ///< records re-homed by migration
    std::uint64_t migration_dropped = 0;   ///< transfers vetoed by the filter
    std::uint64_t snapshots_retired = 0;   ///< superseded snapshots queued
    std::uint64_t snapshots_reclaimed = 0;  ///< retired snapshots freed
  };

  /// What one apply_update did (single-record convenience mirror of
  /// LocationDirectory::ApplyResult).
  struct ApplyResult {
    RegionId region = kInvalidRegion;  ///< region holding the user's record
    bool applied = false;
    bool handoff = false;
  };

  explicit ShardedDirectory(const overlay::Partition& partition);
  ShardedDirectory(const overlay::Partition& partition, Options options);

  ShardedDirectory(const ShardedDirectory&) = delete;
  ShardedDirectory& operator=(const ShardedDirectory&) = delete;

  /// Applies a batch of reports.  Results are independent of shard count
  /// and thread interleaving (see determinism contract above).
  void apply_updates(std::span<const LocationRecord> batch);

  /// Single-record convenience: a batch of one.
  ApplyResult apply_update(const LocationRecord& record);

  /// Decides whether one record's cross-region transfer is delivered this
  /// pass.  Returning false models a dropped transfer message: the record
  /// stays in its old store (and keeps answering point lookups there) until
  /// a later migrate_regions pass retries it.
  using MigrationFilter =
      std::function<bool(UserId user, RegionId from, RegionId to)>;

  /// What one migrate_regions pass did.
  struct MigrationReport {
    std::uint64_t scanned = 0;  ///< records inspected across all stores
    std::uint64_t moved = 0;    ///< records re-homed to their covering region
    std::uint64_t dropped = 0;  ///< transfers vetoed by the filter
    std::uint64_t stores_retired = 0;  ///< emptied dead-region stores freed
    /// Every misplaced record either moved or was deliberately dropped;
    /// a clean pass (dropped == 0) leaves the directory region-consistent.
    bool complete() const noexcept { return dropped == 0; }
  };

  /// Re-homes records stranded by partition geometry changes (split, merge,
  /// failover repair): every record whose region was retired or no longer
  /// covers its position moves to the covering region, byte-preserving its
  /// seq and timestamp.  Misplacement is judged by the same resolver path
  /// ingestion uses, so plane-border semantics match exactly.  Transfers
  /// apply in user-id order, keeping the result byte-identical for every
  /// shard count.  A pass that moved anything counts as one ingest epoch
  /// and its users join the delta history — consumers watching
  /// changed_since observe users that vanished from a removed region even
  /// though no report arrived.  Writer-side only, like apply_updates.
  MigrationReport migrate_regions(const MigrationFilter& filter = {});

  /// Point lookup through the per-user memo (no partition access).
  std::optional<LocationRecord> locate(UserId user) const;

  /// The region currently holding `user`, or kInvalidRegion.
  RegionId region_of(UserId user) const;

  /// The store of one region (null when no user ever landed there).
  const LocationStore* store(RegionId region) const;

  /// All records inside `rect`, gathered across every intersecting region.
  /// Serial reference path: scans all partition regions per call.
  std::vector<LocationRecord> range(const Rect& rect) const;

  /// The k records nearest `p` across every shard.  Serial reference path:
  /// orders all resident stores by rect distance per call.
  std::vector<LocationRecord> k_nearest(const Point& p, std::size_t k) const;

  /// Publishes an immutable snapshot of the current state, stamped with
  /// the ingest epoch (applied-batch count).  Copy-on-write: only shards
  /// dirtied since the previous publish are recopied (in parallel), clean
  /// slices are shared with prior snapshots, and publishing twice at the
  /// same epoch returns the same snapshot.  Writer-side only: must not
  /// overlap apply_updates.
  std::shared_ptr<const DirectorySnapshot> publish_snapshot();

  /// The latest published snapshot (null before the first publish).  Safe
  /// to call from any thread, concurrently with ingestion; the returned
  /// snapshot never changes.  This is the refcounted slow path: each call
  /// locks the publication mutex and bumps the control block — use the
  /// epoch-reclamation pair below on the per-batch read hot path.
  std::shared_ptr<const DirectorySnapshot> current_snapshot() const;

  /// Claims a slot in the snapshot reclamation domain for a long-lived
  /// reader thread (see common/epoch_reclaim.h).  The reader must not
  /// outlive this directory.
  common::EpochDomain::Reader register_reader() const {
    return reclaim_domain_.register_reader();
  }

  /// Refcount-free snapshot acquisition: the caller must be pinned
  /// (EpochDomain::Guard over a registered reader), and the pointer is
  /// valid exactly until the pin is released.  Null before the first
  /// publish.  Unlike current_snapshot(), concurrent readers touch no
  /// shared mutable word — acquisition is two stores to the reader's own
  /// cacheline plus one load.
  const DirectorySnapshot* pinned_snapshot() const noexcept {
    return live_snapshot_.load(std::memory_order_acquire);
  }

  /// Ingest epoch: number of non-empty batches applied so far.
  std::uint64_t ingest_epoch() const noexcept { return counters_.batches; }

  /// One ingest epoch's applied-user list, in dispatch order (a user whose
  /// record was applied twice in one batch appears twice).
  struct EpochDelta {
    std::uint64_t epoch = 0;
    std::vector<UserId> users;
  };

  bool tracks_deltas() const noexcept { return track_deltas_; }

  /// Retained per-epoch applied-user lists, oldest first.  Always empty
  /// unless Options::track_deltas; epochs where every record was rejected
  /// by the seq guard contribute no entry.
  const std::deque<EpochDelta>& epoch_deltas() const noexcept {
    return deltas_;
  }

  /// Highest epoch whose delta has been discarded (0 = full history kept).
  std::uint64_t delta_floor() const noexcept { return delta_floor_; }

  /// Sorted, deduplicated union of every user applied in epochs
  /// (since_epoch, ingest_epoch()].  nullopt when since_epoch predates the
  /// retained history (or deltas are not tracked): the caller must fall
  /// back to a full rescan.
  std::optional<std::vector<UserId>> changed_since(
      std::uint64_t since_epoch) const;

  /// Discards delta history up to and including `epoch`.  A consumer that
  /// drained through `epoch` calls this to bound retained memory.
  void trim_deltas(std::uint64_t epoch);

  std::size_t size() const noexcept { return user_state_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  const Counters& counters() const noexcept { return counters_; }

  /// The shared region-resolution cache (rect memo + spatial region grid).
  /// Refreshed by the write path each batch; the query engine reads it.
  const overlay::RegionResolver& resolver() const noexcept {
    return resolver_;
  }
  const overlay::Partition& partition() const noexcept { return partition_; }

  /// Canonical snapshot of every store: regions sorted by id, records
  /// sorted by user.  Empty stores are skipped, so a directory whose users
  /// all migrated out of a region serializes identically to one that never
  /// populated it.  Equal contents produce equal bytes for any K.
  void serialize(net::Writer& w) const;

 private:
  /// One queued store operation.  For evictions, `rec.user` names the user
  /// and `rec.seq` carries max_seq for the erase_if_stale guard.
  struct ShardOp {
    LocationRecord rec{};
    RegionId region{};
    bool evict = false;
  };

  /// Cacheline-aligned: shard s is written only by task s during the
  /// parallel phases, and adjacent shards' queue/store headers must not
  /// share a line or phase C serializes on coherence traffic instead of
  /// running independently.
  struct alignas(64) Shard {
    std::vector<ShardOp> queue;
    common::FlatMap<RegionId, LocationStore> stores;
    bool dirty = false;  ///< drained an op since the last publish
  };

  /// Per-task phase-A tallies, one cacheline each (written concurrently by
  /// neighbouring tasks every batch).  Persistent across batches so the
  /// parallel locate phase allocates nothing in steady state.
  struct alignas(64) PhaseATally {
    std::uint64_t fast_hits = 0;
    std::uint64_t new_users = 0;
  };

  std::size_t shard_of(RegionId region) const noexcept {
    return shard_of_region(region, shards_.size());
  }

  /// Phase C: drains every shard queue in dispatch order, one worker each.
  void drain_queues();

  const overlay::Partition& partition_;
  double cell_size_;
  bool track_deltas_;
  std::size_t delta_retention_;

  // Dispatcher state (touched only between batch barriers).
  common::FlatMap<UserId, UserSlot> user_state_;
  overlay::RegionResolver resolver_;
  std::vector<RegionId> targets_;  ///< phase-A output, one per batch record
  /// Phase-A memo-entry pointers, one per batch record (null = new user).
  /// Valid through phase B: the memo is reserved for the batch's new
  /// users up front and open addressing never moves slots on insert.
  std::vector<UserSlot*> states_;
  Counters counters_;

  // Delta history (dispatcher state): one applied-user list per tracked
  // epoch, bounded by delta_retention_; delta_floor_ marks trimmed history.
  std::deque<EpochDelta> deltas_;
  std::uint64_t delta_floor_ = 0;

  common::WorkerPool pool_;
  std::vector<Shard> shards_;
  std::vector<PhaseATally> phase_a_tally_;  ///< one aligned slot per task

  // Snapshot publication state.  slice_cache_ holds the last published
  // copy of each shard's store map; published_ is swapped under
  // snapshot_mutex_ so current_snapshot() is safe from reader threads.
  // live_snapshot_ mirrors published_.get() for the refcount-free pinned
  // read path; superseded snapshots park in retired_ until the
  // reclamation domain proves no pinned reader can still reach them.
  std::vector<std::shared_ptr<const DirectorySnapshot::StoreMap>> slice_cache_;
  std::shared_ptr<const DirectorySnapshot> published_;
  mutable std::mutex snapshot_mutex_;
  std::atomic<const DirectorySnapshot*> live_snapshot_{nullptr};
  mutable common::EpochDomain reclaim_domain_;
  struct RetiredSnapshot {
    std::shared_ptr<const DirectorySnapshot> snapshot;
    std::uint64_t retired_at = 0;
  };
  std::vector<RetiredSnapshot> retired_;  ///< writer-side, publish-ordered
};

}  // namespace geogrid::mobility
