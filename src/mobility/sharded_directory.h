// Sharded, batched, parallel ingestion engine for the mobile-user layer.
//
// The paper's workload is dominated by location updates, and spatial
// partitioning makes region state independent: a record lives in exactly
// the region covering its position, so two updates landing in different
// regions never touch the same store.  ShardedDirectory exploits that by
// assigning every region to one of K shards (stable hash of the region id,
// so the assignment survives partition changes); each shard owns its
// regions' LocationStores, and a batch of updates is drained by K workers
// with zero locking on the hot structures.  The user -> region map lives
// with the dispatcher (the per-user memo below), which is the single
// authority on which region currently holds a user.
//
// A batch runs in three phases:
//
//   A. locate (parallel) — each record's target region is resolved against
//      a frozen per-user {region, seq} memo: when the cached region's rect
//      still covers the new position (the overwhelmingly common case — a
//      user rarely leaves its region between reports) the partition walk is
//      skipped entirely.  Rects are memoized per region and invalidated by
//      Partition::geometry_version(), so splits/merges are observed at the
//      next batch.  Resolution is a pure function of the frozen state, so
//      the result is independent of how records are chunked over threads.
//   B. dispatch (serial) — the seq guard filters stale/replayed records
//      against the per-user memo, boundary crossings enqueue a small
//      eviction message to the shard owning the user's previous region,
//      and the surviving record is appended to its target shard's queue.
//      This is the only serial stage and does O(1) flat-map work per
//      record.
//   C. drain (parallel) — each worker drains exactly one shard's queue in
//      dispatch order.  Evictions use erase_if_stale, so the seq-guard
//      idempotence invariant holds even if an eviction is replayed.
//
// Determinism contract: each region's store receives the same operation
// sequence in the same order for every shard count and every thread
// interleaving — ops for one region always live in one queue, queues
// preserve dispatch order, and the batch barrier between B and C means no
// worker races the dispatcher.  serialize() writes stores sorted by region
// id with canonically-ordered records, so ShardedDirectory(K=1) and (K=8)
// produce byte-identical snapshots from the same update trace; a tier-1
// test pins exactly that.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "mobility/location_store.h"
#include "net/codec.h"
#include "overlay/partition.h"

namespace geogrid::mobility {

class ShardedDirectory {
 public:
  struct Options {
    /// Shard/worker count.  0 = hardware threads; 1 = fully serial (no
    /// worker threads are spawned, matching the single-threaded engine).
    std::size_t shards = 0;
    double cell_size = 1.0;
  };

  struct Counters {
    std::uint64_t updates_applied = 0;
    std::uint64_t updates_stale = 0;  ///< rejected by the seq guard
    std::uint64_t handoffs = 0;       ///< updates that crossed a region edge
    std::uint64_t cross_shard_handoffs = 0;  ///< handoffs that crossed shards
    std::uint64_t batches = 0;
    std::uint64_t locate_fast_path = 0;  ///< rect-memo hits (no partition walk)
  };

  /// What one apply_update did (single-record convenience mirror of
  /// LocationDirectory::ApplyResult).
  struct ApplyResult {
    RegionId region = kInvalidRegion;  ///< region holding the user's record
    bool applied = false;
    bool handoff = false;
  };

  explicit ShardedDirectory(const overlay::Partition& partition);
  ShardedDirectory(const overlay::Partition& partition, Options options);
  ~ShardedDirectory();

  ShardedDirectory(const ShardedDirectory&) = delete;
  ShardedDirectory& operator=(const ShardedDirectory&) = delete;

  /// Applies a batch of reports.  Results are independent of shard count
  /// and thread interleaving (see determinism contract above).
  void apply_updates(std::span<const LocationRecord> batch);

  /// Single-record convenience: a batch of one.
  ApplyResult apply_update(const LocationRecord& record);

  /// Point lookup through the per-user memo (no partition access).
  std::optional<LocationRecord> locate(UserId user) const;

  /// The region currently holding `user`, or kInvalidRegion.
  RegionId region_of(UserId user) const;

  /// The store of one region (null when no user ever landed there).
  const LocationStore* store(RegionId region) const;

  /// All records inside `rect`, gathered across every intersecting region.
  std::vector<LocationRecord> range(const Rect& rect) const;

  /// The k records nearest `p` across every shard.
  std::vector<LocationRecord> k_nearest(const Point& p, std::size_t k) const;

  std::size_t size() const noexcept { return user_state_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  const Counters& counters() const noexcept { return counters_; }

  /// Canonical snapshot of every store: regions sorted by id, records
  /// sorted by user.  Equal contents produce equal bytes for any K.
  void serialize(net::Writer& w) const;

 private:
  struct UserState {
    RegionId region = kInvalidRegion;  ///< region of the last applied report
    std::uint64_t seq = 0;             ///< seq of the last applied report
  };

  /// One queued store operation.  For evictions, `rec.user` names the user
  /// and `rec.seq` carries max_seq for the erase_if_stale guard.
  struct ShardOp {
    LocationRecord rec{};
    RegionId region{};
    bool evict = false;
  };

  struct Shard {
    std::vector<ShardOp> queue;
    common::FlatMap<RegionId, LocationStore> stores;
  };

  std::size_t shard_of(RegionId region) const noexcept {
    return shards_.size() == 1
               ? 0
               : static_cast<std::size_t>(common::mix_hash(region.value) %
                                          shards_.size());
  }

  /// Phase-A target resolution for one record whose memo entry is `state`
  /// (null for a never-seen user).  Pure read of frozen state: safe to
  /// call from several threads at once.
  RegionId resolve_target(const UserState* state, const Point& position,
                          bool* fast) const;

  /// Rebuilds the region-id -> rect memo when the partition geometry
  /// changed since the last batch.
  void refresh_region_rects();

  /// Runs fn(0..shards-1): fn(0) on the caller, the rest on the pool.
  void run_parallel(const std::function<void(std::size_t)>& fn);
  void worker_loop(std::size_t worker_index);

  const overlay::Partition& partition_;
  double cell_size_;

  // Dispatcher state (touched only between batch barriers).
  common::FlatMap<UserId, UserState> user_state_;
  common::FlatMap<RegionId, Rect> region_rects_;
  std::uint64_t cached_geometry_version_ = ~std::uint64_t{0};
  std::vector<RegionId> targets_;  ///< phase-A output, one per batch record
  /// Phase-A memo-entry pointers, one per batch record (null = new user).
  /// Valid through phase B: the memo is reserved for the batch's new
  /// users up front and open addressing never moves slots on insert.
  std::vector<UserState*> states_;
  Counters counters_;

  std::vector<Shard> shards_;

  // Worker pool (spawned only when shards > 1).
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  bool stop_ = false;
};

}  // namespace geogrid::mobility
