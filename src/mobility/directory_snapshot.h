// Epoch-versioned immutable read view of a sharded location directory.
//
// The write side (ShardedDirectory) mutates its per-shard stores batch by
// batch; readers that walked those live structures would tear — half a
// batch applied, a record mid-handoff present in two regions or neither.
// DirectorySnapshot is the read side's answer: an immutable copy of the
// user -> region map plus one store-map slice per shard, stamped with the
// ingest epoch (number of applied batches) it reflects.  A snapshot is
// reached only through shared_ptr<const ...>, so a reader holding one sees
// exactly one epoch for as long as it keeps the pointer, no matter how far
// the writer advances — the isolation contract the concurrent
// ingest-while-query test pins.
//
// Publication is copy-on-write at shard granularity: the writer republishes
// only the slices whose shard drained an operation since the last publish,
// and untouched slices are shared between consecutive snapshots.  Copying
// is the writer's cost, off the query path entirely; queries pay the same
// flat-map probes they would against the live structures.
//
// Store content under a region id is byte-identical for every shard count
// (the ingestion determinism contract), and the slice layout only routes
// lookups, so two snapshots of equivalent directories with different K
// serialize to identical bytes — which is what lets the query engine
// promise shard-count-invariant results.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "mobility/location_store.h"
#include "net/codec.h"

namespace geogrid::mobility {

/// Where one user's latest applied report lives: the owning region and the
/// sequence number guarding against stale/replayed reports.
struct UserSlot {
  RegionId region = kInvalidRegion;
  std::uint64_t seq = 0;
};

/// Stable region -> shard assignment shared by the live directory and its
/// snapshots (hash of the region id, so it survives partition changes).
inline std::size_t shard_of_region(RegionId region,
                                   std::size_t shards) noexcept {
  return shards == 1 ? 0
                     : static_cast<std::size_t>(common::mix_hash(region.value) %
                                                shards);
}

class DirectorySnapshot {
 public:
  using StoreMap = common::FlatMap<RegionId, LocationStore>;

  DirectorySnapshot(std::uint64_t epoch,
                    common::FlatMap<UserId, UserSlot> users,
                    std::vector<std::shared_ptr<const StoreMap>> slices)
      : epoch_(epoch), users_(std::move(users)), slices_(std::move(slices)) {}

  /// Delta-stamped snapshot: `delta` is the sorted deduplicated list of
  /// users whose record was applied in epochs (delta_base_epoch, epoch],
  /// or nullopt when that history was not tracked / already trimmed.
  DirectorySnapshot(std::uint64_t epoch,
                    common::FlatMap<UserId, UserSlot> users,
                    std::vector<std::shared_ptr<const StoreMap>> slices,
                    std::uint64_t delta_base_epoch,
                    std::optional<std::vector<UserId>> delta)
      : epoch_(epoch),
        users_(std::move(users)),
        slices_(std::move(slices)),
        delta_base_(delta_base_epoch),
        delta_(std::move(delta)) {}

  /// Ingest epoch (applied-batch count) this snapshot reflects.
  std::uint64_t epoch() const noexcept { return epoch_; }

  std::size_t size() const noexcept { return users_.size(); }
  std::size_t shard_count() const noexcept { return slices_.size(); }

  /// The region holding `user` at this epoch, or kInvalidRegion.
  RegionId region_of(UserId user) const {
    const UserSlot* slot = users_.find(user);
    return slot == nullptr ? kInvalidRegion : slot->region;
  }

  /// The frozen store of one region (null when no user lived there).
  const LocationStore* store(RegionId region) const {
    return slices_[shard_of_region(region, slices_.size())]->find(region);
  }

  /// Point lookup through the frozen user -> region map.
  std::optional<LocationRecord> locate(UserId user) const {
    const UserSlot* slot = users_.find(user);
    if (slot == nullptr) return std::nullopt;
    const LocationStore* st = store(slot->region);
    return st == nullptr ? std::nullopt : st->locate(user);
  }

  /// Reusable working state for locate_many (the sort scratch), so a
  /// caller draining every epoch never reallocates it.
  struct LocateScratch {
    /// (shard|region sort key, input index) pairs.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  };

  /// Batched point lookup: sets out[i] = locate(users[i]) for every i,
  /// with the store probes grouped by (shard, region) so consecutive
  /// lookups hit the same slice and store maps instead of ping-ponging
  /// across shards — the access pattern a per-user locate loop produces.
  /// `out` is resized to users.size(); results land at input positions,
  /// so the output is independent of the internal grouping.
  void locate_many(std::span<const UserId> users, LocateScratch& scratch,
                   std::vector<std::optional<LocationRecord>>& out) const;

  /// Epoch of the previously published snapshot this one's delta is
  /// relative to; the delta covers exactly (delta_base_epoch, epoch].
  std::uint64_t delta_base_epoch() const noexcept { return delta_base_; }

  /// Whether this snapshot carries a changed-user delta (the directory
  /// tracked deltas and retained full history since the base epoch).
  bool has_delta() const noexcept { return delta_.has_value(); }

  /// Users whose record was applied in (delta_base_epoch, epoch], sorted
  /// by id, deduplicated.  Empty span when !has_delta().
  std::span<const UserId> delta() const noexcept {
    return delta_ ? std::span<const UserId>(*delta_) : std::span<const UserId>{};
  }

  /// Every user resident at this epoch, sorted by id, appended to `out` —
  /// the full-rescan fallback for consumers whose delta history was lost.
  void collect_users(std::vector<UserId>& out) const;

  /// Canonical serialization: regions sorted by id, records by user —
  /// identical bytes to ShardedDirectory::serialize at the same epoch.
  void serialize(net::Writer& w) const;

 private:
  std::uint64_t epoch_;
  common::FlatMap<UserId, UserSlot> users_;
  std::vector<std::shared_ptr<const StoreMap>> slices_;
  std::uint64_t delta_base_ = 0;
  std::optional<std::vector<UserId>> delta_;
};

}  // namespace geogrid::mobility
