#include "mobility/sharded_directory.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace geogrid::mobility {

ShardedDirectory::ShardedDirectory(const overlay::Partition& partition)
    : ShardedDirectory(partition, Options{}) {}

ShardedDirectory::ShardedDirectory(const overlay::Partition& partition,
                                   Options options)
    : partition_(partition),
      cell_size_(options.cell_size),
      track_deltas_(options.track_deltas),
      delta_retention_(options.delta_retention < 1 ? 1
                                                   : options.delta_retention),
      resolver_(partition),
      pool_(options.shards),
      shards_(pool_.task_count()),
      phase_a_tally_(pool_.task_count()) {}

void ShardedDirectory::apply_updates(std::span<const LocationRecord> batch) {
  if (batch.empty()) return;
  resolver_.refresh();
  ++counters_.batches;

  // Phase A: resolve target regions in parallel against the frozen memo.
  // RegionResolver::resolve is a pure read of user_state_/resolver_/
  // partition_, so chunking cannot change any record's answer.  The
  // memo-entry pointer found here is reused by phase B (one hash probe per
  // record, not two); reserving the memo for the batch's new users keeps
  // it valid across the phase-B inserts.
  targets_.resize(batch.size());
  states_.resize(batch.size());
  const std::size_t chunks = shards_.size();
  std::uint64_t fast_hits = 0;
  std::uint64_t new_users = 0;
  if (chunks == 1) {
    bool fast = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      fast = false;
      states_[i] = user_state_.find(batch[i].user);
      const RegionId hint =
          states_[i] == nullptr ? kInvalidRegion : states_[i]->region;
      targets_[i] = resolver_.resolve(batch[i].position, hint, &fast);
      fast_hits += fast ? 1 : 0;
      new_users += states_[i] == nullptr ? 1 : 0;
    }
  } else {
    // Task c always lands on the same pool thread (fixed affinity), and
    // its tally slot is alone on a cacheline — the parallel locate phase
    // writes nothing shared and allocates nothing.
    pool_.run([&](std::size_t c) {
      PhaseATally& tally = phase_a_tally_[c];
      tally = PhaseATally{};
      const std::size_t lo = batch.size() * c / chunks;
      const std::size_t hi = batch.size() * (c + 1) / chunks;
      bool fast = false;
      for (std::size_t i = lo; i < hi; ++i) {
        fast = false;
        states_[i] = user_state_.find(batch[i].user);
        const RegionId hint =
            states_[i] == nullptr ? kInvalidRegion : states_[i]->region;
        targets_[i] = resolver_.resolve(batch[i].position, hint, &fast);
        tally.fast_hits += fast ? 1 : 0;
        tally.new_users += states_[i] == nullptr ? 1 : 0;
      }
    });
    for (const PhaseATally& t : phase_a_tally_) {
      fast_hits += t.fast_hits;
      new_users += t.new_users;
    }
  }
  counters_.locate_fast_path += fast_hits;
  if (new_users > 0) {
    // Pre-size the memo so the phase-B try_emplace loop never rehashes
    // mid-iteration.  The reserve itself may rehash right here, though,
    // and that moves every entry — the memo pointers phase A cached for
    // *existing* users are then dangling and must be re-found before
    // phase B dereferences them.  Only growth batches pay the re-probe.
    const std::size_t cap_before = user_state_.capacity();
    user_state_.reserve(user_state_.size() + new_users);
    if (user_state_.capacity() != cap_before) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (states_[i] != nullptr) states_[i] = user_state_.find(batch[i].user);
      }
    }
  }

  // Phase B: serial dispatch — seq guard, handoff evictions, shard queues.
  for (auto& shard : shards_) shard.queue.clear();
  std::vector<UserId> epoch_users;
  if (track_deltas_) epoch_users.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const LocationRecord& rec = batch[i];
    const RegionId target = targets_[i];
    if (target == kInvalidRegion) continue;  // empty partition
    UserSlot* state = states_[i];
    bool inserted = false;
    if (state == nullptr) {
      // New to phase A — but an earlier record of this batch may have
      // inserted the user already, so try_emplace, not blind insert.
      std::tie(state, inserted) = user_state_.try_emplace(rec.user);
    }
    if (!inserted && rec.seq <= state->seq) {
      ++counters_.updates_stale;
      continue;
    }
    if (!inserted && state->region != target) {
      ++counters_.handoffs;
      const std::size_t from = shard_of(state->region);
      if (from != shard_of(target)) ++counters_.cross_shard_handoffs;
      // Eviction message: user + max_seq (the seq of the record being
      // displaced).  Queued before the ingest so a same-shard handoff
      // drains in the right order.
      shards_[from].queue.push_back(ShardOp{
          LocationRecord{rec.user, Point{}, state->seq, 0.0}, state->region,
          /*evict=*/true});
    }
    shards_[shard_of(target)].queue.push_back(
        ShardOp{rec, target, /*evict=*/false});
    state->region = target;
    state->seq = rec.seq;
    ++counters_.updates_applied;
    if (track_deltas_) epoch_users.push_back(rec.user);
  }
  if (track_deltas_ && !epoch_users.empty()) {
    deltas_.push_back(EpochDelta{counters_.batches, std::move(epoch_users)});
    while (deltas_.size() > delta_retention_) {
      delta_floor_ = deltas_.front().epoch;
      deltas_.pop_front();
    }
  }

  // Phase C: drain every shard queue in dispatch order, one worker each.
  drain_queues();
}

void ShardedDirectory::drain_queues() {
  pool_.run([this](std::size_t s) {
    Shard& shard = shards_[s];
    if (shard.queue.empty()) return;
    shard.dirty = true;
    for (const ShardOp& op : shard.queue) {
      if (op.evict) {
        if (LocationStore* store = shard.stores.find(op.region)) {
          store->erase_if_stale(op.rec.user, op.rec.seq);
        }
      } else {
        auto [store, created] =
            shard.stores.try_emplace(op.region, LocationStore(cell_size_));
        (void)created;
        store->ingest(op.rec);
      }
    }
  });
}

ShardedDirectory::MigrationReport ShardedDirectory::migrate_regions(
    const MigrationFilter& filter) {
  MigrationReport report;
  ++counters_.migration_passes;
  resolver_.refresh();

  struct Move {
    LocationRecord rec{};
    RegionId from{};
    RegionId to{};
  };
  // Scan in parallel: each worker sweeps its own shard's stores and
  // collects records whose region no longer covers them.  Misplacement is
  // judged through resolver_.resolve with the holding region as hint — the
  // exact cover test the ingest fast path applies, so records sitting on
  // the plane border resolve the same way they did when ingested.
  std::vector<std::vector<Move>> found(shards_.size());
  std::vector<std::uint64_t> scanned(shards_.size(), 0);
  pool_.run([&](std::size_t s) {
    shards_[s].stores.for_each([&](RegionId id, const LocationStore& st) {
      const RegionId hint = partition_.has_region(id) ? id : kInvalidRegion;
      st.for_each([&](const LocationRecord& rec) {
        ++scanned[s];
        bool fast = false;
        const RegionId target = resolver_.resolve(rec.position, hint, &fast);
        if (target == id || target == kInvalidRegion) return;
        found[s].push_back(Move{rec, id, target});
      });
    });
  });
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    report.scanned += scanned[s];
  }

  // Transfers apply in user-id order so every region's store sees the same
  // operation sequence for any shard count (the determinism contract).
  std::vector<Move> moves;
  for (std::vector<Move>& f : found) {
    moves.insert(moves.end(), f.begin(), f.end());
  }
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    return a.rec.user < b.rec.user;
  });

  for (auto& shard : shards_) shard.queue.clear();
  std::vector<UserId> migrated;
  if (track_deltas_) migrated.reserve(moves.size());
  for (const Move& m : moves) {
    if (filter && !filter(m.rec.user, m.from, m.to)) {
      ++report.dropped;
      continue;
    }
    // Eviction first (as in phase B) so a same-shard transfer drains in
    // the right order; max_seq = the record's own seq, which the old store
    // holds exactly, so erase_if_stale always removes it.
    shards_[shard_of(m.from)].queue.push_back(ShardOp{
        LocationRecord{m.rec.user, Point{}, m.rec.seq, 0.0}, m.from,
        /*evict=*/true});
    shards_[shard_of(m.to)].queue.push_back(ShardOp{m.rec, m.to,
                                                    /*evict=*/false});
    if (UserSlot* state = user_state_.find(m.rec.user)) state->region = m.to;
    ++report.moved;
    if (track_deltas_) migrated.push_back(m.rec.user);
  }

  if (report.moved > 0) {
    drain_queues();
    // A migration that changed store contents is an ingest epoch of its
    // own: snapshots republish, and the moved users join the delta history
    // so changed_since reports users a removed region no longer holds.
    ++counters_.batches;
    counters_.migrated_records += report.moved;
    if (track_deltas_ && !migrated.empty()) {
      deltas_.push_back(EpochDelta{counters_.batches, std::move(migrated)});
      while (deltas_.size() > delta_retention_) {
        delta_floor_ = deltas_.front().epoch;
        deltas_.pop_front();
      }
    }
  }
  counters_.migration_dropped += report.dropped;

  // Free the stores of retired regions once they emptied; live regions
  // keep their (empty) stores — serialize skips them either way.
  for (auto& shard : shards_) {
    std::vector<RegionId> dead;
    shard.stores.for_each([&](RegionId id, const LocationStore& st) {
      if (st.empty() && !partition_.has_region(id)) dead.push_back(id);
    });
    for (const RegionId id : dead) {
      shard.stores.erase(id);
      shard.dirty = true;
      ++report.stores_retired;
    }
  }
  return report;
}

ShardedDirectory::ApplyResult ShardedDirectory::apply_update(
    const LocationRecord& record) {
  const Counters before = counters_;
  apply_updates(std::span<const LocationRecord>(&record, 1));
  ApplyResult result;
  result.applied = counters_.updates_applied > before.updates_applied;
  result.handoff = counters_.handoffs > before.handoffs;
  result.region = region_of(record.user);
  return result;
}

std::optional<LocationRecord> ShardedDirectory::locate(UserId user) const {
  const UserSlot* state = user_state_.find(user);
  if (state == nullptr) return std::nullopt;
  const Shard& shard = shards_[shard_of(state->region)];
  const LocationStore* store = shard.stores.find(state->region);
  return store == nullptr ? std::nullopt : store->locate(user);
}

RegionId ShardedDirectory::region_of(UserId user) const {
  const UserSlot* state = user_state_.find(user);
  return state == nullptr ? kInvalidRegion : state->region;
}

const LocationStore* ShardedDirectory::store(RegionId region) const {
  return shards_[shard_of(region)].stores.find(region);
}

std::vector<LocationRecord> ShardedDirectory::range(const Rect& rect) const {
  std::vector<LocationRecord> out;
  for (const auto& [id, region] : partition_.regions()) {
    if (!region.rect.intersects(rect) && !region.rect.edge_adjacent(rect)) {
      continue;
    }
    const LocationStore* st = store(id);
    if (st == nullptr) continue;
    st->range_into(rect, out);
  }
  return out;
}

std::vector<LocationRecord> ShardedDirectory::k_nearest(const Point& p,
                                                        std::size_t k) const {
  std::vector<LocationRecord> best;
  if (k == 0) return best;
  std::vector<std::pair<double, RegionId>> order;
  for (const Shard& shard : shards_) {
    shard.stores.for_each([&](RegionId id, const LocationStore& st) {
      if (st.empty() || !partition_.has_region(id)) return;
      order.emplace_back(partition_.region(id).rect.distance_to(p), id);
    });
  }
  std::sort(order.begin(), order.end());
  const auto better = [&p](const LocationRecord& a, const LocationRecord& b) {
    const double da = distance(a.position, p);
    const double db = distance(b.position, p);
    if (da != db) return da < db;
    return a.user < b.user;
  };
  for (const auto& [floor_dist, id] : order) {
    if (best.size() >= k && floor_dist > distance(best.back().position, p)) {
      break;
    }
    for (const LocationRecord& rec : store(id)->k_nearest(p, k)) {
      const auto pos = std::lower_bound(best.begin(), best.end(), rec, better);
      best.insert(pos, rec);
      if (best.size() > k) best.pop_back();
    }
  }
  return best;
}

std::optional<std::vector<UserId>> ShardedDirectory::changed_since(
    std::uint64_t since_epoch) const {
  if (!track_deltas_ || since_epoch < delta_floor_) return std::nullopt;
  std::vector<UserId> out;
  for (const EpochDelta& d : deltas_) {
    if (d.epoch <= since_epoch) continue;
    out.insert(out.end(), d.users.begin(), d.users.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ShardedDirectory::trim_deltas(std::uint64_t epoch) {
  while (!deltas_.empty() && deltas_.front().epoch <= epoch) {
    deltas_.pop_front();
  }
  if (epoch > delta_floor_) delta_floor_ = epoch;
}

std::shared_ptr<const DirectorySnapshot> ShardedDirectory::publish_snapshot() {
  if (published_ != nullptr && published_->epoch() == ingest_epoch()) {
    return published_;
  }
  if (slice_cache_.size() != shards_.size()) {
    slice_cache_.resize(shards_.size());
  }
  // Recopy dirty slices in parallel; clean slices stay shared with prior
  // snapshots.  Each task touches only its own slot, so no locking.
  std::vector<std::uint8_t> task_copied(shards_.size(), 0);
  pool_.run([&](std::size_t s) {
    Shard& shard = shards_[s];
    if (slice_cache_[s] == nullptr || shard.dirty) {
      slice_cache_[s] =
          std::make_shared<const DirectorySnapshot::StoreMap>(shard.stores);
      shard.dirty = false;
      task_copied[s] = 1;
    }
  });
  for (const std::uint8_t c : task_copied) {
    counters_.snapshot_slices_copied += c;
  }
  ++counters_.snapshots_published;
  // Stamp the snapshot with the changed-user set since the previously
  // published epoch, so snapshot consumers get the delta without touching
  // the (mutable) directory again.
  const std::uint64_t base_epoch =
      published_ == nullptr ? 0 : published_->epoch();
  auto snap = std::make_shared<const DirectorySnapshot>(
      ingest_epoch(), user_state_, slice_cache_, base_epoch,
      changed_since(base_epoch));
  std::shared_ptr<const DirectorySnapshot> superseded;
  {
    std::lock_guard lock(snapshot_mutex_);
    superseded = std::move(published_);
    published_ = snap;
  }
  // Epoch-based reclamation handshake: publish the new raw pointer FIRST,
  // then stamp the superseded snapshot and scan reader slots.  A pinned
  // reader either shows up in the scan (its snapshot is kept) or pinned
  // after the publish and can only be holding the new snapshot.
  live_snapshot_.store(snap.get(), std::memory_order_release);
  if (superseded != nullptr) {
    retired_.push_back(RetiredSnapshot{std::move(superseded),
                                       reclaim_domain_.retire_epoch()});
    ++counters_.snapshots_retired;
  }
  const std::uint64_t safe = reclaim_domain_.safe_epoch();
  for (std::size_t i = 0; i < retired_.size();) {
    if (retired_[i].retired_at < safe) {
      counters_.snapshots_reclaimed += 1;
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
    } else {
      ++i;
    }
  }
  return snap;
}

std::shared_ptr<const DirectorySnapshot> ShardedDirectory::current_snapshot()
    const {
  std::lock_guard lock(snapshot_mutex_);
  return published_;
}

void ShardedDirectory::serialize(net::Writer& w) const {
  std::vector<std::pair<RegionId, const LocationStore*>> stores;
  for (const Shard& shard : shards_) {
    shard.stores.for_each([&](RegionId id, const LocationStore& st) {
      if (st.empty()) return;  // migrated-out regions leave no trace
      stores.emplace_back(id, &st);
    });
  }
  std::sort(stores.begin(), stores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.varint(stores.size());
  for (const auto& [id, st] : stores) {
    w.region_id(id);
    st->encode(w);
  }
}

}  // namespace geogrid::mobility
