#include "mobility/sharded_directory.h"

#include <algorithm>
#include <tuple>

namespace geogrid::mobility {

ShardedDirectory::ShardedDirectory(const overlay::Partition& partition)
    : ShardedDirectory(partition, Options{}) {}

ShardedDirectory::ShardedDirectory(const overlay::Partition& partition,
                                   Options options)
    : partition_(partition), cell_size_(options.cell_size) {
  std::size_t shards = options.shards;
  if (shards == 0) {
    shards = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.resize(shards);
  workers_.reserve(shards - 1);
  for (std::size_t w = 0; w + 1 < shards; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardedDirectory::~ShardedDirectory() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ShardedDirectory::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    // Worker w always takes task w+1; the dispatching thread takes task 0.
    (*job)(worker_index + 1);
    {
      std::lock_guard lock(mutex_);
      ++done_;
    }
    done_cv_.notify_one();
  }
}

void ShardedDirectory::run_parallel(
    const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    done_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return done_ == workers_.size(); });
}

void ShardedDirectory::refresh_region_rects() {
  if (partition_.geometry_version() == cached_geometry_version_) return;
  region_rects_.clear();
  region_rects_.reserve(partition_.region_count());
  for (const auto& [id, region] : partition_.regions()) {
    region_rects_[id] = region.rect;
  }
  cached_geometry_version_ = partition_.geometry_version();
}

RegionId ShardedDirectory::resolve_target(const UserState* state,
                                          const Point& position,
                                          bool* fast) const {
  if (state != nullptr) {
    if (const Rect* rect = region_rects_.find(state->region)) {
      if (rect->covers(position) || rect->covers_inclusive(position)) {
        // Same answer partition_.locate(position, state->region) would
        // give — route_greedy stops immediately when the start region
        // covers the target — minus the partition's hash-map traffic.
        *fast = true;
        return state->region;
      }
      return partition_.locate(position, state->region);
    }
    // Region retired since the last applied report: cold locate.
  }
  return partition_.locate(position);
}

void ShardedDirectory::apply_updates(std::span<const LocationRecord> batch) {
  if (batch.empty()) return;
  refresh_region_rects();
  ++counters_.batches;

  // Phase A: resolve target regions in parallel against the frozen memo.
  // resolve_target is a pure read of user_state_/region_rects_/partition_,
  // so chunking cannot change any record's answer.  The memo-entry pointer
  // found here is reused by phase B (one hash probe per record, not two);
  // reserving the memo for the batch's new users keeps it valid across
  // the phase-B inserts.
  targets_.resize(batch.size());
  states_.resize(batch.size());
  const std::size_t chunks = shards_.size();
  std::uint64_t fast_hits = 0;
  std::uint64_t new_users = 0;
  if (chunks == 1) {
    bool fast = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      fast = false;
      states_[i] = user_state_.find(batch[i].user);
      targets_[i] = resolve_target(states_[i], batch[i].position, &fast);
      fast_hits += fast ? 1 : 0;
      new_users += states_[i] == nullptr ? 1 : 0;
    }
  } else {
    std::vector<std::uint64_t> chunk_fast(chunks, 0);
    std::vector<std::uint64_t> chunk_new(chunks, 0);
    run_parallel([&](std::size_t c) {
      const std::size_t lo = batch.size() * c / chunks;
      const std::size_t hi = batch.size() * (c + 1) / chunks;
      bool fast = false;
      for (std::size_t i = lo; i < hi; ++i) {
        fast = false;
        states_[i] = user_state_.find(batch[i].user);
        targets_[i] = resolve_target(states_[i], batch[i].position, &fast);
        chunk_fast[c] += fast ? 1 : 0;
        chunk_new[c] += states_[i] == nullptr ? 1 : 0;
      }
    });
    for (const std::uint64_t f : chunk_fast) fast_hits += f;
    for (const std::uint64_t n : chunk_new) new_users += n;
  }
  counters_.locate_fast_path += fast_hits;
  if (new_users > 0) user_state_.reserve(user_state_.size() + new_users);

  // Phase B: serial dispatch — seq guard, handoff evictions, shard queues.
  for (auto& shard : shards_) shard.queue.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const LocationRecord& rec = batch[i];
    const RegionId target = targets_[i];
    if (target == kInvalidRegion) continue;  // empty partition
    UserState* state = states_[i];
    bool inserted = false;
    if (state == nullptr) {
      // New to phase A — but an earlier record of this batch may have
      // inserted the user already, so try_emplace, not blind insert.
      std::tie(state, inserted) = user_state_.try_emplace(rec.user);
    }
    if (!inserted && rec.seq <= state->seq) {
      ++counters_.updates_stale;
      continue;
    }
    if (!inserted && state->region != target) {
      ++counters_.handoffs;
      const std::size_t from = shard_of(state->region);
      if (from != shard_of(target)) ++counters_.cross_shard_handoffs;
      // Eviction message: user + max_seq (the seq of the record being
      // displaced).  Queued before the ingest so a same-shard handoff
      // drains in the right order.
      shards_[from].queue.push_back(ShardOp{
          LocationRecord{rec.user, Point{}, state->seq, 0.0}, state->region,
          /*evict=*/true});
    }
    shards_[shard_of(target)].queue.push_back(
        ShardOp{rec, target, /*evict=*/false});
    state->region = target;
    state->seq = rec.seq;
    ++counters_.updates_applied;
  }

  // Phase C: drain every shard queue in dispatch order, one worker each.
  run_parallel([this](std::size_t s) {
    Shard& shard = shards_[s];
    for (const ShardOp& op : shard.queue) {
      if (op.evict) {
        if (LocationStore* store = shard.stores.find(op.region)) {
          store->erase_if_stale(op.rec.user, op.rec.seq);
        }
      } else {
        auto [store, created] =
            shard.stores.try_emplace(op.region, LocationStore(cell_size_));
        (void)created;
        store->ingest(op.rec);
      }
    }
  });
}

ShardedDirectory::ApplyResult ShardedDirectory::apply_update(
    const LocationRecord& record) {
  const Counters before = counters_;
  apply_updates(std::span<const LocationRecord>(&record, 1));
  ApplyResult result;
  result.applied = counters_.updates_applied > before.updates_applied;
  result.handoff = counters_.handoffs > before.handoffs;
  result.region = region_of(record.user);
  return result;
}

std::optional<LocationRecord> ShardedDirectory::locate(UserId user) const {
  const UserState* state = user_state_.find(user);
  if (state == nullptr) return std::nullopt;
  const Shard& shard = shards_[shard_of(state->region)];
  const LocationStore* store = shard.stores.find(state->region);
  return store == nullptr ? std::nullopt : store->locate(user);
}

RegionId ShardedDirectory::region_of(UserId user) const {
  const UserState* state = user_state_.find(user);
  return state == nullptr ? kInvalidRegion : state->region;
}

const LocationStore* ShardedDirectory::store(RegionId region) const {
  return shards_[shard_of(region)].stores.find(region);
}

std::vector<LocationRecord> ShardedDirectory::range(const Rect& rect) const {
  std::vector<LocationRecord> out;
  for (const auto& [id, region] : partition_.regions()) {
    if (!region.rect.intersects(rect) && !region.rect.edge_adjacent(rect)) {
      continue;
    }
    const LocationStore* st = store(id);
    if (st == nullptr) continue;
    auto part = st->range(rect);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<LocationRecord> ShardedDirectory::k_nearest(const Point& p,
                                                        std::size_t k) const {
  std::vector<LocationRecord> best;
  if (k == 0) return best;
  std::vector<std::pair<double, RegionId>> order;
  for (const Shard& shard : shards_) {
    shard.stores.for_each([&](RegionId id, const LocationStore& st) {
      if (st.empty() || !partition_.has_region(id)) return;
      order.emplace_back(partition_.region(id).rect.distance_to(p), id);
    });
  }
  std::sort(order.begin(), order.end());
  const auto better = [&p](const LocationRecord& a, const LocationRecord& b) {
    const double da = distance(a.position, p);
    const double db = distance(b.position, p);
    if (da != db) return da < db;
    return a.user < b.user;
  };
  for (const auto& [floor_dist, id] : order) {
    if (best.size() >= k && floor_dist > distance(best.back().position, p)) {
      break;
    }
    for (const LocationRecord& rec : store(id)->k_nearest(p, k)) {
      const auto pos = std::lower_bound(best.begin(), best.end(), rec, better);
      best.insert(pos, rec);
      if (best.size() > k) best.pop_back();
    }
  }
  return best;
}

void ShardedDirectory::serialize(net::Writer& w) const {
  std::vector<std::pair<RegionId, const LocationStore*>> stores;
  for (const Shard& shard : shards_) {
    shard.stores.for_each([&](RegionId id, const LocationStore& st) {
      stores.emplace_back(id, &st);
    });
  }
  std::sort(stores.begin(), stores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.varint(stores.size());
  for (const auto& [id, st] : stores) {
    w.region_id(id);
    st->encode(w);
  }
}

}  // namespace geogrid::mobility
