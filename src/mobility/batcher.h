// Reusable batch staging between a message-at-a-time producer and the
// batch-oriented engines.
//
// Every engine in this codebase earns its throughput from batching:
// ShardedDirectory::apply_updates amortises shard fan-out and epoch
// bookkeeping over thousands of records, and QueryEngine::run amortises
// snapshot publication and worker-pool dispatch the same way.  The serving
// edge, though, receives work one decoded message at a time.  IngestSink
// and QueryBatcher are the adaptors: they accumulate single items into
// exactly the spans the engines want, tell the caller when a watermark is
// crossed (so the event loop can flush on size), and replay results in
// arrival order (so per-connection reply ordering is a structural
// guarantee, not a convention).
//
// Neither class owns a thread or a clock.  Deadline-based flushing is the
// event loop's job — it knows when its poll cycle ends; these classes only
// make "how much is pending" and "flush now" cheap and allocation-stable.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mobility/location_store.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"

namespace geogrid::mobility {

/// Stages LocationRecords and applies them to a ShardedDirectory in one
/// apply_updates call per flush.
class IngestSink {
 public:
  struct Options {
    /// add() starts returning true ("please flush") at this many pending
    /// records.  Crossing the watermark never flushes implicitly — the
    /// caller picks the moment so replies and notifications stay ordered.
    std::size_t flush_records = 4096;
  };

  struct Counters {
    std::uint64_t records = 0;       ///< total records flushed
    std::uint64_t flushes = 0;       ///< non-empty flushes
    std::uint64_t max_batch = 0;     ///< largest single flush
  };

  explicit IngestSink(ShardedDirectory& directory)
      : IngestSink(directory, Options()) {}
  IngestSink(ShardedDirectory& directory, Options options)
      : directory_(directory), options_(options) {}

  /// Stages one record.  Returns true when pending() has reached the
  /// flush watermark.
  bool add(const LocationRecord& rec) {
    staged_.push_back(rec);
    return staged_.size() >= options_.flush_records;
  }

  /// Applies everything staged in one directory batch; no-op when empty.
  /// Returns the number of records applied.
  std::size_t flush() {
    if (staged_.empty()) return 0;
    directory_.apply_updates(staged_);
    const std::size_t n = staged_.size();
    counters_.records += n;
    counters_.flushes += 1;
    if (n > counters_.max_batch) counters_.max_batch = n;
    staged_.clear();
    return n;
  }

  std::size_t pending() const noexcept { return staged_.size(); }
  std::span<const LocationRecord> pending_records() const noexcept {
    return staged_;
  }
  const Options& options() const noexcept { return options_; }
  const Counters& counters() const noexcept { return counters_; }

 private:
  ShardedDirectory& directory_;
  Options options_;
  Counters counters_;
  std::vector<LocationRecord> staged_;
};

/// Stages Queries tagged with an opaque caller token (e.g. connection
/// serial + request id) and runs them as one QueryEngine batch, handing
/// each result back with its token in arrival order.
class QueryBatcher {
 public:
  struct Options {
    /// add() starts returning true at this many pending requests.
    std::size_t flush_requests = 1024;
  };

  /// Caller context carried alongside each query, returned untouched with
  /// its result.  The serving edge packs (connection serial, query id)
  /// here; tests pack indices.
  struct Token {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  struct Counters {
    std::uint64_t queries = 0;  ///< total queries flushed
    std::uint64_t flushes = 0;  ///< non-empty flushes
  };

  explicit QueryBatcher(QueryEngine& engine)
      : QueryBatcher(engine, Options()) {}
  QueryBatcher(QueryEngine& engine, Options options)
      : engine_(engine), options_(options) {}

  /// Stages one query.  Returns true when pending() has reached the
  /// flush watermark.
  bool add(const Query& q, Token token) {
    staged_.push_back(q);
    tokens_.push_back(token);
    return staged_.size() >= options_.flush_requests;
  }

  /// Runs everything staged as one engine batch and invokes `emit` once
  /// per request, in arrival order, with the request's token and result.
  /// Staging is moved to locals first, so emit callbacks may stage new
  /// queries without invalidating the batch being delivered.  Returns the
  /// number of queries executed.
  std::size_t flush(
      const std::function<void(Token, const QueryResult&)>& emit) {
    if (staged_.empty()) return 0;
    std::vector<Query> batch = std::move(staged_);
    std::vector<Token> tokens = std::move(tokens_);
    staged_.clear();
    tokens_.clear();
    std::vector<QueryResult> results = engine_.run(batch);
    counters_.queries += batch.size();
    counters_.flushes += 1;
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit(tokens[i], results[i]);
    }
    return batch.size();
  }

  std::size_t pending() const noexcept { return staged_.size(); }
  const Options& options() const noexcept { return options_; }
  const Counters& counters() const noexcept { return counters_; }

 private:
  QueryEngine& engine_;
  Options options_;
  Counters counters_;
  std::vector<Query> staged_;
  std::vector<Token> tokens_;
};

}  // namespace geogrid::mobility
