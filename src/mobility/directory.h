// Engine-mode location directory: per-region stores over a Partition.
//
// Protocol mode routes every LocationUpdate through the overlay; engine mode
// skips the wire and applies updates directly against the partition, the
// same way engine-mode query sweeps bypass serialization.  LocationDirectory
// keeps one LocationStore per region plus a user -> owning-region map, so
// `apply_update` is a partition locate (O(1) with the per-user region hint,
// since a user rarely leaves its region between reports) followed by an
// O(1) ingest, and `locate(user)` never touches the partition at all.
// Both maps are flat open-addressing tables (common::FlatMap): the
// user -> region map is the single hottest structure of the ingest path and
// a node-based map's pointer chase per update is what used to collapse
// throughput at 1M users.  Region-boundary crossings are detected here and
// counted as handoffs — the engine-mode mirror of the UserHandoff protocol
// message.  For the batched, multi-threaded version of this fast path see
// mobility::ShardedDirectory.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "mobility/location_store.h"
#include "overlay/partition.h"

namespace geogrid::mobility {

class LocationDirectory {
 public:
  struct Counters {
    std::uint64_t updates_applied = 0;
    std::uint64_t updates_stale = 0;  ///< rejected by the seq guard
    std::uint64_t handoffs = 0;       ///< updates that crossed a region edge
    std::uint64_t locate_hits = 0;
    std::uint64_t locate_misses = 0;
  };

  /// What one apply_update did.
  struct ApplyResult {
    RegionId region = kInvalidRegion;  ///< region now holding the record
    bool applied = false;
    bool handoff = false;
  };

  explicit LocationDirectory(const overlay::Partition& partition,
                             double cell_size = 1.0)
      : partition_(partition), cell_size_(cell_size) {}

  /// Routes a report to the store of the region covering it, evicting the
  /// user's record from its previous region on a boundary crossing.
  ApplyResult apply_update(const LocationRecord& record);

  /// Point lookup via the user -> region map (counts hit/miss).
  std::optional<LocationRecord> locate(UserId user);

  /// The region currently holding `user`, or kInvalidRegion.
  RegionId region_of(UserId user) const;

  /// The store of one region (null when no user ever landed there).
  const LocationStore* store(RegionId region) const;

  /// All records inside `rect`, gathered across every intersecting region.
  std::vector<LocationRecord> range(const Rect& rect) const;

  /// The k records nearest `p` across the whole directory.  Visits region
  /// stores in order of rect distance to `p` and stops once no unvisited
  /// region can beat the kth-best candidate.
  std::vector<LocationRecord> k_nearest(const Point& p, std::size_t k) const;

  std::size_t size() const noexcept { return user_region_.size(); }
  const Counters& counters() const noexcept { return counters_; }

 private:
  const overlay::Partition& partition_;
  double cell_size_;
  common::FlatMap<RegionId, LocationStore> stores_;
  common::FlatMap<UserId, RegionId> user_region_;
  Counters counters_;
};

}  // namespace geogrid::mobility
