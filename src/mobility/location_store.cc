#include "mobility/location_store.h"

#include <algorithm>
#include <cmath>

namespace geogrid::mobility {

std::int32_t LocationStore::cell_coord(double v) const noexcept {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

std::uint64_t LocationStore::cell_key_of(const Point& p) const noexcept {
  return pack(cell_coord(p.x), cell_coord(p.y));
}

void LocationStore::cell_remove(std::uint64_t key, UserId user) {
  auto it = cells_.find(key);
  if (it == cells_.end()) return;
  auto& bucket = it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), user);
  if (pos != bucket.end()) {
    *pos = bucket.back();
    bucket.pop_back();
  }
  if (bucket.empty()) cells_.erase(it);
}

bool LocationStore::ingest(const LocationRecord& record) {
  auto [it, inserted] = by_user_.try_emplace(record.user, record);
  if (!inserted) {
    if (it->second.seq >= record.seq) return false;  // stale or replay
    const std::uint64_t old_key = cell_key_of(it->second.position);
    const std::uint64_t new_key = cell_key_of(record.position);
    it->second = record;
    if (old_key == new_key) return true;
    cell_remove(old_key, record.user);
  }
  cells_[cell_key_of(record.position)].push_back(record.user);
  return true;
}

const LocationRecord* LocationStore::locate(UserId user) const {
  const auto it = by_user_.find(user);
  return it == by_user_.end() ? nullptr : &it->second;
}

bool LocationStore::erase(UserId user) {
  const auto it = by_user_.find(user);
  if (it == by_user_.end()) return false;
  cell_remove(cell_key_of(it->second.position), user);
  by_user_.erase(it);
  return true;
}

bool LocationStore::erase_if_stale(UserId user, std::uint64_t max_seq) {
  const auto it = by_user_.find(user);
  if (it == by_user_.end() || it->second.seq > max_seq) return false;
  cell_remove(cell_key_of(it->second.position), user);
  by_user_.erase(it);
  return true;
}

void LocationStore::clear() {
  by_user_.clear();
  cells_.clear();
}

std::vector<LocationRecord> LocationStore::range(const Rect& rect) const {
  std::vector<LocationRecord> out;
  const std::int32_t cx0 = cell_coord(rect.x);
  const std::int32_t cx1 = cell_coord(rect.right());
  const std::int32_t cy0 = cell_coord(rect.y);
  const std::int32_t cy1 = cell_coord(rect.top());
  for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      const auto it = cells_.find(pack(cx, cy));
      if (it == cells_.end()) continue;
      for (const UserId user : it->second) {
        const LocationRecord& rec = by_user_.at(user);
        if (rect.covers(rec.position) ||
            rect.covers_inclusive(rec.position)) {
          out.push_back(rec);
        }
      }
    }
  }
  return out;
}

std::vector<LocationRecord> LocationStore::k_nearest(const Point& p,
                                                     std::size_t k) const {
  std::vector<LocationRecord> best;
  if (k == 0 || by_user_.empty()) return best;
  const auto better = [&p](const LocationRecord& a, const LocationRecord& b) {
    const double da = distance(a.position, p);
    const double db = distance(b.position, p);
    if (da != db) return da < db;
    return a.user < b.user;
  };
  // Expanding ring of cells around p.  After collecting k candidates the
  // search may stop once the ring's nearest possible point is farther than
  // the current kth-best distance.
  const std::int32_t pcx = cell_coord(p.x);
  const std::int32_t pcy = cell_coord(p.y);
  // Worst-case ring radius: enough to sweep every materialized cell.
  std::int32_t max_ring = 0;
  for (const auto& [key, bucket] : cells_) {
    const auto cx = static_cast<std::int32_t>(key >> 32);
    const auto cy = static_cast<std::int32_t>(key & 0xffffffffu);
    max_ring = std::max({max_ring, std::abs(cx - pcx), std::abs(cy - pcy)});
  }
  for (std::int32_t ring = 0; ring <= max_ring; ++ring) {
    if (best.size() >= k) {
      // Cells in this ring are at least (ring - 1) * cell_size away.
      const double ring_min = (ring - 1) * cell_size_;
      if (ring_min > distance(best.back().position, p)) break;
    }
    for (std::int32_t cx = pcx - ring; cx <= pcx + ring; ++cx) {
      for (std::int32_t cy = pcy - ring; cy <= pcy + ring; ++cy) {
        if (std::max(std::abs(cx - pcx), std::abs(cy - pcy)) != ring) {
          continue;  // interior cells were visited by smaller rings
        }
        const auto it = cells_.find(pack(cx, cy));
        if (it == cells_.end()) continue;
        for (const UserId user : it->second) {
          const LocationRecord& rec = by_user_.at(user);
          const auto pos =
              std::lower_bound(best.begin(), best.end(), rec, better);
          best.insert(pos, rec);
          if (best.size() > k) best.pop_back();
        }
      }
    }
  }
  return best;
}

void LocationStore::encode(net::Writer& w) const {
  w.f64(cell_size_);
  w.varint(by_user_.size());
  for (const auto& [user, rec] : by_user_) rec.encode(w);
}

LocationStore LocationStore::decode(net::Reader& r) {
  const double cell_size = r.f64();
  LocationStore store(cell_size);
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    store.ingest(LocationRecord::decode(r));
  }
  return store;
}

}  // namespace geogrid::mobility
