#include "mobility/location_store.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace geogrid::mobility {

std::int32_t LocationStore::cell_coord(double v) const noexcept {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

std::uint64_t LocationStore::cell_key_of(const Point& p) const noexcept {
  return pack(cell_coord(p.x), cell_coord(p.y));
}

void LocationStore::cell_insert(std::uint64_t key, std::uint32_t slot) {
  auto [bucket, inserted] = cells_.try_emplace(key);
  // First resident of a cell: reserve a few slots up front so the common
  // several-users-per-cell case never reallocates mid-ingest.
  if (inserted) bucket->reserve(8);
  bucket->push_back(slot);
}

void LocationStore::cell_remove(std::uint64_t key, std::uint32_t slot) {
  auto* bucket = cells_.find(key);
  if (bucket == nullptr) return;
  const auto pos = std::find(bucket->begin(), bucket->end(), slot);
  if (pos != bucket->end()) {
    // Swap-and-pop: bucket order is irrelevant — range() filters by the
    // cover test and k_nearest() re-sorts candidates by distance, so no
    // caller observes in-bucket ordering.
    *pos = bucket->back();
    bucket->pop_back();
  }
  if (bucket->empty()) cells_.erase(key);
}

void LocationStore::cell_replace(std::uint64_t key, std::uint32_t old_slot,
                                 std::uint32_t new_slot) {
  auto* bucket = cells_.find(key);
  if (bucket == nullptr) return;
  const auto pos = std::find(bucket->begin(), bucket->end(), old_slot);
  if (pos != bucket->end()) *pos = new_slot;
}

bool LocationStore::ingest(const LocationRecord& record) {
  auto [slot_ptr, inserted] =
      index_.try_emplace(record.user, static_cast<std::uint32_t>(0));
  if (!inserted) {
    const std::uint32_t slot = *slot_ptr;
    if (seqs_[slot] >= record.seq) return false;  // stale or replay
    const std::uint64_t new_key = cell_key_of(record.position);
    xs_[slot] = record.position.x;
    ys_[slot] = record.position.y;
    seqs_[slot] = record.seq;
    timestamps_[slot] = record.timestamp;
    if (cell_keys_[slot] != new_key) {
      cell_remove(cell_keys_[slot], slot);
      cell_insert(new_key, slot);
      cell_keys_[slot] = new_key;
    }
    return true;
  }
  const auto slot = static_cast<std::uint32_t>(users_.size());
  *slot_ptr = slot;
  const std::uint64_t key = cell_key_of(record.position);
  users_.push_back(record.user);
  xs_.push_back(record.position.x);
  ys_.push_back(record.position.y);
  seqs_.push_back(record.seq);
  timestamps_.push_back(record.timestamp);
  cell_keys_.push_back(key);
  cell_insert(key, slot);
  return true;
}

std::optional<LocationRecord> LocationStore::locate(UserId user) const {
  const auto* slot = index_.find(user);
  if (slot == nullptr) return std::nullopt;
  return record_at(*slot);
}

std::optional<std::uint64_t> LocationStore::seq_of(UserId user) const {
  const auto* slot = index_.find(user);
  if (slot == nullptr) return std::nullopt;
  return seqs_[*slot];
}

void LocationStore::remove_slot(std::uint32_t slot) {
  cell_remove(cell_keys_[slot], slot);
  index_.erase(users_[slot]);
  const auto last = static_cast<std::uint32_t>(users_.size() - 1);
  if (slot != last) {
    // Dense columns stay dense: the last record moves into the hole, and
    // both its index entry and its cell-bucket slot are repointed.
    users_[slot] = users_[last];
    xs_[slot] = xs_[last];
    ys_[slot] = ys_[last];
    seqs_[slot] = seqs_[last];
    timestamps_[slot] = timestamps_[last];
    cell_keys_[slot] = cell_keys_[last];
    *index_.find(users_[slot]) = slot;
    cell_replace(cell_keys_[slot], last, slot);
  }
  users_.pop_back();
  xs_.pop_back();
  ys_.pop_back();
  seqs_.pop_back();
  timestamps_.pop_back();
  cell_keys_.pop_back();
}

bool LocationStore::erase(UserId user) {
  const auto* slot = index_.find(user);
  if (slot == nullptr) return false;
  remove_slot(*slot);
  return true;
}

bool LocationStore::erase_if_stale(UserId user, std::uint64_t max_seq) {
  const auto* slot = index_.find(user);
  if (slot == nullptr || seqs_[*slot] > max_seq) return false;
  remove_slot(*slot);
  return true;
}

void LocationStore::clear() {
  users_.clear();
  xs_.clear();
  ys_.clear();
  seqs_.clear();
  timestamps_.clear();
  cell_keys_.clear();
  index_.clear();
  cells_.clear();
}

std::vector<LocationRecord> LocationStore::range(const Rect& rect) const {
  std::vector<LocationRecord> out;
  range_into(rect, out);
  return out;
}

void LocationStore::range_into(const Rect& rect,
                               std::vector<LocationRecord>& out) const {
  if (users_.empty()) return;
  // The accept test is `covers(p) || covers_inclusive(p)`.  covers() is a
  // strict subset of covers_inclusive() (strict west/south vs eps-relaxed
  // everywhere), so the disjunction collapses to the single closed band
  // below — which is exactly the branch-free test the SIMD filter computes.
  const double x_lo = rect.x - kGeoEps;
  const double x_hi = rect.right() + kGeoEps;
  const double y_lo = rect.y - kGeoEps;
  const double y_hi = rect.top() + kGeoEps;
  const std::int32_t cx0 = cell_coord(rect.x);
  const std::int32_t cx1 = cell_coord(rect.right());
  const std::int32_t cy0 = cell_coord(rect.y);
  const std::int32_t cy1 = cell_coord(rect.top());
  // Wide rects (the geofence/region-sweep shape) would visit at least as
  // many grid cells as exist — there the bucket walk is pure pointer-chasing
  // overhead, and a linear SIMD sweep of the coordinate columns wins on
  // both instruction count and cache behaviour.  Path choice is a pure
  // function of (store contents, rect): results and their serialization are
  // identical either way because both paths apply the same band test and
  // encode() re-sorts canonically.
  const std::uint64_t span_cells =
      (static_cast<std::uint64_t>(cx1 - cx0) + 1) *
      (static_cast<std::uint64_t>(cy1 - cy0) + 1);
  if (span_cells >= cells_.size()) {
    constexpr std::size_t kChunk = 1024;
    std::uint32_t hits[kChunk];
    const std::size_t n = users_.size();
    for (std::size_t base = 0; base < n; base += kChunk) {
      const std::size_t len = std::min(kChunk, n - base);
      const std::size_t found = common::filter_points_in_band(
          xs_.data() + base, ys_.data() + base, len, x_lo, x_hi, y_lo, y_hi,
          hits);
      for (std::size_t j = 0; j < found; ++j) {
        out.push_back(record_at(static_cast<std::uint32_t>(base) + hits[j]));
      }
    }
    return;
  }
  for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      const auto* bucket = cells_.find(pack(cx, cy));
      if (bucket == nullptr) continue;
      for (const std::uint32_t slot : *bucket) {
        const double px = xs_[slot];
        const double py = ys_[slot];
        if (x_lo <= px && px <= x_hi && y_lo <= py && py <= y_hi) {
          out.push_back(record_at(slot));
        }
      }
    }
  }
}

std::vector<LocationRecord> LocationStore::k_nearest(const Point& p,
                                                     std::size_t k) const {
  std::vector<LocationRecord> out;
  if (k == 0 || users_.empty()) return out;
  // Candidates carry their distance so the hot reject path — a record
  // farther than the kth-best — costs one distance computation and one
  // compare, instead of re-deriving distances inside an ordered insert.
  struct Scored {
    double dist;
    std::uint32_t slot;
  };
  std::vector<Scored> best;
  best.reserve(k + 1);
  const auto scored_after = [this](const Scored& a, const Scored& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return users_[a.slot] < users_[b.slot];
  };
  // Expanding ring of cells around p.  After collecting k candidates the
  // search may stop once the ring's nearest possible point is farther than
  // the current kth-best distance.
  const std::int32_t pcx = cell_coord(p.x);
  const std::int32_t pcy = cell_coord(p.y);
  // Worst-case ring radius: enough to sweep every materialized cell.
  std::int32_t max_ring = 0;
  cells_.for_each([&](std::uint64_t key, const std::vector<std::uint32_t>&) {
    const auto cx = static_cast<std::int32_t>(key >> 32);
    const auto cy = static_cast<std::int32_t>(key & 0xffffffffu);
    max_ring = std::max({max_ring, std::abs(cx - pcx), std::abs(cy - pcy)});
  });
  for (std::int32_t ring = 0; ring <= max_ring; ++ring) {
    if (best.size() >= k) {
      // Cells in this ring are at least (ring - 1) * cell_size away.
      const double ring_min = (ring - 1) * cell_size_;
      if (ring_min > best.back().dist) break;
    }
    for (std::int32_t cx = pcx - ring; cx <= pcx + ring; ++cx) {
      for (std::int32_t cy = pcy - ring; cy <= pcy + ring; ++cy) {
        if (std::max(std::abs(cx - pcx), std::abs(cy - pcy)) != ring) {
          continue;  // interior cells were visited by smaller rings
        }
        const auto* bucket = cells_.find(pack(cx, cy));
        if (bucket == nullptr) continue;
        for (const std::uint32_t slot : *bucket) {
          const Scored cand{distance(position_at(slot), p), slot};
          if (best.size() >= k && !scored_after(cand, best.back())) continue;
          const auto pos = std::lower_bound(best.begin(), best.end(), cand,
                                            scored_after);
          best.insert(pos, cand);
          if (best.size() > k) best.pop_back();
        }
      }
    }
  }
  out.reserve(best.size());
  for (const Scored& s : best) out.push_back(record_at(s.slot));
  return out;
}

void LocationStore::encode(net::Writer& w) const {
  w.f64(cell_size_);
  w.varint(users_.size());
  // Canonical order: sorted by user id, not by slot.  Slot order depends
  // on ingestion history; the wire bytes must not.
  std::vector<std::uint32_t> slots(users_.size());
  for (std::uint32_t i = 0; i < slots.size(); ++i) slots[i] = i;
  std::sort(slots.begin(), slots.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return users_[a] < users_[b];
            });
  for (const std::uint32_t slot : slots) record_at(slot).encode(w);
}

LocationStore LocationStore::decode(net::Reader& r) {
  const double cell_size = r.f64();
  LocationStore store(cell_size);
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    store.ingest(LocationRecord::decode(r));
  }
  return store;
}

}  // namespace geogrid::mobility
