#include "mobility/query_engine.h"

#include <algorithm>
#include <limits>

namespace geogrid::mobility {

void QueryResult::encode(net::Writer& w) const {
  w.varint(static_cast<std::uint64_t>(kind));
  if (kind == Query::Kind::kLocate) {
    w.boolean(found);
    if (found) located.encode(w);
    return;
  }
  w.varint(records.size());
  for (const LocationRecord& rec : records) rec.encode(w);
}

QueryResult QueryResult::decode(net::Reader& r) {
  QueryResult out;
  const std::uint64_t kind = r.varint();
  if (kind > static_cast<std::uint64_t>(Query::Kind::kNearest)) {
    throw net::CodecError("unknown query result kind " + std::to_string(kind));
  }
  out.kind = static_cast<Query::Kind>(kind);
  if (out.kind == Query::Kind::kLocate) {
    out.found = r.boolean();
    if (out.found) out.located = LocationRecord::decode(r);
    return out;
  }
  const std::uint64_t count = r.varint();
  // Untrusted count: reserve only a sane floor and let growth be paced by
  // the bytes actually present (decode throws on truncation long before a
  // bogus huge count could materialise as records).
  out.records.reserve(std::min<std::uint64_t>(count, 1024));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.records.push_back(LocationRecord::decode(r));
  }
  return out;
}

void QueryEngine::serialize(net::Writer& w,
                            std::span<const QueryResult> results) {
  w.varint(results.size());
  for (const QueryResult& r : results) r.encode(w);
}

QueryEngine::QueryEngine(ShardedDirectory& directory)
    : QueryEngine(directory, Options{}) {}

QueryEngine::QueryEngine(ShardedDirectory& directory, Options options)
    : directory_(directory),
      resolver_(directory.resolver()),
      pool_(options.threads),
      task_states_(pool_.task_count()),
      reader_(directory.register_reader()) {}

std::vector<QueryResult> QueryEngine::run(std::span<const Query> batch) {
  const auto snapshot = directory_.publish_snapshot();
  return run_on(*snapshot, batch);
}

std::vector<QueryResult> QueryEngine::run_pinned(std::span<const Query> batch) {
  common::EpochDomain::Guard pin(reader_);
  const DirectorySnapshot* snapshot = directory_.pinned_snapshot();
  if (snapshot == nullptr) {
    // Nothing published yet: every locate misses, every scan is empty.
    // One empty slice keeps store()'s shard modulus well-defined.
    static const DirectorySnapshot kEmpty(
        0, {}, {std::make_shared<const DirectorySnapshot::StoreMap>()});
    return run_on(kEmpty, batch);
  }
  return run_on(*snapshot, batch);
}

std::vector<QueryResult> QueryEngine::run_on(const DirectorySnapshot& snapshot,
                                             std::span<const Query> batch) {
  std::vector<QueryResult> results(batch.size());
  const std::size_t tasks = pool_.task_count();
  // Contiguous static chunks: which task computes a request never changes
  // the request's answer (exec reads only frozen state), so the result
  // vector — and its serialization — is thread-count invariant.  Task t's
  // state slab is thread-affine and cacheline-aligned: scratch stays warm,
  // tallies never false-share.
  pool_.run([&](std::size_t t) {
    TaskState& state = task_states_[t];
    state.tally = Counters{};
    const std::size_t lo = batch.size() * t / tasks;
    const std::size_t hi = batch.size() * (t + 1) / tasks;
    for (std::size_t i = lo; i < hi; ++i) {
      exec(snapshot, batch[i], results[i], state.scratch, state.tally);
    }
  });
  // Deterministic aggregation: sum per-task tallies in task order.
  for (const TaskState& ts : task_states_) {
    const Counters& tc = ts.tally;
    counters_.queries += tc.queries;
    counters_.locates += tc.locates;
    counters_.locate_hits += tc.locate_hits;
    counters_.ranges += tc.ranges;
    counters_.nearests += tc.nearests;
    counters_.records_returned += tc.records_returned;
    counters_.regions_scanned += tc.regions_scanned;
  }
  ++counters_.batches;
  counters_.last_epoch = snapshot.epoch();
  return results;
}

void QueryEngine::exec(const DirectorySnapshot& snapshot, const Query& q,
                       QueryResult& out, Scratch& scratch,
                       Counters& c) const {
  out.kind = q.kind;
  ++c.queries;
  switch (q.kind) {
    case Query::Kind::kLocate: {
      ++c.locates;
      if (auto rec = snapshot.locate(q.user)) {
        out.found = true;
        out.located = *rec;
        ++c.locate_hits;
        ++c.records_returned;
      }
      return;
    }
    case Query::Kind::kRange: {
      ++c.ranges;
      // Grid-indexed discovery merged across regions, then canonically
      // ordered by user id: a store's internal order reflects insertion
      // order, so without the sort two directories holding identical
      // records would answer in different orders whenever their updates
      // arrived interleaved differently (e.g. concurrent wire clients vs
      // a sequential replay).  Sorting makes the result a pure function
      // of directory *content* — identical bytes for every shard layout
      // and every ingestion schedule.
      resolver_.intersecting(q.rect, scratch.regions);
      for (const RegionId id : scratch.regions) {
        const LocationStore* st = snapshot.store(id);
        if (st == nullptr || st->empty()) continue;
        ++c.regions_scanned;
        st->range_into(q.rect, out.records);
      }
      std::sort(out.records.begin(), out.records.end(),
                [](const LocationRecord& a, const LocationRecord& b) {
                  return a.user.value < b.user.value;
                });
      c.records_returned += out.records.size();
      return;
    }
    case Query::Kind::kNearest: {
      ++c.nearests;
      if (q.k == 0) return;
      auto& best = out.records;
      const Point p = q.point;
      // `dists` mirrors `best` so ordered insertion never recomputes a
      // distance: candidates are rejected or placed on cached doubles.
      std::vector<double>& dists = scratch.knn_dists;
      dists.clear();
      // Exact kNN over expanding region rings.  `ring_floor` lower-bounds
      // every unvisited region — including the ring about to be
      // enumerated — so refusing the ring once the kth-best beats the
      // floor cannot miss a closer record; a region whose own rect
      // distance exceeds the kth-best is skipped but the ring finishes —
      // a later region in the SAME ring can still hold a closer record.
      double kth = std::numeric_limits<double>::infinity();
      resolver_.each_by_distance(
          p, scratch.near,
          [&](double ring_floor) { return ring_floor <= kth; },
          [&](RegionId id, double dist, double) {
            if (dist > kth) return true;
            const LocationStore* st = snapshot.store(id);
            if (st == nullptr || st->empty()) return true;
            ++c.regions_scanned;
            for (const LocationRecord& rec : st->k_nearest(p, q.k)) {
              const double d = distance(rec.position, p);
              if (best.size() >= q.k) {
                // Probe results arrive distance-ascending: the first
                // candidate beyond the kth-best ends the whole probe.
                if (d > kth) break;
                if (d == kth && !(rec.user < best.back().user)) continue;
              }
              std::size_t lo = 0, hi = best.size();
              while (lo < hi) {
                const std::size_t mid = (lo + hi) / 2;
                if (dists[mid] < d ||
                    (dists[mid] == d && best[mid].user < rec.user)) {
                  lo = mid + 1;
                } else {
                  hi = mid;
                }
              }
              best.insert(best.begin() + static_cast<std::ptrdiff_t>(lo), rec);
              dists.insert(dists.begin() + static_cast<std::ptrdiff_t>(lo), d);
              if (best.size() > q.k) {
                best.pop_back();
                dists.pop_back();
              }
              if (best.size() >= q.k) kth = dists.back();
            }
            return true;
          });
      c.records_returned += best.size();
      return;
    }
  }
}

}  // namespace geogrid::mobility
