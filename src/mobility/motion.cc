#include "mobility/motion.h"

#include <algorithm>
#include <cmath>

namespace geogrid::mobility {

UserPopulation::UserPopulation(std::size_t count, Options options,
                               const workload::HotSpotField* field, Rng rng)
    : options_(options), field_(field), rng_(rng) {
  users_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MobileUser user;
    user.id = UserId{static_cast<std::uint32_t>(i + 1)};
    user.position = sample_point();
    retarget(user, 0.0);
    user.pause_until = 0.0;  // everyone starts moving immediately
    users_.push_back(user);
  }
}

Point UserPopulation::sample_point() {
  const Rect& plane = options_.plane;
  if (options_.model == MotionModel::kHotspotAttracted && field_ != nullptr &&
      rng_.chance(options_.attraction)) {
    const Point spot = field_->sample_weighted_point(rng_);
    const double r = options_.attraction_jitter;
    const Point jittered{spot.x + rng_.uniform(-r, r),
                         spot.y + rng_.uniform(-r, r)};
    return plane.clamp(jittered);
  }
  return Point{rng_.uniform(plane.x, plane.right()),
               rng_.uniform(plane.y, plane.top())};
}

void UserPopulation::retarget(MobileUser& user, double now) {
  user.waypoint = sample_point();
  user.speed = rng_.uniform(options_.min_speed, options_.max_speed);
  user.pause_until =
      now + rng_.uniform(options_.min_pause, options_.max_pause);
}

void UserPopulation::step(double dt, double now) {
  for (MobileUser& user : users_) {
    if (now < user.pause_until) continue;
    double budget = user.speed * dt;
    // A fast user may reach its waypoint mid-step; the remainder of the
    // step starts the pause (arrival consumes the rest of this tick).
    const double dist = distance(user.position, user.waypoint);
    if (dist <= budget || dist == 0.0) {
      user.position = user.waypoint;
      retarget(user, now);
      continue;
    }
    const double fx = (user.waypoint.x - user.position.x) / dist;
    const double fy = (user.waypoint.y - user.position.y) / dist;
    user.position.x += fx * budget;
    user.position.y += fy * budget;
    user.position = options_.plane.clamp(user.position);
  }
}

}  // namespace geogrid::mobility
