// Mobile users and seeded motion models.
//
// The paper's premise is that GeoGrid "provides location-based services to
// mobile users through fixed proxy nodes"; this module supplies the mobile
// users.  Two classic motion models over the 64x64-mile plane:
//
//  * random waypoint — pick a uniform destination, travel at a sampled
//    speed, pause, repeat (the standard mobility baseline);
//  * hot-spot-attracted walk — with probability `attraction` the next
//    waypoint is drawn near a hot spot of the workload field (people drive
//    *to* the stadium), otherwise uniform.  This couples user density to
//    the same field the query workload concentrates on.
//
// All randomness flows through the explicit Rng, so a population's entire
// trajectory is bit-reproducible from its seed.  Time is virtual seconds;
// speeds are miles per virtual second.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "workload/hotspot.h"

namespace geogrid::mobility {

/// One simulated mobile user.
struct MobileUser {
  UserId id{};
  Point position{};
  Point waypoint{};
  double speed = 0.0;        ///< miles per virtual second toward waypoint
  double pause_until = 0.0;  ///< virtual time the current pause ends
  std::uint64_t next_seq = 1;  ///< sequence number of the next report
};

/// Which waypoint-selection rule a population follows.
enum class MotionModel {
  kRandomWaypoint,
  kHotspotAttracted,
};

class UserPopulation {
 public:
  struct Options {
    Rect plane{0.0, 0.0, 64.0, 64.0};
    MotionModel model = MotionModel::kRandomWaypoint;
    /// Speed range, miles per virtual second.  Defaults span ~11-72 mph.
    double min_speed = 0.003;
    double max_speed = 0.02;
    /// Pause range at each waypoint, virtual seconds.
    double min_pause = 0.0;
    double max_pause = 30.0;
    /// Hot-spot-attracted walk: probability a waypoint targets a hot spot,
    /// and the uniform jitter radius (miles) around the sampled spot.
    double attraction = 0.8;
    double attraction_jitter = 1.0;
  };

  /// Spawns `count` users at model-distributed positions.  `field` supplies
  /// the hot spots for kHotspotAttracted and may be null for
  /// kRandomWaypoint.  User ids are 1..count.
  UserPopulation(std::size_t count, Options options,
                 const workload::HotSpotField* field, Rng rng);

  /// Advances every user by `dt` virtual seconds ending at time `now`:
  /// move toward the waypoint, pause on arrival, then re-target.
  void step(double dt, double now);

  std::vector<MobileUser>& users() noexcept { return users_; }
  const std::vector<MobileUser>& users() const noexcept { return users_; }
  const Options& options() const noexcept { return options_; }

  /// Direct access for tests/harnesses that script a user's movement.
  MobileUser& user(std::size_t index) { return users_[index]; }

 private:
  Point sample_point();
  void retarget(MobileUser& user, double now);

  Options options_;
  const workload::HotSpotField* field_;
  Rng rng_;
  std::vector<MobileUser> users_;
};

}  // namespace geogrid::mobility
