#include "mobility/directory_snapshot.h"

#include <algorithm>
#include <utility>

namespace geogrid::mobility {

void DirectorySnapshot::collect_users(std::vector<UserId>& out) const {
  const std::size_t start = out.size();
  out.reserve(start + users_.size());
  users_.for_each([&](UserId id, const UserSlot&) { out.push_back(id); });
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
}

void DirectorySnapshot::locate_many(
    std::span<const UserId> users, LocateScratch& scratch,
    std::vector<std::optional<LocationRecord>>& out) const {
  out.clear();
  out.resize(users.size());
  auto& order = scratch.order;
  order.clear();
  order.reserve(users.size());
  // Pass 1: resolve the user -> region map (unavoidably random) and stamp
  // each hit with a (shard, region) sort key.
  for (std::uint32_t i = 0; i < users.size(); ++i) {
    const UserSlot* slot = users_.find(users[i]);
    if (slot == nullptr) continue;  // out[i] stays nullopt
    const std::uint64_t key =
        (static_cast<std::uint64_t>(
             shard_of_region(slot->region, slices_.size()))
         << 32) |
        slot->region.value;
    order.emplace_back(key, i);
  }
  // Pass 2: probe stores in shard-then-region order — one store resolve
  // per region run, and consecutive locates walk the same store's maps.
  std::sort(order.begin(), order.end());
  RegionId current = kInvalidRegion;
  const LocationStore* st = nullptr;
  for (const auto& [key, i] : order) {
    const RegionId region{static_cast<std::uint32_t>(key)};
    if (region != current) {
      st = store(region);
      current = region;
    }
    if (st != nullptr) out[i] = st->locate(users[i]);
  }
}

void DirectorySnapshot::serialize(net::Writer& w) const {
  std::vector<std::pair<RegionId, const LocationStore*>> stores;
  for (const auto& slice : slices_) {
    slice->for_each([&](RegionId id, const LocationStore& st) {
      if (st.empty()) return;  // matches ShardedDirectory::serialize
      stores.emplace_back(id, &st);
    });
  }
  std::sort(stores.begin(), stores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.varint(stores.size());
  for (const auto& [id, st] : stores) {
    w.region_id(id);
    st->encode(w);
  }
}

}  // namespace geogrid::mobility
