#include "mobility/directory_snapshot.h"

#include <algorithm>
#include <utility>

namespace geogrid::mobility {

void DirectorySnapshot::collect_users(std::vector<UserId>& out) const {
  const std::size_t start = out.size();
  out.reserve(start + users_.size());
  users_.for_each([&](UserId id, const UserSlot&) { out.push_back(id); });
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
}

void DirectorySnapshot::serialize(net::Writer& w) const {
  std::vector<std::pair<RegionId, const LocationStore*>> stores;
  for (const auto& slice : slices_) {
    slice->for_each([&](RegionId id, const LocationStore& st) {
      if (st.empty()) return;  // matches ShardedDirectory::serialize
      stores.emplace_back(id, &st);
    });
  }
  std::sort(stores.begin(), stores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.varint(stores.size());
  for (const auto& [id, st] : stores) {
    w.region_id(id);
    st->encode(w);
  }
}

}  // namespace geogrid::mobility
