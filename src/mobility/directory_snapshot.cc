#include "mobility/directory_snapshot.h"

#include <algorithm>
#include <utility>

namespace geogrid::mobility {

void DirectorySnapshot::serialize(net::Writer& w) const {
  std::vector<std::pair<RegionId, const LocationStore*>> stores;
  for (const auto& slice : slices_) {
    slice->for_each([&](RegionId id, const LocationStore& st) {
      stores.emplace_back(id, &st);
    });
  }
  std::sort(stores.begin(), stores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.varint(stores.size());
  for (const auto& [id, st] : stores) {
    w.region_id(id);
    st->encode(w);
  }
}

}  // namespace geogrid::mobility
