// Spatial store of mobile-user location records.
//
// Each region owner keeps one LocationStore holding the latest timestamped
// report of every user currently inside its region.  The store is the hot
// data structure of the mobile-user layer: the paper's workload is dominated
// by location updates from moving users, so ingest must be O(1) and spatial
// queries must not scan the whole population.
//
// Records live in a structure-of-arrays layout: dense parallel columns for
// user id, x coordinate, y coordinate, sequence and timestamp, indexed by a
// flat open-addressing map (common::FlatMap) from user to record slot.
// Ingest touches exactly the columns it writes, range scans sweep the
// coordinate columns without dragging timestamps through the cache, and
// nothing pointer-chases through node allocations — this is what keeps
// updates/sec flat as the population grows into the millions.  The x/y
// split (rather than a packed Point column) is what lets the wide-rect
// range path SIMD-scan the whole store: four vector compares and a
// movemask per lane group over linearly streaming doubles
// (common/simd.h), instead of a per-point branch over interleaved pairs.  The spatial side is a sparse
// uniform grid of square cells (flat map from packed cell coordinates to a
// bucket of record slots); cells materialize only where users are, so one
// store works unchanged whether its region is the whole plane or a
// post-split sliver, and region splits/merges never force a re-grid.
//
// Per-user sequence numbers make ingestion idempotent and reorder-safe: a
// report older than the stored one is rejected, so replicated stores
// converge no matter how updates and handoffs interleave on the wire.
// The store serializes through the net codec so a primary can replicate it
// to its secondary over the existing dual-peer SyncState path.  Encoding is
// canonical (records sorted by user id): two stores holding the same
// records produce identical bytes regardless of the order they ingested
// them in, which is what the sharded engine's K-invariance test leans on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "net/codec.h"

namespace geogrid::mobility {

/// The latest known position of one user.
struct LocationRecord {
  UserId user{};
  Point position{};
  std::uint64_t seq = 0;    ///< per-user monotonic report counter
  double timestamp = 0.0;   ///< virtual time of the report

  friend bool operator==(const LocationRecord&,
                         const LocationRecord&) = default;

  void encode(net::Writer& w) const {
    w.user_id(user);
    w.point(position);
    w.u64(seq);
    w.f64(timestamp);
  }
  static LocationRecord decode(net::Reader& r) {
    LocationRecord rec;
    rec.user = r.user_id();
    rec.position = r.point();
    rec.seq = r.u64();
    rec.timestamp = r.f64();
    return rec;
  }
};

class LocationStore {
 public:
  /// `cell_size` is the grid pitch in miles.  The default keeps cell
  /// populations small on the 64x64-mile plane even at 1M users
  /// (~244 users/cell uniform) while range scans touch few cells.
  explicit LocationStore(double cell_size = 1.0) : cell_size_(cell_size) {}

  /// Ingests a report.  Returns true when it was applied; false when a
  /// record with an equal or newer sequence already exists (stale report,
  /// replay, or reordered delivery).
  bool ingest(const LocationRecord& record);

  /// Point lookup: the stored record for `user`, if present.
  std::optional<LocationRecord> locate(UserId user) const;

  /// The stored sequence number for `user`, if present (cheaper than
  /// locate when only the seq guard matters).
  std::optional<std::uint64_t> seq_of(UserId user) const;

  /// Removes `user` outright.  Returns true when a record was removed.
  bool erase(UserId user);

  /// Handoff eviction: removes `user` only when the stored sequence is
  /// <= `max_seq` (a newer report has authority over an older eviction).
  bool erase_if_stale(UserId user, std::uint64_t max_seq);

  /// All records whose position the rect covers (half-open cover test on
  /// the east/north edges, matching region semantics).
  std::vector<LocationRecord> range(const Rect& rect) const;

  /// range() appending into a caller-owned vector (not cleared) — the
  /// batched query path merges per-region partials without reallocating.
  void range_into(const Rect& rect, std::vector<LocationRecord>& out) const;

  /// The k records nearest to `p` (fewer when the store is smaller),
  /// ordered by ascending distance; ties break on user id.
  std::vector<LocationRecord> k_nearest(const Point& p, std::size_t k) const;

  /// Visits every stored record in slot order (an artifact of ingestion
  /// history, not canonical) — callers that need determinism must sort what
  /// they collect.  The region-migration scan is the intended consumer.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(users_.size()); ++slot) {
      fn(record_at(slot));
    }
  }

  std::size_t size() const noexcept { return users_.size(); }
  bool empty() const noexcept { return users_.empty(); }
  void clear();

  double cell_size() const noexcept { return cell_size_; }

  /// Serialization for primary -> secondary replication.  Canonical:
  /// records are emitted sorted by user id, so equal contents mean equal
  /// bytes no matter the ingestion history.
  void encode(net::Writer& w) const;
  static LocationStore decode(net::Reader& r);

 private:
  /// Packs the signed cell coordinates of a point into one key.
  std::uint64_t cell_key_of(const Point& p) const noexcept;
  static std::uint64_t pack(std::int32_t cx, std::int32_t cy) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t cell_coord(double v) const noexcept;

  void cell_insert(std::uint64_t key, std::uint32_t slot);
  void cell_remove(std::uint64_t key, std::uint32_t slot);
  void cell_replace(std::uint64_t key, std::uint32_t old_slot,
                    std::uint32_t new_slot);
  Point position_at(std::uint32_t slot) const noexcept {
    return Point{xs_[slot], ys_[slot]};
  }
  LocationRecord record_at(std::uint32_t slot) const {
    return LocationRecord{users_[slot], position_at(slot), seqs_[slot],
                          timestamps_[slot]};
  }
  void remove_slot(std::uint32_t slot);

  double cell_size_;
  // Structure-of-arrays record columns; `index_` maps user -> slot.
  // `cell_keys_` caches each slot's packed cell so the in-place update
  // path (the overwhelmingly common ingest) never recomputes the old
  // cell's floor divisions.  Coordinates are split into separate x/y
  // columns for the SIMD band filter (see header comment).
  std::vector<UserId> users_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::uint64_t> seqs_;
  std::vector<double> timestamps_;
  std::vector<std::uint64_t> cell_keys_;
  common::FlatMap<UserId, std::uint32_t> index_;
  common::FlatMap<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace geogrid::mobility
