// Spatial store of mobile-user location records.
//
// Each region owner keeps one LocationStore holding the latest timestamped
// report of every user currently inside its region.  The store is the hot
// data structure of the mobile-user layer: the paper's workload is dominated
// by location updates from moving users, so ingest must be O(1) and spatial
// queries must not scan the whole population.  Records are indexed twice:
// a hash map by user (point lookup, the `locate(user)` primitive) and a
// sparse uniform grid of square cells (range scan and k-nearest).  The grid
// is sparse — cells materialize only where users are — so one store works
// unchanged whether its region is the whole plane or a post-split sliver,
// and region splits/merges never force a re-grid.
//
// Per-user sequence numbers make ingestion idempotent and reorder-safe: a
// report older than the stored one is rejected, so replicated stores
// converge no matter how updates and handoffs interleave on the wire.
// The store serializes through the net codec so a primary can replicate it
// to its secondary over the existing dual-peer SyncState path.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "net/codec.h"

namespace geogrid::mobility {

/// The latest known position of one user.
struct LocationRecord {
  UserId user{};
  Point position{};
  std::uint64_t seq = 0;    ///< per-user monotonic report counter
  double timestamp = 0.0;   ///< virtual time of the report

  friend bool operator==(const LocationRecord&,
                         const LocationRecord&) = default;

  void encode(net::Writer& w) const {
    w.user_id(user);
    w.point(position);
    w.u64(seq);
    w.f64(timestamp);
  }
  static LocationRecord decode(net::Reader& r) {
    LocationRecord rec;
    rec.user = r.user_id();
    rec.position = r.point();
    rec.seq = r.u64();
    rec.timestamp = r.f64();
    return rec;
  }
};

class LocationStore {
 public:
  /// `cell_size` is the grid pitch in miles.  The default keeps cell
  /// populations small on the 64x64-mile plane even at 1M users
  /// (~244 users/cell uniform) while range scans touch few cells.
  explicit LocationStore(double cell_size = 1.0) : cell_size_(cell_size) {}

  /// Ingests a report.  Returns true when it was applied; false when a
  /// record with an equal or newer sequence already exists (stale report,
  /// replay, or reordered delivery).
  bool ingest(const LocationRecord& record);

  /// Point lookup: the stored record for `user`, if present.
  const LocationRecord* locate(UserId user) const;

  /// Removes `user` outright.  Returns true when a record was removed.
  bool erase(UserId user);

  /// Handoff eviction: removes `user` only when the stored sequence is
  /// <= `max_seq` (a newer report has authority over an older eviction).
  bool erase_if_stale(UserId user, std::uint64_t max_seq);

  /// All records whose position the rect covers (half-open cover test on
  /// the east/north edges, matching region semantics).
  std::vector<LocationRecord> range(const Rect& rect) const;

  /// The k records nearest to `p` (fewer when the store is smaller),
  /// ordered by ascending distance; ties break on user id.
  std::vector<LocationRecord> k_nearest(const Point& p, std::size_t k) const;

  std::size_t size() const noexcept { return by_user_.size(); }
  bool empty() const noexcept { return by_user_.empty(); }
  void clear();

  double cell_size() const noexcept { return cell_size_; }

  /// Serialization for primary -> secondary replication.
  void encode(net::Writer& w) const;
  static LocationStore decode(net::Reader& r);

 private:
  /// Packs the signed cell coordinates of a point into one key.
  std::uint64_t cell_key_of(const Point& p) const noexcept;
  static std::uint64_t pack(std::int32_t cx, std::int32_t cy) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t cell_coord(double v) const noexcept;
  void cell_remove(std::uint64_t key, UserId user);

  double cell_size_;
  std::unordered_map<UserId, LocationRecord> by_user_;
  std::unordered_map<std::uint64_t, std::vector<UserId>> cells_;
};

}  // namespace geogrid::mobility
