// Incremental notification engine: per-epoch ingest deltas matched against
// standing subscriptions.
//
// The re-query world answers "who should be notified this tick" by running
// every standing subscription as a fresh range query — O(S x query) per
// epoch even when almost nobody moved.  NotificationEngine inverts the
// join: each drain() publishes the directory's snapshot, takes the set of
// users whose record changed since the previously drained epoch (the
// ingest delta ShardedDirectory tracks), and matches only those users
// against the SubscriptionIndex.  Work per epoch is O(moved users x
// covering subscriptions) — independent of the resident subscription
// count and of the population that stood still.
//
// Event semantics per subscription kind, derived from the user's previous
// (last drained epoch) and current positions:
//
//   * geofence — kEnter when the area covers cur but not prev; kLeave when
//     it covers prev but not cur.
//   * range    — geofence events plus kMove when the area covers both and
//     the position changed (continuous tracking inside the area).
//   * friend   — kEnter when the tracked user first appears, kMove on
//     every later position change; no geometry, never leaves.
//
// A user whose record was re-applied at the same position (paused user
// re-reporting) crossed no boundary and moved no distance: skipped.
//
// The match hot path is flat by construction: each task bulk-resolves its
// chunk's current and previous records through
// DirectorySnapshot::locate_many (store probes grouped by shard/region
// instead of ping-ponging per user), the covering probes are SIMD scans
// over the index's SoA cell columns, and the probe's (id, slot, kind)
// CoverMatch triples feed the enter/leave/move merge directly — the loop
// never dereferences the subscription slot array per notification.
// Per-user match timing is sampled (every Nth candidate,
// Options::timing_sample_every) so the steady_clock reads that feed
// match_latency() cost the workload a bounded fraction instead of two
// clock calls per user.  All per-task working state (output staging,
// probe scratch, bulk-locate buffers, tallies) persists across drains.
//
// Determinism contract, matching the rest of the pipeline: the delta is a
// sorted deduplicated user list (identical for every shard count — phase-B
// dispatch-order differences are erased by the sort), matching fans out in
// contiguous static chunks over a WorkerPool with per-task scratch and
// output buffers concatenated in task order, and per-user events emit in
// ascending sub-id order (rect matches first, then friend matches).  The
// serialized notification stream is therefore byte-identical across shard
// and thread counts — bench_notifications aborts on divergence.
//
// Fallbacks: when the engine fell behind the directory's retained delta
// history (or deltas are not tracked), drain() rescans every resident
// user — the full-rescan path the incremental one is benchmarked against.
// The first drain has no previous epoch, so every resident user is new
// and geofence/range subscriptions fire enters only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/worker_pool.h"
#include "metrics/latency.h"
#include "mobility/directory_snapshot.h"
#include "mobility/sharded_directory.h"
#include "net/codec.h"
#include "net/messages.h"
#include "pubsub/subscription_index.h"

namespace geogrid::pubsub {

/// What happened relative to one subscription.
enum class NotifyEvent : std::uint8_t {
  kEnter = 0,
  kLeave = 1,
  kMove = 2,
};

/// One emitted notification: subscription x user x event at the user's
/// current position.
struct Notification {
  std::uint64_t sub_id = 0;
  UserId user{};
  NotifyEvent event = NotifyEvent::kEnter;
  Point position{};

  friend bool operator==(const Notification&, const Notification&) = default;

  /// Canonical encoding — the unit the divergence abort compares.
  void encode(net::Writer& w) const {
    w.u64(sub_id);
    w.user_id(user);
    w.u8(static_cast<std::uint8_t>(event));
    w.point(position);
  }
};

class NotificationEngine {
 public:
  struct Options {
    /// Match fan-out.  0 = hardware threads; 1 = fully serial.  Emitted
    /// notifications never depend on this.
    std::size_t threads = 0;
    /// Release the directory's delta history for epochs this engine has
    /// consumed (single-consumer deployments; turn off when several
    /// engines drain one directory).
    bool trim_consumed = true;
    /// Record per-user match latency for every Nth candidate user (1 =
    /// every user).  Sampling keeps the two steady_clock reads per
    /// measured user from charging clock overhead to the workload —
    /// match_p50/p99 describe matching, not timing.  Never affects the
    /// emitted notifications.
    std::size_t timing_sample_every = 32;
  };

  struct Counters {
    std::uint64_t drains = 0;
    std::uint64_t delta_users = 0;      ///< candidate users matched
    std::uint64_t stationary_skips = 0; ///< re-applied at the same position
    std::uint64_t notifications = 0;
    std::uint64_t enters = 0;
    std::uint64_t leaves = 0;
    std::uint64_t moves = 0;
    std::uint64_t friend_events = 0;
    std::uint64_t full_rescans = 0;  ///< delta history lost -> rescan
    std::uint64_t last_epoch = 0;    ///< epoch of the last drained snapshot
  };

  /// The engine publishes snapshots through `directory` and matches
  /// against `subs`.  Mutating the index between drains is the caller's
  /// (single-threaded) business; drain() itself calls subs.refresh().
  NotificationEngine(mobility::ShardedDirectory& directory,
                     SubscriptionIndex& subs);
  NotificationEngine(mobility::ShardedDirectory& directory,
                     SubscriptionIndex& subs, Options options);

  /// Publishes (or reuses) the directory's snapshot at the current ingest
  /// epoch and emits every notification implied by the movement since the
  /// previously drained epoch.  Writer-side: must not overlap
  /// apply_updates, like publish_snapshot itself.
  std::vector<Notification> drain();

  /// Translates an emitted notification onto a caller-provided wire
  /// message (topic = the subscription's filter), reusing the message's
  /// string capacity — the serialization path allocates nothing in steady
  /// state.
  void to_notify(const Notification& n, net::Notify& out) const;

  /// Convenience overload constructing a fresh message.
  net::Notify to_notify(const Notification& n) const {
    net::Notify msg;
    to_notify(n, msg);
    return msg;
  }

  std::size_t thread_count() const noexcept { return pool_.task_count(); }
  const Counters& counters() const noexcept { return counters_; }

  /// Per-user match latency, sampled every Options::timing_sample_every
  /// candidates, across all drains (merged from the per-task histograms
  /// after each drain).
  const metrics::LatencyHistogram& match_latency() const noexcept {
    return match_hist_;
  }

  /// Canonical serialization of one drained batch: count then each
  /// notification in emission order.
  static void serialize(net::Writer& w, std::span<const Notification> batch);

 private:
  /// Per-task working state, owned by the engine and reused across drains
  /// (fixed pool affinity makes each entry thread-affine): notification
  /// staging, covering-probe outputs, bulk-locate buffers and scratch,
  /// counter tallies, and the drain-local latency histogram.
  struct TaskState {
    std::vector<Notification> out;
    std::vector<CoverMatch> prev_matches;
    std::vector<CoverMatch> cur_matches;
    std::vector<std::optional<mobility::LocationRecord>> cur_recs;
    std::vector<std::optional<mobility::LocationRecord>> prev_recs;
    mobility::DirectorySnapshot::LocateScratch locate_scratch;
    Counters tally;
    metrics::LatencyHistogram hist;
  };

  /// Matches one candidate user given its pre-resolved records.
  void match_user(UserId user, const mobility::LocationRecord* cur_rec,
                  const mobility::LocationRecord* prev_rec,
                  std::vector<Notification>& out, TaskState& state,
                  Counters& c) const;

  /// Runs one task's contiguous chunk of the delta: bulk-locates the
  /// chunk's records, then matches each user (timing sampled).
  void run_chunk(std::span<const UserId> delta, std::size_t lo,
                 std::size_t hi, const mobility::DirectorySnapshot& cur,
                 const mobility::DirectorySnapshot* prev,
                 std::vector<Notification>& out, TaskState& state,
                 Counters& c);

  mobility::ShardedDirectory& directory_;
  SubscriptionIndex& subs_;
  Options options_;
  Counters counters_;
  metrics::LatencyHistogram match_hist_;
  common::WorkerPool pool_;
  std::vector<TaskState> tasks_;
  std::shared_ptr<const mobility::DirectorySnapshot> last_;
};

}  // namespace geogrid::pubsub
