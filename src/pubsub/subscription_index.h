// Spatial index of standing subscriptions for the incremental pub/sub path.
//
// GeoGrid's headline service is continuous location-based middleware:
// standing subscriptions ("tell me when anyone enters this parking lot",
// "track my friend u42") that push notifications as users move.  Answering
// them by re-querying the world every tick costs O(subscriptions x query)
// per epoch no matter how few users actually moved.  SubscriptionIndex is
// the inverted structure that makes the delta path possible: given one
// moved user's position, return every subscription whose geometry covers
// it, in canonical (ascending sub-id) order, in O(candidates of one cell).
//
// The index holds three subscription kinds over one dense slot array:
//
//   * geofence — fire enter/leave when a user crosses the area boundary
//   * range    — geofence plus a move event for motion inside the area
//     (the paper's radius-γ continuous query mapped to its bounding box)
//   * friend   — track one named user everywhere (no geometry)
//
// Rect-carrying kinds live in a uniform grid over the plane, built on the
// same UniformGridSpec math as overlay::RegionResolver so every spatial
// index in the codebase buckets coordinates identically.  Each grid cell
// keeps its (sub id, slot) entries sorted by id; a rect is inserted into
// every cell it touches, and the half-open Rect::covers test (the region
// algebra's own predicate, also what LocationStore::range uses) means a
// point probe needs exactly one cell — the candidates arrive pre-sorted
// and covering() never sorts or deduplicates.  Friend subscriptions skip
// the grid entirely and index by the tracked user id.
//
// Like the resolver, the index is a refresh-then-read structure: refresh()
// (dispatcher-only) rebuilds the grid when the resident count drifted 2x
// from the built size, and all query methods are const reads of frozen
// state, safe from any number of match workers concurrently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "net/messages.h"
#include "overlay/region_resolver.h"

namespace geogrid::pubsub {

/// What a standing subscription watches (see header comment).
enum class SubKind : std::uint8_t {
  kGeofence = 0,
  kRange = 1,
  kFriend = 2,
};

/// One resident subscription.  `friend_user` is meaningful only for
/// kFriend; `area` only for the rect-carrying kinds.
struct Subscription {
  std::uint64_t id = 0;
  SubKind kind = SubKind::kGeofence;
  Rect area{};
  UserId friend_user{};
  NodeId subscriber{};
  std::string filter;
};

class SubscriptionIndex {
 public:
  explicit SubscriptionIndex(const Rect& plane)
      : plane_(plane), spec_(overlay::UniformGridSpec::over(plane, 1)) {
    // One-cell grid from birth: subscribe/unsubscribe keep the grid exact
    // at all times, refresh() only re-tunes the pitch as the population
    // grows.
    grid_.resize(1);
  }

  SubscriptionIndex(const SubscriptionIndex&) = delete;
  SubscriptionIndex& operator=(const SubscriptionIndex&) = delete;

  /// Installs a rect-carrying subscription from its wire message.  A
  /// resubscribe of a resident id replaces the subscription.
  void subscribe(const net::Subscribe& msg, SubKind kind = SubKind::kGeofence);

  /// Installs a friend-tracking subscription: fires wherever
  /// `friend_user` moves; msg.area is ignored.
  void subscribe_friend(const net::Subscribe& msg, UserId friend_user);

  /// Removes a subscription.  Returns false when the id is not resident.
  bool unsubscribe(std::uint64_t sub_id);

  /// Wire-message convenience for unsubscribe.
  bool apply(const net::Unsubscribe& msg) { return unsubscribe(msg.sub_id); }

  /// Rebuilds the spatial grid iff the resident rect-subscription count
  /// drifted 2x from the size the grid was built for.  Dispatcher-only,
  /// like RegionResolver::refresh; the const queries below are safe from
  /// any thread between refreshes.
  void refresh();

  /// Appends the slot of every rect subscription whose area covers `p`,
  /// in ascending sub-id order (`out` is cleared first).  One grid-cell
  /// probe; candidates arrive pre-sorted so nothing is re-sorted here.
  void covering(const Point& p, std::vector<std::uint32_t>& out) const;

  /// Friend subscriptions tracking `user`, ascending sub-id order (null
  /// when nobody tracks the user).
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>* friends_of(
      UserId user) const {
    return friends_.find(user);
  }

  const Subscription* find(std::uint64_t sub_id) const;
  const Subscription& at(std::uint32_t slot) const { return subs_[slot]; }

  std::size_t size() const noexcept { return subs_.size(); }
  std::size_t rect_count() const noexcept { return rect_count_; }
  std::size_t grid_dim() const noexcept { return spec_.dim; }
  const Rect& plane() const noexcept { return plane_; }

 private:
  /// (sub id, slot) pair; cell buckets and friend lists stay sorted by id
  /// so probes emit canonical order without sorting.
  using Entry = std::pair<std::uint64_t, std::uint32_t>;

  void insert(Subscription sub);
  void grid_insert(const Subscription& sub, std::uint32_t slot);
  void grid_insert_unsorted(const Subscription& sub, std::uint32_t slot);
  void grid_remove(const Subscription& sub, std::uint32_t slot);
  void grid_replace_slot(const Subscription& sub, std::uint32_t old_slot,
                         std::uint32_t new_slot);
  void friends_insert(const Subscription& sub, std::uint32_t slot);
  void friends_remove(const Subscription& sub);
  void friends_replace_slot(const Subscription& sub, std::uint32_t new_slot);
  void rebuild_grid();

  Rect plane_;
  std::vector<Subscription> subs_;
  common::FlatMap<std::uint64_t, std::uint32_t> index_;  ///< id -> slot
  common::FlatMap<UserId, std::vector<Entry>> friends_;
  std::size_t rect_count_ = 0;  ///< resident non-friend subscriptions

  // Uniform grid over the plane (UniformGridSpec: same cell math as the
  // region resolver).  Sized so the average subscription rect covers O(1)
  // cells; rebuilt lazily by refresh() when the population drifts.
  overlay::UniformGridSpec spec_;
  std::vector<std::vector<Entry>> grid_;
  std::size_t built_for_ = 0;  ///< rect_count_ the grid was sized for
  bool grid_valid_ = true;
};

}  // namespace geogrid::pubsub
