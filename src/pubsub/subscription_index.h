// Spatial index of standing subscriptions for the incremental pub/sub path.
//
// GeoGrid's headline service is continuous location-based middleware:
// standing subscriptions ("tell me when anyone enters this parking lot",
// "track my friend u42") that push notifications as users move.  Answering
// them by re-querying the world every tick costs O(subscriptions x query)
// per epoch no matter how few users actually moved.  SubscriptionIndex is
// the inverted structure that makes the delta path possible: given one
// moved user's position, return every subscription whose geometry covers
// it, in canonical (ascending sub-id) order, in O(candidates of one cell).
//
// The index holds three subscription kinds over one dense slot array:
//
//   * geofence — fire enter/leave when a user crosses the area boundary
//   * range    — geofence plus a move event for motion inside the area
//     (the paper's radius-γ continuous query mapped to its bounding box)
//   * friend   — track one named user everywhere (no geometry)
//
// Storage is hot/cold split.  The hot side is what the match loop reads:
// per-grid-cell structure-of-arrays columns (lo_x/lo_y/hi_x/hi_y edge
// doubles, subscription id, packed slot+kind), each cell one contiguous
// allocation, so a point probe is one cell lookup followed by a SIMD
// half-open containment scan (common::filter_rects_covering_point) that
// streams four compares and a movemask per lane group — no per-candidate
// pointer chase, no branch per rect.  The probe emits (id, slot, kind)
// CoverMatch triples, so the notification merge loop downstream never
// touches the slot array per notification either.  The cold side — the
// filter string and subscriber address nobody reads while matching — lives
// in a parallel side-table touched only by subscribe/unsubscribe and
// notification serialization.
//
// Rect-carrying kinds live in a uniform grid over the plane, built on the
// same UniformGridSpec math as overlay::RegionResolver so every spatial
// index in the codebase buckets coordinates identically.  Each grid cell
// keeps its columns sorted by id; a rect is inserted into every cell it
// touches, and the half-open Rect::covers test (the region algebra's own
// predicate, also what LocationStore::range uses) means a point probe
// needs exactly one cell — the candidates arrive pre-sorted and covering()
// never sorts or deduplicates.  Friend subscriptions skip the grid
// entirely and index by the tracked user id.
//
// Like the resolver, the index is a refresh-then-read structure: refresh()
// (dispatcher-only) rebuilds the grid when the resident count drifted 2x
// from the built size, subscribe/unsubscribe keep the columns exact in
// between, and all query methods are const reads of frozen state, safe
// from any number of match workers concurrently.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "net/messages.h"
#include "overlay/region_resolver.h"

namespace geogrid::pubsub {

/// What a standing subscription watches (see header comment).
enum class SubKind : std::uint8_t {
  kGeofence = 0,
  kRange = 1,
  kFriend = 2,
};

/// Hot half of one resident subscription: everything the match path could
/// ever read, nothing it couldn't.  `friend_user` is meaningful only for
/// kFriend; `area` only for the rect-carrying kinds.
struct SubRecord {
  std::uint64_t id = 0;
  SubKind kind = SubKind::kGeofence;
  Rect area{};
  UserId friend_user{};

  friend bool operator==(const SubRecord&, const SubRecord&) = default;
};

/// Cold half, parallel to the hot slots: read only off the match path
/// (subscribe/unsubscribe maintenance, notification serialization).
struct SubCold {
  NodeId subscriber{};
  std::string filter;
};

/// One covering() hit — the (id, slot, kind) triple the notification merge
/// loop consumes without dereferencing the slot array.
struct CoverMatch {
  std::uint64_t id = 0;
  std::uint32_t slot = 0;
  SubKind kind = SubKind::kGeofence;

  friend bool operator==(const CoverMatch&, const CoverMatch&) = default;
};

namespace detail {

/// One grid cell's subscriptions as structure-of-arrays columns in a
/// single allocation: [lo_x | lo_y | hi_x | hi_y] as doubles, then the
/// u64 id column, then the packed u32 slot+kind column, each `capacity()`
/// entries long.  One allocation per cell (not six vectors) keeps the
/// per-cell header at pointer+2x32bit even when a million sparse cells
/// hold one rect each, and the probe's four coordinate columns stream
/// linearly for the SIMD scan.  Entries stay sorted by id; insert/erase
/// shift each column's tail like a sorted vector would.
class CellSoA {
 public:
  CellSoA() = default;
  CellSoA(CellSoA&& o) noexcept
      : data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
  }
  CellSoA& operator=(CellSoA&& o) noexcept {
    if (this != &o) {
      delete[] data_;
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    return *this;
  }
  CellSoA(const CellSoA&) = delete;
  CellSoA& operator=(const CellSoA&) = delete;
  ~CellSoA() { delete[] data_; }

  std::uint32_t size() const noexcept { return size_; }
  std::uint32_t capacity() const noexcept { return cap_; }

  const double* lo_x() const noexcept { return col_d(0); }
  const double* lo_y() const noexcept { return col_d(1); }
  const double* hi_x() const noexcept { return col_d(2); }
  const double* hi_y() const noexcept { return col_d(3); }
  const std::uint64_t* ids() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(data_ + 4 * bytes_per_col());
  }
  const std::uint32_t* slot_kinds() const noexcept {
    return reinterpret_cast<const std::uint32_t*>(data_ + 5 * bytes_per_col());
  }

  /// First position whose id is >= `id` (entries are sorted by id).
  std::uint32_t lower_bound(std::uint64_t id) const noexcept {
    const std::uint64_t* col = ids();
    std::uint32_t lo = 0;
    std::uint32_t hi = size_;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (col[mid] < id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Pre-sizes the buffer for `cap` entries (rebuild path: count, reserve,
  /// append in id order — no per-insert shifting or reallocation).
  void reserve(std::uint32_t cap);

  /// Inserts one entry at `pos` (<= size()), shifting each column's tail.
  void insert(std::uint32_t pos, const Rect& area, std::uint64_t id,
              std::uint32_t slot_kind);

  /// Appends (rebuild path; caller feeds ascending ids).
  void append(const Rect& area, std::uint64_t id, std::uint32_t slot_kind) {
    insert(size_, area, id, slot_kind);
  }

  /// Removes the entry at `pos`, shifting each column's tail down.
  void erase(std::uint32_t pos);

  void set_slot_kind(std::uint32_t pos, std::uint32_t v) noexcept {
    reinterpret_cast<std::uint32_t*>(data_ + 5 * bytes_per_col())[pos] = v;
  }

 private:
  std::size_t bytes_per_col() const noexcept {
    return static_cast<std::size_t>(cap_) * sizeof(double);
  }
  const double* col_d(std::size_t c) const noexcept {
    return reinterpret_cast<const double*>(data_ + c * bytes_per_col());
  }
  double* col_d_mut(std::size_t c) noexcept {
    return reinterpret_cast<double*>(data_ + c * bytes_per_col());
  }

  void grow(std::uint32_t min_cap, std::uint32_t gap_pos);

  // Column layout (all offsets in multiples of cap_): doubles first so
  // every column stays naturally aligned in one `new std::byte[]` block —
  // 4 edge columns, the u64 id column (same stride as a double), then the
  // u32 slot+kind column.
  std::byte* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
};

}  // namespace detail

class SubscriptionIndex {
 public:
  explicit SubscriptionIndex(const Rect& plane)
      : plane_(plane), spec_(overlay::UniformGridSpec::over(plane, 1)) {
    // One-cell grid from birth: subscribe/unsubscribe keep the grid exact
    // at all times, refresh() only re-tunes the pitch as the population
    // grows.
    grid_.resize(1);
  }

  SubscriptionIndex(const SubscriptionIndex&) = delete;
  SubscriptionIndex& operator=(const SubscriptionIndex&) = delete;

  /// Installs a rect-carrying subscription from its wire message.  A
  /// resubscribe of a resident id replaces the subscription.
  void subscribe(const net::Subscribe& msg, SubKind kind = SubKind::kGeofence);

  /// Installs a friend-tracking subscription: fires wherever
  /// `friend_user` moves; msg.area is ignored.
  void subscribe_friend(const net::Subscribe& msg, UserId friend_user);

  /// Removes a subscription.  Returns false when the id is not resident.
  bool unsubscribe(std::uint64_t sub_id);

  /// Wire-message convenience for unsubscribe.
  bool apply(const net::Unsubscribe& msg) { return unsubscribe(msg.sub_id); }

  /// Rebuilds the spatial grid iff the resident rect-subscription count
  /// drifted 2x from the size the grid was built for.  Dispatcher-only,
  /// like RegionResolver::refresh; the const queries below are safe from
  /// any thread between refreshes.
  void refresh();

  /// Appends a CoverMatch for every rect subscription whose area covers
  /// `p`, in ascending sub-id order (`out` is cleared first).  One
  /// grid-cell probe, then a SIMD half-open containment scan over the
  /// cell's SoA edge columns; candidates arrive pre-sorted so nothing is
  /// re-sorted here.
  void covering(const Point& p, std::vector<CoverMatch>& out) const;

  /// Friend subscriptions tracking `user`, ascending sub-id order (null
  /// when nobody tracks the user).
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>* friends_of(
      UserId user) const {
    return friends_.find(user);
  }

  /// Hot record of a resident subscription id (null when not resident).
  const SubRecord* find(std::uint64_t sub_id) const;
  const SubRecord& at(std::uint32_t slot) const { return hot_[slot]; }
  /// Cold side-table row of a slot (filter, subscriber) — off the match
  /// path by construction.
  const SubCold& cold_at(std::uint32_t slot) const { return cold_[slot]; }
  /// Filter string of a resident subscription id, null when not resident.
  const std::string* filter_of(std::uint64_t sub_id) const {
    const std::uint32_t* slot = index_.find(sub_id);
    return slot == nullptr ? nullptr : &cold_[*slot].filter;
  }

  std::size_t size() const noexcept { return hot_.size(); }
  std::size_t rect_count() const noexcept { return rect_count_; }
  std::size_t grid_dim() const noexcept { return spec_.dim; }
  const Rect& plane() const noexcept { return plane_; }

  /// Exhaustive consistency audit of hot columns vs cold table vs grid vs
  /// friend lists (test support; O(subscriptions x covered cells)).
  /// Returns false on the first inconsistency.
  bool validate() const;

 private:
  /// (sub id, slot) pair; friend lists stay sorted by id so probes emit
  /// canonical order without sorting.
  using Entry = std::pair<std::uint64_t, std::uint32_t>;

  /// kind lives in the low 2 bits so a swap-remove repoint (slot changes,
  /// kind doesn't) can rewrite the whole word.
  static constexpr std::uint32_t pack_slot_kind(std::uint32_t slot,
                                                SubKind kind) noexcept {
    return (slot << 2) | static_cast<std::uint32_t>(kind);
  }
  static constexpr std::uint32_t slot_of(std::uint32_t sk) noexcept {
    return sk >> 2;
  }
  static constexpr SubKind kind_of(std::uint32_t sk) noexcept {
    return static_cast<SubKind>(sk & 3u);
  }

  void insert(SubRecord rec, SubCold cold);
  void grid_insert(const SubRecord& sub, std::uint32_t slot);
  void grid_remove(const SubRecord& sub);
  void grid_replace_slot(const SubRecord& sub, std::uint32_t new_slot);
  void friends_insert(const SubRecord& sub, std::uint32_t slot);
  void friends_remove(const SubRecord& sub);
  void friends_replace_slot(const SubRecord& sub, std::uint32_t new_slot);
  void rebuild_grid();

  Rect plane_;
  std::vector<SubRecord> hot_;   ///< dense slot array, match-path data only
  std::vector<SubCold> cold_;    ///< parallel cold side-table
  common::FlatMap<std::uint64_t, std::uint32_t> index_;  ///< id -> slot
  common::FlatMap<UserId, std::vector<Entry>> friends_;
  std::size_t rect_count_ = 0;  ///< resident non-friend subscriptions

  // Uniform grid over the plane (UniformGridSpec: same cell math as the
  // region resolver).  Sized so the average subscription rect covers O(1)
  // cells; rebuilt lazily by refresh() when the population drifts.
  overlay::UniformGridSpec spec_;
  std::vector<detail::CellSoA> grid_;
  std::size_t built_for_ = 0;  ///< rect_count_ the grid was sized for
  bool grid_valid_ = true;
};

}  // namespace geogrid::pubsub
