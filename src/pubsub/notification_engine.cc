#include "pubsub/notification_engine.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

namespace geogrid::pubsub {
namespace {

double now_micros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* event_name(NotifyEvent e) {
  switch (e) {
    case NotifyEvent::kEnter: return "enter";
    case NotifyEvent::kLeave: return "leave";
    case NotifyEvent::kMove: return "move";
  }
  return "?";
}

}  // namespace

NotificationEngine::NotificationEngine(mobility::ShardedDirectory& directory,
                                       SubscriptionIndex& subs)
    : NotificationEngine(directory, subs, Options{}) {}

NotificationEngine::NotificationEngine(mobility::ShardedDirectory& directory,
                                       SubscriptionIndex& subs,
                                       Options options)
    : directory_(directory),
      subs_(subs),
      options_(options),
      pool_(options.threads) {}

std::vector<Notification> NotificationEngine::drain() {
  subs_.refresh();
  const std::shared_ptr<const mobility::DirectorySnapshot> snap =
      directory_.publish_snapshot();
  ++counters_.drains;
  if (snap == nullptr) return {};
  counters_.last_epoch = snap->epoch();
  if (last_ != nullptr && snap->epoch() == last_->epoch()) return {};

  // The candidate set: users whose record changed in (last epoch, epoch].
  // Preference order — the snapshot's own stamped delta, the directory's
  // retained history, then the full-rescan fallback (which also serves the
  // first drain, where every resident user is new).
  std::vector<UserId> fallback;
  std::span<const UserId> delta;
  if (last_ == nullptr) {
    snap->collect_users(fallback);
    delta = fallback;
  } else if (snap->has_delta() && snap->delta_base_epoch() == last_->epoch()) {
    delta = snap->delta();
  } else {
    std::optional<std::vector<UserId>> changed =
        directory_.changed_since(last_->epoch());
    if (changed.has_value()) {
      fallback = std::move(*changed);
    } else {
      ++counters_.full_rescans;
      snap->collect_users(fallback);
    }
    delta = fallback;
  }
  counters_.delta_users += delta.size();

  const mobility::DirectorySnapshot* prev = last_.get();
  std::vector<Notification> out;
  if (!delta.empty()) {
    // Static contiguous chunks, per-task scratch/output/tallies, partials
    // concatenated in task order: the QueryEngine determinism recipe.
    const std::size_t tasks = pool_.task_count();
    if (tasks == 1) {
      Scratch scratch;
      metrics::LatencyHistogram hist;
      for (const UserId user : delta) {
        const double t0 = now_micros();
        match_user(user, *snap, prev, out, scratch, counters_);
        hist.record_micros(now_micros() - t0);
      }
      match_hist_.merge(hist);
    } else {
      std::vector<std::vector<Notification>> parts(tasks);
      std::vector<Counters> tallies(tasks);
      std::vector<metrics::LatencyHistogram> hists(tasks);
      pool_.run([&](std::size_t t) {
        const std::size_t lo = delta.size() * t / tasks;
        const std::size_t hi = delta.size() * (t + 1) / tasks;
        Scratch scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          const double t0 = now_micros();
          match_user(delta[i], *snap, prev, parts[t], scratch, tallies[t]);
          hists[t].record_micros(now_micros() - t0);
        }
      });
      std::size_t total = 0;
      for (const auto& p : parts) total += p.size();
      out.reserve(total);
      for (std::size_t t = 0; t < tasks; ++t) {
        out.insert(out.end(), parts[t].begin(), parts[t].end());
        counters_.stationary_skips += tallies[t].stationary_skips;
        counters_.notifications += tallies[t].notifications;
        counters_.enters += tallies[t].enters;
        counters_.leaves += tallies[t].leaves;
        counters_.moves += tallies[t].moves;
        counters_.friend_events += tallies[t].friend_events;
        match_hist_.merge(hists[t]);
      }
    }
  }

  last_ = snap;
  if (options_.trim_consumed && directory_.tracks_deltas()) {
    directory_.trim_deltas(snap->epoch());
  }
  return out;
}

void NotificationEngine::match_user(UserId user,
                                    const mobility::DirectorySnapshot& cur,
                                    const mobility::DirectorySnapshot* prev,
                                    std::vector<Notification>& out,
                                    Scratch& scratch, Counters& c) const {
  const std::optional<mobility::LocationRecord> cur_rec = cur.locate(user);
  if (!cur_rec.has_value()) return;  // never resident at this epoch
  const std::optional<mobility::LocationRecord> prev_rec =
      prev == nullptr ? std::nullopt : prev->locate(user);
  const bool has_prev = prev_rec.has_value();
  if (has_prev && prev_rec->position == cur_rec->position) {
    // Re-applied at the same position (paused user re-reporting): no
    // boundary crossed, no motion to report.
    ++c.stationary_skips;
    return;
  }
  const Point cur_pos = cur_rec->position;

  if (has_prev) {
    subs_.covering(prev_rec->position, scratch.prev_slots);
  } else {
    scratch.prev_slots.clear();
  }
  subs_.covering(cur_pos, scratch.cur_slots);

  // Merge the two ascending-id slot lists: prev-only = leave, cur-only =
  // enter, both = move (range subscriptions only).
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < scratch.prev_slots.size() || j < scratch.cur_slots.size()) {
    const std::uint64_t pid = i < scratch.prev_slots.size()
                                  ? subs_.at(scratch.prev_slots[i]).id
                                  : ~std::uint64_t{0};
    const std::uint64_t cid = j < scratch.cur_slots.size()
                                  ? subs_.at(scratch.cur_slots[j]).id
                                  : ~std::uint64_t{0};
    if (pid < cid) {
      out.push_back(Notification{pid, user, NotifyEvent::kLeave, cur_pos});
      ++c.leaves;
      ++c.notifications;
      ++i;
    } else if (cid < pid) {
      out.push_back(Notification{cid, user, NotifyEvent::kEnter, cur_pos});
      ++c.enters;
      ++c.notifications;
      ++j;
    } else {
      if (subs_.at(scratch.cur_slots[j]).kind == SubKind::kRange) {
        out.push_back(Notification{cid, user, NotifyEvent::kMove, cur_pos});
        ++c.moves;
        ++c.notifications;
      }
      ++i;
      ++j;
    }
  }

  // Friend subscriptions tracking this user: enter on first appearance,
  // move on every later position change.
  if (const auto* friends = subs_.friends_of(user)) {
    const NotifyEvent event =
        has_prev ? NotifyEvent::kMove : NotifyEvent::kEnter;
    for (const auto& [id, slot] : *friends) {
      out.push_back(Notification{id, user, event, cur_pos});
      ++c.friend_events;
      ++c.notifications;
      if (event == NotifyEvent::kEnter) {
        ++c.enters;
      } else {
        ++c.moves;
      }
    }
  }
}

net::Notify NotificationEngine::to_notify(const Notification& n) const {
  net::Notify msg;
  msg.sub_id = n.sub_id;
  if (const Subscription* sub = subs_.find(n.sub_id)) {
    msg.topic = sub->filter;
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s u%u @(%.6f, %.6f)", event_name(n.event),
                n.user.value, n.position.x, n.position.y);
  msg.payload = buf;
  return msg;
}

void NotificationEngine::serialize(net::Writer& w,
                                   std::span<const Notification> batch) {
  w.varint(batch.size());
  for (const Notification& n : batch) n.encode(w);
}

}  // namespace geogrid::pubsub
