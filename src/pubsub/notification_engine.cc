#include "pubsub/notification_engine.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

namespace geogrid::pubsub {
namespace {

double now_micros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* event_name(NotifyEvent e) {
  switch (e) {
    case NotifyEvent::kEnter: return "enter";
    case NotifyEvent::kLeave: return "leave";
    case NotifyEvent::kMove: return "move";
  }
  return "?";
}

}  // namespace

NotificationEngine::NotificationEngine(mobility::ShardedDirectory& directory,
                                       SubscriptionIndex& subs)
    : NotificationEngine(directory, subs, Options{}) {}

NotificationEngine::NotificationEngine(mobility::ShardedDirectory& directory,
                                       SubscriptionIndex& subs,
                                       Options options)
    : directory_(directory),
      subs_(subs),
      options_(options),
      pool_(options.threads),
      tasks_(pool_.task_count()) {
  if (options_.timing_sample_every == 0) options_.timing_sample_every = 1;
}

std::vector<Notification> NotificationEngine::drain() {
  subs_.refresh();
  const std::shared_ptr<const mobility::DirectorySnapshot> snap =
      directory_.publish_snapshot();
  ++counters_.drains;
  if (snap == nullptr) return {};
  counters_.last_epoch = snap->epoch();
  if (last_ != nullptr && snap->epoch() == last_->epoch()) return {};

  // The candidate set: users whose record changed in (last epoch, epoch].
  // Preference order — the snapshot's own stamped delta, the directory's
  // retained history, then the full-rescan fallback (which also serves the
  // first drain, where every resident user is new).
  std::vector<UserId> fallback;
  std::span<const UserId> delta;
  if (last_ == nullptr) {
    snap->collect_users(fallback);
    delta = fallback;
  } else if (snap->has_delta() && snap->delta_base_epoch() == last_->epoch()) {
    delta = snap->delta();
  } else {
    std::optional<std::vector<UserId>> changed =
        directory_.changed_since(last_->epoch());
    if (changed.has_value()) {
      fallback = std::move(*changed);
    } else {
      ++counters_.full_rescans;
      snap->collect_users(fallback);
    }
    delta = fallback;
  }
  counters_.delta_users += delta.size();

  const mobility::DirectorySnapshot* prev = last_.get();
  std::vector<Notification> out;
  if (!delta.empty()) {
    // Static contiguous chunks, per-task scratch/output/tallies, partials
    // concatenated in task order: the QueryEngine determinism recipe.
    // Task state lives on the engine and is reused drain over drain; the
    // pool's fixed affinity keeps each entry thread-affine.
    const std::size_t tasks = pool_.task_count();
    if (tasks == 1) {
      run_chunk(delta, 0, delta.size(), *snap, prev, out, tasks_[0],
                counters_);
      match_hist_.merge(tasks_[0].hist);
      tasks_[0].hist = {};
    } else {
      pool_.run([&](std::size_t t) {
        TaskState& state = tasks_[t];
        state.out.clear();
        const std::size_t lo = delta.size() * t / tasks;
        const std::size_t hi = delta.size() * (t + 1) / tasks;
        run_chunk(delta, lo, hi, *snap, prev, state.out, state, state.tally);
      });
      std::size_t total = 0;
      for (const TaskState& state : tasks_) total += state.out.size();
      out.reserve(total);
      for (TaskState& state : tasks_) {
        out.insert(out.end(), state.out.begin(), state.out.end());
        counters_.stationary_skips += state.tally.stationary_skips;
        counters_.notifications += state.tally.notifications;
        counters_.enters += state.tally.enters;
        counters_.leaves += state.tally.leaves;
        counters_.moves += state.tally.moves;
        counters_.friend_events += state.tally.friend_events;
        state.tally = {};
        match_hist_.merge(state.hist);
        state.hist = {};
      }
    }
  }

  last_ = snap;
  if (options_.trim_consumed && directory_.tracks_deltas()) {
    directory_.trim_deltas(snap->epoch());
  }
  return out;
}

void NotificationEngine::run_chunk(std::span<const UserId> delta,
                                   std::size_t lo, std::size_t hi,
                                   const mobility::DirectorySnapshot& cur,
                                   const mobility::DirectorySnapshot* prev,
                                   std::vector<Notification>& out,
                                   TaskState& state, Counters& c) {
  const std::span<const UserId> chunk = delta.subspan(lo, hi - lo);
  // Bulk-resolve the whole chunk's records up front: locate_many groups
  // the store probes by shard/region, so the random per-user map walks of
  // a locate-inside-the-loop pattern become two locality-sorted sweeps.
  cur.locate_many(chunk, state.locate_scratch, state.cur_recs);
  if (prev != nullptr) {
    prev->locate_many(chunk, state.locate_scratch, state.prev_recs);
  }
  const std::size_t sample = options_.timing_sample_every;
  for (std::size_t k = 0; k < chunk.size(); ++k) {
    const mobility::LocationRecord* cur_rec =
        state.cur_recs[k].has_value() ? &*state.cur_recs[k] : nullptr;
    const mobility::LocationRecord* prev_rec =
        prev != nullptr && state.prev_recs[k].has_value()
            ? &*state.prev_recs[k]
            : nullptr;
    // Sampled timing on the global delta index: every Nth candidate pays
    // the two clock reads, the rest run clock-free.
    if ((lo + k) % sample == 0) {
      const double t0 = now_micros();
      match_user(chunk[k], cur_rec, prev_rec, out, state, c);
      state.hist.record_micros(now_micros() - t0);
    } else {
      match_user(chunk[k], cur_rec, prev_rec, out, state, c);
    }
  }
}

void NotificationEngine::match_user(UserId user,
                                    const mobility::LocationRecord* cur_rec,
                                    const mobility::LocationRecord* prev_rec,
                                    std::vector<Notification>& out,
                                    TaskState& state, Counters& c) const {
  if (cur_rec == nullptr) return;  // never resident at this epoch
  const bool has_prev = prev_rec != nullptr;
  if (has_prev && prev_rec->position == cur_rec->position) {
    // Re-applied at the same position (paused user re-reporting): no
    // boundary crossed, no motion to report.
    ++c.stationary_skips;
    return;
  }
  const Point cur_pos = cur_rec->position;

  if (has_prev) {
    subs_.covering(prev_rec->position, state.prev_matches);
  } else {
    state.prev_matches.clear();
  }
  subs_.covering(cur_pos, state.cur_matches);

  // Merge the two ascending-id CoverMatch lists: prev-only = leave,
  // cur-only = enter, both = move (range subscriptions only).  The
  // triples carry id and kind, so no per-notification slot deref.
  const std::vector<CoverMatch>& prev_m = state.prev_matches;
  const std::vector<CoverMatch>& cur_m = state.cur_matches;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < prev_m.size() || j < cur_m.size()) {
    const std::uint64_t pid =
        i < prev_m.size() ? prev_m[i].id : ~std::uint64_t{0};
    const std::uint64_t cid =
        j < cur_m.size() ? cur_m[j].id : ~std::uint64_t{0};
    if (pid < cid) {
      out.push_back(Notification{pid, user, NotifyEvent::kLeave, cur_pos});
      ++c.leaves;
      ++c.notifications;
      ++i;
    } else if (cid < pid) {
      out.push_back(Notification{cid, user, NotifyEvent::kEnter, cur_pos});
      ++c.enters;
      ++c.notifications;
      ++j;
    } else {
      if (cur_m[j].kind == SubKind::kRange) {
        out.push_back(Notification{cid, user, NotifyEvent::kMove, cur_pos});
        ++c.moves;
        ++c.notifications;
      }
      ++i;
      ++j;
    }
  }

  // Friend subscriptions tracking this user: enter on first appearance,
  // move on every later position change.
  if (const auto* friends = subs_.friends_of(user)) {
    const NotifyEvent event =
        has_prev ? NotifyEvent::kMove : NotifyEvent::kEnter;
    for (const auto& [id, slot] : *friends) {
      out.push_back(Notification{id, user, event, cur_pos});
      ++c.friend_events;
      ++c.notifications;
      if (event == NotifyEvent::kEnter) {
        ++c.enters;
      } else {
        ++c.moves;
      }
    }
  }
}

void NotificationEngine::to_notify(const Notification& n,
                                   net::Notify& out) const {
  out.sub_id = n.sub_id;
  if (const std::string* filter = subs_.filter_of(n.sub_id)) {
    out.topic.assign(*filter);
  } else {
    out.topic.clear();
  }
  char buf[96];
  int len = std::snprintf(buf, sizeof buf, "%s u%u @(%.6f, %.6f)",
                          event_name(n.event), n.user.value, n.position.x,
                          n.position.y);
  if (len < 0) len = 0;
  if (static_cast<std::size_t>(len) >= sizeof buf) len = sizeof buf - 1;
  out.payload.assign(buf, static_cast<std::size_t>(len));
}

void NotificationEngine::serialize(net::Writer& w,
                                   std::span<const Notification> batch) {
  w.varint(batch.size());
  for (const Notification& n : batch) n.encode(w);
}

}  // namespace geogrid::pubsub
