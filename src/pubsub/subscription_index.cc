#include "pubsub/subscription_index.h"

#include <algorithm>
#include <utility>

namespace geogrid::pubsub {
namespace {

using Entry = std::pair<std::uint64_t, std::uint32_t>;

std::vector<Entry>::iterator lower_bound_id(std::vector<Entry>& v,
                                            std::uint64_t id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const Entry& e, std::uint64_t key) { return e.first < key; });
}

}  // namespace

void SubscriptionIndex::subscribe(const net::Subscribe& msg, SubKind kind) {
  Subscription sub;
  sub.id = msg.sub_id;
  sub.kind = kind == SubKind::kFriend ? SubKind::kGeofence : kind;
  sub.area = msg.area;
  sub.subscriber = msg.subscriber.id;
  sub.filter = msg.filter;
  insert(std::move(sub));
}

void SubscriptionIndex::subscribe_friend(const net::Subscribe& msg,
                                         UserId friend_user) {
  Subscription sub;
  sub.id = msg.sub_id;
  sub.kind = SubKind::kFriend;
  sub.friend_user = friend_user;
  sub.subscriber = msg.subscriber.id;
  sub.filter = msg.filter;
  insert(std::move(sub));
}

void SubscriptionIndex::insert(Subscription sub) {
  if (index_.find(sub.id) != nullptr) unsubscribe(sub.id);
  const auto slot = static_cast<std::uint32_t>(subs_.size());
  *index_.try_emplace(sub.id).first = slot;
  subs_.push_back(std::move(sub));
  const Subscription& s = subs_.back();
  if (s.kind == SubKind::kFriend) {
    friends_insert(s, slot);
  } else {
    ++rect_count_;
    grid_insert(s, slot);
  }
}

bool SubscriptionIndex::unsubscribe(std::uint64_t sub_id) {
  const std::uint32_t* found = index_.find(sub_id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  {
    const Subscription& s = subs_[slot];
    if (s.kind == SubKind::kFriend) {
      friends_remove(s);
    } else {
      grid_remove(s, slot);
      --rect_count_;
    }
  }
  index_.erase(sub_id);
  const auto last = static_cast<std::uint32_t>(subs_.size() - 1);
  if (slot != last) {
    // Swap-remove: the tail subscription moves into the freed slot, so
    // every structure that names the tail slot must be repointed.
    subs_[slot] = std::move(subs_[last]);
    const Subscription& moved = subs_[slot];
    *index_.find(moved.id) = slot;
    if (moved.kind == SubKind::kFriend) {
      friends_replace_slot(moved, slot);
    } else {
      grid_replace_slot(moved, last, slot);
    }
  }
  subs_.pop_back();
  return true;
}

const Subscription* SubscriptionIndex::find(std::uint64_t sub_id) const {
  const std::uint32_t* slot = index_.find(sub_id);
  return slot == nullptr ? nullptr : &subs_[*slot];
}

void SubscriptionIndex::refresh() {
  if (grid_valid_ && rect_count_ <= built_for_ * 2 &&
      rect_count_ >= built_for_ / 2) {
    return;
  }
  rebuild_grid();
}

void SubscriptionIndex::rebuild_grid() {
  // Pitch near the mean subscription-rect side: the average rect covers
  // O(1) cells and a point probe's candidate list stays proportional to
  // the local subscription density.  Capped by ~2*sqrt(N) cells per axis
  // (grid memory stays linear in the population) and an absolute bound.
  double side_sum = 0.0;
  for (const Subscription& s : subs_) {
    if (s.kind == SubKind::kFriend) continue;
    side_sum += 0.5 * (s.area.width + s.area.height);
  }
  std::size_t dim = 1;
  if (rect_count_ > 0 && side_sum > 0.0) {
    const double mean_side = side_sum / static_cast<double>(rect_count_);
    const double plane_side = plane_.width < plane_.height ? plane_.width
                                                           : plane_.height;
    std::size_t sqrt_dim = 1;
    while (sqrt_dim * sqrt_dim < rect_count_) ++sqrt_dim;
    std::size_t cap = 2 * sqrt_dim;
    if (cap > 1024) cap = 1024;
    dim = static_cast<std::size_t>(plane_side / mean_side);
    if (dim < 1) dim = 1;
    if (dim > cap) dim = cap;
  }
  spec_ = overlay::UniformGridSpec::over(plane_, dim);
  grid_.assign(spec_.cell_count(), {});
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    const Subscription& s = subs_[slot];
    if (s.kind == SubKind::kFriend) continue;
    grid_insert_unsorted(s, slot);
  }
  // Canonical bucket order: ascending sub id, so covering() emits matches
  // pre-sorted from a single cell probe.
  for (auto& bucket : grid_) std::sort(bucket.begin(), bucket.end());
  built_for_ = rect_count_;
  grid_valid_ = true;
}

void SubscriptionIndex::covering(const Point& p,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  if (rect_count_ == 0) return;
  // One cell is enough: a rect covering p was inserted into every cell it
  // touches, and the clamped cell of p lies inside [cell(r.x), cell(r.right)]
  // x [cell(r.y), cell(r.top)] whenever the half-open cover test passes.
  const auto& bucket = grid_[spec_.index(spec_.cell_x(p.x), spec_.cell_y(p.y))];
  for (const Entry& e : bucket) {
    if (subs_[e.second].area.covers(p)) out.push_back(e.second);
  }
}

void SubscriptionIndex::grid_insert(const Subscription& sub,
                                    std::uint32_t slot) {
  const Rect& r = sub.area;
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      auto& bucket = grid_[spec_.index(cx, cy)];
      bucket.insert(lower_bound_id(bucket, sub.id), Entry{sub.id, slot});
    }
  }
}

void SubscriptionIndex::grid_insert_unsorted(const Subscription& sub,
                                             std::uint32_t slot) {
  const Rect& r = sub.area;
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      grid_[spec_.index(cx, cy)].push_back(Entry{sub.id, slot});
    }
  }
}

void SubscriptionIndex::grid_remove(const Subscription& sub,
                                    std::uint32_t slot) {
  (void)slot;
  const Rect& r = sub.area;
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      auto& bucket = grid_[spec_.index(cx, cy)];
      const auto it = lower_bound_id(bucket, sub.id);
      if (it != bucket.end() && it->first == sub.id) bucket.erase(it);
    }
  }
}

void SubscriptionIndex::grid_replace_slot(const Subscription& sub,
                                          std::uint32_t old_slot,
                                          std::uint32_t new_slot) {
  (void)old_slot;
  const Rect& r = sub.area;
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      auto& bucket = grid_[spec_.index(cx, cy)];
      const auto it = lower_bound_id(bucket, sub.id);
      if (it != bucket.end() && it->first == sub.id) it->second = new_slot;
    }
  }
}

void SubscriptionIndex::friends_insert(const Subscription& sub,
                                       std::uint32_t slot) {
  auto& list = *friends_.try_emplace(sub.friend_user).first;
  list.insert(lower_bound_id(list, sub.id), Entry{sub.id, slot});
}

void SubscriptionIndex::friends_remove(const Subscription& sub) {
  std::vector<Entry>* list = friends_.find(sub.friend_user);
  if (list == nullptr) return;
  const auto it = lower_bound_id(*list, sub.id);
  if (it != list->end() && it->first == sub.id) list->erase(it);
  if (list->empty()) friends_.erase(sub.friend_user);
}

void SubscriptionIndex::friends_replace_slot(const Subscription& sub,
                                             std::uint32_t new_slot) {
  std::vector<Entry>* list = friends_.find(sub.friend_user);
  if (list == nullptr) return;
  const auto it = lower_bound_id(*list, sub.id);
  if (it != list->end() && it->first == sub.id) it->second = new_slot;
}

}  // namespace geogrid::pubsub
