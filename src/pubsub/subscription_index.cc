#include "pubsub/subscription_index.h"

#include <algorithm>
#include <utility>

#include "common/simd.h"

namespace geogrid::pubsub {
namespace detail {

void CellSoA::reserve(std::uint32_t cap) {
  if (cap > cap_) grow(cap, size_);
}

void CellSoA::grow(std::uint32_t min_cap, std::uint32_t gap_pos) {
  std::uint32_t new_cap = cap_ == 0 ? 2 : cap_ * 2;
  if (new_cap < min_cap) new_cap = min_cap;
  // 4 double columns + 1 u64 column (same stride) + 1 u32 column.
  const std::size_t col = static_cast<std::size_t>(new_cap) * sizeof(double);
  std::byte* fresh = new std::byte[5 * col + new_cap * sizeof(std::uint32_t)];
  if (data_ != nullptr) {
    // Copy each column, leaving a one-entry hole at gap_pos (== size_ when
    // reserving: the hole degenerates to nothing).
    const std::size_t old_col = bytes_per_col();
    const auto copy_col = [&](std::size_t c, std::size_t elem) {
      const std::byte* src = data_ + c * old_col;
      std::byte* dst = fresh + c * col;
      std::memcpy(dst, src, gap_pos * elem);
      std::memcpy(dst + (gap_pos + 1) * elem, src + gap_pos * elem,
                  (size_ - gap_pos) * elem);
    };
    for (std::size_t c = 0; c < 5; ++c) copy_col(c, sizeof(double));
    {
      const std::byte* src = data_ + 5 * old_col;
      std::byte* dst = fresh + 5 * col;
      std::memcpy(dst, src, gap_pos * sizeof(std::uint32_t));
      std::memcpy(dst + (gap_pos + 1) * sizeof(std::uint32_t),
                  src + gap_pos * sizeof(std::uint32_t),
                  (size_ - gap_pos) * sizeof(std::uint32_t));
    }
    delete[] data_;
  }
  data_ = fresh;
  cap_ = new_cap;
}

void CellSoA::insert(std::uint32_t pos, const Rect& area, std::uint64_t id,
                     std::uint32_t slot_kind) {
  if (size_ == cap_) {
    grow(size_ + 1, pos);
  } else if (pos < size_) {
    const auto shift = [&](std::byte* base, std::size_t elem) {
      std::memmove(base + (pos + 1) * elem, base + pos * elem,
                   (size_ - pos) * elem);
    };
    for (std::size_t c = 0; c < 5; ++c) {
      shift(data_ + c * bytes_per_col(), sizeof(double));
    }
    shift(data_ + 5 * bytes_per_col(), sizeof(std::uint32_t));
  }
  col_d_mut(0)[pos] = area.x;
  col_d_mut(1)[pos] = area.y;
  col_d_mut(2)[pos] = area.right();
  col_d_mut(3)[pos] = area.top();
  reinterpret_cast<std::uint64_t*>(data_ + 4 * bytes_per_col())[pos] = id;
  reinterpret_cast<std::uint32_t*>(data_ + 5 * bytes_per_col())[pos] =
      slot_kind;
  ++size_;
}

void CellSoA::erase(std::uint32_t pos) {
  const std::uint32_t tail = size_ - pos - 1;
  const auto shift = [&](std::byte* base, std::size_t elem) {
    std::memmove(base + pos * elem, base + (pos + 1) * elem, tail * elem);
  };
  for (std::size_t c = 0; c < 5; ++c) {
    shift(data_ + c * bytes_per_col(), sizeof(double));
  }
  shift(data_ + 5 * bytes_per_col(), sizeof(std::uint32_t));
  --size_;
}

}  // namespace detail

namespace {

using Entry = std::pair<std::uint64_t, std::uint32_t>;

std::vector<Entry>::iterator lower_bound_id(std::vector<Entry>& v,
                                            std::uint64_t id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const Entry& e, std::uint64_t key) { return e.first < key; });
}

}  // namespace

void SubscriptionIndex::subscribe(const net::Subscribe& msg, SubKind kind) {
  SubRecord rec;
  rec.id = msg.sub_id;
  rec.kind = kind == SubKind::kFriend ? SubKind::kGeofence : kind;
  rec.area = msg.area;
  insert(rec, SubCold{msg.subscriber.id, msg.filter});
}

void SubscriptionIndex::subscribe_friend(const net::Subscribe& msg,
                                         UserId friend_user) {
  SubRecord rec;
  rec.id = msg.sub_id;
  rec.kind = SubKind::kFriend;
  rec.friend_user = friend_user;
  insert(rec, SubCold{msg.subscriber.id, msg.filter});
}

void SubscriptionIndex::insert(SubRecord rec, SubCold cold) {
  if (index_.find(rec.id) != nullptr) unsubscribe(rec.id);
  const auto slot = static_cast<std::uint32_t>(hot_.size());
  *index_.try_emplace(rec.id).first = slot;
  hot_.push_back(rec);
  cold_.push_back(std::move(cold));
  if (rec.kind == SubKind::kFriend) {
    friends_insert(rec, slot);
  } else {
    ++rect_count_;
    grid_insert(rec, slot);
  }
}

bool SubscriptionIndex::unsubscribe(std::uint64_t sub_id) {
  const std::uint32_t* found = index_.find(sub_id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  {
    const SubRecord& s = hot_[slot];
    if (s.kind == SubKind::kFriend) {
      friends_remove(s);
    } else {
      grid_remove(s);
      --rect_count_;
    }
  }
  index_.erase(sub_id);
  const auto last = static_cast<std::uint32_t>(hot_.size() - 1);
  if (slot != last) {
    // Swap-remove: the tail subscription moves into the freed slot (hot
    // and cold rows together), so every structure that names the tail
    // slot must be repointed.
    hot_[slot] = hot_[last];
    cold_[slot] = std::move(cold_[last]);
    const SubRecord& moved = hot_[slot];
    *index_.find(moved.id) = slot;
    if (moved.kind == SubKind::kFriend) {
      friends_replace_slot(moved, slot);
    } else {
      grid_replace_slot(moved, slot);
    }
  }
  hot_.pop_back();
  cold_.pop_back();
  return true;
}

const SubRecord* SubscriptionIndex::find(std::uint64_t sub_id) const {
  const std::uint32_t* slot = index_.find(sub_id);
  return slot == nullptr ? nullptr : &hot_[*slot];
}

void SubscriptionIndex::refresh() {
  if (grid_valid_ && rect_count_ <= built_for_ * 2 &&
      rect_count_ >= built_for_ / 2) {
    return;
  }
  rebuild_grid();
}

void SubscriptionIndex::rebuild_grid() {
  // Pitch near the mean subscription-rect side: the average rect covers
  // O(1) cells and a point probe's candidate list stays proportional to
  // the local subscription density.  Capped by ~2*sqrt(N) cells per axis
  // (grid memory stays linear in the population) and an absolute bound.
  double side_sum = 0.0;
  for (const SubRecord& s : hot_) {
    if (s.kind == SubKind::kFriend) continue;
    side_sum += 0.5 * (s.area.width + s.area.height);
  }
  std::size_t dim = 1;
  if (rect_count_ > 0 && side_sum > 0.0) {
    const double mean_side = side_sum / static_cast<double>(rect_count_);
    const double plane_side = plane_.width < plane_.height ? plane_.width
                                                           : plane_.height;
    std::size_t sqrt_dim = 1;
    while (sqrt_dim * sqrt_dim < rect_count_) ++sqrt_dim;
    std::size_t cap = 2 * sqrt_dim;
    if (cap > 1024) cap = 1024;
    dim = static_cast<std::size_t>(plane_side / mean_side);
    if (dim < 1) dim = 1;
    if (dim > cap) dim = cap;
  }
  spec_ = overlay::UniformGridSpec::over(plane_, dim);

  // Three passes keep the rebuild shift-free and allocation-exact: count
  // entries per cell, reserve each cell once, then append in ascending
  // sub-id order — the columns come out sorted without ever sorting.
  std::vector<Entry> by_id;
  by_id.reserve(rect_count_);
  for (std::uint32_t slot = 0; slot < hot_.size(); ++slot) {
    if (hot_[slot].kind == SubKind::kFriend) continue;
    by_id.emplace_back(hot_[slot].id, slot);
  }
  std::sort(by_id.begin(), by_id.end());

  std::vector<std::uint32_t> counts(spec_.cell_count(), 0);
  const auto each_cell = [&](const Rect& r, auto&& fn) {
    const std::size_t x0 = spec_.cell_x(r.x);
    const std::size_t x1 = spec_.cell_x(r.right());
    const std::size_t y0 = spec_.cell_y(r.y);
    const std::size_t y1 = spec_.cell_y(r.top());
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      for (std::size_t cy = y0; cy <= y1; ++cy) {
        fn(spec_.index(cx, cy));
      }
    }
  };
  for (const auto& [id, slot] : by_id) {
    each_cell(hot_[slot].area, [&](std::size_t cell) { ++counts[cell]; });
  }
  grid_.clear();
  grid_.resize(spec_.cell_count());
  for (std::size_t cell = 0; cell < grid_.size(); ++cell) {
    grid_[cell].reserve(counts[cell]);
  }
  for (const auto& [id, slot] : by_id) {
    const SubRecord& s = hot_[slot];
    const std::uint32_t sk = pack_slot_kind(slot, s.kind);
    each_cell(s.area,
              [&](std::size_t cell) { grid_[cell].append(s.area, id, sk); });
  }
  built_for_ = rect_count_;
  grid_valid_ = true;
}

void SubscriptionIndex::covering(const Point& p,
                                 std::vector<CoverMatch>& out) const {
  out.clear();
  if (rect_count_ == 0) return;
  // One cell is enough: a rect covering p was inserted into every cell it
  // touches, and the clamped cell of p lies inside [cell(r.x), cell(r.right)]
  // x [cell(r.y), cell(r.top)] whenever the half-open cover test passes.
  const detail::CellSoA& cell =
      grid_[spec_.index(spec_.cell_x(p.x), spec_.cell_y(p.y))];
  const std::uint32_t n = cell.size();
  // Chunked through a stack buffer: the SIMD scan stays allocation-free
  // whatever the cell population, and indices stay ascending.
  constexpr std::uint32_t kChunk = 128;
  std::uint32_t lanes[kChunk];
  for (std::uint32_t base = 0; base < n; base += kChunk) {
    const std::uint32_t len = n - base < kChunk ? n - base : kChunk;
    const std::size_t hits = common::filter_rects_covering_point(
        cell.lo_x() + base, cell.lo_y() + base, cell.hi_x() + base,
        cell.hi_y() + base, len, p.x, p.y, lanes);
    for (std::size_t k = 0; k < hits; ++k) {
      const std::uint32_t idx = base + lanes[k];
      const std::uint32_t sk = cell.slot_kinds()[idx];
      out.push_back(CoverMatch{cell.ids()[idx], slot_of(sk), kind_of(sk)});
    }
  }
}

void SubscriptionIndex::grid_insert(const SubRecord& sub, std::uint32_t slot) {
  const Rect& r = sub.area;
  const std::uint32_t sk = pack_slot_kind(slot, sub.kind);
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      detail::CellSoA& cell = grid_[spec_.index(cx, cy)];
      cell.insert(cell.lower_bound(sub.id), r, sub.id, sk);
    }
  }
}

void SubscriptionIndex::grid_remove(const SubRecord& sub) {
  const Rect& r = sub.area;
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      detail::CellSoA& cell = grid_[spec_.index(cx, cy)];
      const std::uint32_t pos = cell.lower_bound(sub.id);
      if (pos < cell.size() && cell.ids()[pos] == sub.id) cell.erase(pos);
    }
  }
}

void SubscriptionIndex::grid_replace_slot(const SubRecord& sub,
                                          std::uint32_t new_slot) {
  const Rect& r = sub.area;
  const std::uint32_t sk = pack_slot_kind(new_slot, sub.kind);
  const std::size_t x0 = spec_.cell_x(r.x);
  const std::size_t x1 = spec_.cell_x(r.right());
  const std::size_t y0 = spec_.cell_y(r.y);
  const std::size_t y1 = spec_.cell_y(r.top());
  for (std::size_t cx = x0; cx <= x1; ++cx) {
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      detail::CellSoA& cell = grid_[spec_.index(cx, cy)];
      const std::uint32_t pos = cell.lower_bound(sub.id);
      if (pos < cell.size() && cell.ids()[pos] == sub.id) {
        cell.set_slot_kind(pos, sk);
      }
    }
  }
}

void SubscriptionIndex::friends_insert(const SubRecord& sub,
                                       std::uint32_t slot) {
  auto& list = *friends_.try_emplace(sub.friend_user).first;
  list.insert(lower_bound_id(list, sub.id), Entry{sub.id, slot});
}

void SubscriptionIndex::friends_remove(const SubRecord& sub) {
  std::vector<Entry>* list = friends_.find(sub.friend_user);
  if (list == nullptr) return;
  const auto it = lower_bound_id(*list, sub.id);
  if (it != list->end() && it->first == sub.id) list->erase(it);
  if (list->empty()) friends_.erase(sub.friend_user);
}

void SubscriptionIndex::friends_replace_slot(const SubRecord& sub,
                                             std::uint32_t new_slot) {
  std::vector<Entry>* list = friends_.find(sub.friend_user);
  if (list == nullptr) return;
  const auto it = lower_bound_id(*list, sub.id);
  if (it != list->end() && it->first == sub.id) it->second = new_slot;
}

bool SubscriptionIndex::validate() const {
  if (hot_.size() != cold_.size()) return false;
  if (index_.size() != hot_.size()) return false;

  std::size_t rects = 0;
  std::size_t friend_subs = 0;
  std::size_t expected_grid_entries = 0;
  for (std::uint32_t slot = 0; slot < hot_.size(); ++slot) {
    const SubRecord& s = hot_[slot];
    const std::uint32_t* mapped = index_.find(s.id);
    if (mapped == nullptr || *mapped != slot) return false;
    if (s.kind == SubKind::kFriend) {
      ++friend_subs;
      const auto* list = friends_.find(s.friend_user);
      if (list == nullptr) return false;
      const auto it = std::lower_bound(
          list->begin(), list->end(), s.id,
          [](const Entry& e, std::uint64_t key) { return e.first < key; });
      if (it == list->end() || it->first != s.id || it->second != slot) {
        return false;
      }
      continue;
    }
    ++rects;
    // Every covered cell must hold exactly this sub's columns at the id's
    // sorted position: edges as stored half-open bounds, packed slot+kind
    // repointed to the current slot.
    const Rect& r = s.area;
    const std::size_t x0 = spec_.cell_x(r.x);
    const std::size_t x1 = spec_.cell_x(r.right());
    const std::size_t y0 = spec_.cell_y(r.y);
    const std::size_t y1 = spec_.cell_y(r.top());
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      for (std::size_t cy = y0; cy <= y1; ++cy) {
        ++expected_grid_entries;
        const detail::CellSoA& cell = grid_[spec_.index(cx, cy)];
        const std::uint32_t pos = cell.lower_bound(s.id);
        if (pos >= cell.size() || cell.ids()[pos] != s.id) return false;
        if (cell.lo_x()[pos] != r.x || cell.lo_y()[pos] != r.y ||
            cell.hi_x()[pos] != r.right() || cell.hi_y()[pos] != r.top()) {
          return false;
        }
        if (cell.slot_kinds()[pos] != pack_slot_kind(slot, s.kind)) {
          return false;
        }
      }
    }
  }
  if (rects != rect_count_) return false;

  std::size_t grid_entries = 0;
  for (const detail::CellSoA& cell : grid_) {
    grid_entries += cell.size();
    for (std::uint32_t i = 1; i < cell.size(); ++i) {
      if (cell.ids()[i - 1] >= cell.ids()[i]) return false;  // sorted, unique
    }
  }
  if (grid_entries != expected_grid_entries) return false;

  std::size_t friend_entries = 0;
  friends_.for_each([&](const UserId&, const std::vector<Entry>& list) {
    friend_entries += list.size();
  });
  return friend_entries == friend_subs;
}

}  // namespace geogrid::pubsub
