#include "dualpeer/dual_ops.h"

#include <cassert>

#include "dualpeer/join_policy.h"
#include "overlay/router.h"

namespace geogrid::dualpeer {

using overlay::JoinResult;
using overlay::LoadFn;
using overlay::Partition;

JoinResult dual_join(Partition& partition, const net::NodeInfo& joiner,
                     const LoadFn& load_of, RegionId entry_region) {
  if (!partition.has_node(joiner.id)) partition.add_node(joiner);
  JoinResult result;

  if (partition.region_count() == 0) {
    result.region = partition.create_root(joiner.id);
    return result;
  }

  const RegionId entry =
      entry_region.valid() && partition.has_region(entry_region)
          ? entry_region
          : partition.regions().begin()->first;
  const overlay::RouteResult route =
      overlay::route_greedy(partition, entry, joiner.coord);
  assert(route.reached);
  result.routing_hops = route.hops;
  const RegionId covering = route.executor;

  const auto covering_snap =
      overlay::make_snapshot(partition, covering, load_of);
  const auto neighbor_snaps =
      overlay::neighbor_snapshots(partition, covering, load_of);
  const JoinDecision decision =
      select_join_target(covering_snap, neighbor_snaps);

  RegionId seat = decision.region;
  if (decision.action == JoinDecision::Action::kSplit) {
    // The probed region is full: its secondary becomes primary of the new
    // half, leaving two half-full regions; the joiner fills the weaker one.
    const overlay::Region& victim = partition.region(decision.region);
    assert(victim.full());
    const NodeId secondary = *victim.secondary;
    partition.clear_secondary(decision.region);
    const RegionId new_half = partition.split(decision.region, secondary);
    const auto low_snap =
        overlay::make_snapshot(partition, decision.region, load_of);
    const auto high_snap =
        overlay::make_snapshot(partition, new_half, load_of);
    seat = pick_half_to_join(low_snap, high_snap);
  }

  partition.set_secondary(seat, joiner.id);
  const double incumbent = partition.node(partition.region(seat).primary).capacity;
  if (joiner_takes_primary(joiner.capacity, incumbent)) {
    partition.swap_roles(seat);
  }
  result.region = seat;
  return result;
}

namespace {

void vacate_all_seats(Partition& partition, NodeId node) {
  // Secondary seats first: vacating them never orphans a region.
  const std::vector<RegionId> secondaries = partition.secondary_regions(node);
  for (RegionId rid : secondaries) partition.clear_secondary(rid);

  const std::vector<RegionId> owned = partition.primary_regions(node);
  for (RegionId rid : owned) {
    if (!partition.has_region(rid)) continue;  // merged away by repair
    // repair_region activates the secondary when present, otherwise merges
    // or hands the rectangle to a caretaker.
    overlay::repair_region(partition, rid, node);
  }
  partition.remove_node(node);
}

}  // namespace

void dual_leave(Partition& partition, NodeId node) {
  vacate_all_seats(partition, node);
}

void dual_fail(Partition& partition, NodeId node) {
  vacate_all_seats(partition, node);
}

}  // namespace geogrid::dualpeer
