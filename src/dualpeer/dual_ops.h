// Dual-peer membership operations (engine mode).
//
// Implements §2.3's revised join, departure, and failure-recovery over the
// Partition mechanics, using the pure join policy so protocol mode behaves
// identically.  Load numbers come through LoadFn (the hot-spot field in the
// experiments).
#pragma once

#include "common/ids.h"
#include "net/node_info.h"
#include "overlay/basic_ops.h"
#include "overlay/partition.h"
#include "overlay/snapshot.h"

namespace geogrid::dualpeer {

/// Dual-peer join: routes to the covering region, probes it and its
/// neighbors, fills the weakest half-full region as secondary (taking the
/// primary role when stronger), or splits the weakest full region when all
/// probed regions are full.
overlay::JoinResult dual_join(overlay::Partition& partition,
                              const net::NodeInfo& joiner,
                              const overlay::LoadFn& load_of,
                              RegionId entry_region = kInvalidRegion);

/// Graceful departure.  Secondary seats are simply vacated ("half full");
/// a departing primary activates its secondary; a last owner triggers the
/// basic repair process.
void dual_leave(overlay::Partition& partition, NodeId node);

/// Crash failure.  Structurally identical to departure in engine mode (the
/// secondary takes over from its replica); kept separate so harnesses can
/// account fail-overs and data loss distinctly.
void dual_fail(overlay::Partition& partition, NodeId node);

}  // namespace geogrid::dualpeer
