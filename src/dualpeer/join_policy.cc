#include "dualpeer/join_policy.h"

#include <vector>

#include "overlay/region.h"

namespace geogrid::dualpeer {

bool join_candidate_less(const net::RegionSnapshot& a,
                         const net::RegionSnapshot& b) {
  const double avail_a = a.primary_available();
  const double avail_b = b.primary_available();
  if (avail_a != avail_b) return avail_a < avail_b;
  if (a.workload_index != b.workload_index) {
    return a.workload_index > b.workload_index;
  }
  // Remaining ties (typical when every candidate is idle) prefer the larger
  // region: it will absorb more future load, and repeatedly splitting one
  // arbitrary small region would degenerate it into a sliver.
  if (a.rect.area() != b.rect.area()) return a.rect.area() > b.rect.area();
  return a.region < b.region;
}

JoinDecision select_join_target(
    const net::RegionSnapshot& covering,
    std::span<const net::RegionSnapshot> neighbors) {
  const net::RegionSnapshot* best_open = nullptr;
  const net::RegionSnapshot* best_split = nullptr;
  const net::RegionSnapshot* best_any = nullptr;
  const auto consider = [&](const net::RegionSnapshot& s) {
    if (!s.full() && (!best_open || join_candidate_less(s, *best_open))) {
      best_open = &s;
    }
    if (overlay::splittable(s.rect) &&
        (!best_split || join_candidate_less(s, *best_split))) {
      best_split = &s;
    }
    if (!best_any || join_candidate_less(s, *best_any)) best_any = &s;
  };
  consider(covering);
  for (const auto& s : neighbors) consider(s);

  if (best_open != nullptr) {
    return JoinDecision{JoinDecision::Action::kFillSecondary,
                        best_open->region};
  }
  // All probed regions are full: split the weakest one that is still large
  // enough to split (always available in practice; the covering region of
  // a uniformly random coordinate is essentially never a minimum-size
  // sliver).
  return JoinDecision{JoinDecision::Action::kSplit,
                      (best_split ? best_split : best_any)->region};
}

bool joiner_takes_primary(double joiner_capacity, double incumbent_capacity) {
  return joiner_capacity > incumbent_capacity;
}

RegionId pick_half_to_join(const net::RegionSnapshot& low_half,
                           const net::RegionSnapshot& high_half) {
  return join_candidate_less(low_half, high_half) ? low_half.region
                                                  : high_half.region;
}

}  // namespace geogrid::dualpeer
