// Dual-peer join target selection (pure policy).
//
// §2.3 of the paper: a joining node does not split the covering region
// outright.  It probes the covering region r and its neighbors and chooses,
// from r.neighbors ∪ r, a region that is not complete in terms of dual peer
// and whose owner has the least available capacity; it joins that region as
// secondary owner.  If every probed region already has a dual peer, it
// splits the one whose primary has the least available capacity, and joins
// the resulting half whose owner has less available capacity.  A joiner
// stronger than the incumbent owner takes over the primary role (after
// state copy).
//
// These functions are pure over RegionSnapshots, so the engine-mode driver
// and the protocol-mode node make byte-identical decisions.
#pragma once

#include <span>

#include "common/ids.h"
#include "net/node_info.h"

namespace geogrid::dualpeer {

/// What the joiner should do and where.
struct JoinDecision {
  enum class Action : unsigned char {
    kFillSecondary,  ///< join `region` as its secondary owner
    kSplit,          ///< split `region` (it is full) and join a half
  };
  Action action = Action::kFillSecondary;
  RegionId region{};
};

/// Ranks a candidate region for the join rule: least available primary
/// capacity first; ties broken toward the higher workload index, then the
/// smaller region id (determinism).
bool join_candidate_less(const net::RegionSnapshot& a,
                         const net::RegionSnapshot& b);

/// Applies the paper's selection rule over the probe set (covering region
/// plus its neighbors).
JoinDecision select_join_target(const net::RegionSnapshot& covering,
                                std::span<const net::RegionSnapshot> neighbors);

/// After the joiner is seated as secondary: does it take the primary role?
/// (Strictly more capacity than the incumbent.)
bool joiner_takes_primary(double joiner_capacity, double incumbent_capacity);

/// After a split: picks which of the two halves the joiner fills, the one
/// whose owner has less available capacity.
RegionId pick_half_to_join(const net::RegionSnapshot& low_half,
                           const net::RegionSnapshot& high_half);

}  // namespace geogrid::dualpeer
