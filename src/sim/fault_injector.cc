#include "sim/fault_injector.h"

namespace geogrid::sim {

std::string_view fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kRegionKill:
      return "region-kill";
    case FaultKind::kDelayedHandoff:
      return "delayed-handoff";
    case FaultKind::kDroppedTransfer:
      return "dropped-transfer";
  }
  return "unknown";
}

}  // namespace geogrid::sim
