// Simulated point-to-point network.
//
// GeoGrid assumes fixed proxy nodes with TCP/IP connectivity; the simulation
// replaces sockets with virtual-time message delivery.  Latency follows the
// geographic-proximity assumption the paper leans on (physical distance ~
// network distance): a per-packet base cost plus a distance-proportional
// term plus bounded jitter.  The network supports the failure injection the
// dual-peer mechanism is built to survive (silent node crashes: all traffic
// to and from a down node is dropped) and accounts per-type traffic so
// benches can report management overhead.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/messages.h"
#include "sim/event_loop.h"

namespace geogrid::sim {

/// Anything attached to the network that can receive messages.
class Process {
 public:
  virtual ~Process() = default;

  /// Delivery upcall. `from` is the sender's address; messages from a node
  /// that crashed after sending are still delivered (they were in flight).
  virtual void on_message(NodeId from, const net::Message& msg) = 0;
};

/// Distance-proportional latency: base + per_mile * distance + U(0, jitter).
struct LatencyModel {
  double base_seconds = 0.002;
  double seconds_per_mile = 2e-5;
  double jitter_seconds = 0.001;

  Time sample(const Point& from, const Point& to, Rng& rng) const {
    return base_seconds + seconds_per_mile * distance(from, to) +
           rng.uniform(0.0, jitter_seconds);
  }
};

/// Aggregate traffic counters.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Sent-message count per type, indexed by the raw MsgType value (wire
  /// tags are stable protocol constants).  A fixed array keeps the per-send
  /// accounting to one add with no allocation or tree walk.
  std::array<std::uint64_t, net::kMsgTypeSlots> per_type{};

  std::uint64_t count(net::MsgType type) const noexcept {
    return per_type[static_cast<std::size_t>(type)];
  }
};

/// The simulated transport.  Single-threaded; owned by the harness next to
/// the EventLoop it schedules deliveries on.
class Network {
 public:
  struct Options {
    LatencyModel latency{};
    double loss_probability = 0.0;  ///< uniform random packet loss
    /// When true every message is encoded and re-decoded through the wire
    /// codec before delivery, proving the protocol only relies on
    /// information that serializes.
    bool verify_serialization = true;
  };

  Network(EventLoop& loop, Rng rng, Options options)
      : loop_(loop), rng_(rng), options_(options) {}
  Network(EventLoop& loop, Rng rng) : Network(loop, rng, Options()) {}

  /// Attaches a process at a geographic coordinate.  The coordinate feeds
  /// the latency model only.
  void attach(NodeId id, Process& process, const Point& coord);

  /// Removes a process (graceful shutdown; in-flight messages to it drop).
  void detach(NodeId id);

  /// Failure injection: a down node silently loses all inbound and outbound
  /// traffic until brought back up.
  void set_up(NodeId id, bool up);
  bool is_up(NodeId id) const;
  bool is_attached(NodeId id) const;

  /// Sends `msg` from `from` to `to` with simulated latency.  Self-sends are
  /// delivered through the loop like any other message.
  void send(NodeId from, NodeId to, net::Message msg);

  const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NetworkStats{}; }

  EventLoop& loop() noexcept { return loop_; }

 private:
  struct Endpoint {
    Process* process = nullptr;
    Point coord{};
    bool up = true;
  };

  EventLoop& loop_;
  Rng rng_;
  Options options_;
  NetworkStats stats_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
};

}  // namespace geogrid::sim
