// Discrete-event simulation kernel.
//
// The protocol-mode GeoGrid runs entirely inside this single-threaded event
// loop: message deliveries, heartbeat timers, adaptation rounds and hot-spot
// epochs are all events on one virtual-time queue.  Determinism rules:
// events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant fire in the order they were scheduled, making every
// simulation bit-reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace geogrid::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Cancellation handle for a scheduled event (cheap to copy; cancelling a
/// fired or already-cancelled event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }
  bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Single-threaded virtual-time event queue.
class EventLoop {
 public:
  Time now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return live_; }
  std::uint64_t fired() const noexcept { return fired_; }

  /// Schedules `fn` to run at absolute time `at` (clamped to now).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now.
  EventHandle schedule_after(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// No-cancel fast path: schedules `fn` to run `delay` seconds from now
  /// with no handle and no per-event liveness allocation.  One-shot
  /// deliveries (the bulk of all events — every simulated message is one)
  /// go through here; anything that may be cancelled keeps schedule_after.
  void schedule_fire_and_forget(Time delay, std::function<void()> fn);

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` fire.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= deadline; the clock ends at `deadline`.
  void run_until(Time deadline);

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;  ///< null = fire-and-forget (no cancel)
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;  ///< scheduled and not yet fired/cancelled
};

}  // namespace geogrid::sim
