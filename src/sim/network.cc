#include "sim/network.h"

#include <cassert>
#include <memory>

#include "common/logging.h"

namespace geogrid::sim {

void Network::attach(NodeId id, Process& process, const Point& coord) {
  assert(id.valid());
  endpoints_[id] = Endpoint{&process, coord, true};
}

void Network::detach(NodeId id) { endpoints_.erase(id); }

void Network::set_up(NodeId id, bool up) {
  if (auto it = endpoints_.find(id); it != endpoints_.end()) {
    it->second.up = up;
  }
}

bool Network::is_up(NodeId id) const {
  auto it = endpoints_.find(id);
  return it != endpoints_.end() && it->second.up;
}

bool Network::is_attached(NodeId id) const {
  return endpoints_.contains(id);
}

void Network::send(NodeId from, NodeId to, net::Message msg) {
  ++stats_.messages_sent;
  const auto type = net::message_type(msg);
  ++stats_.per_type[static_cast<std::size_t>(type)];

  const auto src = endpoints_.find(from);
  const auto dst = endpoints_.find(to);
  if (src == endpoints_.end() || !src->second.up || dst == endpoints_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  if (options_.loss_probability > 0.0 && rng_.chance(options_.loss_probability)) {
    ++stats_.messages_dropped;
    return;
  }

  stats_.bytes_sent += net::wire_size(msg);

  const Time latency =
      options_.latency.sample(src->second.coord, dst->second.coord, rng_);

  // Round-trip through the codec (outside the delivery closure so malformed
  // encodings surface at send time, with the sender on the stack).
  auto payload = std::make_shared<net::Message>(
      options_.verify_serialization
          ? net::decode_message(net::encode_message(msg))
          : std::move(msg));

  // Deliveries are one-shot and never cancelled (a crashed receiver is
  // checked at fire time), so skip the cancellation-handle allocation.
  loop_.schedule_fire_and_forget(latency, [this, from, to, payload] {
    auto it = endpoints_.find(to);
    if (it == endpoints_.end() || !it->second.up) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    GEOGRID_TRACE("deliver " << net::message_name(net::message_type(*payload))
                             << ' ' << from << " -> " << to << " @"
                             << loop_.now());
    it->second.process->on_message(from, *payload);
  });
}

}  // namespace geogrid::sim
