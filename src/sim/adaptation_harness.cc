#include "sim/adaptation_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>
#include <tuple>
#include <utility>

#include "dualpeer/dual_ops.h"
#include "net/codec.h"

namespace geogrid::sim {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

double reflect(double v, double lo, double hi) {
  while (v < lo || v > hi) {
    if (v < lo) v = lo + (lo - v);
    if (v > hi) v = hi - (v - hi);
  }
  return v;
}

/// Canonical bytes of a result batch with every record list re-sorted by
/// user id.  Range partials merge in ascending *region-id* order, and the
/// adapted and reference partitions number regions differently, so raw
/// result bytes differ even when the answers agree; user order is the
/// partition-independent canonical form.  (Locate and k-nearest are
/// already partition-independent, but sorting them too keeps the
/// comparison uniform.)
std::vector<std::byte> canonical_bytes(
    std::vector<mobility::QueryResult> results) {
  for (mobility::QueryResult& r : results) {
    std::sort(r.records.begin(), r.records.end(),
              [](const mobility::LocationRecord& a,
                 const mobility::LocationRecord& b) { return a.user < b.user; });
  }
  net::Writer w;
  mobility::QueryEngine::serialize(w, results);
  return w.bytes();
}

}  // namespace

AdaptationHarness::AdaptationHarness(overlay::Partition& partition,
                                     workload::HotSpotField& field,
                                     Options options)
    : options_(std::move(options)),
      live_partition_(partition),
      ref_partition_(partition),
      field_(field),
      injector_(FaultInjector::Options{options_.fault, options_.seed,
                                       options_.drop_rate,
                                       options_.delay_fraction}),
      subs_(field.plane()) {
  std::sort(options_.event_ticks.begin(), options_.event_ticks.end());

  mobility::ShardedDirectory::Options live_opts;
  live_opts.shards = options_.ingest_shards;
  live_opts.track_deltas = true;
  live_dir_ = std::make_unique<mobility::ShardedDirectory>(live_partition_,
                                                           live_opts);
  mobility::ShardedDirectory::Options ref_opts;
  ref_opts.shards = 1;
  ref_opts.track_deltas = true;
  ref_dir_ =
      std::make_unique<mobility::ShardedDirectory>(ref_partition_, ref_opts);

  live_queries_ = std::make_unique<mobility::QueryEngine>(
      *live_dir_, mobility::QueryEngine::Options{options_.query_threads});
  ref_queries_ = std::make_unique<mobility::QueryEngine>(
      *ref_dir_, mobility::QueryEngine::Options{1});

  live_notify_ = std::make_unique<pubsub::NotificationEngine>(
      *live_dir_, subs_,
      pubsub::NotificationEngine::Options{options_.notify_threads, true});
  ref_notify_ = std::make_unique<pubsub::NotificationEngine>(
      *ref_dir_, subs_, pubsub::NotificationEngine::Options{1, true});

  driver_ = std::make_unique<loadbalance::AdaptationDriver>(
      live_partition_,
      [this](RegionId rid) {
        return field_.region_load(live_partition_.region(rid).rect);
      },
      options_.planner);

  // Seed the population: deterministic starting positions biased toward
  // the hot spots, per-user seq counters starting at 0 (first report = 1).
  Rng place_rng(options_.seed ^ 0x5eed91aceULL);
  positions_.reserve(options_.users);
  for (std::size_t i = 0; i < options_.users; ++i) {
    positions_.push_back(place_rng.chance(0.5)
                             ? field_.sample_weighted_point(place_rng)
                             : Point{place_rng.uniform(field_.plane().x,
                                                       field_.plane().right()),
                                     place_rng.uniform(field_.plane().y,
                                                       field_.plane().top())});
  }
  seqs_.assign(options_.users, 0);

  // Standing subscriptions, one shared index: the live and reference
  // engines must emit byte-identical streams against it.
  Rng sub_rng(options_.seed ^ 0x50b5c71beULL);
  for (std::size_t i = 0; i < options_.subscriptions; ++i) {
    net::Subscribe msg;
    msg.sub_id = i + 1;
    if (i % 3 == 2) {
      const UserId target{
          static_cast<std::uint32_t>(sub_rng.uniform_index(options_.users) +
                                     1)};
      subs_.subscribe_friend(msg, target);
      continue;
    }
    const Point c = field_.sample_weighted_point(sub_rng);
    const double w = sub_rng.uniform(1.0, 6.0);
    const double h = sub_rng.uniform(1.0, 6.0);
    const Rect plane = field_.plane();
    msg.area = Rect{std::clamp(c.x - w / 2.0, plane.x, plane.right() - w),
                    std::clamp(c.y - h / 2.0, plane.y, plane.top() - h), w, h};
    subs_.subscribe(msg, i % 3 == 0 ? pubsub::SubKind::kGeofence
                                    : pubsub::SubKind::kRange);
  }
}

AdaptationHarness::Phase AdaptationHarness::phase_of(
    std::size_t tick) const noexcept {
  if (options_.event_ticks.empty()) return Phase::kBefore;
  if (tick < options_.event_ticks.front()) return Phase::kBefore;
  for (const std::size_t e : options_.event_ticks) {
    if (tick >= e && tick <= e + options_.during_window) return Phase::kDuring;
  }
  return Phase::kAfter;
}

std::vector<mobility::LocationRecord> AdaptationHarness::make_batch(
    std::size_t tick, Rng& rng) {
  std::vector<mobility::LocationRecord> batch;
  batch.reserve(options_.users);
  const Rect plane = field_.plane();
  for (std::size_t i = 0; i < options_.users; ++i) {
    const bool reports = options_.report_rate >= 1.0 ||
                         rng.chance(options_.report_rate);
    if (!reports) continue;
    Point& pos = positions_[i];
    if (rng.chance(options_.hotspot_jump_rate)) {
      pos = field_.sample_weighted_point(rng);
    } else {
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double step = rng.uniform(0.0, options_.move_step);
      pos.x = reflect(pos.x + step * std::cos(angle), plane.x, plane.right());
      pos.y = reflect(pos.y + step * std::sin(angle), plane.y, plane.top());
    }
    batch.push_back(mobility::LocationRecord{
        UserId{static_cast<std::uint32_t>(i + 1)}, pos, ++seqs_[i],
        static_cast<double>(tick)});
  }
  return batch;
}

std::vector<mobility::Query> AdaptationHarness::make_queries(Rng& rng) {
  std::vector<mobility::Query> queries;
  queries.reserve(options_.queries_per_tick);
  const Rect plane = field_.plane();
  for (std::size_t i = 0; i < options_.queries_per_tick; ++i) {
    switch (i % 3) {
      case 0: {
        queries.push_back(mobility::Query::locate(UserId{
            static_cast<std::uint32_t>(rng.uniform_index(options_.users) +
                                       1)}));
        break;
      }
      case 1: {
        const Point c = field_.sample_weighted_point(rng);
        const double w = rng.uniform(1.0, 8.0);
        const double h = rng.uniform(1.0, 8.0);
        queries.push_back(mobility::Query::range(
            Rect{std::clamp(c.x - w / 2.0, plane.x, plane.right() - w),
                 std::clamp(c.y - h / 2.0, plane.y, plane.top() - h), w, h}));
        break;
      }
      default: {
        queries.push_back(mobility::Query::nearest(
            field_.sample_weighted_point(rng), options_.knn_k));
        break;
      }
    }
  }
  return queries;
}

void AdaptationHarness::ingest_live(
    std::span<const mobility::LocationRecord> batch, PhaseLatency& lat) {
  if (batch.empty()) return;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(options_.sub_batches, batch.size()));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = batch.size() * c / chunks;
    const std::size_t hi = batch.size() * (c + 1) / chunks;
    if (lo == hi) continue;
    const auto start = Clock::now();
    live_dir_->apply_updates(batch.subspan(lo, hi - lo));
    const double us = elapsed_us(start);
    report_.update_secs += us * 1e-6;
    lat.update.record_micros(us / static_cast<double>(hi - lo));
  }
}

void AdaptationHarness::run_queries(std::span<const mobility::Query> queries,
                                    PhaseLatency& lat) {
  if (queries.empty()) return;
  std::vector<mobility::QueryResult> live_results;
  live_results.reserve(queries.size());
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(options_.sub_batches, queries.size()));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = queries.size() * c / chunks;
    const std::size_t hi = queries.size() * (c + 1) / chunks;
    if (lo == hi) continue;
    const auto start = Clock::now();
    auto part = live_queries_->run(queries.subspan(lo, hi - lo));
    const double us = elapsed_us(start);
    report_.query_secs += us * 1e-6;
    lat.query.record_micros(us / static_cast<double>(hi - lo));
    for (auto& r : part) live_results.push_back(std::move(r));
  }
  report_.queries_run += queries.size();

  const auto ref_results = ref_queries_->run(queries);
  if (canonical_bytes(std::move(live_results)) !=
      canonical_bytes(ref_results)) {
    ++report_.query_divergences;
  }
}

void AdaptationHarness::drain_notifications() {
  const auto live_batch = live_notify_->drain();
  const auto ref_batch = ref_notify_->drain();
  report_.notifications += live_batch.size();

  net::Writer lw, rw;
  pubsub::NotificationEngine::serialize(lw, live_batch);
  pubsub::NotificationEngine::serialize(rw, ref_batch);
  if (lw.bytes() != rw.bytes()) ++report_.notify_divergences;

  // Duplicate delivery check within the drained batch: the same
  // (subscription, user, event) must not be emitted twice in one epoch
  // window, no matter how adaptation epochs interleave with movement.
  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint8_t>> keys;
  keys.reserve(live_batch.size());
  for (const pubsub::Notification& n : live_batch) {
    keys.emplace_back(n.sub_id, n.user.value,
                      static_cast<std::uint8_t>(n.event));
  }
  std::sort(keys.begin(), keys.end());
  report_.duplicate_notifications += static_cast<std::uint64_t>(
      keys.end() - std::unique(keys.begin(), keys.end()));
}

void AdaptationHarness::do_failover() {
  if (live_partition_.region_count() <= 1) return;
  // Deterministic victim: the hottest region, with a repair-path
  // preference and ties broken on region id.  The region-kill fault hunts
  // a solo primary — its death retires the region (repair by merge), so
  // the store must migrate; the plain failover event prefers a dual-peer
  // region, exercising secondary takeover.
  const bool prefer_solo = injector_.kills_region();
  std::vector<std::pair<RegionId, double>> candidates;
  candidates.reserve(live_partition_.region_count());
  for (const auto& [id, region] : live_partition_.regions()) {
    const bool preferred = region.secondary.has_value() != prefer_solo;
    candidates.emplace_back(
        id, field_.region_load(region.rect) + (preferred ? 1e9 : 0.0));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.value < b.first.value;
            });
  const NodeId victim = live_partition_.region(candidates.front().first).primary;
  dualpeer::dual_fail(live_partition_, victim);
  ++report_.failovers;
  if (injector_.kills_region()) injector_.count_region_kill();
}

void AdaptationHarness::migrate_with_retries() {
  for (std::size_t pass = 0; pass < options_.max_migration_passes; ++pass) {
    mobility::ShardedDirectory::MigrationFilter filter;
    if (injector_.drops_transfers(pass, options_.max_migration_passes)) {
      filter = [this](UserId, RegionId, RegionId) {
        return !injector_.drop_transfer();
      };
    }
    const auto pass_report = live_dir_->migrate_regions(filter);
    ++report_.migration_passes;
    if (pass > 0) ++report_.migration_retries;
    report_.migrated_records += pass_report.moved;
    report_.dropped_transfers += pass_report.dropped;
    report_.stores_retired += pass_report.stores_retired;
    if (pass_report.complete()) break;
  }
}

void AdaptationHarness::verify_migration() {
  // Snapshot-consistency: the migrated directory must be byte-identical to
  // one rebuilt from scratch on the adapted partition from the very same
  // records.  A torn migration — a record left in a store whose region no
  // longer covers it, a duplicate surviving in two stores, or a memo entry
  // disagreeing with the stores — cannot reproduce the rebuilt bytes.
  std::vector<mobility::LocationRecord> records;
  records.reserve(options_.users);
  for (std::size_t i = 0; i < options_.users; ++i) {
    if (const auto rec =
            live_dir_->locate(UserId{static_cast<std::uint32_t>(i + 1)})) {
      records.push_back(*rec);
    }
  }
  mobility::ShardedDirectory::Options opts;
  opts.shards = 1;
  mobility::ShardedDirectory rebuilt(live_partition_, opts);
  rebuilt.apply_updates(records);

  net::Writer migrated, reference;
  live_dir_->serialize(migrated);
  rebuilt.serialize(reference);
  if (migrated.bytes() != reference.bytes()) {
    ++report_.migration_verify_failures;
  }
}

void AdaptationHarness::adaptation_event() {
  const auto start = Clock::now();
  const std::uint64_t geometry_before = live_partition_.geometry_version();

  if (options_.failover || injector_.kills_region()) do_failover();
  if (options_.use_driver) {
    for (std::size_t i = 0; i < options_.ops_per_event; ++i) {
      const auto plan = driver_->step();
      if (!plan.has_value()) break;
      ++report_.adaptations_executed;
      ++report_.per_mechanism[static_cast<std::size_t>(plan->mechanism)];
    }
  }
  report_.geometry_changes +=
      live_partition_.geometry_version() - geometry_before;

  migrate_with_retries();
  report_.adaptation_stall_us +=
      static_cast<std::uint64_t>(elapsed_us(start));
  if (options_.verify_migration) verify_migration();
}

void AdaptationHarness::check_parity() {
  for (std::size_t i = 0; i < options_.users; ++i) {
    const UserId user{static_cast<std::uint32_t>(i + 1)};
    const auto live = live_dir_->locate(user);
    const auto ref = ref_dir_->locate(user);
    if (ref.has_value() && !live.has_value()) {
      ++report_.lost_users;
    } else if (live.has_value() != ref.has_value() ||
               (live.has_value() && !(*live == *ref))) {
      ++report_.record_parity_failures;
    }
  }
}

AdaptationHarness::Report AdaptationHarness::run() {
  for (std::size_t tick = 0; tick < options_.ticks; ++tick) {
    field_.advance(options_.seed, tick);

    Rng tick_rng(options_.seed ^
                 (0xace1u + tick * 0x9e3779b97f4a7c15ULL));
    auto batch = make_batch(tick, tick_rng);
    report_.updates_sent += batch.size();

    PhaseLatency* lat = nullptr;
    switch (phase_of(tick)) {
      case Phase::kBefore: lat = &report_.before; break;
      case Phase::kDuring: lat = &report_.during; break;
      case Phase::kAfter: lat = &report_.after; break;
    }

    const bool event =
        std::find(options_.event_ticks.begin(), options_.event_ticks.end(),
                  tick) != options_.event_ticks.end();
    const std::size_t tail =
        event ? injector_.deferred_tail(batch.size()) : 0;
    const std::span<const mobility::LocationRecord> all(batch);
    ingest_live(all.first(batch.size() - tail), *lat);

    if (event) {
      adaptation_event();
      const auto deferred = all.subspan(batch.size() - tail);
      if (!deferred.empty()) {
        // Late delivery after the adaptation window, then the retransmit
        // of the same records — the seq guard must reject every replay.
        report_.delayed_updates += deferred.size();
        ingest_live(deferred, *lat);
        const std::uint64_t stale_before =
            live_dir_->counters().updates_stale;
        injector_.count_replays(deferred.size());
        report_.replayed_updates += deferred.size();
        ingest_live(deferred, *lat);
        report_.replays_rejected +=
            live_dir_->counters().updates_stale - stale_before;
      }
    }

    // The reference sees the whole tick's batch at once: no fault, no
    // adaptation, original order.
    ref_dir_->apply_updates(batch);

    const auto queries = make_queries(tick_rng);
    run_queries(queries, *lat);
    drain_notifications();

    if (options_.deep_parity_every_tick || event ||
        tick + 1 == options_.ticks) {
      check_parity();
    }
  }
  return report_;
}

}  // namespace geogrid::sim
