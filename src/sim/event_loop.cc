#include "sim/event_loop.h"

#include <algorithm>

namespace geogrid::sim {

EventHandle EventLoop::schedule_at(Time at, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn), alive});
  ++live_;
  return EventHandle(std::move(alive));
}

void EventLoop::schedule_fire_and_forget(Time delay, std::function<void()> fn) {
  queue_.push(
      Event{std::max(now_ + delay, now_), next_seq_++, std::move(fn), nullptr});
  ++live_;
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    // The queue is a value heap, so move the top out via const_cast-free
    // copy of the small members and a move of the closure.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --live_;
    if (ev.alive != nullptr) {  // null: fire-and-forget, cannot be cancelled
      if (!*ev.alive) continue;  // cancelled
      *ev.alive = false;
    }
    now_ = ev.at;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void EventLoop::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void EventLoop::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace geogrid::sim
