// Deterministic fault injection for the adaptation-under-fire harness.
//
// The harness drives live ingest and queries through partition adaptations
// (split, merge, seat moves, dual-peer failover).  Each of those windows
// has a failure mode the paper's protocol must absorb; FaultInjector
// produces the *decisions* for one such failure mode from a seeded Rng so
// every run is replayable bit-for-bit:
//
//   * kRegionKill      — the adapted region's primary crashes mid-window
//                        (dual_fail: secondary takeover or repair-by-merge).
//   * kDelayedHandoff  — a slice of the in-flight update batch is delivered
//                        only after the adaptation completes, then replayed
//                        a second time (the retransmit), so the seq guard
//                        must reject the duplicates.
//   * kDroppedTransfer — a fraction of region-migration transfer messages
//                        is vetoed per pass; the harness retries passes
//                        until the migration completes.
//
// The injector only decides; the harness applies the decisions.  Decision
// streams are consumed in deterministic order (migration transfers arrive
// user-sorted, batch tails are sized once per tick), so a (kind, seed)
// pair names one exact fault schedule regardless of shard/thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/ids.h"
#include "common/rng.h"

namespace geogrid::sim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kRegionKill = 1,
  kDelayedHandoff = 2,
  kDroppedTransfer = 3,
};

inline constexpr std::size_t kFaultKindCount = 4;

std::string_view fault_name(FaultKind kind);

class FaultInjector {
 public:
  struct Options {
    FaultKind kind = FaultKind::kNone;
    std::uint64_t seed = 1;
    /// P(one migration transfer is vetoed) per pass (kDroppedTransfer).
    double drop_rate = 0.35;
    /// Fraction of a tick's update batch delivered late (kDelayedHandoff).
    double delay_fraction = 0.25;
  };

  struct Counters {
    std::uint64_t transfers_dropped = 0;
    std::uint64_t updates_delayed = 0;
    std::uint64_t updates_replayed = 0;
    std::uint64_t regions_killed = 0;
  };

  explicit FaultInjector(Options options)
      : options_(options), rng_(options.seed ^ 0xfa01753c0de5eedULL) {}

  FaultKind kind() const noexcept { return options_.kind; }

  /// Whether migration passes before `max_passes - 1` should run under the
  /// dropping filter.  The final pass always runs clean so a bounded retry
  /// loop is guaranteed to finish the migration.
  bool drops_transfers(std::size_t pass,
                       std::size_t max_passes) const noexcept {
    return options_.kind == FaultKind::kDroppedTransfer &&
           pass + 1 < max_passes;
  }

  /// One transfer's fate this pass (called in user-sorted transfer order,
  /// so the stream is shard-count independent).  True = veto.
  bool drop_transfer() {
    const bool drop = rng_.chance(options_.drop_rate);
    if (drop) ++counters_.transfers_dropped;
    return drop;
  }

  /// How many tail records of a `batch_size` update batch arrive only
  /// after the adaptation window (and are then replayed once more).
  std::size_t deferred_tail(std::size_t batch_size) {
    if (options_.kind != FaultKind::kDelayedHandoff || batch_size == 0) {
      return 0;
    }
    const auto tail = static_cast<std::size_t>(
        static_cast<double>(batch_size) * options_.delay_fraction);
    counters_.updates_delayed += tail;
    return tail;
  }

  bool kills_region() const noexcept {
    return options_.kind == FaultKind::kRegionKill;
  }

  void count_replays(std::size_t n) noexcept {
    counters_.updates_replayed += n;
  }
  void count_region_kill() noexcept { ++counters_.regions_killed; }

  const Counters& counters() const noexcept { return counters_; }

 private:
  Options options_;
  Rng rng_;
  Counters counters_;
};

}  // namespace geogrid::sim
