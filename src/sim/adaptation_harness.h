// Adaptation-under-fire harness: the paper's load-balance mechanisms and
// dual-peer failover driven against the live mobile-user hot path.
//
// Everything before this harness tested adaptation on static overlays (no
// ingest or queries in flight) and the mobile path on static partitions
// (no splits or merges mid-run).  The harness closes the loop: migrating
// hot spots steer a population of reporting users through ShardedDirectory
// ingest and QueryEngine batches tick by tick, and at scheduled ticks the
// AdaptationDriver fires the eight mechanisms (and/or a dual-peer
// failover) against the live partition, followed by
// ShardedDirectory::migrate_regions to re-home the records the geometry
// change stranded — optionally under an injected fault (fault_injector.h).
//
// Correctness is judged against a *never-adapted reference*: a second
// directory over a frozen copy of the starting partition fed the exact
// same update batches.  Every tick the harness compares, byte for byte:
//
//   * canonicalized query results (records sorted by user id, erasing the
//     region-merge-order difference between the two partitions),
//   * notification streams from two NotificationEngines sharing one
//     SubscriptionIndex (continuity across failover: no missing, extra or
//     duplicate notifications),
//   * per-user records (position/seq parity; a user the reference holds
//     but the live side lost is a lost user).
//
// After each adaptation the migration itself is verified snapshot-style:
// the live directory's canonical serialization must equal that of a fresh
// directory rebuilt on the adapted partition from the same records — a
// torn migration (record in the wrong store, stale duplicate, memo
// disagreement) cannot produce equal bytes.
//
// What production cares about is recorded per phase: update and query
// latency histograms split into before / during / after adaptation
// windows (metrics::LatencyHistogram, sampled per sub-batch), plus
// dropped/retried transfer counts, replayed-update rejections, and
// adaptation stall time.  The bench and the property-test matrix are both
// thin wrappers over Report.
//
// Determinism: user motion, query mix, subscriptions, hot-spot migration
// (HotSpotField::advance) and fault decisions all derive from
// Options::seed, so a run is replayable bit-for-bit at any shard/thread
// count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "loadbalance/driver.h"
#include "metrics/latency.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "overlay/partition.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"
#include "sim/fault_injector.h"
#include "workload/hotspot.h"

namespace geogrid::sim {

class AdaptationHarness {
 public:
  struct Options {
    std::size_t users = 2000;
    std::size_t ticks = 12;
    /// P(a user reports this tick).  Below 1.0 the migration delta path is
    /// exercised: migrated-but-silent users enter the delta without a
    /// report and must not produce notifications.
    double report_rate = 1.0;
    /// Random-walk step (miles/tick); a fraction of users teleports to a
    /// hot-spot-weighted point instead, keeping hot regions populated.
    double move_step = 1.5;
    double hotspot_jump_rate = 0.15;
    std::size_t queries_per_tick = 96;
    std::size_t subscriptions = 96;
    std::uint32_t knn_k = 8;
    /// Latency sampling granularity: each tick's update batch and query
    /// batch run in this many timed sub-batches.
    std::size_t sub_batches = 4;

    /// Ticks at which the adaptation window opens (driver steps and/or a
    /// failover, then region migration under the configured fault).
    std::vector<std::size_t> event_ticks = {4, 8};
    /// Ticks after an event still counted as the "during" phase.
    std::size_t during_window = 2;
    /// Driver steps attempted per event (each executes at most one plan).
    std::size_t ops_per_event = 4;
    /// Run the load-balance driver at events.
    bool use_driver = true;
    /// Crash the hottest region's primary at each event (dual_fail).
    bool failover = false;
    loadbalance::PlannerConfig planner{};

    FaultKind fault = FaultKind::kNone;
    double drop_rate = 0.35;
    double delay_fraction = 0.25;
    /// Migration retry budget per event; the last pass always runs without
    /// the dropping filter so the migration is guaranteed to complete.
    std::size_t max_migration_passes = 6;

    /// Byte-compare the migrated directory against one rebuilt from
    /// scratch on the adapted partition after every event.
    bool verify_migration = true;
    /// Per-user record parity live-vs-reference every tick (tests) or only
    /// at events and the final tick (bench scale).
    bool deep_parity_every_tick = true;

    std::uint64_t seed = 1;
    std::size_t ingest_shards = 1;
    std::size_t query_threads = 1;
    std::size_t notify_threads = 1;
  };

  /// Which adaptation window a tick falls in.
  enum class Phase : std::uint8_t { kBefore = 0, kDuring = 1, kAfter = 2 };

  struct PhaseLatency {
    metrics::LatencyHistogram update;  ///< per-record micros, per sub-batch
    metrics::LatencyHistogram query;   ///< per-query micros, per sub-batch
  };

  struct Report {
    PhaseLatency before;
    PhaseLatency during;
    PhaseLatency after;

    // Adaptation activity.
    std::uint64_t adaptations_executed = 0;
    std::array<std::size_t, loadbalance::kMechanismCount> per_mechanism{};
    std::uint64_t failovers = 0;
    std::uint64_t geometry_changes = 0;  ///< geometry_version delta at events
    std::uint64_t adaptation_stall_us = 0;  ///< time inside driver+migration

    // Migration activity.
    std::uint64_t migrated_records = 0;
    std::uint64_t migration_passes = 0;
    std::uint64_t migration_retries = 0;  ///< passes beyond the first
    std::uint64_t dropped_transfers = 0;
    std::uint64_t stores_retired = 0;

    // Injected-fault activity.
    std::uint64_t delayed_updates = 0;
    std::uint64_t replayed_updates = 0;
    std::uint64_t replays_rejected = 0;  ///< seq guard caught the replay

    // Workload volume.
    std::uint64_t updates_sent = 0;
    std::uint64_t queries_run = 0;
    std::uint64_t notifications = 0;
    double update_secs = 0.0;  ///< live-directory ingest wall time
    double query_secs = 0.0;   ///< live-engine query wall time

    // Violations (all must be zero for a correct run).
    std::uint64_t lost_users = 0;
    std::uint64_t record_parity_failures = 0;
    std::uint64_t query_divergences = 0;
    std::uint64_t notify_divergences = 0;
    std::uint64_t duplicate_notifications = 0;
    std::uint64_t migration_verify_failures = 0;

    bool clean() const noexcept {
      return lost_users == 0 && record_parity_failures == 0 &&
             query_divergences == 0 && notify_divergences == 0 &&
             duplicate_notifications == 0 && migration_verify_failures == 0;
    }
  };

  /// The harness adapts `partition` in place (the caller's live overlay)
  /// and privately copies it as the never-adapted reference.  `field`
  /// supplies region loads to the planner and is advanced deterministically
  /// each tick via HotSpotField::advance(seed, tick).  Neither may be
  /// mutated externally while run() executes.
  AdaptationHarness(overlay::Partition& partition,
                    workload::HotSpotField& field, Options options);

  AdaptationHarness(const AdaptationHarness&) = delete;
  AdaptationHarness& operator=(const AdaptationHarness&) = delete;

  /// Drives the full tick schedule once and returns the report.  One-shot:
  /// construct a fresh harness per run.
  Report run();

  const Options& options() const noexcept { return options_; }
  const FaultInjector::Counters& fault_counters() const noexcept {
    return injector_.counters();
  }

 private:
  Phase phase_of(std::size_t tick) const noexcept;

  /// Builds this tick's update batch (reporting users only, user order).
  std::vector<mobility::LocationRecord> make_batch(std::size_t tick,
                                                   Rng& rng);
  std::vector<mobility::Query> make_queries(Rng& rng);

  /// Ingests `batch` into the live directory in timed sub-batches.
  void ingest_live(std::span<const mobility::LocationRecord> batch,
                   PhaseLatency& lat);
  void run_queries(std::span<const mobility::Query> queries,
                   PhaseLatency& lat);
  void drain_notifications();

  /// One adaptation window: driver steps and/or failover, then migration
  /// retried to completion under the fault filter, then verification.
  void adaptation_event();
  void do_failover();
  void migrate_with_retries();
  void verify_migration();

  /// Per-user record parity against the reference (lost users, position/
  /// seq mismatches).
  void check_parity();

  Options options_;
  overlay::Partition& live_partition_;
  overlay::Partition ref_partition_;  ///< frozen copy, never adapted
  workload::HotSpotField& field_;
  FaultInjector injector_;

  std::unique_ptr<mobility::ShardedDirectory> live_dir_;
  std::unique_ptr<mobility::ShardedDirectory> ref_dir_;
  std::unique_ptr<mobility::QueryEngine> live_queries_;
  std::unique_ptr<mobility::QueryEngine> ref_queries_;
  pubsub::SubscriptionIndex subs_;
  std::unique_ptr<pubsub::NotificationEngine> live_notify_;
  std::unique_ptr<pubsub::NotificationEngine> ref_notify_;
  std::unique_ptr<loadbalance::AdaptationDriver> driver_;

  // Per-user workload state (index = user id - 1).
  std::vector<Point> positions_;
  std::vector<std::uint64_t> seqs_;

  Report report_;
};

}  // namespace geogrid::sim
