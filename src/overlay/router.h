// Greedy geographic routing.
//
// Routing in GeoGrid "works by following the straight line path through the
// two dimensional coordinate space from source to destination": each hop
// forwards the request to the immediate neighbor closest to the destination
// point until the covering region is reached.  Expected cost on an
// N-region partition is O(2*sqrt(N)) hops.
//
// Distance is measured from the neighbor's *region rectangle* to the target
// point (zero when the rectangle covers it).  Ties break on region id so
// both execution modes route identically.  A visited set guards against the
// rare plateau where no neighbor strictly improves (possible on highly
// irregular partitions): the router then falls back to the best unvisited
// neighbor, and reports failure only when it runs out of moves.
//
// The same step function drives engine mode (over Partition) and protocol
// mode (over a node's neighbor snapshots), so hop counts measured in the
// figures are the hop counts the wire protocol would produce.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "net/node_info.h"

namespace geogrid::overlay {

class Partition;

/// A candidate next hop: a neighbor region and its rectangle.
struct HopCandidate {
  RegionId region{};
  Rect rect{};
};

/// Picks the next hop toward `target` among `candidates`, skipping regions
/// for which `visited` returns true.  Returns nullopt when every candidate
/// is visited.  Selection: minimum rect-to-target distance, then smaller
/// area (finer region), then smaller id.
///
/// The visited predicate is a template parameter, not a std::function:
/// this runs once per routing hop on every routed message, and the
/// type-erased call (plus its non-inlinable indirect branch) was
/// measurable in bench_routing_hops.  Callers pass a lambda; the
/// predicate-free overload below serves the no-filter case.
template <typename VisitedFn>
std::optional<RegionId> greedy_next(std::span<const HopCandidate> candidates,
                                    const Point& target, VisitedFn&& visited) {
  std::optional<RegionId> best;
  double best_distance = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& c : candidates) {
    if (visited(c.region)) continue;
    const double d = c.rect.distance_to(target);
    const double a = c.rect.area();
    const bool better =
        d < best_distance - kGeoEps ||
        (almost_equal(d, best_distance) &&
         (a < best_area - kGeoEps ||
          (almost_equal(a, best_area) && (!best || c.region < *best))));
    if (better) {
      best = c.region;
      best_distance = d;
      best_area = a;
    }
  }
  return best;
}

/// No-filter overload: every candidate is eligible.
inline std::optional<RegionId> greedy_next(
    std::span<const HopCandidate> candidates, const Point& target) {
  return greedy_next(candidates, target, [](RegionId) { return false; });
}

/// Result of routing a request through the partition.
struct RouteResult {
  bool reached = false;
  RegionId executor = kInvalidRegion;  ///< region covering the target
  std::uint32_t hops = 0;              ///< forwarding steps taken
  std::vector<RegionId> path;          ///< regions traversed, source first
};

/// Routes from region `from` to the region covering `target` over the
/// partition's adjacency graph.
RouteResult route_greedy(const Partition& partition, RegionId from,
                         const Point& target);

/// The dissemination step: once the executor region (covering the center of
/// the query area) is reached, the query is forwarded to every neighbor
/// region whose rectangle overlaps the query area.  Returns those neighbor
/// region ids.
std::vector<RegionId> overlapping_neighbors(const Partition& partition,
                                            RegionId executor,
                                            const Rect& query_area);

}  // namespace geogrid::overlay
