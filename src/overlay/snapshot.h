// Snapshot construction.
//
// RegionSnapshot is the unit of knowledge that travels between nodes (probe
// replies, neighbor lists, load gossip).  Engine mode builds snapshots
// straight from the Partition; protocol mode builds them from a node's own
// region state.  LoadFn abstracts where load numbers come from — the
// hot-spot field in engine mode, measured query counts in protocol mode.
#pragma once

#include <functional>
#include <vector>

#include "net/node_info.h"
#include "overlay/partition.h"

namespace geogrid::overlay {

/// Current load of a region (by id).
using LoadFn = std::function<double(RegionId)>;

/// Builds the snapshot of one region, with load and workload index filled
/// from `load_of`.
net::RegionSnapshot make_snapshot(const Partition& partition, RegionId id,
                                  const LoadFn& load_of);

/// Snapshots of all neighbors of `id`.
std::vector<net::RegionSnapshot> neighbor_snapshots(const Partition& partition,
                                                    RegionId id,
                                                    const LoadFn& load_of);

}  // namespace geogrid::overlay
