#include "overlay/basic_ops.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace geogrid::overlay {
namespace {

/// Sum of areas of the regions `node` owns as primary.
double owned_area(const Partition& partition, NodeId node) {
  double total = 0.0;
  for (RegionId rid : partition.primary_regions(node)) {
    total += partition.region(rid).rect.area();
  }
  return total;
}

}  // namespace

JoinResult basic_join(Partition& partition, const net::NodeInfo& joiner,
                      RegionId entry_region) {
  if (!partition.has_node(joiner.id)) partition.add_node(joiner);
  JoinResult result;

  if (partition.region_count() == 0) {
    result.region = partition.create_root(joiner.id);
    return result;
  }

  const RegionId entry = entry_region.valid() && partition.has_region(entry_region)
                             ? entry_region
                             : partition.regions().begin()->first;
  const RouteResult route = route_greedy(partition, entry, joiner.coord);
  assert(route.reached);
  result.routing_hops = route.hops;
  const RegionId covering = route.executor;

  // Split so that, when the joiner and the incumbent fall in different
  // halves, each owns the half covering its own coordinate; when they share
  // a half the incumbent keeps it (the paper's owner "retains half").
  const Region& r = partition.region(covering);
  const auto axis = split_axis_for_depth(r.split_depth);
  const auto [low, high] = r.rect.split(axis);
  const bool owner_in_low =
      low.covers_inclusive(partition.node(r.primary).coord);
  const bool joiner_in_low = low.covers_inclusive(joiner.coord);
  const bool give_high =
      (owner_in_low != joiner_in_low) ? !joiner_in_low : owner_in_low;
  result.region = partition.split_explicit(covering, joiner.id, give_high);
  return result;
}

JoinResult can_join(Partition& partition, const net::NodeInfo& joiner,
                    const Point& random_point, RegionId entry_region) {
  if (!partition.has_node(joiner.id)) partition.add_node(joiner);
  JoinResult result;

  if (partition.region_count() == 0) {
    result.region = partition.create_root(joiner.id);
    return result;
  }

  const RegionId entry =
      entry_region.valid() && partition.has_region(entry_region)
          ? entry_region
          : partition.regions().begin()->first;
  const RouteResult route = route_greedy(partition, entry, random_point);
  assert(route.reached);
  result.routing_hops = route.hops;
  // CAN semantics: the incumbent keeps one half, the joiner takes the
  // other; node coordinates play no role in the assignment.
  result.region = partition.split_explicit(route.executor, joiner.id,
                                           /*give_high=*/true);
  return result;
}

void basic_leave(Partition& partition, NodeId node) {
  // Promote or drop any secondary seats first (defensive: the basic system
  // has none, but engine harnesses may mix modes).
  const std::vector<RegionId> secondaries = partition.secondary_regions(node);
  for (RegionId rid : secondaries) partition.clear_secondary(rid);

  const std::vector<RegionId> owned = partition.primary_regions(node);
  for (RegionId rid : owned) {
    if (partition.has_region(rid)) repair_region(partition, rid, node);
  }
  partition.remove_node(node);
}

void repair_region(Partition& partition, RegionId region, NodeId exclude) {
  const Region& r = partition.region(region);

  // A surviving secondary owner takes over (dual-peer fail-over).
  if (r.secondary && *r.secondary != exclude) {
    partition.swap_roles(region);
    partition.clear_secondary(region);
    return;
  }
  if (r.secondary) partition.clear_secondary(region);

  // Last region in the grid: retire it with the departing founder.
  if (partition.region_count() == 1) {
    partition.retire_last_region(region);
    return;
  }

  // Merge into an adjacent region when the union is a rectangle; prefer the
  // smallest such neighbor so region sizes stay balanced.
  RegionId merge_target = kInvalidRegion;
  double merge_area = std::numeric_limits<double>::infinity();
  for (RegionId n : partition.neighbors(region)) {
    const Region& nr = partition.region(n);
    if (nr.primary == exclude) continue;
    if (!nr.rect.mergeable(r.rect)) continue;
    if (nr.rect.area() < merge_area) {
      merge_area = nr.rect.area();
      merge_target = n;
    }
  }
  if (merge_target.valid()) {
    partition.merge(merge_target, region);
    return;
  }

  // No rectangular union possible: the least-burdened neighbor owner
  // becomes caretaker of the orphaned rectangle.
  NodeId caretaker = kInvalidNode;
  double caretaker_area = std::numeric_limits<double>::infinity();
  for (RegionId n : partition.neighbors(region)) {
    const NodeId candidate = partition.region(n).primary;
    if (candidate == exclude) continue;
    const double area = owned_area(partition, candidate);
    if (area < caretaker_area) {
      caretaker_area = area;
      caretaker = candidate;
    }
  }
  assert(caretaker.valid() && "orphaned region has no eligible neighbor");
  partition.set_primary(region, caretaker);
}

}  // namespace geogrid::overlay
