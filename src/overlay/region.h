// Region record.
//
// A region is a rectangle of the GeoGrid plane together with its ownership:
// a primary owner node (always present once the region exists) and, in
// dual-peer mode, an optional secondary owner that replicates the primary's
// state and takes over on failure.  RegionIds are stable across ownership
// changes — the load-balance adaptations re-assign owners without renaming
// regions — and are only retired by merges.
#pragma once

#include <optional>

#include "common/geometry.h"
#include "common/ids.h"

namespace geogrid::overlay {

struct Region {
  RegionId id{};
  Rect rect{};
  int split_depth = 0;  ///< splits from the root; selects the next split axis
  NodeId primary{};
  std::optional<NodeId> secondary{};

  /// A region is "full" when it has a dual peer (both owner seats taken).
  bool full() const noexcept { return secondary.has_value(); }

  bool owned_by(NodeId n) const noexcept {
    return primary == n || (secondary && *secondary == n);
  }
};

/// Minimum side length (miles) below which a region is never split again.
/// A 64-mile plane supports ~2^32 regions above this floor, so the limit is
/// unreachable in practice; it exists to keep degenerate split cascades
/// (possible when every probe candidate ties at zero load) from producing
/// sliver regions thinner than the geometric tolerance.
inline constexpr double kMinSplitDimension = 1e-3;

/// True when the region may be split in half again.
constexpr bool splittable(const Rect& rect) noexcept {
  return rect.width >= 2.0 * kMinSplitDimension &&
         rect.height >= 2.0 * kMinSplitDimension;
}

/// The split axis used at a given depth.  The paper splits "latitude
/// dimension first and then longitude": even depths split latitude (Y),
/// odd depths split longitude (X).
constexpr Axis split_axis_for_depth(int depth) noexcept {
  return (depth % 2 == 0) ? Axis::kY : Axis::kX;
}

}  // namespace geogrid::overlay
