// Shared region-resolution layer between the partition and its readers.
//
// Every consumer of the partition's geometry used to pay its own price for
// "which region(s) does this point/rect concern": the sharded ingestion
// engine kept a private region-id -> rect memo for its per-user fast path,
// the directory read path swept every region per range call, and k-nearest
// ordered all R stores by rect distance on every query.  RegionResolver
// centralizes that: one rect memo plus one uniform spatial grid over the
// region rectangles, both rebuilt lazily when Partition::geometry_version()
// moves (splits/merges/retirements; owner-seat moves leave rects — and the
// cache — alone).
//
//   * resolve(p, hint)     — the write path's target resolution: when the
//     hinted region's memoized rect still covers p (the overwhelmingly
//     common case for a mobile user between reports) the answer is one
//     rect-cover test; otherwise it falls back to the partition's greedy
//     locate, preserving its exact semantics (including the inclusive
//     cover tolerance on plane borders).
//   * intersecting(rect)   — the range-query region set (intersection or
//     edge adjacency, matching region/record edge semantics), found by
//     probing only the grid cells the rect covers instead of scanning all
//     R regions.  Returned sorted by region id: canonical merge order.
//   * each_by_distance(p)  — k-nearest region discovery: expanding
//     Chebyshev rings of grid cells around p, each ring's new regions
//     handed to the visitor sorted by (rect distance, id).  The visitor
//     returns false to stop; unvisited regions are guaranteed to lie at
//     least `ring_floor` away, which is the pruning bound exact kNN needs.
//
// The resolver is a cache, not an authority: refresh() must be called by
// the owning engine between batches (it is cheap — one integer compare —
// when the geometry did not change).  All query methods are const and
// touch only frozen state, so one refreshed resolver may serve any number
// of concurrent reader threads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "overlay/partition.h"

namespace geogrid::overlay {

/// Geometry of a uniform grid laid over a plane rectangle: dimension plus
/// per-axis cell pitch, with clamped point -> cell mapping.  Shared by the
/// region grid below and pubsub::SubscriptionIndex, so every plane-wide
/// spatial index buckets coordinates identically (same clamping, same
/// row-major cell keys).
struct UniformGridSpec {
  std::size_t dim = 1;
  Rect plane{};
  double cell_w = 0.0;
  double cell_h = 0.0;

  static UniformGridSpec over(const Rect& plane, std::size_t dim) {
    UniformGridSpec s;
    s.dim = dim < 1 ? 1 : dim;
    s.plane = plane;
    s.cell_w = plane.width / static_cast<double>(s.dim);
    s.cell_h = plane.height / static_cast<double>(s.dim);
    return s;
  }

  /// Clamped cell coordinate along one axis (out-of-plane points land in
  /// the border cells, so every point maps to a valid cell).
  std::size_t clamp_cell(double v, double origin,
                         double pitch) const noexcept {
    if (pitch <= 0.0) return 0;
    const double cell = std::floor((v - origin) / pitch);
    if (cell < 0.0) return 0;
    const auto c = static_cast<std::size_t>(cell);
    return c >= dim ? dim - 1 : c;
  }
  std::size_t cell_x(double x) const noexcept {
    return clamp_cell(x, plane.x, cell_w);
  }
  std::size_t cell_y(double y) const noexcept {
    return clamp_cell(y, plane.y, cell_h);
  }
  std::size_t index(std::size_t cx, std::size_t cy) const noexcept {
    return cy * dim + cx;
  }
  std::size_t cell_count() const noexcept { return dim * dim; }
};

class RegionResolver {
 public:
  explicit RegionResolver(const Partition& partition);

  /// Rebuilds the rect memo and region grid iff the partition geometry
  /// changed since the last refresh.  Not thread-safe against the const
  /// query methods below — call it from the batch dispatcher only.
  void refresh();

  /// The memoized rect of `region`, or null when the region is unknown to
  /// the current geometry (retired since the last refresh).
  const Rect* rect(RegionId region) const { return rects_.find(region); }

  /// The region covering `p`, resolved through the `hint` fast path: when
  /// the hinted region's rect still covers p the partition is never
  /// touched and *fast is set.  Falls back to Partition::locate (greedy
  /// descent from the hint) so the answer is exactly the partition's.
  RegionId resolve(const Point& p, RegionId hint, bool* fast) const;

  /// All regions whose rect intersects `rect` or is edge-adjacent to it
  /// (the record-on-the-boundary case), sorted by region id.  Appends to
  /// `out` (cleared first); grid-accelerated.
  void intersecting(const Rect& rect, std::vector<RegionId>& out) const;

  /// Region-distance candidate: orders by (rect distance, id).
  struct Candidate {
    double dist;
    RegionId region;
    bool operator<(const Candidate& o) const {
      return dist != o.dist ? dist < o.dist : region < o.region;
    }
  };

  /// Reusable working state for each_by_distance.  One scratch per reader
  /// thread amortizes the dedup map and ring buffer across a whole batch
  /// instead of reallocating them per query.
  struct NearScratch {
    common::FlatMap<RegionId, bool> seen;
    std::vector<Candidate> ring;
  };

  /// Visits regions in expanding grid rings around `p`.  Each visited
  /// region comes with its exact rect distance to p; within a ring,
  /// regions arrive sorted by (distance, id).  `ring_floor` is a lower
  /// bound on the distance of every region not yet visited — and of every
  /// region in the ring about to be enumerated.  `proceed(ring_floor)` is
  /// asked before each ring is enumerated: returning false stops the sweep
  /// before any of the ring's dedup/distance/sort work is spent.  The
  /// visitor may additionally return false to stop mid-ring.  Visits every
  /// region when never stopped.
  template <typename Proceed, typename Visitor>
  void each_by_distance(const Point& p, NearScratch& scratch,
                        Proceed&& proceed, Visitor&& visit) const;

  std::size_t region_count() const noexcept { return rects_.size(); }
  std::uint64_t cached_geometry_version() const noexcept { return version_; }

 private:
  void rebuild();

  const Partition& partition_;
  std::uint64_t version_ = ~std::uint64_t{0};
  common::FlatMap<RegionId, Rect> rects_;

  // Uniform grid over the plane bucketing region ids by rect overlap.
  // Dimension tracks sqrt(R) so a typical region covers O(1) cells and a
  // typical cell holds O(1) regions regardless of partition size.
  UniformGridSpec spec_ = UniformGridSpec::over(Rect{}, 1);
  std::vector<std::vector<RegionId>> grid_;
};

template <typename Proceed, typename Visitor>
void RegionResolver::each_by_distance(const Point& p, NearScratch& scratch,
                                      Proceed&& proceed,
                                      Visitor&& visit) const {
  if (rects_.empty()) return;
  const std::size_t pcx = spec_.cell_x(p.x);
  const std::size_t pcy = spec_.cell_y(p.y);
  const double min_pitch = spec_.cell_w < spec_.cell_h ? spec_.cell_w : spec_.cell_h;

  // A region first seen in ring r overlaps no cell of any smaller ring, so
  // its rect — and every still-unseen rect — lies at least (r-1) cell
  // pitches from p (p sits somewhere inside its own cell, hence the -1).
  common::FlatMap<RegionId, bool>& seen = scratch.seen;
  std::vector<Candidate>& ring_regions = scratch.ring;
  seen.clear();
  const std::size_t max_ring = spec_.dim;
  for (std::size_t ring = 0; ring <= max_ring; ++ring) {
    const double ring_floor =
        ring == 0 ? 0.0 : (static_cast<double>(ring) - 1.0) * min_pitch;
    if (!proceed(ring_floor)) return;
    ring_regions.clear();
    for (std::size_t cx = pcx >= ring ? pcx - ring : 0;
         cx <= pcx + ring && cx < spec_.dim; ++cx) {
      for (std::size_t cy = pcy >= ring ? pcy - ring : 0;
           cy <= pcy + ring && cy < spec_.dim; ++cy) {
        const std::size_t dx = cx > pcx ? cx - pcx : pcx - cx;
        const std::size_t dy = cy > pcy ? cy - pcy : pcy - cy;
        if ((dx > dy ? dx : dy) != ring) continue;  // interior: prior rings
        for (const RegionId id : grid_[spec_.index(cx, cy)]) {
          if (!seen.try_emplace(id, true).second) continue;
          ring_regions.push_back(Candidate{rects_.find(id)->distance_to(p), id});
        }
      }
    }
    std::sort(ring_regions.begin(), ring_regions.end());
    for (const Candidate& c : ring_regions) {
      if (!visit(c.region, c.dist, ring_floor)) return;
    }
    if (seen.size() == rects_.size()) return;  // every region visited
  }
}

}  // namespace geogrid::overlay
