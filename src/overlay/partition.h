// Authoritative bookkeeping of the GeoGrid space partition.
//
// Partition maintains the set of regions (an exact tiling of the plane),
// the edge-adjacency graph between them, the node table, and the
// node-to-region ownership indexes.  It provides the *mechanics* every
// GeoGrid variant composes — split, merge, and the owner-seat moves the
// eight load-balance adaptations perform — while the *policies* (where a
// joiner goes, which adaptation fires) live in the overlay/dualpeer/
// loadbalance libraries.
//
// Partition is the engine-mode substrate for the paper's large sweeps and
// the reference model that protocol-mode integration tests validate
// against.  validate() checks the full invariant set and is the workhorse
// of the property-test suites.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "net/node_info.h"
#include "overlay/region.h"

namespace geogrid::overlay {

class Partition {
 public:
  explicit Partition(Rect plane) : plane_(plane) {}

  const Rect& plane() const noexcept { return plane_; }

  // --- Node table --------------------------------------------------------

  /// Registers a node (id must be fresh).  Returns its id for convenience.
  NodeId add_node(const net::NodeInfo& info);

  /// Removes a node from the table.  Precondition: it owns no seat.
  void remove_node(NodeId id);

  bool has_node(NodeId id) const { return nodes_.contains(id); }
  const net::NodeInfo& node(NodeId id) const;
  std::size_t node_count() const noexcept { return nodes_.size(); }
  const std::unordered_map<NodeId, net::NodeInfo>& nodes() const {
    return nodes_;
  }

  /// Fresh node id (engine-mode convenience; protocol mode gets ids from
  /// the harness).
  NodeId allocate_node_id() { return NodeId{next_node_id_++}; }

  // --- Region access -----------------------------------------------------

  bool has_region(RegionId id) const { return regions_.contains(id); }
  const Region& region(RegionId id) const;
  std::size_t region_count() const noexcept { return regions_.size(); }
  const std::unordered_map<RegionId, Region>& regions() const {
    return regions_;
  }

  /// Edge-adjacent regions of `id`.
  const std::vector<RegionId>& neighbors(RegionId id) const;

  /// Regions owned by a node.
  const std::vector<RegionId>& primary_regions(NodeId id) const;
  const std::vector<RegionId>& secondary_regions(NodeId id) const;

  /// Total nodes holding at least one seat.
  bool node_has_seat(NodeId id) const {
    return !primary_regions(id).empty() || !secondary_regions(id).empty();
  }

  /// The region covering a point, found by greedy geographic descent from
  /// `hint` (or an arbitrary region).  Returns kInvalidRegion when the
  /// partition is empty.
  RegionId locate(const Point& p, RegionId hint = kInvalidRegion) const;

  /// Monotonic counter bumped on every geometry change (root creation,
  /// split, merge, retirement).  Owner-seat moves do NOT bump it: they
  /// reassign seats without touching any rect.  Lets callers cache
  /// region-id -> rect mappings (e.g. the sharded ingest engine's per-user
  /// region memo) and invalidate them exactly when a rect may have moved.
  std::uint64_t geometry_version() const noexcept { return geometry_version_; }

  // --- Mechanics ---------------------------------------------------------

  /// Creates the root region spanning the whole plane, owned by `primary`
  /// (the founding node).  Precondition: the partition is empty.
  RegionId create_root(NodeId primary);

  /// Splits `id` in half along the axis given by its split depth.  The old
  /// region keeps its id, rect shrunk to the half covering its primary
  /// owner's coordinate (falling back to the low half); the other half
  /// becomes a new region owned by `other_primary`.  Secondary owners stay
  /// with the old region.  Returns the new region's id.
  RegionId split(RegionId id, NodeId other_primary);

  /// Splits `id` giving the *low* or *high* half to the new region
  /// explicitly (used by load-balance mechanism (d), where the secondary —
  /// not a joiner — takes one half).
  RegionId split_explicit(RegionId id, NodeId other_primary, bool give_high);

  /// Removes the final region when the last node leaves the grid.
  /// Precondition: it is the only region.
  void retire_last_region(RegionId id);

  /// Merges region `from` into adjacent region `into` (rects must be
  /// mergeable).  `from`'s id is retired; its owners lose their seats.
  /// Owners of `from` that end with no seat remain in the node table — the
  /// caller decides whether they re-join elsewhere.
  void merge(RegionId into, RegionId from);

  // Owner-seat moves (the primitives behind the adaptation mechanisms).
  void set_primary(RegionId id, NodeId node);
  void set_secondary(RegionId id, NodeId node);
  void clear_secondary(RegionId id);
  /// Swaps the primary and secondary seats of one region.
  void swap_roles(RegionId id);
  /// Swaps the primary owners of two regions (mechanisms b, h).
  void swap_primaries(RegionId a, RegionId b);
  /// Moves primary of `a` into the secondary seat of `b` and vice versa
  /// (mechanisms e, g).
  void swap_primary_with_secondary(RegionId a, RegionId b);

  // --- Invariants --------------------------------------------------------

  /// Full invariant check; returns human-readable violations (empty = OK).
  /// O(R^2) on region pairs — intended for tests and small partitions.
  std::vector<std::string> validate() const;

  /// Cheap structural check for large partitions: area conservation,
  /// adjacency symmetry, ownership index consistency.
  std::vector<std::string> validate_fast() const;

 private:
  RegionId allocate_region_id() { return RegionId{next_region_id_++}; }

  void link_neighbors(RegionId a, RegionId b);
  void unlink_neighbors(RegionId a, RegionId b);
  /// Rebuilds adjacency of `id` against a candidate set.
  void relink_region(RegionId id, const std::vector<RegionId>& candidates);

  void index_add(std::unordered_map<NodeId, std::vector<RegionId>>& index,
                 NodeId node, RegionId region);
  void index_remove(std::unordered_map<NodeId, std::vector<RegionId>>& index,
                    NodeId node, RegionId region);

  Rect plane_;
  std::unordered_map<NodeId, net::NodeInfo> nodes_;
  std::unordered_map<RegionId, Region> regions_;
  std::unordered_map<RegionId, std::vector<RegionId>> adjacency_;
  std::unordered_map<NodeId, std::vector<RegionId>> primary_index_;
  std::unordered_map<NodeId, std::vector<RegionId>> secondary_index_;
  std::uint32_t next_region_id_ = 0;
  std::uint32_t next_node_id_ = 0;
  std::uint64_t geometry_version_ = 0;
};

}  // namespace geogrid::overlay
