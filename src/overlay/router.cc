#include "overlay/router.h"

#include <algorithm>
#include <unordered_set>

#include "overlay/partition.h"

namespace geogrid::overlay {

RouteResult route_greedy(const Partition& partition, RegionId from,
                         const Point& target) {
  RouteResult result;
  if (!partition.has_region(from)) return result;

  // Greedy descent with backtracking: each forwarding step goes to the
  // best unvisited neighbor; a dead end (all neighbors visited) returns the
  // request to the previous hop, which costs a hop like any other
  // forwarding step.  Visits are never repeated, so the walk terminates.
  std::unordered_set<RegionId> visited;
  std::vector<RegionId> stack{from};
  visited.insert(from);
  result.path.push_back(from);

  while (!stack.empty()) {
    const RegionId current = stack.back();
    const Region& r = partition.region(current);
    if (r.rect.covers(target) || r.rect.covers_inclusive(target)) {
      result.reached = true;
      result.executor = current;
      return result;
    }
    std::vector<HopCandidate> candidates;
    const auto& links = partition.neighbors(current);
    candidates.reserve(links.size());
    for (RegionId n : links) {
      candidates.push_back(HopCandidate{n, partition.region(n).rect});
    }
    const auto next = greedy_next(
        candidates, target,
        [&visited](RegionId id) { return visited.contains(id); });
    if (next) {
      visited.insert(*next);
      stack.push_back(*next);
      result.path.push_back(*next);
      ++result.hops;
    } else {
      stack.pop_back();  // backtrack to the previous hop
      if (!stack.empty()) {
        result.path.push_back(stack.back());
        ++result.hops;
      }
    }
  }
  return result;
}

std::vector<RegionId> overlapping_neighbors(const Partition& partition,
                                            RegionId executor,
                                            const Rect& query_area) {
  std::vector<RegionId> out;
  for (RegionId n : partition.neighbors(executor)) {
    if (partition.region(n).rect.intersects(query_area)) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace geogrid::overlay
