#include "overlay/snapshot.h"

namespace geogrid::overlay {

net::RegionSnapshot make_snapshot(const Partition& partition, RegionId id,
                                  const LoadFn& load_of) {
  const Region& r = partition.region(id);
  net::RegionSnapshot s;
  s.region = r.id;
  s.rect = r.rect;
  s.primary = partition.node(r.primary);
  if (r.secondary) s.secondary = partition.node(*r.secondary);
  s.load = load_of ? load_of(id) : 0.0;
  const double capacity = s.primary.capacity;
  s.workload_index = capacity > 0.0 ? s.load / capacity : s.load;
  s.split_depth = r.split_depth;
  return s;
}

std::vector<net::RegionSnapshot> neighbor_snapshots(const Partition& partition,
                                                    RegionId id,
                                                    const LoadFn& load_of) {
  std::vector<net::RegionSnapshot> out;
  const auto& links = partition.neighbors(id);
  out.reserve(links.size());
  for (RegionId n : links) out.push_back(make_snapshot(partition, n, load_of));
  return out;
}

}  // namespace geogrid::overlay
