#include "overlay/region_resolver.h"

#include <algorithm>
#include <cmath>

namespace geogrid::overlay {

RegionResolver::RegionResolver(const Partition& partition)
    : partition_(partition) {}

void RegionResolver::refresh() {
  if (partition_.geometry_version() == version_) return;
  rebuild();
  version_ = partition_.geometry_version();
}

void RegionResolver::rebuild() {
  const std::size_t count = partition_.region_count();
  rects_.clear();
  rects_.reserve(count);

  // sqrt(R) cells per axis: a region averages O(1) covered cells and a
  // cell averages O(1) resident regions at every partition size.
  std::size_t dim = 1;
  while (dim * dim < count) ++dim;
  spec_ = UniformGridSpec::over(partition_.plane(), dim);
  grid_.assign(spec_.cell_count(), {});

  for (const auto& [id, region] : partition_.regions()) {
    rects_[id] = region.rect;
    const Rect& r = region.rect;
    const std::size_t x0 = spec_.cell_x(r.x);
    const std::size_t x1 = spec_.cell_x(r.right());
    const std::size_t y0 = spec_.cell_y(r.y);
    const std::size_t y1 = spec_.cell_y(r.top());
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      for (std::size_t cy = y0; cy <= y1; ++cy) {
        grid_[spec_.index(cx, cy)].push_back(id);
      }
    }
  }
  // Canonical bucket order: cell membership above followed the partition's
  // unordered region iteration, which is not part of any contract.
  for (auto& bucket : grid_) std::sort(bucket.begin(), bucket.end());
}

RegionId RegionResolver::resolve(const Point& p, RegionId hint,
                                 bool* fast) const {
  if (hint.valid()) {
    if (const Rect* r = rects_.find(hint)) {
      if (r->covers(p) || r->covers_inclusive(p)) {
        // Same answer Partition::locate(p, hint) would give — greedy
        // descent stops immediately when the start region covers the
        // target — minus the partition's hash-map traffic.
        *fast = true;
        return hint;
      }
      return partition_.locate(p, hint);
    }
    // Region retired since the last refresh: cold locate.
  }
  return partition_.locate(p);
}

void RegionResolver::intersecting(const Rect& rect,
                                  std::vector<RegionId>& out) const {
  out.clear();
  if (rects_.empty()) return;
  // One-cell margin each way so regions merely edge-adjacent to `rect`
  // (whose area may lie wholly in the next cell when the rect edge sits on
  // a cell boundary) still enter the candidate set; the exact test below
  // keeps the result identical to a full region scan.
  const std::size_t x0r = spec_.cell_x(rect.x);
  const std::size_t y0r = spec_.cell_y(rect.y);
  const std::size_t x0 = x0r > 0 ? x0r - 1 : 0;
  const std::size_t x1 = spec_.cell_x(rect.right()) + 1;
  const std::size_t y0 = y0r > 0 ? y0r - 1 : 0;
  const std::size_t y1 = spec_.cell_y(rect.top()) + 1;
  for (std::size_t cx = x0; cx <= x1 && cx < spec_.dim; ++cx) {
    for (std::size_t cy = y0; cy <= y1 && cy < spec_.dim; ++cy) {
      for (const RegionId id : grid_[spec_.index(cx, cy)]) {
        const Rect& r = *rects_.find(id);
        if (r.intersects(rect) || r.edge_adjacent(rect)) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace geogrid::overlay
