#include "overlay/region_resolver.h"

#include <algorithm>
#include <cmath>

namespace geogrid::overlay {

RegionResolver::RegionResolver(const Partition& partition)
    : partition_(partition) {}

std::size_t RegionResolver::clamp_cell(double v, double origin,
                                       double pitch) const noexcept {
  if (pitch <= 0.0) return 0;
  const double cell = std::floor((v - origin) / pitch);
  if (cell < 0.0) return 0;
  const auto c = static_cast<std::size_t>(cell);
  return c >= grid_dim_ ? grid_dim_ - 1 : c;
}

void RegionResolver::refresh() {
  if (partition_.geometry_version() == version_) return;
  rebuild();
  version_ = partition_.geometry_version();
}

void RegionResolver::rebuild() {
  const std::size_t count = partition_.region_count();
  rects_.clear();
  rects_.reserve(count);

  // sqrt(R) cells per axis: a region averages O(1) covered cells and a
  // cell averages O(1) resident regions at every partition size.
  grid_dim_ = 1;
  while (grid_dim_ * grid_dim_ < count) ++grid_dim_;
  const Rect& plane = partition_.plane();
  cell_w_ = plane.width / static_cast<double>(grid_dim_);
  cell_h_ = plane.height / static_cast<double>(grid_dim_);
  grid_.assign(grid_dim_ * grid_dim_, {});

  for (const auto& [id, region] : partition_.regions()) {
    rects_[id] = region.rect;
    const Rect& r = region.rect;
    const std::size_t x0 = clamp_cell(r.x, plane.x, cell_w_);
    const std::size_t x1 = clamp_cell(r.right(), plane.x, cell_w_);
    const std::size_t y0 = clamp_cell(r.y, plane.y, cell_h_);
    const std::size_t y1 = clamp_cell(r.top(), plane.y, cell_h_);
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      for (std::size_t cy = y0; cy <= y1; ++cy) {
        grid_[cell_index(cx, cy)].push_back(id);
      }
    }
  }
  // Canonical bucket order: cell membership above followed the partition's
  // unordered region iteration, which is not part of any contract.
  for (auto& bucket : grid_) std::sort(bucket.begin(), bucket.end());
}

RegionId RegionResolver::resolve(const Point& p, RegionId hint,
                                 bool* fast) const {
  if (hint.valid()) {
    if (const Rect* r = rects_.find(hint)) {
      if (r->covers(p) || r->covers_inclusive(p)) {
        // Same answer Partition::locate(p, hint) would give — greedy
        // descent stops immediately when the start region covers the
        // target — minus the partition's hash-map traffic.
        *fast = true;
        return hint;
      }
      return partition_.locate(p, hint);
    }
    // Region retired since the last refresh: cold locate.
  }
  return partition_.locate(p);
}

void RegionResolver::intersecting(const Rect& rect,
                                  std::vector<RegionId>& out) const {
  out.clear();
  if (rects_.empty()) return;
  const Rect& plane = partition_.plane();
  // One-cell margin each way so regions merely edge-adjacent to `rect`
  // (whose area may lie wholly in the next cell when the rect edge sits on
  // a cell boundary) still enter the candidate set; the exact test below
  // keeps the result identical to a full region scan.
  const std::size_t x0r = clamp_cell(rect.x, plane.x, cell_w_);
  const std::size_t y0r = clamp_cell(rect.y, plane.y, cell_h_);
  const std::size_t x0 = x0r > 0 ? x0r - 1 : 0;
  const std::size_t x1 = clamp_cell(rect.right(), plane.x, cell_w_) + 1;
  const std::size_t y0 = y0r > 0 ? y0r - 1 : 0;
  const std::size_t y1 = clamp_cell(rect.top(), plane.y, cell_h_) + 1;
  for (std::size_t cx = x0; cx <= x1 && cx < grid_dim_; ++cx) {
    for (std::size_t cy = y0; cy <= y1 && cy < grid_dim_; ++cy) {
      for (const RegionId id : grid_[cell_index(cx, cy)]) {
        const Rect& r = *rects_.find(id);
        if (r.intersects(rect) || r.edge_adjacent(rect)) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace geogrid::overlay
