#include "overlay/partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "overlay/router.h"

namespace geogrid::overlay {

namespace {

const std::vector<RegionId> kNoRegions;

}  // namespace

// --- Node table ------------------------------------------------------------

NodeId Partition::add_node(const net::NodeInfo& info) {
  assert(info.id.valid());
  assert(!nodes_.contains(info.id));
  nodes_[info.id] = info;
  next_node_id_ = std::max(next_node_id_, info.id.value + 1);
  return info.id;
}

void Partition::remove_node(NodeId id) {
  assert(!node_has_seat(id));
  nodes_.erase(id);
  primary_index_.erase(id);
  secondary_index_.erase(id);
}

const net::NodeInfo& Partition::node(NodeId id) const {
  auto it = nodes_.find(id);
  assert(it != nodes_.end());
  return it->second;
}

// --- Region access -----------------------------------------------------------

const Region& Partition::region(RegionId id) const {
  auto it = regions_.find(id);
  assert(it != regions_.end());
  return it->second;
}

const std::vector<RegionId>& Partition::neighbors(RegionId id) const {
  auto it = adjacency_.find(id);
  return it == adjacency_.end() ? kNoRegions : it->second;
}

const std::vector<RegionId>& Partition::primary_regions(NodeId id) const {
  auto it = primary_index_.find(id);
  return it == primary_index_.end() ? kNoRegions : it->second;
}

const std::vector<RegionId>& Partition::secondary_regions(NodeId id) const {
  auto it = secondary_index_.find(id);
  return it == secondary_index_.end() ? kNoRegions : it->second;
}

RegionId Partition::locate(const Point& p, RegionId hint) const {
  if (regions_.empty()) return kInvalidRegion;
  RegionId current = hint.valid() && regions_.contains(hint)
                         ? hint
                         : regions_.begin()->first;
  const RouteResult r = route_greedy(*this, current, p);
  return r.reached ? r.executor : kInvalidRegion;
}

// --- Mechanics ---------------------------------------------------------------

RegionId Partition::create_root(NodeId primary) {
  assert(regions_.empty());
  assert(nodes_.contains(primary));
  const RegionId id = allocate_region_id();
  regions_[id] = Region{id, plane_, 0, primary, std::nullopt};
  adjacency_[id] = {};
  index_add(primary_index_, primary, id);
  ++geometry_version_;
  return id;
}

RegionId Partition::split(RegionId id, NodeId other_primary) {
  const Region& r = region(id);
  const Point owner_coord = node(r.primary).coord;
  const auto axis = split_axis_for_depth(r.split_depth);
  const auto [low, high] = r.rect.split(axis);
  // The old primary keeps the half covering its own coordinate so the
  // geographic node-to-region mapping survives the split.
  const bool owner_keeps_low = low.covers(owner_coord) ||
                               low.covers_inclusive(owner_coord);
  return split_explicit(id, other_primary, /*give_high=*/owner_keeps_low);
}

RegionId Partition::split_explicit(RegionId id, NodeId other_primary,
                                   bool give_high) {
  assert(nodes_.contains(other_primary));
  auto it = regions_.find(id);
  assert(it != regions_.end());
  Region& old_region = it->second;
  const auto axis = split_axis_for_depth(old_region.split_depth);
  const auto [low, high] = old_region.rect.split(axis);

  const RegionId new_id = allocate_region_id();
  Region fresh;
  fresh.id = new_id;
  fresh.rect = give_high ? high : low;
  fresh.split_depth = old_region.split_depth + 1;
  fresh.primary = other_primary;

  old_region.rect = give_high ? low : high;
  old_region.split_depth += 1;

  regions_[new_id] = fresh;
  index_add(primary_index_, other_primary, new_id);

  // Adjacency: both halves keep a subset of the old neighbors, plus each
  // other.  Relink against the old neighbor set.
  std::vector<RegionId> candidates = adjacency_[id];
  adjacency_[new_id] = {};
  relink_region(id, candidates);
  candidates.push_back(id);
  relink_region(new_id, candidates);
  ++geometry_version_;
  return new_id;
}

void Partition::retire_last_region(RegionId id) {
  assert(regions_.size() == 1 && regions_.contains(id));
  const Region& r = region(id);
  index_remove(primary_index_, r.primary, id);
  if (r.secondary) index_remove(secondary_index_, *r.secondary, id);
  adjacency_.erase(id);
  regions_.erase(id);
  ++geometry_version_;
}

void Partition::merge(RegionId into, RegionId from) {
  auto into_it = regions_.find(into);
  auto from_it = regions_.find(from);
  assert(into_it != regions_.end() && from_it != regions_.end());
  Region& dst = into_it->second;
  Region& src = from_it->second;
  assert(dst.rect.mergeable(src.rect));

  // Release src's seats.
  index_remove(primary_index_, src.primary, from);
  if (src.secondary) index_remove(secondary_index_, *src.secondary, from);

  // Union rect; depth becomes the shallower of the two minus nothing —
  // we keep max(depth)-1 so future splits alternate sensibly.
  dst.rect = dst.rect.merged(src.rect);
  dst.split_depth = std::max(0, std::max(dst.split_depth, src.split_depth) - 1);

  // Adjacency: dst inherits src's neighbors (minus each other), dedup.
  std::vector<RegionId> candidates = adjacency_[from];
  for (RegionId n : adjacency_[into]) candidates.push_back(n);
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](RegionId n) {
                                    return n == into || n == from;
                                  }),
                   candidates.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Drop src from the graph (copy the list: unlink mutates it).
  const std::vector<RegionId> src_links = adjacency_[from];
  for (RegionId n : src_links) unlink_neighbors(from, n);
  adjacency_.erase(from);
  regions_.erase(from);

  relink_region(into, candidates);
  ++geometry_version_;
}

void Partition::set_primary(RegionId id, NodeId node_id) {
  assert(nodes_.contains(node_id));
  auto it = regions_.find(id);
  assert(it != regions_.end());
  Region& r = it->second;
  if (r.primary.valid()) index_remove(primary_index_, r.primary, id);
  r.primary = node_id;
  index_add(primary_index_, node_id, id);
}

void Partition::set_secondary(RegionId id, NodeId node_id) {
  assert(nodes_.contains(node_id));
  auto it = regions_.find(id);
  assert(it != regions_.end());
  Region& r = it->second;
  assert(!r.secondary.has_value());
  r.secondary = node_id;
  index_add(secondary_index_, node_id, id);
}

void Partition::clear_secondary(RegionId id) {
  auto it = regions_.find(id);
  assert(it != regions_.end());
  Region& r = it->second;
  if (!r.secondary) return;
  index_remove(secondary_index_, *r.secondary, id);
  r.secondary.reset();
}

void Partition::swap_roles(RegionId id) {
  auto it = regions_.find(id);
  assert(it != regions_.end());
  Region& r = it->second;
  assert(r.secondary.has_value());
  const NodeId old_primary = r.primary;
  const NodeId old_secondary = *r.secondary;
  index_remove(primary_index_, old_primary, id);
  index_remove(secondary_index_, old_secondary, id);
  r.primary = old_secondary;
  r.secondary = old_primary;
  index_add(primary_index_, old_secondary, id);
  index_add(secondary_index_, old_primary, id);
}

void Partition::swap_primaries(RegionId a, RegionId b) {
  assert(a != b);
  auto ia = regions_.find(a);
  auto ib = regions_.find(b);
  assert(ia != regions_.end() && ib != regions_.end());
  const NodeId pa = ia->second.primary;
  const NodeId pb = ib->second.primary;
  index_remove(primary_index_, pa, a);
  index_remove(primary_index_, pb, b);
  ia->second.primary = pb;
  ib->second.primary = pa;
  index_add(primary_index_, pb, a);
  index_add(primary_index_, pa, b);
}

void Partition::swap_primary_with_secondary(RegionId a, RegionId b) {
  assert(a != b);
  auto ia = regions_.find(a);
  auto ib = regions_.find(b);
  assert(ia != regions_.end() && ib != regions_.end());
  assert(ib->second.secondary.has_value());
  const NodeId pa = ia->second.primary;
  const NodeId sb = *ib->second.secondary;
  index_remove(primary_index_, pa, a);
  index_remove(secondary_index_, sb, b);
  ia->second.primary = sb;
  ib->second.secondary = pa;
  index_add(primary_index_, sb, a);
  index_add(secondary_index_, pa, b);
}

// --- Adjacency helpers -------------------------------------------------------

void Partition::link_neighbors(RegionId a, RegionId b) {
  auto& va = adjacency_[a];
  if (std::find(va.begin(), va.end(), b) == va.end()) va.push_back(b);
  auto& vb = adjacency_[b];
  if (std::find(vb.begin(), vb.end(), a) == vb.end()) vb.push_back(a);
}

void Partition::unlink_neighbors(RegionId a, RegionId b) {
  if (auto it = adjacency_.find(a); it != adjacency_.end()) {
    std::erase(it->second, b);
  }
  if (auto it = adjacency_.find(b); it != adjacency_.end()) {
    std::erase(it->second, a);
  }
}

void Partition::relink_region(RegionId id,
                              const std::vector<RegionId>& candidates) {
  const Rect rect = region(id).rect;
  // Remove stale links.
  const std::vector<RegionId> old_links = adjacency_[id];
  for (RegionId n : old_links) {
    if (!regions_.contains(n) || !rect.edge_adjacent(region(n).rect)) {
      unlink_neighbors(id, n);
    }
  }
  // Add new links from the candidate set.
  for (RegionId n : candidates) {
    if (n == id || !regions_.contains(n)) continue;
    if (rect.edge_adjacent(region(n).rect)) link_neighbors(id, n);
  }
}

void Partition::index_add(
    std::unordered_map<NodeId, std::vector<RegionId>>& index, NodeId node_id,
    RegionId region_id) {
  index[node_id].push_back(region_id);
}

void Partition::index_remove(
    std::unordered_map<NodeId, std::vector<RegionId>>& index, NodeId node_id,
    RegionId region_id) {
  auto it = index.find(node_id);
  assert(it != index.end());
  [[maybe_unused]] const auto erased = std::erase(it->second, region_id);
  assert(erased == 1);
}

// --- Invariants ---------------------------------------------------------------

std::vector<std::string> Partition::validate() const {
  std::vector<std::string> errors = validate_fast();

  // Pairwise disjointness and adjacency completeness (O(R^2)).
  std::vector<const Region*> all;
  all.reserve(regions_.size());
  for (const auto& [id, r] : regions_) all.push_back(&r);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const Region& a = *all[i];
      const Region& b = *all[j];
      if (a.rect.intersects(b.rect)) {
        std::ostringstream os;
        os << "regions overlap: " << a.id << a.rect << " vs " << b.id << b.rect;
        errors.push_back(os.str());
      }
      const bool adjacent = a.rect.edge_adjacent(b.rect);
      const auto& na = neighbors(a.id);
      const bool linked = std::find(na.begin(), na.end(), b.id) != na.end();
      if (adjacent != linked) {
        std::ostringstream os;
        os << "adjacency mismatch between " << a.id << " and " << b.id
           << ": geometric=" << adjacent << " linked=" << linked;
        errors.push_back(os.str());
      }
    }
  }
  return errors;
}

std::vector<std::string> Partition::validate_fast() const {
  std::vector<std::string> errors;

  // Area conservation.
  double total = 0.0;
  for (const auto& [id, r] : regions_) {
    total += r.rect.area();
    if (r.rect.width <= 0.0 || r.rect.height <= 0.0) {
      errors.push_back("degenerate region " + r.rect.to_string());
    }
    if (!r.primary.valid()) {
      std::ostringstream os;
      os << "region " << id << " has no primary";
      errors.push_back(os.str());
    } else if (!nodes_.contains(r.primary)) {
      std::ostringstream os;
      os << "region " << id << " primary " << r.primary << " unknown";
      errors.push_back(os.str());
    }
    if (r.secondary) {
      if (!nodes_.contains(*r.secondary)) {
        std::ostringstream os;
        os << "region " << id << " secondary " << *r.secondary << " unknown";
        errors.push_back(os.str());
      }
      if (*r.secondary == r.primary) {
        std::ostringstream os;
        os << "region " << id << " primary == secondary";
        errors.push_back(os.str());
      }
    }
  }
  if (!regions_.empty() &&
      std::abs(total - plane_.area()) > plane_.area() * 1e-9) {
    std::ostringstream os;
    os << "area not conserved: regions sum to " << total << " but plane is "
       << plane_.area();
    errors.push_back(os.str());
  }

  // Adjacency symmetry + geometric truth of recorded links.
  for (const auto& [id, links] : adjacency_) {
    if (!regions_.contains(id)) {
      std::ostringstream os;
      os << "adjacency entry for retired region " << id;
      errors.push_back(os.str());
      continue;
    }
    for (RegionId n : links) {
      if (!regions_.contains(n)) {
        std::ostringstream os;
        os << "region " << id << " linked to retired region " << n;
        errors.push_back(os.str());
        continue;
      }
      const auto& back = neighbors(n);
      if (std::find(back.begin(), back.end(), id) == back.end()) {
        std::ostringstream os;
        os << "asymmetric adjacency " << id << " -> " << n;
        errors.push_back(os.str());
      }
      if (!region(id).rect.edge_adjacent(region(n).rect)) {
        std::ostringstream os;
        os << "false adjacency " << id << " -> " << n;
        errors.push_back(os.str());
      }
    }
  }

  // Ownership indexes match region records.
  for (const auto& [node_id, list] : primary_index_) {
    for (RegionId rid : list) {
      if (!regions_.contains(rid) || region(rid).primary != node_id) {
        std::ostringstream os;
        os << "primary index stale: " << node_id << " -> " << rid;
        errors.push_back(os.str());
      }
    }
  }
  for (const auto& [node_id, list] : secondary_index_) {
    for (RegionId rid : list) {
      if (!regions_.contains(rid) || !region(rid).secondary ||
          *region(rid).secondary != node_id) {
        std::ostringstream os;
        os << "secondary index stale: " << node_id << " -> " << rid;
        errors.push_back(os.str());
      }
    }
  }
  return errors;
}

}  // namespace geogrid::overlay
