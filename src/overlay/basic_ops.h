// Basic GeoGrid membership operations (engine mode).
//
// The basic system of §2.1-2.2: a joining node routes to the region
// covering its coordinate and splits it in half; a departing or failed node
// leaves its region to be repaired by the overlay.  The paper does not spell
// out the basic repair procedure ("the repairing process of the basic
// GeoGrid network will be triggered"); we use the CAN-style rule it builds
// on: merge the orphaned region into an adjacent region when the union is a
// rectangle, otherwise the neighbor's owner with the smallest total area
// takes it over as caretaker (owning two rectangles until a later merge
// restores one-region-per-node).
#pragma once

#include "common/ids.h"
#include "net/node_info.h"
#include "overlay/partition.h"
#include "overlay/router.h"

namespace geogrid::overlay {

/// Outcome of a join.
struct JoinResult {
  RegionId region = kInvalidRegion;  ///< region the joiner ended up owning
  std::uint32_t routing_hops = 0;    ///< hops the join request traveled
};

/// Basic join: adds `joiner` to the node table, routes from `entry_region`
/// to the region covering the joiner's coordinate, splits it, and assigns
/// the joiner the half not kept by the incumbent.  With an empty partition
/// the joiner founds the root region.
JoinResult basic_join(Partition& partition, const net::NodeInfo& joiner,
                      RegionId entry_region = kInvalidRegion);

/// CAN-style baseline join (for comparison benches): instead of mapping the
/// joiner to the region covering its *own* coordinate — GeoGrid's
/// geographic mapping — the joiner splits the region covering a uniformly
/// random point, exactly like CAN's bootstrap.  Region sizes then ignore
/// node geography entirely, which is the behavior GeoGrid's design argues
/// against.
JoinResult can_join(Partition& partition, const net::NodeInfo& joiner,
                    const Point& random_point,
                    RegionId entry_region = kInvalidRegion);

/// Basic graceful departure / failure repair: every region owned by `node`
/// (primary seat; basic mode has no secondaries) is merged into a mergeable
/// neighbor when possible, otherwise handed to the caretaker described
/// above.  The node is then removed from the table.
void basic_leave(Partition& partition, NodeId node);

/// Repairs one orphaned region whose primary owner is gone, without
/// touching the node table: merge if possible, else caretaker handoff.
/// `exclude` is the departing owner (never selected as caretaker).
void repair_region(Partition& partition, RegionId region, NodeId exclude);

}  // namespace geogrid::overlay
