// Simulated geolocation (GPS / GeoLIM substitute).
//
// The paper assumes every node can learn its geographic coordinate via GPS
// or constraint-based geolocation (GeoLIM).  We model that service as the
// node's true position plus an optional bounded error, clamped to the plane.
// Error matters: constraint-based geolocation of Internet hosts is tens of
// miles off, and a misplaced node joins a region it does not physically
// occupy — tests use this to show GeoGrid still partitions correctly.
#pragma once

#include "common/geometry.h"
#include "common/rng.h"

namespace geogrid::services {

class Geolocator {
 public:
  struct Options {
    double max_error_miles = 0.0;  ///< 0 = perfect GPS
  };

  Geolocator(Rect plane, Options options, Rng rng)
      : plane_(plane), options_(options), rng_(rng) {}

  /// Reported position for a node whose true position is `truth`: truth
  /// plus a uniform offset within the error radius, clamped to the plane.
  Point locate(const Point& truth);

  /// Draws a uniformly random true position on the plane (used by harnesses
  /// to place nodes).
  Point random_position();

  /// The rectangular query footprint of a radius-`radius` friend query
  /// around a user whose true position is `truth`: the circle's bounding
  /// box centered on the *reported* position (geolocation error shifts the
  /// query the same way it shifts the report), clamped to the plane.
  Rect query_area(const Point& truth, double radius);

  const Rect& plane() const noexcept { return plane_; }

 private:
  Rect plane_;
  Options options_;
  Rng rng_;
};

}  // namespace geogrid::services
