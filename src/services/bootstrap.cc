#include "services/bootstrap.h"

#include <algorithm>

#include "common/logging.h"

namespace geogrid::services {

BootstrapServer::BootstrapServer(sim::Network& network, NodeId address,
                                 Rng rng)
    : network_(network), address_(address), rng_(rng) {
  network_.attach(address_, *this, Point{0.0, 0.0});
}

void BootstrapServer::on_message(NodeId from, const net::Message& msg) {
  if (const auto* reg = std::get_if<net::BootstrapRegister>(&msg)) {
    nodes_[reg->node.id] = reg->node;
    return;
  }
  if (const auto* req = std::get_if<net::BootstrapEntryRequest>(&msg)) {
    net::BootstrapEntryReply reply;
    reply.entry = pick_entry(req->requester.id);
    network_.send(address_, from, reply);
    return;
  }
  GEOGRID_WARN("bootstrap server ignoring "
               << net::message_name(net::message_type(msg)) << " from "
               << from);
}

std::optional<net::NodeInfo> BootstrapServer::pick_entry(NodeId excluding) {
  if (nodes_.empty() ||
      (nodes_.size() == 1 && nodes_.contains(excluding))) {
    return std::nullopt;
  }
  // Draw until we hit a node other than the requester; bounded because at
  // least one other node exists.
  while (true) {
    auto it = nodes_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng_.uniform_index(nodes_.size())));
    if (it->first != excluding) return it->second;
  }
}

void HostCache::remember(const net::NodeInfo& node) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const net::NodeInfo& e) { return e.id == node.id; });
  if (it != entries_.end()) {
    *it = node;
    return;
  }
  if (entries_.size() == max_entries_) entries_.erase(entries_.begin());
  entries_.push_back(node);
}

void HostCache::forget(NodeId id) {
  std::erase_if(entries_, [&](const net::NodeInfo& e) { return e.id == id; });
}

std::optional<net::NodeInfo> HostCache::pick(Rng& rng) const {
  if (entries_.empty()) return std::nullopt;
  return entries_[rng.uniform_index(entries_.size())];
}

}  // namespace geogrid::services
