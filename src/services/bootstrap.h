// Bootstrap directory service.
//
// The paper's bootstrap step: "node p obtains a list of existing nodes in
// GeoGrid from a bootstrapping server or a local host cache carried from its
// last session of activity", then "initiates a joining request by contacting
// an entry node selected randomly from this list".  BootstrapServer is that
// server as a simulated process; HostCache is the client-side cache.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/messages.h"
#include "sim/network.h"

namespace geogrid::services {

/// Central directory of live nodes; answers BootstrapEntryRequest with one
/// uniformly random registered node (excluding the requester itself).
class BootstrapServer : public sim::Process {
 public:
  BootstrapServer(sim::Network& network, NodeId address, Rng rng);

  NodeId address() const noexcept { return address_; }
  std::size_t registered() const noexcept { return nodes_.size(); }

  /// Removes a node (used when the harness kills or retires a node).
  void unregister(NodeId id) { nodes_.erase(id); }

  void on_message(NodeId from, const net::Message& msg) override;

  /// Direct (non-message) entry selection for engine-mode callers.
  std::optional<net::NodeInfo> pick_entry(NodeId excluding);

 private:
  sim::Network& network_;
  NodeId address_;
  Rng rng_;
  std::unordered_map<NodeId, net::NodeInfo> nodes_;
};

/// Client-side host cache: remembers nodes seen in earlier sessions so a
/// rejoining node can skip the server.
class HostCache {
 public:
  explicit HostCache(std::size_t max_entries = 32) : max_entries_(max_entries) {}

  void remember(const net::NodeInfo& node);
  void forget(NodeId id);
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Random cached entry, if any.
  std::optional<net::NodeInfo> pick(Rng& rng) const;

 private:
  std::size_t max_entries_;
  std::vector<net::NodeInfo> entries_;
};

}  // namespace geogrid::services
