#include "services/geolocator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace geogrid::services {

Point Geolocator::locate(const Point& truth) {
  if (options_.max_error_miles <= 0.0) return plane_.clamp(truth);
  const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double radius = options_.max_error_miles * std::sqrt(rng_.uniform());
  return plane_.clamp(Point{truth.x + radius * std::cos(angle),
                            truth.y + radius * std::sin(angle)});
}

Rect Geolocator::query_area(const Point& truth, double radius) {
  if (radius < 0.0) radius = 0.0;
  const Point center = locate(truth);
  const double x0 = std::max(plane_.x, center.x - radius);
  const double y0 = std::max(plane_.y, center.y - radius);
  const double x1 = std::min(plane_.right(), center.x + radius);
  const double y1 = std::min(plane_.top(), center.y + radius);
  return Rect{x0, y0, std::max(0.0, x1 - x0), std::max(0.0, y1 - y0)};
}

Point Geolocator::random_position() {
  // Strictly interior draw so the half-open cover test is unambiguous even
  // on the plane's west/south border.
  return Point{rng_.uniform(plane_.x + kGeoEps * 2.0, plane_.right()),
               rng_.uniform(plane_.y + kGeoEps * 2.0, plane_.top())};
}

}  // namespace geogrid::services
