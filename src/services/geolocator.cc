#include "services/geolocator.h"

#include <cmath>
#include <numbers>

namespace geogrid::services {

Point Geolocator::locate(const Point& truth) {
  if (options_.max_error_miles <= 0.0) return plane_.clamp(truth);
  const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double radius = options_.max_error_miles * std::sqrt(rng_.uniform());
  return plane_.clamp(Point{truth.x + radius * std::cos(angle),
                            truth.y + radius * std::sin(angle)});
}

Point Geolocator::random_position() {
  // Strictly interior draw so the half-open cover test is unambiguous even
  // on the plane's west/south border.
  return Point{rng_.uniform(plane_.x + kGeoEps * 2.0, plane_.right()),
               rng_.uniform(plane_.y + kGeoEps * 2.0, plane_.top())};
}

}  // namespace geogrid::services
