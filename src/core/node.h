// Protocol-mode GeoGrid node.
//
// GeoGridNode is the middleware process the paper describes: it joins the
// overlay through the bootstrap service, owns one or more regions (primary
// or secondary seat), routes location queries by greedy geographic
// forwarding, disseminates them to overlapping neighbor regions, stores
// subscriptions and matches publications against them, exchanges heartbeats
// and load statistics, and runs the dual-peer fail-over and load-balance
// adaptation handshakes — all purely over net::Message exchanges through
// the simulated network.  A node knows only what messages told it: its own
// regions, snapshots of their neighbors, and TTL-search replies.
//
// The decision logic (join target selection, adaptation planning rules) is
// shared with engine mode, so a protocol-mode network converges to the same
// partitions the engine produces; integration tests pin the two together.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "core/options.h"
#include "mobility/location_store.h"
#include "net/messages.h"
#include "overlay/region.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geogrid::core {

/// Topic under which mobile-user movement fires subscription notifications:
/// a subscription whose filter is empty or equals this topic is matched when
/// a user's reported position enters its area.
inline constexpr std::string_view kPresenceTopic = "presence";

/// A stored subscription with its absolute expiry time.
struct StoredSubscription {
  net::Subscribe sub;
  sim::Time expires = 0.0;
};

/// Local state of one region seat this node holds.
struct OwnedRegion {
  RegionId id{};
  Rect rect{};
  int split_depth = 0;
  net::OwnerRole role = net::OwnerRole::kPrimary;
  std::optional<net::NodeInfo> peer;  ///< the other seat's owner, if any
  double load = 0.0;                  ///< current workload mapped here

  /// Neighbor table: everything this node knows about adjacent regions.
  std::map<RegionId, net::RegionSnapshot> neighbors;

  // Replicated application state (synced primary -> secondary).
  std::vector<StoredSubscription> subscriptions;
  mobility::LocationStore users;  ///< mobile users inside this region
  std::uint64_t app_version = 0;

  bool is_primary() const noexcept {
    return role == net::OwnerRole::kPrimary;
  }
  bool full() const noexcept { return peer.has_value(); }
};

/// Counters exposed for tests and examples.
struct NodeCounters {
  std::uint64_t queries_submitted = 0;
  std::uint64_t queries_executed = 0;   ///< executed against an owned region
  std::uint64_t queries_disseminated = 0;
  std::uint64_t results_received = 0;
  std::uint64_t notifies_received = 0;
  std::uint64_t publishes_handled = 0;
  std::uint64_t routed_forwarded = 0;
  std::uint64_t takeovers = 0;          ///< fail-overs this node performed
  std::uint64_t adaptations_started = 0;
  std::uint64_t adaptations_completed = 0;
  // Mobile-user layer.
  std::uint64_t location_updates_submitted = 0;  ///< proxy role
  std::uint64_t location_updates_ingested = 0;   ///< owner role
  std::uint64_t location_acks_received = 0;
  std::uint64_t user_handoffs = 0;      ///< boundary crossings this owner saw
  std::uint64_t locates_served = 0;
  std::uint64_t locate_replies_received = 0;
  std::uint64_t presence_notifies_sent = 0;
};

class GeoGridNode : public sim::Process {
 public:
  struct Config {
    GridMode mode = GridMode::kDualPeer;
    Rect plane{0.0, 0.0, 64.0, 64.0};   ///< service area (founder's root)
    double peer_sync_interval = 1.0;    ///< dual peers sync at high rate
    double heartbeat_interval = 4.0;    ///< primaries of neighbor regions
    double stats_interval = 4.0;        ///< load gossip period
    double adaptation_interval = 8.0;   ///< trigger evaluation period
    double failure_timeout = 12.0;      ///< silence before a peer is dead
    double search_wait = 2.0;           ///< TTL-search reply collection time
    double join_retry = 3.0;            ///< retry period for rejected joins
    std::uint16_t max_route_hops = 512; ///< routed-envelope loop guard
    loadbalance::PlannerConfig planner{};
    bool enable_adaptation() const noexcept {
      return mode == GridMode::kDualPeerAdaptive;
    }
  };

  GeoGridNode(sim::Network& network, NodeId bootstrap_address,
              net::NodeInfo self, Config config, Rng rng);

  /// Attaches to the network and begins the join procedure.
  void start();

  /// Graceful departure: hand seats over and detach.
  void leave();

  /// Crash without goodbye (failure injection for tests/examples).
  void crash();

  // --- Application API -----------------------------------------------------

  /// One-shot location query over `area`; results arrive as QueryResult
  /// messages and are surfaced through `on_result`.
  std::uint64_t submit_query(const Rect& area, const std::string& filter);

  /// Standing subscription for `duration` seconds.
  std::uint64_t subscribe(const Rect& area, const std::string& filter,
                          double duration);

  /// Cancels a standing subscription created by subscribe() before its
  /// duration expires (routed and disseminated like the subscription).
  void unsubscribe(std::uint64_t sub_id, const Rect& area);

  /// Publishes a located datum (information-source role).
  void publish(const Point& location, const std::string& topic,
               const std::string& payload);

  /// Access-proxy role: forwards a mobile user's location report into the
  /// grid (routed to the region covering the new position).  `prev` is the
  /// user's previously reported position, when known — it drives handoff
  /// eviction and duplicate-notification suppression at the owner.
  void submit_location_update(UserId user, const Point& location,
                              std::uint64_t seq,
                              std::optional<Point> prev = std::nullopt);

  /// Point lookup for a user: routes a LocateRequest toward `hint` (the
  /// requester's last known position for the user); the covering owner
  /// answers from its location store via `on_locate`.
  std::uint64_t locate_user(UserId user, const Point& hint);

  /// Callback hooks (tests and examples).
  std::function<void(const net::QueryResult&)> on_result;
  std::function<void(const net::Notify&)> on_notify;
  std::function<void(const net::LocateReply&)> on_locate;
  std::function<void(const net::LocationUpdateAck&)> on_location_ack;

  // --- Introspection ---------------------------------------------------------

  bool joined() const noexcept { return joined_; }
  /// True once the node has left or crashed (it will never rejoin).
  bool departed() const noexcept { return leaving_; }
  const net::NodeInfo& info() const noexcept { return self_; }
  const std::map<RegionId, OwnedRegion>& owned() const noexcept {
    return owned_;
  }
  const NodeCounters& counters() const noexcept { return counters_; }

  /// Injects a load figure for an owned region (harnesses drive this from
  /// the hot-spot field; a deployment would measure executed queries).
  void set_region_load(RegionId region, double load);

  /// Own workload index: primary-held load over capacity.
  double workload_index() const;

  void on_message(NodeId from, const net::Message& msg) override;

 private:
  // Join flow.
  void begin_join();
  void handle_entry_reply(const net::BootstrapEntryReply& m);
  void found_grid();
  void handle_join_request(NodeId from, const net::JoinRequest& m);
  void handle_probe_reply(const net::JoinProbeReply& m);
  void handle_secondary_join(NodeId from, const net::SecondaryJoinRequest& m);
  void handle_split_join(NodeId from, const net::SplitJoinRequest& m);
  void handle_join_grant(const net::JoinGrant& m);
  void basic_split_for(const net::NodeInfo& joiner, RegionId region);

  // Routing.
  void route_or_handle(net::Routed env);
  OwnedRegion* covering_region(const Point& p);
  void handle_routed_payload(NodeId from, const net::Routed& env);

  // Application handlers.
  void execute_query(const net::LocationQuery& q, OwnedRegion& region);
  void handle_location_query(const net::LocationQuery& q);
  void handle_subscribe(const net::Subscribe& s);
  void store_subscription(const net::Subscribe& s, OwnedRegion& region);
  void handle_unsubscribe(const net::Unsubscribe& u);
  void handle_publish(const net::Publish& p);

  // Mobile-user handlers.
  void handle_location_update(const net::LocationUpdate& m);
  void handle_user_handoff(const net::UserHandoff& m);
  void handle_locate_request(const net::LocateRequest& m, std::uint16_t hops);
  void notify_presence(OwnedRegion& region, const net::LocationUpdate& m);
  /// Drops lapsed subscriptions; runs on every seat (secondaries included)
  /// so a failed-over replica never fires from an expired subscription.
  void prune_expired_subscriptions(OwnedRegion& region);

  // Maintenance.
  void schedule_timers();
  void tick_peer_sync();
  void tick_heartbeat();
  void tick_stats();
  void tick_failure_check();
  void tick_adaptation();
  void handle_heartbeat(NodeId from, const net::Heartbeat& m);
  void handle_load_stats(NodeId from, const net::LoadStatsExchange& m);
  void handle_takeover(const net::TakeoverNotice& m);
  void handle_neighbor_update(const net::NeighborUpdate& m);
  void handle_neighbor_remove(const net::NeighborRemove& m);
  void handle_leave_notice(NodeId from, const net::LeaveNotice& m);
  void handle_region_handoff(const net::RegionHandoff& m);
  void handle_owner_probe(const net::OwnerProbe& m);
  void adopt_orphan(RegionId region, const net::RegionSnapshot& snap);

  // Adaptation handshakes.
  void handle_steal_request(NodeId from, const net::StealSecondaryRequest& m);
  void handle_steal_grant(const net::StealSecondaryGrant& m);
  void handle_switch_request(NodeId from, const net::SwitchRequest& m);
  void handle_switch_grant(NodeId from, const net::SwitchGrant& m);
  void handle_merge_request(NodeId from, const net::MergeRequest& m);
  void handle_merge_grant(NodeId from, const net::MergeGrant& m);
  void handle_ttl_search(NodeId from, const net::TtlSearchRequest& m);
  void handle_ttl_reply(const net::TtlSearchReply& m);
  void clear_adaptation_state();

  // Snapshot/notification helpers.
  net::RegionSnapshot snapshot_of(const OwnedRegion& region) const;
  void broadcast_neighbor_update(const OwnedRegion& region);
  void send_to_region_primary(const net::RegionSnapshot& target,
                              net::Message msg);
  void prune_neighbors(OwnedRegion& region);
  void sync_peer(OwnedRegion& region);

  sim::Network& network_;
  sim::EventLoop& loop_;
  NodeId bootstrap_;
  net::NodeInfo self_;
  Config config_;
  Rng rng_;

  bool started_ = false;
  bool joined_ = false;
  bool leaving_ = false;
  int join_attempts_ = 0;

  std::map<RegionId, OwnedRegion> owned_;
  NodeCounters counters_;
  std::uint64_t next_request_id_ = 0;

  /// Last time we heard from the peer of each owned region.
  std::unordered_map<RegionId, sim::Time> peer_last_heard_;

  /// Last time a neighbor region's primary was heard from.
  std::unordered_map<RegionId, sim::Time> neighbor_last_heard_;

  /// Regions under suspicion of being orphaned: time the OwnerProbe was
  /// routed toward them.  Adoption happens only if no reply refreshes the
  /// entry within a failure-timeout grace period.
  std::unordered_map<RegionId, sim::Time> suspect_since_;

  /// TTL searches already forwarded (origin id << 32 | search id).
  std::unordered_set<std::uint64_t> seen_searches_;

  /// Locally allocated region-id counter (globally unique: the node id is
  /// folded into the high bits).
  std::uint32_t next_local_region_ = 0;

  /// In-flight adaptation (one at a time per node).
  struct PendingAdaptation {
    bool active = false;
    bool searching = false;  ///< TTL search outstanding, decision pending
    loadbalance::Mechanism mechanism{};
    RegionId subject{};
    RegionId partner{};
    net::RegionSnapshot partner_snapshot{};
    sim::Time started = 0.0;
    std::uint32_t search_id = 0;
    std::vector<net::RegionSnapshot> search_candidates;
  };
  PendingAdaptation pending_;
  std::uint32_t next_search_id_ = 0;

  /// Initiates the handshake for a locally planned mechanism.
  void initiate_plan(const loadbalance::Plan& plan,
                     const net::RegionSnapshot& partner_snapshot);
  void execute_local_split(OwnedRegion& region);
  void finish_ttl_search();

  std::vector<sim::EventHandle> timers_;
  /// Keeps the self-rescheduling timer closures alive (they only hold weak
  /// references to themselves).
  std::vector<std::shared_ptr<std::function<void()>>> timer_fns_;
};

}  // namespace geogrid::core
