// Shared helpers between the two GeoGridNode translation units.
#pragma once

#include <string>
#include <vector>

#include "core/node.h"

namespace geogrid::core::detail {

/// Serializes a subscription list for primary -> secondary replication.
std::string encode_subscriptions(const std::vector<StoredSubscription>& subs);

/// Inverse of encode_subscriptions.
std::vector<StoredSubscription> decode_subscriptions(const std::string& blob);

}  // namespace geogrid::core::detail
