// Shared helpers between the two GeoGridNode translation units.
#pragma once

#include <string>
#include <vector>

#include "core/node.h"

namespace geogrid::core::detail {

/// Serializes a region's replicated application state (subscriptions and
/// the mobile-user location store) for primary -> secondary replication.
std::string encode_app_state(const OwnedRegion& region);

/// Inverse of encode_app_state: installs the blob into `region`.
void decode_app_state(const std::string& blob, OwnedRegion& region);

}  // namespace geogrid::core::detail
