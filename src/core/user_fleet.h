// Protocol-mode mobile-user fleet.
//
// Binds a mobility::UserPopulation to a Cluster: each mobile user is pinned
// to an access proxy (a grid node, round-robin over the fleet), and every
// tick steps the motion model and forwards one LocationUpdate per user
// through its proxy.  The fleet tracks each user's previously *reported*
// position so updates carry the prev-location that drives handoff eviction
// and duplicate-notification suppression at the owners.
//
// This is the harness role the paper calls the "access proxy": mobile users
// are not overlay members, they reach GeoGrid through fixed nodes.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/cluster.h"
#include "mobility/motion.h"

namespace geogrid::core {

class UserFleet {
 public:
  UserFleet(Cluster& cluster, mobility::UserPopulation population);

  /// Steps every user's motion by `dt` virtual seconds and reports each
  /// new position through the user's access proxy.  Call between
  /// Cluster::run_for slices so the updates drain through the network.
  void tick(double dt);

  /// The access proxy serving user `index`.  Skips departed nodes, so a
  /// crashed proxy's users re-home to the next live node.
  GeoGridNode& proxy_of(std::size_t index);

  mobility::UserPopulation& population() noexcept { return population_; }
  const mobility::UserPopulation& population() const noexcept {
    return population_;
  }

  /// The last position user `index` reported, if it reported at all.
  std::optional<Point> last_reported(std::size_t index) const {
    return last_reported_[index];
  }

 private:
  Cluster& cluster_;
  mobility::UserPopulation population_;
  std::vector<std::optional<Point>> last_reported_;
  std::vector<unsigned char> alive_;  ///< per-tick liveness snapshot
};

}  // namespace geogrid::core
