#include "core/user_fleet.h"

#include <cassert>

namespace geogrid::core {

UserFleet::UserFleet(Cluster& cluster, mobility::UserPopulation population)
    : cluster_(cluster), population_(std::move(population)),
      last_reported_(population_.users().size()) {}

GeoGridNode& UserFleet::proxy_of(std::size_t index) {
  auto& nodes = cluster_.nodes();
  assert(!nodes.empty());
  for (std::size_t probe = 0; probe < nodes.size(); ++probe) {
    GeoGridNode& node = *nodes[(index + probe) % nodes.size()];
    if (!node.departed() && node.joined()) return node;
  }
  return *nodes[index % nodes.size()];  // nobody alive: caller's problem
}

void UserFleet::tick(double dt) {
  const double now = cluster_.loop().now();
  population_.step(dt, now);
  auto& users = population_.users();
  auto& nodes = cluster_.nodes();
  // Snapshot liveness once per tick instead of probing departed()/joined()
  // per user: membership cannot change while this loop runs (updates are
  // queued here and only drained by the next Cluster::run_for slice), so
  // every user resolves to exactly the proxy proxy_of(i) would return.
  alive_.assign(nodes.size(), 0);
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    alive_[n] = !nodes[n]->departed() && nodes[n]->joined() ? 1 : 0;
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    std::size_t chosen = i % nodes.size();
    for (std::size_t probe = 0; probe < nodes.size(); ++probe) {
      const std::size_t n = (i + probe) % nodes.size();
      if (alive_[n]) {
        chosen = n;
        break;
      }
    }
    mobility::MobileUser& user = users[i];
    nodes[chosen]->submit_location_update(user.id, user.position,
                                          user.next_seq, last_reported_[i]);
    last_reported_[i] = user.position;
    user.next_seq += 1;
  }
}

}  // namespace geogrid::core
