#include "core/user_fleet.h"

#include <cassert>

namespace geogrid::core {

UserFleet::UserFleet(Cluster& cluster, mobility::UserPopulation population)
    : cluster_(cluster), population_(std::move(population)),
      last_reported_(population_.users().size()) {}

GeoGridNode& UserFleet::proxy_of(std::size_t index) {
  auto& nodes = cluster_.nodes();
  assert(!nodes.empty());
  for (std::size_t probe = 0; probe < nodes.size(); ++probe) {
    GeoGridNode& node = *nodes[(index + probe) % nodes.size()];
    if (!node.departed() && node.joined()) return node;
  }
  return *nodes[index % nodes.size()];  // nobody alive: caller's problem
}

void UserFleet::tick(double dt) {
  const double now = cluster_.loop().now();
  population_.step(dt, now);
  auto& users = population_.users();
  for (std::size_t i = 0; i < users.size(); ++i) {
    mobility::MobileUser& user = users[i];
    proxy_of(i).submit_location_update(user.id, user.position,
                                       user.next_seq, last_reported_[i]);
    last_reported_[i] = user.position;
    user.next_seq += 1;
  }
}

}  // namespace geogrid::core
