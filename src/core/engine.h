// Engine-mode GeoGrid simulation.
//
// GridSimulation drives the same membership policies, routing logic and
// adaptation planner as the wire protocol, but invokes them directly on the
// authoritative Partition instead of through message exchanges.  This is
// what makes the paper's sweeps (16,000 nodes x 100 random networks per
// point) tractable on one machine; the protocol-mode stack in core/node.h
// exercises the identical decision functions over real messages and the
// integration tests pin the two modes to each other.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "core/options.h"
#include "loadbalance/driver.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "overlay/partition.h"
#include "pubsub/notification_engine.h"
#include "overlay/snapshot.h"
#include "workload/hotspot.h"

namespace geogrid::core {

class GridSimulation {
 public:
  /// Creates the hot-spot field and joins `node_count` nodes, each at a
  /// uniformly random coordinate with a capacity drawn from the configured
  /// distribution, entering through a uniformly random existing region
  /// (the bootstrap server's random entry-node selection).
  explicit GridSimulation(SimulationOptions options);

  const SimulationOptions& options() const noexcept { return options_; }
  overlay::Partition& partition() noexcept { return partition_; }
  const overlay::Partition& partition() const noexcept { return partition_; }
  workload::HotSpotField& field() noexcept { return *field_; }
  loadbalance::AdaptationDriver& driver() noexcept { return *driver_; }
  Rng& rng() noexcept { return rng_; }

  /// Region load accessor bound to the hot-spot field.
  overlay::LoadFn load_fn() const;

  /// Adds one more node (random position/capacity) through the configured
  /// mode's join procedure; returns its id.
  NodeId add_node();

  /// Adds a node at an explicit position and capacity.
  NodeId add_node_at(const Point& coord, double capacity);

  /// Graceful departure or crash of `node` under the configured mode.
  void remove_node(NodeId node, bool crash);

  /// Moves every hot spot `steps` epochs.
  void migrate_hotspots(std::size_t steps = 1);

  /// The engine-mode mobile-user ingestion engine over this simulation's
  /// partition, sharded per options().ingest_shards.  Callers own the
  /// returned directory; it must not outlive the simulation.
  std::unique_ptr<mobility::ShardedDirectory> make_location_directory(
      double cell_size = 1.0) const;

  /// The batched snapshot-consistent read engine over a directory made by
  /// make_location_directory, fanned out per options().query_threads.  The
  /// engine must not outlive the directory.
  std::unique_ptr<mobility::QueryEngine> make_query_engine(
      mobility::ShardedDirectory& directory) const;

  /// The incremental pub/sub engine over a directory made by
  /// make_location_directory (set options().track_deltas or the engine
  /// full-rescans every drain), matching per options().notify_threads.
  /// Must not outlive the directory or the subscription index.
  std::unique_ptr<pubsub::NotificationEngine> make_notification_engine(
      mobility::ShardedDirectory& directory,
      pubsub::SubscriptionIndex& subs) const;

  /// Max/mean/stddev of the per-node workload index (the figures' metric).
  Summary workload_summary() const;

  /// Mean routing hops the joins of the initial build took.
  double mean_join_hops() const noexcept {
    return join_count_ == 0
               ? 0.0
               : static_cast<double>(total_join_hops_) /
                     static_cast<double>(join_count_);
  }

 private:
  RegionId random_entry_region();

  SimulationOptions options_;
  Rng rng_;
  overlay::Partition partition_;
  std::unique_ptr<workload::HotSpotField> field_;
  std::unique_ptr<loadbalance::AdaptationDriver> driver_;
  std::uint64_t total_join_hops_ = 0;
  std::uint64_t join_count_ = 0;
};

}  // namespace geogrid::core
