#include "core/cluster.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace geogrid::core {

Cluster::Cluster(Options options)
    : options_(std::move(options)), rng_(options_.seed),
      network_(loop_, rng_.fork(), options_.network) {
  bootstrap_ = std::make_unique<services::BootstrapServer>(
      network_, NodeId{0}, rng_.fork());
  geolocator_ = std::make_unique<services::Geolocator>(
      options_.node.plane, services::Geolocator::Options{}, rng_.fork());
}

Cluster::~Cluster() = default;

GeoGridNode& Cluster::spawn() {
  return spawn_at(geolocator_->random_position(),
                  options_.capacities.sample(rng_));
}

GeoGridNode& Cluster::spawn_at(const Point& coord, double capacity) {
  net::NodeInfo info;
  info.id = NodeId{next_node_id_++};
  info.coord = coord;
  info.capacity = capacity;
  auto node = std::make_unique<GeoGridNode>(network_, bootstrap_->address(),
                                            info, options_.node, rng_.fork());
  GeoGridNode& ref = *node;
  nodes_.push_back(std::move(node));
  const double delay =
      options_.join_spacing * static_cast<double>(nodes_.size());
  loop_.schedule_after(delay, [&ref] { ref.start(); });
  return ref;
}

void Cluster::grow(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) spawn();
  run_until_joined();
}

void Cluster::run_for(double seconds) {
  loop_.run_until(loop_.now() + seconds);
}

bool Cluster::run_until_joined(double max_seconds) {
  const sim::Time deadline = loop_.now() + max_seconds;
  while (loop_.now() < deadline) {
    const bool all = std::all_of(
        nodes_.begin(), nodes_.end(),
        [](const auto& n) { return n->joined() || n->departed(); });
    if (all) return true;
    run_for(1.0);
  }
  return std::all_of(nodes_.begin(), nodes_.end(), [](const auto& n) {
    return n->joined() || n->departed();
  });
}

GeoGridNode* Cluster::primary_covering(const Point& p) {
  GeoGridNode* found = nullptr;
  for (auto& node : nodes_) {
    for (const auto& [rid, region] : node->owned()) {
      if (!region.is_primary()) continue;
      if (region.rect.covers(p) || region.rect.covers_inclusive(p)) {
        if (found != nullptr) return nullptr;  // ambiguous
        found = node.get();
      }
    }
  }
  return found;
}

void Cluster::apply_field(const workload::HotSpotField& field) {
  for (auto& node : nodes_) {
    for (const auto& [rid, region] : node->owned()) {
      node->set_region_load(rid, field.region_load(region.rect));
    }
  }
}

double Cluster::covered_area() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    if (node->departed()) continue;  // frozen state of crashed/left nodes
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) total += region.rect.area();
    }
  }
  return total;
}

std::vector<std::string> Cluster::check_consistency() const {
  std::vector<std::string> errors;
  std::map<RegionId, int> primaries;
  std::map<RegionId, Rect> rects;
  for (const auto& node : nodes_) {
    if (node->departed()) continue;  // frozen state of crashed/left nodes
    for (const auto& [rid, region] : node->owned()) {
      if (!region.is_primary()) continue;
      primaries[rid] += 1;
      rects[rid] = region.rect;
    }
  }
  for (const auto& [rid, count] : primaries) {
    if (count != 1) {
      std::ostringstream os;
      os << "region " << rid << " has " << count << " primaries";
      errors.push_back(os.str());
    }
  }
  // Pairwise overlap check over the collective map.
  std::vector<std::pair<RegionId, Rect>> list(rects.begin(), rects.end());
  for (std::size_t i = 0; i < list.size(); ++i) {
    for (std::size_t j = i + 1; j < list.size(); ++j) {
      if (list[i].second.intersects(list[j].second)) {
        std::ostringstream os;
        os << "regions " << list[i].first << " and " << list[j].first
           << " overlap";
        errors.push_back(os.str());
      }
    }
  }
  const double area = covered_area();
  const double plane_area = options_.node.plane.area();
  if (!nodes_.empty() && std::abs(area - plane_area) > plane_area * 1e-9) {
    std::ostringstream os;
    os << "covered area " << area << " != plane area " << plane_area;
    errors.push_back(os.str());
  }
  return errors;
}

}  // namespace geogrid::core
