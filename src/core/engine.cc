#include "core/engine.h"

#include <cassert>

#include "dualpeer/dual_ops.h"
#include "metrics/collector.h"
#include "overlay/basic_ops.h"

namespace geogrid::core {

std::string_view grid_mode_name(GridMode mode) {
  switch (mode) {
    case GridMode::kBasic: return "Basic GeoGrid";
    case GridMode::kDualPeer: return "GeoGrid+Dual Peer";
    case GridMode::kDualPeerAdaptive: return "GeoGrid+Dual Peer+Adaptation";
    case GridMode::kCanBaseline: return "CAN-style random split";
  }
  return "unknown";
}

GridSimulation::GridSimulation(SimulationOptions options)
    : options_(std::move(options)), rng_(options_.seed),
      partition_(options_.field.plane) {
  field_ = std::make_unique<workload::HotSpotField>(options_.field, rng_);
  driver_ = std::make_unique<loadbalance::AdaptationDriver>(
      partition_, load_fn(), options_.planner);
  for (std::size_t i = 0; i < options_.node_count; ++i) add_node();
}

overlay::LoadFn GridSimulation::load_fn() const {
  return [this](RegionId rid) {
    return field_->region_load(partition_.region(rid).rect);
  };
}

RegionId GridSimulation::random_entry_region() {
  // The bootstrap server hands the joiner a uniformly random existing node;
  // entering through a random node is entering through a random region.
  const std::size_t count = partition_.region_count();
  if (count == 0) return kInvalidRegion;
  auto it = partition_.regions().begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng_.uniform_index(count)));
  return it->first;
}

NodeId GridSimulation::add_node() {
  const Point coord{
      rng_.uniform(options_.field.plane.x + kGeoEps,
                   options_.field.plane.right()),
      rng_.uniform(options_.field.plane.y + kGeoEps,
                   options_.field.plane.top())};
  return add_node_at(coord, options_.capacities.sample(rng_));
}

NodeId GridSimulation::add_node_at(const Point& coord, double capacity) {
  net::NodeInfo info;
  info.id = partition_.allocate_node_id();
  info.coord = coord;
  info.capacity = capacity;

  const RegionId entry = random_entry_region();
  overlay::JoinResult result;
  switch (options_.mode) {
    case GridMode::kBasic:
      result = overlay::basic_join(partition_, info, entry);
      break;
    case GridMode::kCanBaseline: {
      const Point random_point{
          rng_.uniform(options_.field.plane.x + kGeoEps,
                       options_.field.plane.right()),
          rng_.uniform(options_.field.plane.y + kGeoEps,
                       options_.field.plane.top())};
      result = overlay::can_join(partition_, info, random_point, entry);
      break;
    }
    case GridMode::kDualPeer:
    case GridMode::kDualPeerAdaptive:
      result = dualpeer::dual_join(partition_, info, load_fn(), entry);
      break;
  }
  total_join_hops_ += result.routing_hops;
  ++join_count_;
  return info.id;
}

void GridSimulation::remove_node(NodeId node, bool crash) {
  if (options_.mode == GridMode::kBasic ||
      options_.mode == GridMode::kCanBaseline) {
    overlay::basic_leave(partition_, node);
    return;
  }
  if (crash) {
    dualpeer::dual_fail(partition_, node);
  } else {
    dualpeer::dual_leave(partition_, node);
  }
}

void GridSimulation::migrate_hotspots(std::size_t steps) {
  field_->migrate(rng_, steps);
}

Summary GridSimulation::workload_summary() const {
  return metrics::workload_summary(partition_, load_fn());
}

std::unique_ptr<mobility::ShardedDirectory>
GridSimulation::make_location_directory(double cell_size) const {
  mobility::ShardedDirectory::Options opts;
  opts.shards = options_.ingest_shards;
  opts.cell_size = cell_size;
  opts.track_deltas = options_.track_deltas;
  return std::make_unique<mobility::ShardedDirectory>(partition_, opts);
}

std::unique_ptr<mobility::QueryEngine> GridSimulation::make_query_engine(
    mobility::ShardedDirectory& directory) const {
  mobility::QueryEngine::Options opts;
  opts.threads = options_.query_threads;
  return std::make_unique<mobility::QueryEngine>(directory, opts);
}

std::unique_ptr<pubsub::NotificationEngine>
GridSimulation::make_notification_engine(mobility::ShardedDirectory& directory,
                                         pubsub::SubscriptionIndex& subs) const {
  pubsub::NotificationEngine::Options opts;
  opts.threads = options_.notify_threads;
  return std::make_unique<pubsub::NotificationEngine>(directory, subs, opts);
}

}  // namespace geogrid::core
