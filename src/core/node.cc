#include "core/node.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "dualpeer/join_policy.h"
#include "loadbalance/snapshot_planner.h"
#include "core/node_internal.h"
#include "overlay/router.h"

namespace geogrid::core {

using net::Message;
using net::NodeInfo;
using net::OwnerRole;
using net::RegionSnapshot;

namespace detail {

std::string encode_app_state(const OwnedRegion& region) {
  net::Writer w;
  w.varint(region.subscriptions.size());
  for (const auto& s : region.subscriptions) {
    s.sub.encode(w);
    w.f64(s.expires);
  }
  region.users.encode(w);
  const auto bytes = std::move(w).take();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

void decode_app_state(const std::string& blob, OwnedRegion& region) {
  net::Reader r(reinterpret_cast<const std::byte*>(blob.data()), blob.size());
  const auto n = r.varint();
  std::vector<StoredSubscription> subs;
  subs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    StoredSubscription s;
    s.sub = net::Subscribe::decode(r);
    s.expires = r.f64();
    subs.push_back(std::move(s));
  }
  region.subscriptions = std::move(subs);
  region.users = mobility::LocationStore::decode(r);
}

}  // namespace detail

GeoGridNode::GeoGridNode(sim::Network& network, NodeId bootstrap_address,
                         NodeInfo self, Config config, Rng rng)
    : network_(network), loop_(network.loop()), bootstrap_(bootstrap_address),
      self_(self), config_(config), rng_(rng) {}

void GeoGridNode::start() {
  assert(!started_);
  started_ = true;
  network_.attach(self_.id, *this, self_.coord);
  network_.send(self_.id, bootstrap_, net::BootstrapRegister{self_});
  begin_join();
  schedule_timers();
}

void GeoGridNode::begin_join() {
  if (joined_ || leaving_) return;
  ++join_attempts_;
  network_.send(self_.id, bootstrap_, net::BootstrapEntryRequest{self_});
  // Retry until a grant lands (entry node may have died, probes may race).
  loop_.schedule_after(config_.join_retry, [this] {
    if (!joined_ && !leaving_ && join_attempts_ < 25) begin_join();
  });
}

void GeoGridNode::handle_entry_reply(const net::BootstrapEntryReply& m) {
  if (joined_) return;
  if (!m.entry) {
    found_grid();
    return;
  }
  // Route a join request toward our own coordinate via the entry node.
  network_.send(self_.id, m.entry->id,
                net::make_routed(self_.coord, net::JoinRequest{self_}));
}

void GeoGridNode::found_grid() {
  OwnedRegion root;
  root.id = RegionId{(self_.id.value << 12) | (next_local_region_++ & 0xfff)};
  root.rect = config_.plane;
  root.split_depth = 0;
  root.role = OwnerRole::kPrimary;
  owned_[root.id] = std::move(root);
  joined_ = true;
  GEOGRID_DEBUG("node " << self_.id << " founded the grid");
}

// ---------------------------------------------------------------------------
// Snapshots and notifications.
// ---------------------------------------------------------------------------

RegionSnapshot GeoGridNode::snapshot_of(const OwnedRegion& region) const {
  RegionSnapshot s;
  s.region = region.id;
  s.rect = region.rect;
  s.split_depth = region.split_depth;
  if (region.is_primary()) {
    s.primary = self_;
    s.secondary = region.peer;
  } else {
    assert(region.peer.has_value());
    s.primary = *region.peer;
    s.secondary = self_;
  }
  s.load = region.load;
  s.workload_index =
      s.primary.capacity > 0.0 ? s.load / s.primary.capacity : s.load;
  return s;
}

void GeoGridNode::send_to_region_primary(const RegionSnapshot& target,
                                         Message msg) {
  network_.send(self_.id, target.primary.id, std::move(msg));
}

void GeoGridNode::broadcast_neighbor_update(const OwnedRegion& region) {
  const RegionSnapshot snap = snapshot_of(region);
  for (const auto& [rid, nb] : region.neighbors) {
    network_.send(self_.id, nb.primary.id, net::NeighborUpdate{snap});
    if (nb.secondary) {
      network_.send(self_.id, nb.secondary->id, net::NeighborUpdate{snap});
    }
  }
  if (region.peer) {
    network_.send(self_.id, region.peer->id, net::NeighborUpdate{snap});
  }
}

void GeoGridNode::prune_neighbors(OwnedRegion& region) {
  std::erase_if(region.neighbors, [&](const auto& entry) {
    return entry.first == region.id ||
           !entry.second.rect.edge_adjacent(region.rect);
  });
}

// ---------------------------------------------------------------------------
// Join handling (owner side).
// ---------------------------------------------------------------------------

void GeoGridNode::handle_join_request(NodeId /*from*/,
                                      const net::JoinRequest& m) {
  OwnedRegion* covering = covering_region(m.joiner.coord);
  if (covering == nullptr || !covering->is_primary()) {
    network_.send(self_.id, m.joiner.id,
                  net::JoinReject{"not the covering primary"});
    return;
  }
  if (config_.mode == GridMode::kBasic) {
    basic_split_for(m.joiner, covering->id);
    return;
  }
  // Dual-peer: the joiner probes the covering region and its neighborhood.
  net::JoinProbeReply reply;
  reply.covering = snapshot_of(*covering);
  reply.neighbors.reserve(covering->neighbors.size());
  for (const auto& [rid, snap] : covering->neighbors) {
    reply.neighbors.push_back(snap);
  }
  network_.send(self_.id, m.joiner.id, reply);
}

void GeoGridNode::basic_split_for(const NodeInfo& joiner, RegionId region_id) {
  auto it = owned_.find(region_id);
  assert(it != owned_.end());
  OwnedRegion& region = it->second;

  const Axis axis = overlay::split_axis_for_depth(region.split_depth);
  const auto [low, high] = region.rect.split(axis);
  const bool owner_in_low = low.covers_inclusive(self_.coord);
  const bool joiner_in_low = low.covers_inclusive(joiner.coord);
  const bool joiner_gets_high =
      (owner_in_low != joiner_in_low) ? !joiner_in_low : owner_in_low;

  // Shrink our region; the joiner founds the other half.
  const std::map<RegionId, RegionSnapshot> old_neighbors = region.neighbors;
  region.rect = joiner_gets_high ? low : high;
  region.split_depth += 1;
  region.load *= 0.5;  // refreshed by the next stats round

  RegionSnapshot fresh;
  fresh.region =
      RegionId{(self_.id.value << 12) | (next_local_region_++ & 0xfff)};
  fresh.rect = joiner_gets_high ? high : low;
  fresh.split_depth = region.split_depth;
  fresh.primary = joiner;
  fresh.load = region.load;
  fresh.workload_index =
      joiner.capacity > 0.0 ? fresh.load / joiner.capacity : fresh.load;

  prune_neighbors(region);
  region.neighbors[fresh.region] = fresh;

  net::JoinGrant grant;
  grant.region_state = fresh;
  grant.role = OwnerRole::kPrimary;
  for (const auto& [rid, snap] : old_neighbors) {
    if (snap.rect.edge_adjacent(fresh.rect)) grant.neighbors.push_back(snap);
  }
  grant.neighbors.push_back(snapshot_of(region));
  network_.send(self_.id, joiner.id, grant);

  // Tell the old neighborhood about both halves.
  const RegionSnapshot mine = snapshot_of(region);
  for (const auto& [rid, snap] : old_neighbors) {
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{mine});
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{fresh});
  }
}

void GeoGridNode::handle_probe_reply(const net::JoinProbeReply& m) {
  if (joined_) return;
  const dualpeer::JoinDecision decision =
      dualpeer::select_join_target(m.covering, m.neighbors);

  const auto snapshot_for = [&](RegionId rid) -> const RegionSnapshot* {
    if (m.covering.region == rid) return &m.covering;
    for (const auto& s : m.neighbors) {
      if (s.region == rid) return &s;
    }
    return nullptr;
  };
  const RegionSnapshot* target = snapshot_for(decision.region);
  assert(target != nullptr);

  if (decision.action == dualpeer::JoinDecision::Action::kFillSecondary) {
    network_.send(self_.id, target->primary.id,
                  net::SecondaryJoinRequest{self_, decision.region});
  } else {
    network_.send(self_.id, target->primary.id,
                  net::SplitJoinRequest{self_, decision.region});
  }
}

void GeoGridNode::handle_secondary_join(NodeId /*from*/,
                                        const net::SecondaryJoinRequest& m) {
  auto it = owned_.find(m.region);
  // A region mid-adaptation is about to change hands: bounce the joiner.
  if (pending_.active || it == owned_.end() || !it->second.is_primary() ||
      it->second.full()) {
    network_.send(self_.id, m.joiner.id,
                  net::JoinReject{"region changed, retry"});
    return;
  }
  OwnedRegion& region = it->second;
  GEOGRID_DEBUG("node " << self_.id << " seats secondary " << m.joiner.id
                        << " in " << m.region << " rect "
                        << region.rect.to_string());
  region.peer = m.joiner;
  peer_last_heard_[m.region] = loop_.now();
  OwnerRole joiner_role = OwnerRole::kSecondary;
  if (dualpeer::joiner_takes_primary(m.joiner.capacity, self_.capacity)) {
    // The stronger joiner takes over the primary role once it has copied
    // our state (immediate in simulation).
    region.role = OwnerRole::kSecondary;
    joiner_role = OwnerRole::kPrimary;
  }

  net::JoinGrant grant;
  grant.region_state = snapshot_of(region);
  grant.role = joiner_role;
  for (const auto& [rid, snap] : region.neighbors) {
    grant.neighbors.push_back(snap);
  }
  network_.send(self_.id, m.joiner.id, grant);
  sync_peer(region);
  broadcast_neighbor_update(region);
}

void GeoGridNode::handle_split_join(NodeId /*from*/,
                                    const net::SplitJoinRequest& m) {
  auto it = owned_.find(m.region);
  if (pending_.active || it == owned_.end() || !it->second.is_primary() ||
      !it->second.full()) {
    network_.send(self_.id, m.joiner.id,
                  net::JoinReject{"region changed, retry"});
    return;
  }
  OwnedRegion& region = it->second;
  GEOGRID_DEBUG("node " << self_.id << " split-join " << m.region
                        << " rect " << region.rect.to_string()
                        << " joiner " << m.joiner.id);
  const NodeInfo departing_secondary = *region.peer;

  const Axis axis = overlay::split_axis_for_depth(region.split_depth);
  const auto [low, high] = region.rect.split(axis);
  const bool keep_low = low.covers_inclusive(self_.coord);
  const Rect my_half = keep_low ? low : high;
  const Rect other_half = keep_low ? high : low;

  const std::map<RegionId, RegionSnapshot> old_neighbors = region.neighbors;
  region.rect = my_half;
  region.split_depth += 1;
  region.load *= 0.5;
  region.peer.reset();

  // The old secondary founds the other half (half-full).
  RegionSnapshot fresh;
  fresh.region =
      RegionId{(self_.id.value << 12) | (next_local_region_++ & 0xfff)};
  fresh.rect = other_half;
  fresh.split_depth = region.split_depth;
  fresh.primary = departing_secondary;
  fresh.load = region.load;
  fresh.workload_index = fresh.primary.capacity > 0.0
                             ? fresh.load / fresh.primary.capacity
                             : fresh.load;

  // The joiner fills the half whose owner has less available capacity.
  const RegionSnapshot mine_snap_pre = snapshot_of(region);
  const bool joiner_with_me =
      dualpeer::pick_half_to_join(mine_snap_pre, fresh) == region.id;

  OwnerRole joiner_role = OwnerRole::kSecondary;
  if (joiner_with_me) {
    region.peer = m.joiner;
    peer_last_heard_[m.region] = loop_.now();
    if (dualpeer::joiner_takes_primary(m.joiner.capacity, self_.capacity)) {
      region.role = OwnerRole::kSecondary;
      joiner_role = OwnerRole::kPrimary;
    }
  } else {
    if (dualpeer::joiner_takes_primary(m.joiner.capacity,
                                       departing_secondary.capacity)) {
      fresh.secondary = departing_secondary;
      fresh.primary = m.joiner;
      fresh.workload_index = m.joiner.capacity > 0.0
                                 ? fresh.load / m.joiner.capacity
                                 : fresh.load;
      joiner_role = OwnerRole::kPrimary;
    } else {
      fresh.secondary = m.joiner;
    }
  }

  prune_neighbors(region);
  region.neighbors[fresh.region] = fresh;

  std::vector<RegionSnapshot> fresh_neighbors;
  for (const auto& [rid, snap] : old_neighbors) {
    if (snap.rect.edge_adjacent(fresh.rect)) fresh_neighbors.push_back(snap);
  }
  fresh_neighbors.push_back(snapshot_of(region));

  // Hand the new half to the old secondary (dropping its seat here).
  net::RegionHandoff handoff;
  handoff.region_state = fresh;
  handoff.neighbors = fresh_neighbors;
  handoff.vacate = region.id;
  network_.send(self_.id, departing_secondary.id, handoff);

  // Grant the joiner its seat.
  net::JoinGrant grant;
  grant.role = joiner_role;
  if (joiner_with_me) {
    grant.region_state = snapshot_of(region);
    for (const auto& [rid, snap] : region.neighbors) {
      grant.neighbors.push_back(snap);
    }
  } else {
    grant.region_state = fresh;
    grant.neighbors = fresh_neighbors;
  }
  network_.send(self_.id, m.joiner.id, grant);

  // Tell the old neighborhood about both halves.
  const RegionSnapshot mine = snapshot_of(region);
  for (const auto& [rid, snap] : old_neighbors) {
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{mine});
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{fresh});
  }
  if (joiner_with_me) sync_peer(region);
}

void GeoGridNode::handle_join_grant(const net::JoinGrant& m) {
  if (joined_) return;
  OwnedRegion region;
  region.id = m.region_state.region;
  region.rect = m.region_state.rect;
  region.split_depth = m.region_state.split_depth;
  region.role = m.role;
  region.load = m.region_state.load;
  if (m.role == OwnerRole::kPrimary) {
    region.peer = m.region_state.secondary;
    // The grantor may have recorded us as primary already.
    if (region.peer && region.peer->id == self_.id) {
      region.peer = m.region_state.primary.id == self_.id
                        ? std::nullopt
                        : std::optional<NodeInfo>(m.region_state.primary);
    }
  } else {
    region.peer = m.region_state.primary;
  }
  for (const auto& snap : m.neighbors) {
    if (snap.region != region.id &&
        snap.rect.edge_adjacent(region.rect)) {
      region.neighbors[snap.region] = snap;
    }
  }
  const RegionId rid = region.id;
  GEOGRID_DEBUG("node " << self_.id << " grant-adopts " << rid << " rect "
                        << region.rect.to_string() << " role "
                        << (region.role == OwnerRole::kPrimary ? "P" : "S"));
  owned_[rid] = std::move(region);
  joined_ = true;
  peer_last_heard_[rid] = loop_.now();
  for (const auto& [nid, nb] : owned_[rid].neighbors) {
    neighbor_last_heard_[nid] = loop_.now();
  }
  broadcast_neighbor_update(owned_[rid]);
  GEOGRID_DEBUG("node " << self_.id << " joined region " << rid);
}

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

OwnedRegion* GeoGridNode::covering_region(const Point& p) {
  for (auto& [rid, region] : owned_) {
    if (region.rect.covers(p) || region.rect.covers_inclusive(p)) {
      return &region;
    }
  }
  return nullptr;
}

void GeoGridNode::route_or_handle(net::Routed env) {
  if (covering_region(env.target) != nullptr) {
    handle_routed_payload(self_.id, env);
    return;
  }
  if (env.hops >= config_.max_route_hops) {
    // Expected for probes aimed at orphaned space (nobody covers the
    // target, so the envelope bounces between the nearest regions until
    // the hop budget runs out) — by design, not an error.
    GEOGRID_DEBUG("dropping routed message at hop limit, target "
                  << env.target);
    return;
  }
  // Candidates: every neighbor snapshot across our regions.
  std::vector<overlay::HopCandidate> candidates;
  std::vector<const RegionSnapshot*> snaps;
  for (const auto& [rid, region] : owned_) {
    for (const auto& [nid, snap] : region.neighbors) {
      if (owned_.contains(nid)) continue;
      candidates.push_back(overlay::HopCandidate{nid, snap.rect});
      snaps.push_back(&snap);
    }
  }
  const auto next = overlay::greedy_next(candidates, env.target);
  if (!next) {
    // Transient while neighbor tables converge after a join or repair; the
    // sender retries (joins re-bootstrap, queries are re-issued by apps).
    GEOGRID_DEBUG("node " << self_.id << " has no route toward "
                          << env.target);
    return;
  }
  const RegionSnapshot* chosen = nullptr;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].region == *next) {
      chosen = snaps[i];
      break;
    }
  }
  env.hops += 1;
  ++counters_.routed_forwarded;
  network_.send(self_.id, chosen->primary.id, std::move(env));
}

void GeoGridNode::handle_routed_payload(NodeId from, const net::Routed& env) {
  const Message inner = net::unwrap_routed(env);
  if (const auto* join = std::get_if<net::JoinRequest>(&inner)) {
    handle_join_request(from, *join);
  } else if (const auto* query = std::get_if<net::LocationQuery>(&inner)) {
    handle_location_query(*query);
  } else if (const auto* sub = std::get_if<net::Subscribe>(&inner)) {
    handle_subscribe(*sub);
  } else if (const auto* unsub = std::get_if<net::Unsubscribe>(&inner)) {
    handle_unsubscribe(*unsub);
  } else if (const auto* pub = std::get_if<net::Publish>(&inner)) {
    handle_publish(*pub);
  } else if (const auto* probe = std::get_if<net::OwnerProbe>(&inner)) {
    handle_owner_probe(*probe);
  } else if (const auto* update = std::get_if<net::LocationUpdate>(&inner)) {
    handle_location_update(*update);
  } else if (const auto* evict = std::get_if<net::UserHandoff>(&inner)) {
    handle_user_handoff(*evict);
  } else if (const auto* loc = std::get_if<net::LocateRequest>(&inner)) {
    handle_locate_request(*loc, env.hops);
  } else {
    GEOGRID_WARN("unexpected routed payload "
                 << net::message_name(net::message_type(inner)));
  }
}

// ---------------------------------------------------------------------------
// Application layer.
// ---------------------------------------------------------------------------

std::uint64_t GeoGridNode::submit_query(const Rect& area,
                                        const std::string& filter) {
  net::LocationQuery q;
  q.query_id = (static_cast<std::uint64_t>(self_.id.value) << 32) |
               ++next_request_id_;
  q.focal = self_;
  q.area = area;
  q.filter = filter;
  ++counters_.queries_submitted;
  route_or_handle(net::make_routed(area.center(), q));
  return q.query_id;
}

std::uint64_t GeoGridNode::subscribe(const Rect& area,
                                     const std::string& filter,
                                     double duration) {
  net::Subscribe s;
  s.sub_id = (static_cast<std::uint64_t>(self_.id.value) << 32) |
             ++next_request_id_;
  s.subscriber = self_;
  s.area = area;
  s.filter = filter;
  s.duration = duration;
  route_or_handle(net::make_routed(area.center(), s));
  return s.sub_id;
}

void GeoGridNode::unsubscribe(std::uint64_t sub_id, const Rect& area) {
  net::Unsubscribe u;
  u.sub_id = sub_id;
  u.subscriber = self_;
  u.area = area;
  route_or_handle(net::make_routed(area.center(), u));
}

void GeoGridNode::publish(const Point& location, const std::string& topic,
                          const std::string& payload) {
  net::Publish p;
  p.location = location;
  p.topic = topic;
  p.payload = payload;
  route_or_handle(net::make_routed(location, p));
}

void GeoGridNode::execute_query(const net::LocationQuery& q,
                                OwnedRegion& region) {
  ++counters_.queries_executed;
  net::QueryResult result;
  result.query_id = q.query_id;
  result.from_region = region.id;
  result.payload = "region " + region.rect.to_string();
  network_.send(self_.id, q.focal.id, result);
}

void GeoGridNode::handle_location_query(const net::LocationQuery& q) {
  OwnedRegion* covering = covering_region(q.area.center());
  if (covering == nullptr) {
    // Disseminated copy for a region we own that overlaps the query area.
    for (auto& [rid, region] : owned_) {
      if (region.is_primary() && region.rect.intersects(q.area)) {
        execute_query(q, region);
        return;
      }
    }
    return;
  }
  execute_query(q, *covering);
  if (q.disseminated) return;
  // Fan out to every neighbor region overlapping the query area.
  net::LocationQuery fanned = q;
  fanned.disseminated = true;
  for (const auto& [rid, snap] : covering->neighbors) {
    if (snap.rect.intersects(q.area)) {
      ++counters_.queries_disseminated;
      network_.send(self_.id, snap.primary.id, fanned);
    }
  }
}

void GeoGridNode::store_subscription(const net::Subscribe& s,
                                     OwnedRegion& region) {
  StoredSubscription stored;
  stored.sub = s;
  stored.expires = loop_.now() + s.duration;
  region.subscriptions.push_back(std::move(stored));
  region.app_version += 1;
  network_.send(self_.id, s.subscriber.id,
                net::SubscribeAck{s.sub_id, region.id});
  sync_peer(region);
}

void GeoGridNode::handle_subscribe(const net::Subscribe& s) {
  OwnedRegion* covering = covering_region(s.area.center());
  if (covering == nullptr) {
    for (auto& [rid, region] : owned_) {
      if (region.is_primary() && region.rect.intersects(s.area)) {
        store_subscription(s, region);
        return;
      }
    }
    return;
  }
  store_subscription(s, *covering);
  if (s.disseminated) return;
  net::Subscribe fanned = s;
  fanned.disseminated = true;
  for (const auto& [rid, snap] : covering->neighbors) {
    if (snap.rect.intersects(s.area)) {
      network_.send(self_.id, snap.primary.id, fanned);
    }
  }
}

void GeoGridNode::handle_unsubscribe(const net::Unsubscribe& u) {
  // Mirror of handle_subscribe: drop the subscription from the covering
  // region, then fan the cancellation out once to every neighbor region
  // that may have stored a disseminated copy.
  OwnedRegion* covering = covering_region(u.area.center());
  if (covering == nullptr) {
    for (auto& [rid, region] : owned_) {
      if (!region.is_primary()) continue;
      const auto dropped =
          std::erase_if(region.subscriptions, [&](const StoredSubscription& s) {
            return s.sub.sub_id == u.sub_id;
          });
      if (dropped > 0) {
        region.app_version += 1;
        sync_peer(region);
        return;
      }
    }
    return;
  }
  const auto dropped = std::erase_if(
      covering->subscriptions,
      [&](const StoredSubscription& s) { return s.sub.sub_id == u.sub_id; });
  if (dropped > 0) {
    covering->app_version += 1;
    sync_peer(*covering);
  }
  if (u.disseminated) return;
  net::Unsubscribe fanned = u;
  fanned.disseminated = true;
  for (const auto& [rid, snap] : covering->neighbors) {
    if (snap.rect.intersects(u.area)) {
      network_.send(self_.id, snap.primary.id, fanned);
    }
  }
}

void GeoGridNode::prune_expired_subscriptions(OwnedRegion& region) {
  const sim::Time now = loop_.now();
  std::erase_if(region.subscriptions, [now](const StoredSubscription& s) {
    return s.expires <= now;
  });
}

void GeoGridNode::handle_publish(const net::Publish& p) {
  OwnedRegion* covering = covering_region(p.location);
  if (covering == nullptr) return;
  ++counters_.publishes_handled;
  // Lazily drop expired subscriptions, then match the rest.
  prune_expired_subscriptions(*covering);
  for (const auto& stored : covering->subscriptions) {
    const net::Subscribe& sub = stored.sub;
    const bool in_area = sub.area.covers(p.location) ||
                         sub.area.covers_inclusive(p.location);
    const bool topic_ok = sub.filter.empty() || sub.filter == p.topic;
    if (in_area && topic_ok) {
      network_.send(self_.id, sub.subscriber.id,
                    net::Notify{sub.sub_id, p.topic, p.payload});
    }
  }
}

// ---------------------------------------------------------------------------
// Mobile-user layer.
// ---------------------------------------------------------------------------

void GeoGridNode::submit_location_update(UserId user, const Point& location,
                                         std::uint64_t seq,
                                         std::optional<Point> prev) {
  net::LocationUpdate m;
  m.user = user;
  m.location = location;
  m.seq = seq;
  if (prev) {
    m.has_prev = true;
    m.prev_location = *prev;
  }
  m.reporter = self_;
  ++counters_.location_updates_submitted;
  route_or_handle(net::make_routed(location, m));
}

std::uint64_t GeoGridNode::locate_user(UserId user, const Point& hint) {
  net::LocateRequest req;
  req.request_id = (static_cast<std::uint64_t>(self_.id.value) << 32) |
                   ++next_request_id_;
  req.requester = self_;
  req.user = user;
  req.hint = hint;
  route_or_handle(net::make_routed(hint, req));
  return req.request_id;
}

void GeoGridNode::handle_location_update(const net::LocationUpdate& m) {
  OwnedRegion* covering = covering_region(m.location);
  if (covering == nullptr) return;
  OwnedRegion& region = *covering;
  if (!region.is_primary() && region.peer) {
    // Routed envelopes hop between primaries, but a node can also hold a
    // secondary seat covering the target; the primary stays authoritative.
    network_.send(self_.id, region.peer->id, m);
    return;
  }
  mobility::LocationRecord rec;
  rec.user = m.user;
  rec.position = m.location;
  rec.seq = m.seq;
  rec.timestamp = loop_.now();
  if (!region.users.ingest(rec)) return;  // stale or replayed report
  ++counters_.location_updates_ingested;
  region.app_version += 1;
  network_.send(self_.id, m.reporter.id,
                net::LocationUpdateAck{m.user, m.seq, region.id});
  // Boundary crossing: the record moved here with the update; evict the
  // stale copy from the old owning region (routed toward the previous
  // position, so splits/merges/fail-overs en route cannot strand it).
  if (m.has_prev && !(region.rect.covers(m.prev_location) ||
                      region.rect.covers_inclusive(m.prev_location))) {
    ++counters_.user_handoffs;
    route_or_handle(net::make_routed(m.prev_location,
                                     net::UserHandoff{m.user, m.seq,
                                                      region.id}));
  }
  notify_presence(region, m);
  sync_peer(region);
}

void GeoGridNode::notify_presence(OwnedRegion& region,
                                  const net::LocationUpdate& m) {
  prune_expired_subscriptions(region);
  for (const auto& stored : region.subscriptions) {
    const net::Subscribe& sub = stored.sub;
    if (!sub.filter.empty() && sub.filter != kPresenceTopic) continue;
    const bool now_inside = sub.area.covers(m.location) ||
                            sub.area.covers_inclusive(m.location);
    if (!now_inside) continue;
    // Duplicate suppression: a user wandering *inside* the subscribed area
    // already fired when it entered; only the crossing notifies.
    if (m.has_prev && (sub.area.covers(m.prev_location) ||
                       sub.area.covers_inclusive(m.prev_location))) {
      continue;
    }
    net::Notify n;
    n.sub_id = sub.sub_id;
    n.topic = std::string(kPresenceTopic);
    n.payload = "user " + std::to_string(m.user.value);
    network_.send(self_.id, sub.subscriber.id, n);
    ++counters_.presence_notifies_sent;
  }
}

void GeoGridNode::handle_user_handoff(const net::UserHandoff& m) {
  for (auto& [rid, region] : owned_) {
    if (rid == m.new_region) continue;  // never evict from the new home
    if (region.users.erase_if_stale(m.user, m.seq)) {
      region.app_version += 1;
      if (region.is_primary()) sync_peer(region);
    }
  }
}

void GeoGridNode::handle_locate_request(const net::LocateRequest& m,
                                        std::uint16_t hops) {
  net::LocateReply reply;
  reply.request_id = m.request_id;
  reply.user = m.user;
  reply.hops = hops;
  // The hint may be slightly stale; any seat we hold can answer (the
  // secondary's replica serves reads after a fail-over too).
  for (auto& [rid, region] : owned_) {
    if (const auto rec = region.users.locate(m.user)) {
      reply.found = true;
      reply.location = rec->position;
      reply.seq = rec->seq;
      reply.region = rid;
      break;
    }
  }
  ++counters_.locates_served;
  network_.send(self_.id, m.requester.id, reply);
}

void GeoGridNode::set_region_load(RegionId region, double load) {
  auto it = owned_.find(region);
  if (it != owned_.end()) it->second.load = load;
}

double GeoGridNode::workload_index() const {
  double load = 0.0;
  for (const auto& [rid, region] : owned_) {
    if (region.is_primary()) load += region.load;
  }
  return self_.capacity > 0.0 ? load / self_.capacity : load;
}

}  // namespace geogrid::core
