// Public configuration surface of the GeoGrid library.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/geometry.h"
#include "loadbalance/mechanism.h"
#include "workload/capacity.h"
#include "workload/hotspot.h"

namespace geogrid::core {

/// The three system variants the paper evaluates.
enum class GridMode : std::uint8_t {
  kBasic = 0,             ///< §2.1-2.2: one owner per region, split on join
  kDualPeer = 1,          ///< §2.3: + secondary owners, capacity-aware join
  kDualPeerAdaptive = 2,  ///< §2.4: + the eight load-balance mechanisms
  /// Comparison baseline: CAN-style bootstrap — the joiner splits the
  /// region covering a uniformly *random* point instead of its own
  /// coordinate, discarding GeoGrid's geographic node-to-region mapping.
  kCanBaseline = 3,
};

std::string_view grid_mode_name(GridMode mode);

/// Configuration of one simulated GeoGrid deployment.
struct SimulationOptions {
  GridMode mode = GridMode::kDualPeerAdaptive;
  std::size_t node_count = 1000;
  workload::HotSpotField::Options field{};  ///< plane + hot-spot model
  workload::CapacityDistribution capacities =
      workload::CapacityDistribution::gnutella();
  loadbalance::PlannerConfig planner{};
  std::uint64_t seed = 1;
  /// Shard/worker count of the engine-mode ingestion directory built by
  /// GridSimulation::make_location_directory.  0 = hardware threads,
  /// 1 = serial.  Results are shard-count independent by contract.
  std::size_t ingest_shards = 0;
  /// Worker-thread count of the batched read engine built by
  /// GridSimulation::make_query_engine.  0 = hardware threads, 1 = serial.
  /// Results are thread-count independent by contract.
  std::size_t query_threads = 0;
  /// Record per-epoch ingest deltas on directories built by
  /// make_location_directory, feeding the incremental pub/sub path
  /// (pubsub::NotificationEngine).  Off by default: pure-ingest
  /// deployments skip the bookkeeping.
  bool track_deltas = false;
  /// Worker-thread count of the notification match phase built by
  /// GridSimulation::make_notification_engine.  0 = hardware threads,
  /// 1 = serial.  Results are thread-count independent by contract.
  std::size_t notify_threads = 0;
};

}  // namespace geogrid::core
