// Public configuration surface of the GeoGrid library.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/geometry.h"
#include "loadbalance/mechanism.h"
#include "workload/capacity.h"
#include "workload/hotspot.h"

namespace geogrid::core {

/// The three system variants the paper evaluates.
enum class GridMode : std::uint8_t {
  kBasic = 0,             ///< §2.1-2.2: one owner per region, split on join
  kDualPeer = 1,          ///< §2.3: + secondary owners, capacity-aware join
  kDualPeerAdaptive = 2,  ///< §2.4: + the eight load-balance mechanisms
  /// Comparison baseline: CAN-style bootstrap — the joiner splits the
  /// region covering a uniformly *random* point instead of its own
  /// coordinate, discarding GeoGrid's geographic node-to-region mapping.
  kCanBaseline = 3,
};

std::string_view grid_mode_name(GridMode mode);

/// Configuration of one simulated GeoGrid deployment.
struct SimulationOptions {
  GridMode mode = GridMode::kDualPeerAdaptive;
  std::size_t node_count = 1000;
  workload::HotSpotField::Options field{};  ///< plane + hot-spot model
  workload::CapacityDistribution capacities =
      workload::CapacityDistribution::gnutella();
  loadbalance::PlannerConfig planner{};
  std::uint64_t seed = 1;
  /// Shard/worker count of the engine-mode ingestion directory built by
  /// GridSimulation::make_location_directory.  0 = hardware threads,
  /// 1 = serial.  Results are shard-count independent by contract.
  std::size_t ingest_shards = 0;
  /// Worker-thread count of the batched read engine built by
  /// GridSimulation::make_query_engine.  0 = hardware threads, 1 = serial.
  /// Results are thread-count independent by contract.
  std::size_t query_threads = 0;
  /// Record per-epoch ingest deltas on directories built by
  /// make_location_directory, feeding the incremental pub/sub path
  /// (pubsub::NotificationEngine).  Off by default: pure-ingest
  /// deployments skip the bookkeeping.
  bool track_deltas = false;
  /// Worker-thread count of the notification match phase built by
  /// GridSimulation::make_notification_engine.  0 = hardware threads,
  /// 1 = serial.  Results are thread-count independent by contract.
  std::size_t notify_threads = 0;
};

/// Configuration of the serving edge (serve::Server) — the event loop that
/// puts the engines behind real sockets.  All sizes are deliberately
/// test-tunable: the backpressure and framing tests shrink them to single
/// digits to force the rare paths deterministically.
struct ServeOptions {
  /// TCP port to listen on (loopback only).  0 = kernel-assigned
  /// ephemeral port, readable from Server::port() after start().
  std::uint16_t port = 0;
  std::size_t listen_backlog = 128;

  /// Ingest batching: staged LocationUpdates are applied to the directory
  /// in one batch once this many are pending (or the deadline expires).
  std::size_t ingest_flush_records = 4096;
  /// Oldest staged update may wait at most this long before a flush.
  std::uint32_t flush_deadline_ms = 25;
  /// Mid-cycle hard cap on staged queries; the natural flush point is the
  /// end of every event-loop cycle, so this only bounds a single cycle
  /// that reads an enormous burst.
  std::size_t query_flush_requests = 8192;

  /// Backpressure watermark: once this many ingest records are staged,
  /// the loop stops reading from sockets that contribute updates until
  /// the next flush drains the queue.
  std::size_t backpressure_records = 65536;
  /// Hard ceiling on one frame's body; a peer announcing more is cut off
  /// before anything is buffered.
  std::size_t max_frame_bytes = 1u << 20;
  /// A connection whose unsent output exceeds this stops being read from
  /// (its requests would only pile up more output); at 4x this the peer
  /// is declared a dead consumer and closed.
  std::size_t outbuf_gate_bytes = 1u << 20;

  /// Use the portable poll(2) backend instead of epoll.  Same semantics,
  /// chosen at runtime so tests exercise both.
  bool use_poll = false;
};

}  // namespace geogrid::core
