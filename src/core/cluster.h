// Protocol-mode cluster harness.
//
// Wires an EventLoop, a simulated Network, a BootstrapServer and a set of
// GeoGridNodes into one runnable deployment.  Tests and examples use it to
// stand up real protocol networks in a few lines: spawn nodes, advance
// virtual time, inject failures, apply hot-spot loads, and inspect the
// global region map the nodes have collectively built.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/node.h"
#include "services/bootstrap.h"
#include "services/geolocator.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "workload/capacity.h"
#include "workload/hotspot.h"

namespace geogrid::core {

class Cluster {
 public:
  struct Options {
    GeoGridNode::Config node{};
    sim::Network::Options network{};
    workload::CapacityDistribution capacities =
        workload::CapacityDistribution::gnutella();
    std::uint64_t seed = 1;
    /// Virtual seconds to wait between consecutive node launches (staggered
    /// joins avoid thundering-herd races, as a deployment would).
    double join_spacing = 0.5;
  };

  explicit Cluster(Options options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns a node at a random coordinate with a sampled capacity and
  /// starts it after the configured spacing.  Returns the node.
  GeoGridNode& spawn();

  /// Spawns a node at an explicit coordinate/capacity.
  GeoGridNode& spawn_at(const Point& coord, double capacity);

  /// Spawns `count` nodes and runs the loop until every one has joined.
  void grow(std::size_t count);

  /// Advances virtual time.
  void run_for(double seconds);

  /// Runs until every started node reports joined() (with a time cap).
  bool run_until_joined(double max_seconds = 600.0);

  sim::EventLoop& loop() noexcept { return loop_; }
  sim::Network& network() noexcept { return network_; }
  services::BootstrapServer& bootstrap() noexcept { return *bootstrap_; }
  std::vector<std::unique_ptr<GeoGridNode>>& nodes() noexcept {
    return nodes_;
  }

  /// The node currently owning (primary) the region covering `p`, if the
  /// collective region map has exactly one such owner.
  GeoGridNode* primary_covering(const Point& p);

  /// Pushes per-region loads from a hot-spot field into every node (the
  /// measurement harness role; a deployment would count queries instead).
  void apply_field(const workload::HotSpotField& field);

  /// Sum of areas of all primary-owned regions (tiling check: should equal
  /// the plane area exactly once the network is quiescent).
  double covered_area() const;

  /// Distinct regions with exactly one primary; duplicate or missing
  /// primaries are returned as human-readable violations.
  std::vector<std::string> check_consistency() const;

  Rng& rng() noexcept { return rng_; }

 private:
  Options options_;
  Rng rng_;
  sim::EventLoop loop_;
  sim::Network network_;
  std::unique_ptr<services::BootstrapServer> bootstrap_;
  std::unique_ptr<services::Geolocator> geolocator_;
  std::vector<std::unique_ptr<GeoGridNode>> nodes_;
  std::uint32_t next_node_id_ = 1;  ///< 0 is the bootstrap server
};

}  // namespace geogrid::core
