// GeoGridNode: timers, heartbeats, failure recovery, departure, and the
// load-balance adaptation handshakes.  (The join/routing/application half of
// the class lives in node.cc.)
#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "core/node.h"
#include "core/node_internal.h"
#include "loadbalance/snapshot_planner.h"

namespace geogrid::core {

using loadbalance::Mechanism;
using loadbalance::Plan;
using net::Message;
using net::NodeInfo;
using net::OwnerRole;
using net::RegionSnapshot;

// ---------------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------------

void GeoGridNode::schedule_timers() {
  // Each timer reschedules itself; `leaving_` gates shutdown.  Initial
  // phases are jittered so the fleet does not tick in lockstep.  The
  // closure holds only a weak reference to itself (owned by timer_fns_) to
  // avoid a shared_ptr cycle; reschedules are not individually tracked —
  // shutdown is via the leaving_ flag.
  const auto arm = [this](double interval, auto member) {
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = tick;
    *tick = [this, interval, member, weak] {
      if (leaving_) return;
      (this->*member)();
      if (auto fn = weak.lock()) loop_.schedule_after(interval, *fn);
    };
    timer_fns_.push_back(tick);
    timers_.push_back(
        loop_.schedule_after(rng_.uniform(0.0, interval), *tick));
  };
  arm(config_.peer_sync_interval, &GeoGridNode::tick_peer_sync);
  arm(config_.heartbeat_interval, &GeoGridNode::tick_heartbeat);
  arm(config_.stats_interval, &GeoGridNode::tick_stats);
  arm(config_.failure_timeout / 2.0, &GeoGridNode::tick_failure_check);
  if (config_.enable_adaptation()) {
    arm(config_.adaptation_interval, &GeoGridNode::tick_adaptation);
  }
}

void GeoGridNode::sync_peer(OwnedRegion& region) {
  if (!region.is_primary() || !region.peer) return;
  net::SyncState sync;
  sync.region = region.id;
  sync.version = region.app_version;
  sync.payload = detail::encode_app_state(region);
  network_.send(self_.id, region.peer->id, sync);
}

void GeoGridNode::tick_peer_sync() {
  for (auto& [rid, region] : owned_) {
    // Expiry cleanup runs on every seat — secondaries included — so a
    // replica that fails over holds no lapsed subscriptions to fire from.
    prune_expired_subscriptions(region);
    if (!region.peer) continue;
    net::Heartbeat hb;
    hb.region = rid;
    hb.load = region.load;
    hb.available = std::max(0.0, self_.capacity - region.load);
    network_.send(self_.id, region.peer->id, hb);
    if (region.is_primary()) sync_peer(region);
  }
}

void GeoGridNode::tick_heartbeat() {
  for (auto& [rid, region] : owned_) {
    if (!region.is_primary()) continue;
    net::Heartbeat hb;
    hb.region = rid;
    hb.load = region.load;
    hb.available = std::max(0.0, self_.capacity - region.load);
    for (const auto& [nid, snap] : region.neighbors) {
      network_.send(self_.id, snap.primary.id, hb);
    }
  }
}

void GeoGridNode::tick_stats() {
  net::LoadStatsExchange stats;
  for (const auto& [rid, region] : owned_) {
    if (region.is_primary()) stats.regions.push_back(snapshot_of(region));
  }
  if (stats.regions.empty()) return;
  // One gossip message per distinct neighbor primary.
  std::vector<NodeId> recipients;
  for (const auto& [rid, region] : owned_) {
    for (const auto& [nid, snap] : region.neighbors) {
      if (std::find(recipients.begin(), recipients.end(),
                    snap.primary.id) == recipients.end()) {
        recipients.push_back(snap.primary.id);
      }
    }
  }
  for (NodeId to : recipients) network_.send(self_.id, to, stats);
}

void GeoGridNode::tick_failure_check() {
  const sim::Time now = loop_.now();

  // Dead dual peers.
  for (auto& [rid, region] : owned_) {
    if (!region.peer) continue;
    const auto heard = peer_last_heard_.find(rid);
    const sim::Time last = heard == peer_last_heard_.end() ? 0.0 : heard->second;
    if (now - last <= config_.failure_timeout) continue;
    GEOGRID_DEBUG("node " << self_.id << " declares peer "
                          << region.peer->id << " of " << rid << " dead");
    if (region.is_primary()) {
      region.peer.reset();  // region drops to half-full
    } else {
      // Fail-over: activate the replica and take the region over.
      region.role = OwnerRole::kPrimary;
      region.peer.reset();
      ++counters_.takeovers;
      broadcast_neighbor_update(region);
      for (const auto& [nid, snap] : region.neighbors) {
        network_.send(self_.id, snap.primary.id,
                      net::TakeoverNotice{snapshot_of(region)});
      }
    }
  }

  // Suspected-dead neighbor regions: a half-full neighbor region whose
  // primary went silent has no replica to recover it.  The silence may
  // also mean our table entry is stale (the region split or merged and we
  // fell out of its neighborhood), so before adopting anything we route an
  // OwnerProbe to the region's last known center: a living owner replies
  // and clears the suspicion; a reply naming a different region retires
  // our stale entry.  Only a probe that stays unanswered for a full
  // failure-timeout grace period leads to caretaker adoption.
  for (auto& [rid, region] : owned_) {
    if (!region.is_primary()) continue;
    std::vector<RegionId> suspects;
    for (const auto& [nid, snap] : region.neighbors) {
      const auto heard = neighbor_last_heard_.find(nid);
      const sim::Time last =
          heard == neighbor_last_heard_.end() ? 0.0 : heard->second;
      if (last == 0.0) continue;  // never heard: just joined, give it time
      if (now - last <= config_.failure_timeout * 2.0) continue;
      if (snap.secondary) continue;  // its replica will take over
      suspects.push_back(nid);
    }
    for (RegionId nid : suspects) {
      const RegionSnapshot snap = region.neighbors.at(nid);
      const auto suspect = suspect_since_.find(nid);
      if (suspect == suspect_since_.end()) {
        suspect_since_[nid] = now;
        route_or_handle(
            net::make_routed(snap.rect.center(), net::OwnerProbe{nid, self_}));
        continue;
      }
      if (now - suspect->second <= config_.failure_timeout) continue;
      // Grace expired.  If anything refreshed the entry since the probe,
      // the region is alive after all.
      if (neighbor_last_heard_[nid] > suspect->second) {
        suspect_since_.erase(nid);
        continue;
      }
      suspect_since_.erase(nid);
      // Deterministic caretaker election among the neighbors we can see.
      bool smallest = true;
      for (const auto& [oid, other] : region.neighbors) {
        if (oid == nid) continue;
        if (other.rect.edge_adjacent(snap.rect) &&
            other.primary.id < self_.id) {
          smallest = false;
          break;
        }
      }
      region.neighbors.erase(nid);
      neighbor_last_heard_.erase(nid);
      if (!smallest || owned_.contains(nid)) continue;
      adopt_orphan(nid, snap);
    }
  }
}

void GeoGridNode::adopt_orphan(RegionId region_id,
                               const RegionSnapshot& snap) {
  OwnedRegion adopted;
  adopted.id = region_id;
  adopted.rect = snap.rect;
  adopted.split_depth = snap.split_depth;
  adopted.role = OwnerRole::kPrimary;
  adopted.load = snap.load;
  for (const auto& [rid2, r2] : owned_) {
    for (const auto& [oid, other] : r2.neighbors) {
      if (oid != region_id && other.rect.edge_adjacent(snap.rect)) {
        adopted.neighbors[oid] = other;
      }
    }
  }
  owned_[region_id] = std::move(adopted);
  ++counters_.takeovers;
  broadcast_neighbor_update(owned_[region_id]);
  // Flood the takeover a few hops wide: a rival caretaker whose view of
  // the orphan's neighborhood is disjoint from ours still hears of the
  // claim and the smaller-node-id rule can settle it.
  net::TakeoverNotice claim{snapshot_of(owned_[region_id]), /*flood_ttl=*/3};
  std::vector<NodeId> audience;
  for (const auto& [rid2, r2] : owned_) {
    for (const auto& [oid, other] : r2.neighbors) {
      if (std::find(audience.begin(), audience.end(), other.primary.id) ==
          audience.end()) {
        audience.push_back(other.primary.id);
      }
    }
  }
  for (const NodeId to : audience) network_.send(self_.id, to, claim);
  GEOGRID_DEBUG("node " << self_.id << " adopted orphan region "
                        << region_id);
}

void GeoGridNode::handle_owner_probe(const net::OwnerProbe& m) {
  // We cover the probed area: tell the prober who actually owns it.
  // (route_or_handle only delivers this when some owned region covers the
  // probed center.)
  for (auto& [rid, region] : owned_) {
    if (!region.is_primary()) continue;
    net::NeighborUpdate update{snapshot_of(region)};
    if (rid == m.region) {
      network_.send(self_.id, m.prober.id, update);  // alive and well
      return;
    }
  }
  // The probed region id is not ours: it was split, merged or renamed.
  // Retire the prober's stale entry and teach it the covering region.
  network_.send(self_.id, m.prober.id, net::NeighborRemove{m.region});
  for (auto& [rid, region] : owned_) {
    if (region.is_primary()) {
      network_.send(self_.id, m.prober.id,
                    net::NeighborUpdate{snapshot_of(region)});
    }
  }
}

// ---------------------------------------------------------------------------
// Maintenance message handlers.
// ---------------------------------------------------------------------------

void GeoGridNode::handle_heartbeat(NodeId from, const net::Heartbeat& m) {
  if (auto it = owned_.find(m.region);
      it != owned_.end() && it->second.peer &&
      it->second.peer->id == from) {
    peer_last_heard_[m.region] = loop_.now();
    if (!it->second.is_primary()) it->second.load = m.load;
    return;
  }
  for (auto& [rid, region] : owned_) {
    auto nb = region.neighbors.find(m.region);
    if (nb == region.neighbors.end()) continue;
    neighbor_last_heard_[m.region] = loop_.now();
    nb->second.load = m.load;
    nb->second.workload_index =
        nb->second.primary.capacity > 0.0
            ? m.load / nb->second.primary.capacity
            : m.load;
  }
}

void GeoGridNode::handle_load_stats(NodeId /*from*/,
                                    const net::LoadStatsExchange& m) {
  for (const auto& snap : m.regions) {
    neighbor_last_heard_[snap.region] = loop_.now();
    for (auto& [rid, region] : owned_) {
      if (snap.region == rid) continue;
      if (snap.rect.edge_adjacent(region.rect)) {
        region.neighbors[snap.region] = snap;
      } else {
        region.neighbors.erase(snap.region);
      }
    }
  }
}

void GeoGridNode::handle_neighbor_update(const net::NeighborUpdate& m) {
  const RegionSnapshot& snap = m.snapshot;
  neighbor_last_heard_[snap.region] = loop_.now();
  // Caretaker-conflict relay: if this update names a different primary than
  // our table held for the same region, tell the displaced primary so the
  // smaller-node-id-wins rule can resolve conflicts even when the two
  // claimants cannot see each other directly.
  for (auto& [rid, region] : owned_) {
    const auto nb = region.neighbors.find(snap.region);
    if (nb == region.neighbors.end()) continue;
    const NodeId old_primary = nb->second.primary.id;
    if (old_primary != snap.primary.id && old_primary != self_.id &&
        snap.primary.id != self_.id &&
        (!snap.secondary || snap.secondary->id != old_primary)) {
      network_.send(self_.id, old_primary, net::TakeoverNotice{snap});
    }
    break;
  }
  if (auto it = owned_.find(snap.region); it != owned_.end()) {
    // Update about a region we hold a seat in: refresh peer identity
    // (ownership may have changed under an adaptation).
    OwnedRegion& region = it->second;
    if (region.is_primary() && snap.primary.id != self_.id &&
        snap.secondary && snap.secondary->id == self_.id) {
      GEOGRID_DEBUG("node " << self_.id << " demoted in " << snap.region
                            << " by update from " << snap.primary.id);
      region.role = OwnerRole::kSecondary;
      region.peer = snap.primary;
    } else if (!region.is_primary() && snap.primary.id != self_.id) {
      region.peer = snap.primary;
    }
    return;
  }
  for (auto& [rid, region] : owned_) {
    if (snap.rect.edge_adjacent(region.rect)) {
      region.neighbors[snap.region] = snap;
    } else {
      region.neighbors.erase(snap.region);
    }
  }
}

void GeoGridNode::handle_neighbor_remove(const net::NeighborRemove& m) {
  for (auto& [rid, region] : owned_) region.neighbors.erase(m.region);
  neighbor_last_heard_.erase(m.region);
  suspect_since_.erase(m.region);
}

void GeoGridNode::handle_takeover(const net::TakeoverNotice& m) {
  const RegionSnapshot& snap = m.snapshot;
  // Forward flooded caretaker claims (dedup per region/claimant pair).
  if (m.flood_ttl > 0) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(snap.region.value) << 32) |
        snap.primary.id.value;
    if (seen_searches_.insert(key ^ 0x7a6b0ff0c0ffeeULL).second) {
      net::TakeoverNotice forwarded = m;
      forwarded.flood_ttl = static_cast<std::uint8_t>(m.flood_ttl - 1);
      if (forwarded.flood_ttl > 0) {
        std::vector<NodeId> audience;
        for (const auto& [rid, region] : owned_) {
          for (const auto& [nid, nb] : region.neighbors) {
            if (nb.primary.id == snap.primary.id) continue;
            if (std::find(audience.begin(), audience.end(),
                          nb.primary.id) == audience.end()) {
              audience.push_back(nb.primary.id);
            }
          }
        }
        for (const NodeId to : audience) {
          network_.send(self_.id, to, forwarded);
        }
      }
    }
  }
  if (auto it = owned_.find(snap.region); it != owned_.end()) {
    OwnedRegion& region = it->second;
    if (region.is_primary() && snap.primary.id != self_.id) {
      // Two nodes believe they lead this region.  Smaller node id wins;
      // the loser demotes (keeping its seat when it is the claimed
      // secondary — mutual peer confusion after a false death) or drops,
      // and the winner corrects the loser directly.
      if (snap.primary.id < self_.id) {
        if (region.peer && region.peer->id == snap.primary.id) {
          region.role = OwnerRole::kSecondary;  // resume the backup seat
          peer_last_heard_[snap.region] = loop_.now();
        } else if (snap.secondary && snap.secondary->id == self_.id) {
          region.role = OwnerRole::kSecondary;
          region.peer = snap.primary;
          peer_last_heard_[snap.region] = loop_.now();
        } else {
          owned_.erase(it);
          peer_last_heard_.erase(snap.region);
        }
      } else {
        network_.send(self_.id, snap.primary.id,
                      net::TakeoverNotice{snapshot_of(region)});
      }
      return;
    }
    if (!region.is_primary()) region.peer = snap.primary;
    return;
  }
  handle_neighbor_update(net::NeighborUpdate{snap});
}

void GeoGridNode::handle_leave_notice(NodeId from, const net::LeaveNotice& m) {
  auto it = owned_.find(m.region);
  if (it != owned_.end() && it->second.peer &&
      it->second.peer->id == from) {
    OwnedRegion& region = it->second;
    region.peer.reset();
    peer_last_heard_.erase(m.region);
    if (m.was_primary && !region.is_primary()) {
      // "The departure of the primary owner will cause the activation of
      // the secondary owner."
      region.role = OwnerRole::kPrimary;
      ++counters_.takeovers;
      broadcast_neighbor_update(region);
    }
    return;
  }
  // A neighbor's owner left; its successor will announce itself.
}

void GeoGridNode::handle_region_handoff(const net::RegionHandoff& m) {
  if (m.vacate.valid()) {
    owned_.erase(m.vacate);
    peer_last_heard_.erase(m.vacate);
  }
  const RegionSnapshot& snap = m.region_state;
  OwnedRegion region;
  region.id = snap.region;
  region.rect = snap.rect;
  region.split_depth = snap.split_depth;
  region.load = snap.load;
  if (snap.primary.id == self_.id) {
    region.role = OwnerRole::kPrimary;
    region.peer = snap.secondary;
  } else {
    region.role = OwnerRole::kSecondary;
    region.peer = snap.primary;
  }
  for (const auto& nb : m.neighbors) {
    if (nb.region != region.id && nb.rect.edge_adjacent(region.rect)) {
      region.neighbors[nb.region] = nb;
    }
  }
  const RegionId rid = region.id;
  GEOGRID_DEBUG("node " << self_.id << " handoff-adopts " << rid << " rect "
                        << region.rect.to_string() << " vacate " << m.vacate);
  owned_[rid] = std::move(region);
  peer_last_heard_[rid] = loop_.now();
  // Fresh liveness grace for the inherited neighbor table: heartbeats from
  // these regions only start flowing once our update below lands.
  for (const auto& [nid, nb] : owned_[rid].neighbors) {
    neighbor_last_heard_[nid] = loop_.now();
  }
  broadcast_neighbor_update(owned_[rid]);
  if (owned_[rid].is_primary()) {
    for (const auto& [nid, nb] : owned_[rid].neighbors) {
      network_.send(self_.id, nb.primary.id,
                    net::TakeoverNotice{snapshot_of(owned_[rid])});
    }
  }
}

// ---------------------------------------------------------------------------
// Departure.
// ---------------------------------------------------------------------------

void GeoGridNode::leave() {
  if (!started_ || leaving_) return;
  leaving_ = true;
  for (auto& [rid, region] : owned_) {
    if (region.peer) {
      network_.send(self_.id, region.peer->id,
                    net::LeaveNotice{rid, region.is_primary()});
      continue;
    }
    // Last owner: hand the region to the least-loaded known neighbor.
    const RegionSnapshot* caretaker = nullptr;
    for (const auto& [nid, snap] : region.neighbors) {
      if (caretaker == nullptr ||
          snap.workload_index < caretaker->workload_index) {
        caretaker = &snap;
      }
    }
    if (caretaker == nullptr) continue;  // we were the whole grid
    net::RegionHandoff handoff;
    handoff.region_state = snapshot_of(region);
    handoff.region_state.primary = caretaker->primary;
    handoff.region_state.secondary.reset();
    for (const auto& [nid, snap] : region.neighbors) {
      handoff.neighbors.push_back(snap);
    }
    network_.send(self_.id, caretaker->primary.id, handoff);
  }
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  timer_fns_.clear();
  owned_.clear();
  joined_ = false;
  network_.detach(self_.id);
}

void GeoGridNode::crash() {
  if (!started_) return;
  leaving_ = true;  // silences timers; no goodbye messages
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  timer_fns_.clear();
  network_.set_up(self_.id, false);
}

// ---------------------------------------------------------------------------
// Adaptation.
// ---------------------------------------------------------------------------

void GeoGridNode::clear_adaptation_state() {
  pending_ = PendingAdaptation{};
}

void GeoGridNode::tick_adaptation() {
  if (!joined_) return;
  if (pending_.active) {
    // Handshake or search stuck: give up and re-plan next tick.
    if (loop_.now() - pending_.started > 2.0 * config_.adaptation_interval) {
      clear_adaptation_state();
    }
    return;
  }

  // Hottest primary region is the adaptation subject.
  OwnedRegion* subject = nullptr;
  for (auto& [rid, region] : owned_) {
    if (!region.is_primary()) continue;
    if (subject == nullptr || region.load > subject->load) {
      subject = &region;
    }
  }
  if (subject == nullptr || subject->neighbors.empty()) return;

  std::vector<RegionSnapshot> neighbors;
  neighbors.reserve(subject->neighbors.size());
  for (const auto& [nid, snap] : subject->neighbors) {
    neighbors.push_back(snap);
  }
  if (!loadbalance::should_adapt_snapshots(workload_index(), neighbors,
                                           config_.planner.trigger_ratio)) {
    return;
  }

  const RegionSnapshot subject_snap = snapshot_of(*subject);
  const Plan local =
      loadbalance::plan_local(subject_snap, neighbors, config_.planner);
  if (local) {
    const RegionSnapshot* partner_snap = nullptr;
    if (local.partner.valid()) {
      partner_snap = &subject->neighbors.at(local.partner);
    }
    initiate_plan(local, partner_snap ? *partner_snap : RegionSnapshot{});
    return;
  }

  // No local mechanism applies: TTL-guided search for remote candidates.
  pending_.active = true;
  pending_.searching = true;
  pending_.subject = subject->id;
  pending_.started = loop_.now();
  pending_.search_id = ++next_search_id_;
  net::TtlSearchRequest search;
  search.search_id = pending_.search_id;
  search.origin = self_;
  search.want = subject_snap.full() ? net::SearchWant::kSecondary
                                    : net::SearchWant::kSecondary;
  search.min_capacity = self_.capacity;
  search.max_index = subject_snap.workload_index;
  search.ttl = static_cast<std::uint8_t>(config_.planner.search_ttl);
  search.depth = 1;
  for (const auto& [nid, snap] : subject->neighbors) {
    network_.send(self_.id, snap.primary.id, search);
  }
  timers_.push_back(loop_.schedule_after(config_.search_wait,
                                         [this] { finish_ttl_search(); }));
}

void GeoGridNode::finish_ttl_search() {
  if (!pending_.active || !pending_.searching) return;
  pending_.searching = false;
  auto subject_it = owned_.find(pending_.subject);
  if (subject_it == owned_.end() || !subject_it->second.is_primary() ||
      pending_.search_candidates.empty()) {
    clear_adaptation_state();
    return;
  }
  const RegionSnapshot subject_snap = snapshot_of(subject_it->second);
  const Plan remote = loadbalance::plan_remote(
      subject_snap, pending_.search_candidates, config_.planner);
  if (!remote) {
    clear_adaptation_state();
    return;
  }
  const RegionSnapshot* partner_snap = nullptr;
  for (const auto& c : pending_.search_candidates) {
    if (c.region == remote.partner) {
      partner_snap = &c;
      break;
    }
  }
  const RegionSnapshot partner_copy = *partner_snap;
  clear_adaptation_state();
  initiate_plan(remote, partner_copy);
}

void GeoGridNode::initiate_plan(const Plan& plan,
                                const RegionSnapshot& partner_snapshot) {
  auto it = owned_.find(plan.subject);
  if (it == owned_.end()) return;
  OwnedRegion& subject = it->second;
  ++counters_.adaptations_started;

  pending_.active = true;
  pending_.searching = false;
  pending_.mechanism = plan.mechanism;
  pending_.subject = plan.subject;
  pending_.partner = plan.partner;
  pending_.partner_snapshot = partner_snapshot;
  pending_.started = loop_.now();

  switch (plan.mechanism) {
    case Mechanism::kSplitRegion:
      execute_local_split(subject);
      return;
    case Mechanism::kStealSecondary:
    case Mechanism::kStealRemoteSecondary: {
      net::StealSecondaryRequest req;
      req.victim_region = plan.partner;
      req.overloaded = snapshot_of(subject);
      send_to_region_primary(partner_snapshot, req);
      return;
    }
    case Mechanism::kSwitchPrimary:
    case Mechanism::kSwitchWithRemotePrimary:
    case Mechanism::kSwitchWithNeighborSecondary:
    case Mechanism::kSwitchWithRemoteSecondary: {
      net::SwitchRequest req;
      req.kind = (plan.mechanism == Mechanism::kSwitchPrimary ||
                  plan.mechanism == Mechanism::kSwitchWithRemotePrimary)
                     ? net::SwitchKind::kPrimaryWithPrimary
                     : net::SwitchKind::kPrimaryWithSecondary;
      req.proposer_region = snapshot_of(subject);
      for (const auto& [nid, snap] : subject.neighbors) {
        req.proposer_neighbors.push_back(snap);
      }
      req.target_region = plan.partner;
      send_to_region_primary(partner_snapshot, req);
      return;
    }
    case Mechanism::kMergeNeighbor: {
      net::MergeRequest req;
      req.proposer_region = snapshot_of(subject);
      for (const auto& [nid, snap] : subject.neighbors) {
        req.proposer_neighbors.push_back(snap);
      }
      req.target_region = plan.partner;
      send_to_region_primary(partner_snapshot, req);
      return;
    }
  }
}

void GeoGridNode::execute_local_split(OwnedRegion& region) {
  assert(region.full() && region.is_primary());
  const NodeInfo peer = *region.peer;
  const Axis axis = overlay::split_axis_for_depth(region.split_depth);
  const auto [low, high] = region.rect.split(axis);
  const bool keep_low = low.covers_inclusive(self_.coord);

  const std::map<RegionId, RegionSnapshot> old_neighbors = region.neighbors;
  region.rect = keep_low ? low : high;
  region.split_depth += 1;
  region.load *= 0.5;
  region.peer.reset();

  RegionSnapshot fresh;
  fresh.region =
      RegionId{(self_.id.value << 12) | (next_local_region_++ & 0xfff)};
  fresh.rect = keep_low ? high : low;
  fresh.split_depth = region.split_depth;
  fresh.primary = peer;
  fresh.load = region.load;
  fresh.workload_index =
      peer.capacity > 0.0 ? fresh.load / peer.capacity : fresh.load;

  prune_neighbors(region);
  region.neighbors[fresh.region] = fresh;

  net::RegionHandoff handoff;
  handoff.region_state = fresh;
  for (const auto& [nid, snap] : old_neighbors) {
    if (snap.rect.edge_adjacent(fresh.rect)) {
      handoff.neighbors.push_back(snap);
    }
  }
  handoff.neighbors.push_back(snapshot_of(region));
  handoff.vacate = region.id;
  network_.send(self_.id, peer.id, handoff);

  const RegionSnapshot mine = snapshot_of(region);
  for (const auto& [nid, snap] : old_neighbors) {
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{mine});
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{fresh});
  }
  ++counters_.adaptations_completed;
  clear_adaptation_state();
}

void GeoGridNode::handle_steal_request(NodeId from,
                                       const net::StealSecondaryRequest& m) {
  auto it = owned_.find(m.victim_region);
  // One adaptation at a time per node, in either role: while our own
  // proposal is in flight our region state is about to change, so any
  // incoming request is answered with a rejection (the requester retries
  // on its next trigger tick).
  if (pending_.active || it == owned_.end() || !it->second.is_primary() ||
      !it->second.full() ||
      it->second.peer->capacity <= m.overloaded.primary.capacity) {
    network_.send(self_.id, from,
                  net::StealSecondaryReject{m.victim_region});
    return;
  }
  OwnedRegion& region = it->second;
  const NodeInfo stolen = *region.peer;
  region.peer.reset();
  peer_last_heard_.erase(m.victim_region);
  network_.send(self_.id, from,
                net::StealSecondaryGrant{m.victim_region, stolen});
  broadcast_neighbor_update(region);
}

void GeoGridNode::handle_steal_grant(const net::StealSecondaryGrant& m) {
  if (!pending_.active || pending_.partner != m.victim_region) return;
  auto it = owned_.find(pending_.subject);
  if (it == owned_.end() || !it->second.is_primary() || it->second.full()) {
    clear_adaptation_state();
    return;
  }
  OwnedRegion& subject = it->second;
  // The stolen (stronger) node becomes our primary; we resign to secondary.
  subject.peer = m.stolen;
  subject.role = OwnerRole::kSecondary;
  peer_last_heard_[subject.id] = loop_.now();

  net::RegionHandoff handoff;
  handoff.region_state = snapshot_of(subject);
  for (const auto& [nid, snap] : subject.neighbors) {
    handoff.neighbors.push_back(snap);
  }
  handoff.vacate = m.victim_region;
  network_.send(self_.id, m.stolen.id, handoff);
  broadcast_neighbor_update(subject);
  ++counters_.adaptations_completed;
  clear_adaptation_state();
}

void GeoGridNode::handle_switch_request(NodeId from,
                                        const net::SwitchRequest& m) {
  auto it = owned_.find(m.target_region);
  const auto reject = [&] {
    network_.send(self_.id, from, net::SwitchReject{m.target_region});
  };
  if (pending_.active || it == owned_.end() || !it->second.is_primary()) {
    reject();
    return;
  }
  OwnedRegion& region = it->second;
  const double proposer_cap = m.proposer_region.primary.capacity;

  if (m.kind == net::SwitchKind::kPrimaryWithPrimary) {
    // Validate with our current load: strict improvement required.
    const double my_index =
        self_.capacity > 0.0 ? region.load / self_.capacity : region.load;
    const double proposer_index = m.proposer_region.workload_index;
    const double old_max = std::max(proposer_index, my_index);
    const double new_max =
        std::max(m.proposer_region.load / self_.capacity,
                 proposer_cap > 0.0 ? region.load / proposer_cap
                                    : region.load);
    if (self_.capacity <= proposer_cap || new_max >= old_max) {
      reject();
      return;
    }
    // Adopt the proposer's region as primary; hand ours to the proposer.
    net::RegionHandoff handoff;
    handoff.region_state = snapshot_of(region);
    handoff.region_state.primary = m.proposer_region.primary;
    for (const auto& [nid, snap] : region.neighbors) {
      handoff.neighbors.push_back(snap);
    }
    network_.send(self_.id, from, handoff);
    network_.send(self_.id, from,
                  net::SwitchGrant{m.kind, m.target_region, self_});

    OwnedRegion adopted;
    adopted.id = m.proposer_region.region;
    adopted.rect = m.proposer_region.rect;
    adopted.split_depth = m.proposer_region.split_depth;
    adopted.role = OwnerRole::kPrimary;
    adopted.peer = m.proposer_region.secondary;
    adopted.load = m.proposer_region.load;
    for (const auto& snap : m.proposer_neighbors) {
      if (snap.region != adopted.id &&
          snap.rect.edge_adjacent(adopted.rect)) {
        adopted.neighbors[snap.region] = snap;
      }
    }
    const RegionId adopted_id = adopted.id;
    owned_.erase(m.target_region);
    peer_last_heard_.erase(m.target_region);
    owned_[adopted_id] = std::move(adopted);
    peer_last_heard_[adopted_id] = loop_.now();
    broadcast_neighbor_update(owned_[adopted_id]);
    return;
  }

  // kPrimaryWithSecondary: our secondary moves out to lead the proposer's
  // region; the proposer becomes our secondary.
  if (!region.full() || region.peer->capacity <= proposer_cap) {
    reject();
    return;
  }
  const NodeInfo moving = *region.peer;
  region.peer = m.proposer_region.primary;
  peer_last_heard_[region.id] = loop_.now();

  net::RegionHandoff handoff;
  handoff.region_state = m.proposer_region;
  handoff.region_state.primary = moving;
  // The subject's old secondary (if any) keeps its seat.
  handoff.neighbors = m.proposer_neighbors;
  handoff.vacate = m.target_region;
  network_.send(self_.id, moving.id, handoff);
  network_.send(self_.id, from,
                net::SwitchGrant{m.kind, m.target_region, moving});
  broadcast_neighbor_update(region);
  sync_peer(region);
}

void GeoGridNode::handle_switch_grant(NodeId from, const net::SwitchGrant& m) {
  if (!pending_.active || pending_.partner != m.target_region) return;
  auto it = owned_.find(pending_.subject);
  if (m.kind == net::SwitchKind::kPrimaryWithPrimary) {
    // Our new region arrives separately as a RegionHandoff; drop the old
    // primary seat now.
    if (it != owned_.end()) {
      owned_.erase(it);
      peer_last_heard_.erase(pending_.subject);
    }
  } else {
    // We moved into the partner region's secondary seat.
    if (it != owned_.end()) {
      owned_.erase(it);
      peer_last_heard_.erase(pending_.subject);
    }
    OwnedRegion seat;
    seat.id = m.target_region;
    seat.rect = pending_.partner_snapshot.rect;
    seat.split_depth = pending_.partner_snapshot.split_depth;
    seat.role = OwnerRole::kSecondary;
    seat.peer = pending_.partner_snapshot.primary;
    seat.load = pending_.partner_snapshot.load;
    owned_[m.target_region] = std::move(seat);
    peer_last_heard_[m.target_region] = loop_.now();
    network_.send(self_.id, from,
                  net::HeartbeatAck{m.target_region});
  }
  ++counters_.adaptations_completed;
  clear_adaptation_state();
}

void GeoGridNode::handle_merge_request(NodeId from,
                                       const net::MergeRequest& m) {
  auto it = owned_.find(m.target_region);
  const auto reject = [&] {
    network_.send(self_.id, from, net::MergeReject{m.target_region});
  };
  if (pending_.active || it == owned_.end() || !it->second.is_primary() ||
      it->second.full() || m.proposer_region.full() ||
      !it->second.rect.mergeable(m.proposer_region.rect)) {
    reject();
    return;
  }
  OwnedRegion& region = it->second;
  const double my_index =
      self_.capacity > 0.0 ? region.load / self_.capacity : region.load;
  const double proposer_cap = m.proposer_region.primary.capacity;
  const double merged_cap = std::max(self_.capacity, proposer_cap);
  const double merged_load = region.load + m.proposer_region.load;
  const double merged_index =
      merged_cap > 0.0 ? merged_load / merged_cap : merged_load;
  const double average =
      (my_index + m.proposer_region.workload_index) / 2.0;
  if (merged_index >= average) {
    reject();
    return;
  }

  const Rect merged_rect = region.rect.merged(m.proposer_region.rect);
  GEOGRID_DEBUG("node " << self_.id << " grants merge: my " << m.target_region
                        << ' ' << region.rect.to_string() << " + proposer "
                        << m.proposer_region.region << ' '
                        << m.proposer_region.rect.to_string());
  if (self_.capacity >= proposer_cap) {
    // We keep the merged region; the proposer becomes our secondary.
    region.rect = merged_rect;
    region.split_depth = std::max(0, std::max(region.split_depth,
                                              m.proposer_region.split_depth) -
                                         1);
    region.load = merged_load;
    region.peer = m.proposer_region.primary;
    peer_last_heard_[region.id] = loop_.now();
    for (const auto& snap : m.proposer_neighbors) {
      if (snap.region != region.id && snap.region != m.proposer_region.region &&
          snap.rect.edge_adjacent(region.rect)) {
        region.neighbors[snap.region] = snap;
      }
    }
    region.neighbors.erase(m.proposer_region.region);
    prune_neighbors(region);
    network_.send(self_.id, from, net::MergeGrant{snapshot_of(region)});
    broadcast_neighbor_update(region);
    for (const auto& [nid, snap] : region.neighbors) {
      network_.send(self_.id, snap.primary.id,
                    net::NeighborRemove{m.proposer_region.region});
    }
    sync_peer(region);
    return;
  }

  // The proposer is stronger: it keeps its region id, absorbs ours, and we
  // become its secondary.
  RegionSnapshot merged = m.proposer_region;
  merged.rect = merged_rect;
  merged.split_depth = std::max(0, std::max(region.split_depth,
                                            m.proposer_region.split_depth) -
                                       1);
  merged.load = merged_load;
  merged.secondary = self_;
  merged.workload_index =
      proposer_cap > 0.0 ? merged_load / proposer_cap : merged_load;

  // Our seat becomes a secondary seat of the proposer's (merged) region.
  OwnedRegion seat;
  seat.id = merged.region;
  seat.rect = merged_rect;
  seat.split_depth = merged.split_depth;
  seat.role = OwnerRole::kSecondary;
  seat.peer = m.proposer_region.primary;
  seat.load = merged_load;
  const std::map<RegionId, RegionSnapshot> old_neighbors = region.neighbors;
  owned_.erase(m.target_region);
  peer_last_heard_.erase(m.target_region);
  owned_[merged.region] = std::move(seat);
  peer_last_heard_[merged.region] = loop_.now();

  network_.send(self_.id, from, net::MergeGrant{merged});
  for (const auto& [nid, snap] : old_neighbors) {
    network_.send(self_.id, snap.primary.id,
                  net::NeighborRemove{m.target_region});
    network_.send(self_.id, snap.primary.id, net::NeighborUpdate{merged});
  }
}

void GeoGridNode::handle_merge_grant(NodeId /*from*/,
                                     const net::MergeGrant& m) {
  if (!pending_.active) return;
  auto it = owned_.find(pending_.subject);
  if (it == owned_.end()) {
    clear_adaptation_state();
    return;
  }
  if (m.merged.region == pending_.subject) {
    // We keep the region: extend it and seat the partner's old primary as
    // our secondary.
    OwnedRegion& region = it->second;
    region.rect = m.merged.rect;
    region.split_depth = m.merged.split_depth;
    region.load = m.merged.load;
    region.peer = m.merged.secondary;
    region.neighbors.erase(pending_.partner);
    prune_neighbors(region);
    peer_last_heard_[region.id] = loop_.now();
    broadcast_neighbor_update(region);
    for (const auto& [nid, snap] : region.neighbors) {
      network_.send(self_.id, snap.primary.id,
                    net::NeighborRemove{pending_.partner});
    }
    sync_peer(region);
  } else {
    // The partner absorbed our region; we are now its secondary.
    owned_.erase(it);
    peer_last_heard_.erase(pending_.subject);
    OwnedRegion seat;
    seat.id = m.merged.region;
    seat.rect = m.merged.rect;
    seat.split_depth = m.merged.split_depth;
    seat.role = OwnerRole::kSecondary;
    seat.peer = m.merged.primary;
    seat.load = m.merged.load;
    owned_[m.merged.region] = std::move(seat);
    peer_last_heard_[m.merged.region] = loop_.now();
  }
  ++counters_.adaptations_completed;
  clear_adaptation_state();
}

void GeoGridNode::handle_ttl_search(NodeId /*from*/,
                                    const net::TtlSearchRequest& m) {
  if (m.origin.id == self_.id) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(m.origin.id.value) << 32) | m.search_id;
  if (!seen_searches_.insert(key).second) return;

  // Reply from ring >= 2 with our best qualifying region.
  if (m.depth >= 2) {
    for (const auto& [rid, region] : owned_) {
      if (!region.is_primary()) continue;
      const RegionSnapshot snap = snapshot_of(region);
      const bool secondary_ok = snap.full() &&
                                snap.secondary->capacity > m.min_capacity &&
                                snap.workload_index < m.max_index;
      const bool primary_ok = self_.capacity > m.min_capacity &&
                              snap.workload_index < m.max_index;
      if (secondary_ok || primary_ok) {
        net::TtlSearchReply reply;
        reply.search_id = m.search_id;
        reply.candidate = snap;
        reply.role = secondary_ok ? net::SearchWant::kSecondary
                                  : net::SearchWant::kPrimary;
        network_.send(self_.id, m.origin.id, reply);
        break;
      }
    }
  }

  // Forward while the TTL allows.
  if (m.depth >= m.ttl) return;
  net::TtlSearchRequest forwarded = m;
  forwarded.depth = static_cast<std::uint8_t>(m.depth + 1);
  std::vector<NodeId> recipients;
  for (const auto& [rid, region] : owned_) {
    for (const auto& [nid, snap] : region.neighbors) {
      if (snap.primary.id == m.origin.id) continue;
      if (std::find(recipients.begin(), recipients.end(),
                    snap.primary.id) == recipients.end()) {
        recipients.push_back(snap.primary.id);
      }
    }
  }
  for (NodeId to : recipients) network_.send(self_.id, to, forwarded);
}

void GeoGridNode::handle_ttl_reply(const net::TtlSearchReply& m) {
  if (!pending_.active || !pending_.searching ||
      m.search_id != pending_.search_id) {
    return;
  }
  // Ignore candidates we already neighbor (local mechanisms cover them).
  for (const auto& [rid, region] : owned_) {
    if (region.neighbors.contains(m.candidate.region)) return;
    if (rid == m.candidate.region) return;
  }
  pending_.search_candidates.push_back(m.candidate);
}

// ---------------------------------------------------------------------------
// Dispatcher.
// ---------------------------------------------------------------------------

void GeoGridNode::on_message(NodeId from, const Message& msg) {
  if (leaving_) return;
  // Exhaustive dispatch over the closed message variant; overloaded visit
  // keeps each handler's argument strongly typed.
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::BootstrapEntryReply>) {
          handle_entry_reply(m);
        } else if constexpr (std::is_same_v<T, net::Routed>) {
          route_or_handle(m);
        } else if constexpr (std::is_same_v<T, net::JoinRequest>) {
          handle_join_request(from, m);
        } else if constexpr (std::is_same_v<T, net::JoinProbeReply>) {
          handle_probe_reply(m);
        } else if constexpr (std::is_same_v<T, net::SecondaryJoinRequest>) {
          handle_secondary_join(from, m);
        } else if constexpr (std::is_same_v<T, net::SplitJoinRequest>) {
          handle_split_join(from, m);
        } else if constexpr (std::is_same_v<T, net::JoinGrant>) {
          handle_join_grant(m);
        } else if constexpr (std::is_same_v<T, net::JoinReject>) {
          // Retry through the bootstrap service after the configured delay.
          loop_.schedule_after(config_.join_retry, [this] {
            if (!joined_ && !leaving_) begin_join();
          });
        } else if constexpr (std::is_same_v<T, net::NeighborUpdate>) {
          handle_neighbor_update(m);
        } else if constexpr (std::is_same_v<T, net::NeighborRemove>) {
          handle_neighbor_remove(m);
        } else if constexpr (std::is_same_v<T, net::LeaveNotice>) {
          handle_leave_notice(from, m);
        } else if constexpr (std::is_same_v<T, net::TakeoverNotice>) {
          handle_takeover(m);
        } else if constexpr (std::is_same_v<T, net::RegionHandoff>) {
          handle_region_handoff(m);
        } else if constexpr (std::is_same_v<T, net::Heartbeat>) {
          handle_heartbeat(from, m);
        } else if constexpr (std::is_same_v<T, net::HeartbeatAck>) {
          // Liveness only.
        } else if constexpr (std::is_same_v<T, net::SyncState>) {
          if (auto it = owned_.find(m.region);
              it != owned_.end() && !it->second.is_primary()) {
            it->second.app_version = m.version;
            detail::decode_app_state(m.payload, it->second);
            peer_last_heard_[m.region] = loop_.now();
          }
        } else if constexpr (std::is_same_v<T, net::LoadStatsExchange>) {
          handle_load_stats(from, m);
        } else if constexpr (std::is_same_v<T, net::StealSecondaryRequest>) {
          handle_steal_request(from, m);
        } else if constexpr (std::is_same_v<T, net::StealSecondaryGrant>) {
          handle_steal_grant(m);
        } else if constexpr (std::is_same_v<T, net::StealSecondaryReject>) {
          clear_adaptation_state();
        } else if constexpr (std::is_same_v<T, net::SwitchRequest>) {
          handle_switch_request(from, m);
        } else if constexpr (std::is_same_v<T, net::SwitchGrant>) {
          handle_switch_grant(from, m);
        } else if constexpr (std::is_same_v<T, net::SwitchReject>) {
          clear_adaptation_state();
        } else if constexpr (std::is_same_v<T, net::MergeRequest>) {
          handle_merge_request(from, m);
        } else if constexpr (std::is_same_v<T, net::MergeGrant>) {
          handle_merge_grant(from, m);
        } else if constexpr (std::is_same_v<T, net::MergeReject>) {
          clear_adaptation_state();
        } else if constexpr (std::is_same_v<T, net::SplitRegionNotice>) {
          handle_neighbor_remove(net::NeighborRemove{m.old_region});
          handle_neighbor_update(net::NeighborUpdate{m.low});
          handle_neighbor_update(net::NeighborUpdate{m.high});
        } else if constexpr (std::is_same_v<T, net::TtlSearchRequest>) {
          handle_ttl_search(from, m);
        } else if constexpr (std::is_same_v<T, net::TtlSearchReply>) {
          handle_ttl_reply(m);
        } else if constexpr (std::is_same_v<T, net::LocationQuery>) {
          handle_location_query(m);
        } else if constexpr (std::is_same_v<T, net::QueryResult>) {
          ++counters_.results_received;
          if (on_result) on_result(m);
        } else if constexpr (std::is_same_v<T, net::Subscribe>) {
          handle_subscribe(m);
        } else if constexpr (std::is_same_v<T, net::Unsubscribe>) {
          handle_unsubscribe(m);
        } else if constexpr (std::is_same_v<T, net::SubscribeAck>) {
          // Acknowledgement only.
        } else if constexpr (std::is_same_v<T, net::Publish>) {
          handle_publish(m);
        } else if constexpr (std::is_same_v<T, net::Notify>) {
          ++counters_.notifies_received;
          if (on_notify) on_notify(m);
        } else if constexpr (std::is_same_v<T, net::LocationUpdate>) {
          // Direct delivery: secondary-seat coverer forwarding to us.
          handle_location_update(m);
        } else if constexpr (std::is_same_v<T, net::LocationUpdateAck>) {
          ++counters_.location_acks_received;
          if (on_location_ack) on_location_ack(m);
        } else if constexpr (std::is_same_v<T, net::UserHandoff>) {
          handle_user_handoff(m);
        } else if constexpr (std::is_same_v<T, net::LocateRequest>) {
          handle_locate_request(m, 0);
        } else if constexpr (std::is_same_v<T, net::LocateReply>) {
          ++counters_.locate_replies_received;
          if (on_locate) on_locate(m);
        } else {
          GEOGRID_WARN("node " << self_.id << " ignoring "
                               << net::message_name(net::message_type(msg)));
        }
      },
      msg);
}

}  // namespace geogrid::core
