#include "net/messages.h"

namespace geogrid::net {
namespace {

/// Calls T::decode for the variant alternative whose kType matches `type`.
template <std::size_t I = 0>
Message decode_by_type(MsgType type, Reader& r) {
  if constexpr (I < std::variant_size_v<Message>) {
    using T = std::variant_alternative_t<I, Message>;
    if (T::kType == type) return T::decode(r);
    return decode_by_type<I + 1>(type, r);
  } else {
    throw CodecError("unknown message type " +
                     std::to_string(static_cast<unsigned>(type)));
  }
}

}  // namespace

MsgType message_type(const Message& m) {
  return std::visit([](const auto& msg) { return msg.kType; }, m);
}

std::string_view message_name(MsgType type) {
  switch (type) {
    case MsgType::kBootstrapRegister: return "BootstrapRegister";
    case MsgType::kBootstrapEntryRequest: return "BootstrapEntryRequest";
    case MsgType::kBootstrapEntryReply: return "BootstrapEntryReply";
    case MsgType::kJoinRequest: return "JoinRequest";
    case MsgType::kJoinProbeReply: return "JoinProbeReply";
    case MsgType::kSecondaryJoinRequest: return "SecondaryJoinRequest";
    case MsgType::kSplitJoinRequest: return "SplitJoinRequest";
    case MsgType::kJoinGrant: return "JoinGrant";
    case MsgType::kJoinReject: return "JoinReject";
    case MsgType::kNeighborUpdate: return "NeighborUpdate";
    case MsgType::kNeighborRemove: return "NeighborRemove";
    case MsgType::kLeaveNotice: return "LeaveNotice";
    case MsgType::kTakeoverNotice: return "TakeoverNotice";
    case MsgType::kRegionHandoff: return "RegionHandoff";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kHeartbeatAck: return "HeartbeatAck";
    case MsgType::kSyncState: return "SyncState";
    case MsgType::kLoadStatsExchange: return "LoadStatsExchange";
    case MsgType::kStealSecondaryRequest: return "StealSecondaryRequest";
    case MsgType::kStealSecondaryGrant: return "StealSecondaryGrant";
    case MsgType::kStealSecondaryReject: return "StealSecondaryReject";
    case MsgType::kSwitchRequest: return "SwitchRequest";
    case MsgType::kSwitchGrant: return "SwitchGrant";
    case MsgType::kSwitchReject: return "SwitchReject";
    case MsgType::kMergeRequest: return "MergeRequest";
    case MsgType::kMergeGrant: return "MergeGrant";
    case MsgType::kMergeReject: return "MergeReject";
    case MsgType::kSplitRegionNotice: return "SplitRegionNotice";
    case MsgType::kTtlSearchRequest: return "TtlSearchRequest";
    case MsgType::kTtlSearchReply: return "TtlSearchReply";
    case MsgType::kOwnerProbe: return "OwnerProbe";
    case MsgType::kRouted: return "Routed";
    case MsgType::kLocationQuery: return "LocationQuery";
    case MsgType::kQueryResult: return "QueryResult";
    case MsgType::kSubscribe: return "Subscribe";
    case MsgType::kSubscribeAck: return "SubscribeAck";
    case MsgType::kPublish: return "Publish";
    case MsgType::kNotify: return "Notify";
    case MsgType::kUnsubscribe: return "Unsubscribe";
    case MsgType::kLocationUpdate: return "LocationUpdate";
    case MsgType::kLocationUpdateAck: return "LocationUpdateAck";
    case MsgType::kUserHandoff: return "UserHandoff";
    case MsgType::kLocateRequest: return "LocateRequest";
    case MsgType::kLocateReply: return "LocateReply";
    case MsgType::kNearestRequest: return "NearestRequest";
  }
  return "Unknown";
}

std::vector<std::byte> encode_message(const Message& m) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(message_type(m)));
  std::visit([&w](const auto& msg) { msg.encode(w); }, m);
  return std::move(w).take();
}

Message decode_message(const std::byte* data, std::size_t size) {
  Reader r(data, size);
  const auto type = static_cast<MsgType>(r.u16());
  Message m = decode_by_type(type, r);
  if (!r.done()) throw CodecError("trailing bytes after message");
  return m;
}

Message decode_message(const std::vector<std::byte>& bytes) {
  return decode_message(bytes.data(), bytes.size());
}

std::size_t wire_size(const Message& m) {
  return encode_message(m).size() + kPacketOverheadBytes;
}

Routed make_routed(const Point& target, const Message& inner) {
  Routed env;
  env.target = target;
  env.inner = encode_message(inner);
  return env;
}

Message unwrap_routed(const Routed& r) { return decode_message(r.inner); }

}  // namespace geogrid::net
