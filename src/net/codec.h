// Binary wire codec.
//
// GeoGrid middleware messages are exchanged between nodes as length-framed
// binary records.  The codec is a plain little-endian writer/reader pair
// with LEB128 varints for counts; it exists (a) so the simulated network can
// account realistic wire sizes per message and (b) so integration tests can
// prove every protocol message round-trips losslessly, which is what keeps
// the simulation honest about what information a node can actually know.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"

namespace geogrid::net {

/// Thrown by Reader on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to a byte buffer (little-endian).
class Writer {
 public:
  const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  std::vector<std::byte> take() && noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }

  /// LEB128 unsigned varint; used for counts and small ids.
  void varint(std::uint64_t v);

  void f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void string(std::string_view s) {
    varint(s.size());
    raw(s.data(), s.size());
  }

  void point(const Point& p) {
    f64(p.x);
    f64(p.y);
  }

  void rect(const Rect& r) {
    f64(r.x);
    f64(r.y);
    f64(r.width);
    f64(r.height);
  }

  void node_id(NodeId id) { u32(id.value); }
  void region_id(RegionId id) { u32(id.value); }
  void user_id(UserId id) { u32(id.value); }

 private:
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::byte> buf_;
};

/// Consumes primitive values from a byte span; throws CodecError when the
/// input is exhausted early.
class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  bool done() const noexcept { return pos_ == size_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() { return read_raw<std::uint16_t>(); }
  std::uint32_t u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t u64() { return read_raw<std::uint64_t>(); }

  std::uint64_t varint();

  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }

  std::string string() {
    const std::uint64_t n = varint();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Point point() {
    const double x = f64();
    const double y = f64();
    return Point{x, y};
  }

  Rect rect() {
    const double x = f64();
    const double y = f64();
    const double w = f64();
    const double h = f64();
    return Rect{x, y, w, h};
  }

  NodeId node_id() { return NodeId{u32()}; }
  RegionId region_id() { return RegionId{u32()}; }
  UserId user_id() { return UserId{u32()}; }

 private:
  template <typename T>
  T read_raw() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw CodecError("truncated message");
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace geogrid::net
