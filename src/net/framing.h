// Stream framing for the binary wire protocol.
//
// A TCP connection delivers an undelimited byte stream; the serving edge
// needs record boundaries on top of it.  A frame is
//
//   [varint length N][N bytes: u16 type + payload]
//
// i.e. the length prefix covers exactly what encode_message produces.  The
// writer side is append_frame; the reader side is FrameDecoder, an
// incremental reassembler built for *untrusted* bytes — the first thing a
// real socket hands you is the one input the rest of the codebase never
// sees, so every failure mode is a typed result, never an exception
// escaping into the event loop and never a read past the buffered bytes:
//
//   * a frame split across arbitrarily many reads (byte-at-a-time included)
//     reports kNeedMore until the last byte lands;
//   * a length prefix whose varint is wider than 5 bytes is malformed
//     (lengths are capped far below 2^35) — kError, not an infinite wait;
//   * a length prefix exceeding Options::max_frame_bytes is rejected
//     before any buffering of the oversized body — a 4GB announcement
//     costs the peer its connection, not the server its memory;
//   * a complete frame whose body fails message decoding (unknown type
//     tag, truncated field, trailing garbage) is kError with the codec's
//     reason.
//
// Errors are sticky: after the first kError the stream position is
// unrecoverable (framing is lost), so the caller must drop the connection.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "net/messages.h"

namespace geogrid::net {

/// Default ceiling on one frame's body size.  Generous for every message
/// the protocol defines (the largest — LoadStatsExchange with hundreds of
/// snapshots — is tens of KB) while bounding what one peer can make the
/// server buffer.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Appends one framed message to `out`; returns the framed size in bytes.
std::size_t append_frame(const Message& m, std::vector<std::byte>& out);

/// Convenience: a single framed message as a fresh buffer.
std::vector<std::byte> encode_frame(const Message& m);

class FrameDecoder {
 public:
  struct Options {
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  };

  enum class Status : std::uint8_t {
    kFrame = 0,     ///< one complete message extracted
    kNeedMore = 1,  ///< the buffered bytes end mid-frame; feed() more
    kError = 2,     ///< malformed stream; the connection must be dropped
  };

  struct Result {
    Status status = Status::kNeedMore;
    std::optional<Message> message;  ///< set exactly when status == kFrame
    std::string error;               ///< set exactly when status == kError
  };

  FrameDecoder() = default;
  explicit FrameDecoder(Options options) : options_(options) {}

  /// Appends raw bytes received from the stream.  No parsing happens here;
  /// feeding after an error is a harmless no-op.
  void feed(const std::byte* data, std::size_t n);
  void feed(const std::vector<std::byte>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// Attempts to extract the next complete frame.  Never throws, never
  /// reads beyond the fed bytes.  Call in a loop until kNeedMore (or
  /// kError, which is terminal).
  Result next();

  /// Bytes fed but not yet consumed by complete frames.
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

  /// True once any kError was returned; every later next() repeats it.
  bool failed() const noexcept { return failed_; }

  const Options& options() const noexcept { return options_; }

 private:
  Result fail(std::string reason);

  Options options_{};
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool failed_ = false;
  std::string error_;
};

}  // namespace geogrid::net
