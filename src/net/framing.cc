#include "net/framing.h"

#include <cstring>

namespace geogrid::net {

namespace {

/// Widest length-prefix varint accepted: 5 bytes encode up to 2^35-1,
/// comfortably above any sane max_frame_bytes.  A sixth continuation byte
/// is a malformed stream, not a frame still in flight.
constexpr int kMaxLenVarintBytes = 5;

}  // namespace

std::size_t append_frame(const Message& m, std::vector<std::byte>& out) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(message_type(m)));
  std::visit([&w](const auto& msg) { msg.encode(w); }, m);
  const std::vector<std::byte>& body = w.bytes();

  Writer prefix;
  prefix.varint(body.size());
  const std::size_t framed = prefix.size() + body.size();
  out.reserve(out.size() + framed);
  out.insert(out.end(), prefix.bytes().begin(), prefix.bytes().end());
  out.insert(out.end(), body.begin(), body.end());
  return framed;
}

std::vector<std::byte> encode_frame(const Message& m) {
  std::vector<std::byte> out;
  append_frame(m, out);
  return out;
}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Compact the consumed prefix before growing: keeps the buffer bounded
  // by (one frame + one read chunk) instead of the whole session history.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Result FrameDecoder::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buf_.clear();
  pos_ = 0;
  Result r;
  r.status = Status::kError;
  r.error = error_;
  return r;
}

FrameDecoder::Result FrameDecoder::next() {
  Result r;
  if (failed_) {
    r.status = Status::kError;
    r.error = error_;
    return r;
  }

  // Length prefix.  Parsed byte-wise so a prefix split across reads waits
  // instead of throwing, and an over-long or oversized one fails before
  // the body is ever waited for.
  std::uint64_t len = 0;
  int shift = 0;
  int prefix_bytes = 0;
  std::size_t p = pos_;
  while (true) {
    if (p == buf_.size()) {
      r.status = Status::kNeedMore;
      return r;
    }
    const auto byte = static_cast<std::uint8_t>(buf_[p++]);
    ++prefix_bytes;
    if (prefix_bytes > kMaxLenVarintBytes) {
      return fail("malformed frame length varint (over 5 bytes)");
    }
    len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  if (len > options_.max_frame_bytes) {
    return fail("oversized frame (" + std::to_string(len) + " bytes > max " +
                std::to_string(options_.max_frame_bytes) + ")");
  }
  if (buf_.size() - p < len) {
    r.status = Status::kNeedMore;
    return r;
  }

  try {
    r.message = decode_message(buf_.data() + p, static_cast<std::size_t>(len));
  } catch (const CodecError& e) {
    return fail(std::string("malformed frame: ") + e.what());
  }
  pos_ = p + static_cast<std::size_t>(len);
  r.status = Status::kFrame;
  return r;
}

}  // namespace geogrid::net
