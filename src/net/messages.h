// GeoGrid wire protocol.
//
// The paper distinguishes two message families: management messages
// ("splitting and merging region, heart-beat, request routing,
// load-balancing, routing table maintenance") whose syntax the middleware
// defines, and application messages that must carry the geographic
// coordinates of their destination.  This header defines both families as a
// closed std::variant so node logic can handle them exhaustively, plus the
// binary encode/decode for every type (the simulated network can run in a
// verify mode that round-trips each message through the codec to prove the
// protocol state machines only use information that actually crosses the
// wire).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "net/codec.h"
#include "net/node_info.h"

namespace geogrid::net {

/// Wire tag for each message type.  Values are stable protocol constants.
enum class MsgType : std::uint16_t {
  // Bootstrap service.
  kBootstrapRegister = 1,
  kBootstrapEntryRequest = 2,
  kBootstrapEntryReply = 3,
  // Join.
  kJoinRequest = 10,
  kJoinProbeReply = 11,
  kSecondaryJoinRequest = 12,
  kSplitJoinRequest = 13,
  kJoinGrant = 14,
  kJoinReject = 15,
  // Neighbor table maintenance.
  kNeighborUpdate = 20,
  kNeighborRemove = 21,
  // Departure, failure, repair.
  kLeaveNotice = 30,
  kTakeoverNotice = 31,
  kRegionHandoff = 32,
  // Heartbeats and dual-peer state sync.
  kHeartbeat = 40,
  kHeartbeatAck = 41,
  kSyncState = 42,
  // Load-balance.
  kLoadStatsExchange = 50,
  kStealSecondaryRequest = 51,
  kStealSecondaryGrant = 52,
  kStealSecondaryReject = 53,
  kSwitchRequest = 54,
  kSwitchGrant = 55,
  kSwitchReject = 56,
  kMergeRequest = 57,
  kMergeGrant = 58,
  kMergeReject = 59,
  kSplitRegionNotice = 60,
  kTtlSearchRequest = 61,
  kTtlSearchReply = 62,
  kOwnerProbe = 63,
  // Routed envelope.
  kRouted = 70,
  // Application layer.
  kLocationQuery = 80,
  kQueryResult = 81,
  kSubscribe = 82,
  kSubscribeAck = 83,
  kPublish = 84,
  kNotify = 85,
  kUnsubscribe = 86,
  // Mobile-user layer.
  kLocationUpdate = 90,
  kLocationUpdateAck = 91,
  kUserHandoff = 92,
  kLocateRequest = 93,
  kLocateReply = 94,
  kNearestRequest = 95,
};

/// Array size for counters indexed by raw MsgType value (the tags are
/// stable, dense-enough protocol constants — a 96-slot array beats a
/// node-based map on every send).
inline constexpr std::size_t kMsgTypeSlots =
    static_cast<std::size_t>(MsgType::kNearestRequest) + 1;

namespace detail {

inline void encode_snapshots(Writer& w, const std::vector<RegionSnapshot>& v) {
  w.varint(v.size());
  for (const auto& s : v) s.encode(w);
}

inline std::vector<RegionSnapshot> decode_snapshots(Reader& r) {
  const auto n = r.varint();
  std::vector<RegionSnapshot> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(RegionSnapshot::decode(r));
  return v;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Bootstrap service messages.
// ---------------------------------------------------------------------------

/// Node -> bootstrap server: register so later joiners can discover us.
struct BootstrapRegister {
  static constexpr MsgType kType = MsgType::kBootstrapRegister;
  NodeInfo node;

  void encode(Writer& w) const { node.encode(w); }
  static BootstrapRegister decode(Reader& r) { return {NodeInfo::decode(r)}; }
};

/// Joiner -> bootstrap server: request a random entry node.
struct BootstrapEntryRequest {
  static constexpr MsgType kType = MsgType::kBootstrapEntryRequest;
  NodeInfo requester;

  void encode(Writer& w) const { requester.encode(w); }
  static BootstrapEntryRequest decode(Reader& r) {
    return {NodeInfo::decode(r)};
  }
};

/// Bootstrap server -> joiner: a randomly selected existing node (absent
/// when the requester is the first node and should found the grid).
struct BootstrapEntryReply {
  static constexpr MsgType kType = MsgType::kBootstrapEntryReply;
  std::optional<NodeInfo> entry;

  void encode(Writer& w) const {
    w.boolean(entry.has_value());
    if (entry) entry->encode(w);
  }
  static BootstrapEntryReply decode(Reader& r) {
    BootstrapEntryReply m;
    if (r.boolean()) m.entry = NodeInfo::decode(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Join protocol.
// ---------------------------------------------------------------------------

/// Routed toward the joiner's own coordinate; the owner of the covering
/// region answers (basic mode: splits immediately; dual-peer mode: replies
/// with a JoinProbeReply first).
struct JoinRequest {
  static constexpr MsgType kType = MsgType::kJoinRequest;
  NodeInfo joiner;

  void encode(Writer& w) const { joiner.encode(w); }
  static JoinRequest decode(Reader& r) { return {NodeInfo::decode(r)}; }
};

/// Covering-region owner -> joiner: dual-peer probe result, the covering
/// region plus its neighbor regions with ownership and capacity facts.
struct JoinProbeReply {
  static constexpr MsgType kType = MsgType::kJoinProbeReply;
  RegionSnapshot covering;
  std::vector<RegionSnapshot> neighbors;

  void encode(Writer& w) const {
    covering.encode(w);
    detail::encode_snapshots(w, neighbors);
  }
  static JoinProbeReply decode(Reader& r) {
    JoinProbeReply m;
    m.covering = RegionSnapshot::decode(r);
    m.neighbors = detail::decode_snapshots(r);
    return m;
  }
};

/// Joiner -> primary of a half-full region: become its secondary owner.
struct SecondaryJoinRequest {
  static constexpr MsgType kType = MsgType::kSecondaryJoinRequest;
  NodeInfo joiner;
  RegionId region;

  void encode(Writer& w) const {
    joiner.encode(w);
    w.region_id(region);
  }
  static SecondaryJoinRequest decode(Reader& r) {
    SecondaryJoinRequest m;
    m.joiner = NodeInfo::decode(r);
    m.region = r.region_id();
    return m;
  }
};

/// Joiner -> primary of a region selected for splitting.
struct SplitJoinRequest {
  static constexpr MsgType kType = MsgType::kSplitJoinRequest;
  NodeInfo joiner;
  RegionId region;

  void encode(Writer& w) const {
    joiner.encode(w);
    w.region_id(region);
  }
  static SplitJoinRequest decode(Reader& r) {
    SplitJoinRequest m;
    m.joiner = NodeInfo::decode(r);
    m.region = r.region_id();
    return m;
  }
};

/// Role granted to a joining node.
enum class OwnerRole : std::uint8_t { kPrimary = 0, kSecondary = 1 };

/// Region owner -> joiner: your region (or secondary seat), with the
/// neighbor list to initialize the joiner's routing state.
struct JoinGrant {
  static constexpr MsgType kType = MsgType::kJoinGrant;
  RegionSnapshot region_state;
  OwnerRole role = OwnerRole::kPrimary;
  std::vector<RegionSnapshot> neighbors;

  void encode(Writer& w) const {
    region_state.encode(w);
    w.u8(static_cast<std::uint8_t>(role));
    detail::encode_snapshots(w, neighbors);
  }
  static JoinGrant decode(Reader& r) {
    JoinGrant m;
    m.region_state = RegionSnapshot::decode(r);
    m.role = static_cast<OwnerRole>(r.u8());
    m.neighbors = detail::decode_snapshots(r);
    return m;
  }
};

/// Join attempt failed (stale probe, concurrent change); joiner retries.
struct JoinReject {
  static constexpr MsgType kType = MsgType::kJoinReject;
  std::string reason;

  void encode(Writer& w) const { w.string(reason); }
  static JoinReject decode(Reader& r) { return {r.string()}; }
};

// ---------------------------------------------------------------------------
// Neighbor table maintenance.
// ---------------------------------------------------------------------------

/// Adds or refreshes one entry of the receiver's neighbor table.
struct NeighborUpdate {
  static constexpr MsgType kType = MsgType::kNeighborUpdate;
  RegionSnapshot snapshot;

  void encode(Writer& w) const { snapshot.encode(w); }
  static NeighborUpdate decode(Reader& r) {
    return {RegionSnapshot::decode(r)};
  }
};

/// Drops one entry (region was merged away or is no longer adjacent).
struct NeighborRemove {
  static constexpr MsgType kType = MsgType::kNeighborRemove;
  RegionId region;

  void encode(Writer& w) const { w.region_id(region); }
  static NeighborRemove decode(Reader& r) { return {r.region_id()}; }
};

// ---------------------------------------------------------------------------
// Departure / failure / repair.
// ---------------------------------------------------------------------------

/// Graceful goodbye from an owner of `region`.
struct LeaveNotice {
  static constexpr MsgType kType = MsgType::kLeaveNotice;
  RegionId region;
  bool was_primary = false;

  void encode(Writer& w) const {
    w.region_id(region);
    w.boolean(was_primary);
  }
  static LeaveNotice decode(Reader& r) {
    LeaveNotice m;
    m.region = r.region_id();
    m.was_primary = r.boolean();
    return m;
  }
};

/// New primary (activated secondary or caretaker) announces ownership.
/// Caretaker takeovers flood with a small TTL so rival claimants that
/// cannot see each other directly still learn of the winner.
struct TakeoverNotice {
  static constexpr MsgType kType = MsgType::kTakeoverNotice;
  RegionSnapshot snapshot;
  std::uint8_t flood_ttl = 0;

  void encode(Writer& w) const {
    snapshot.encode(w);
    w.u8(flood_ttl);
  }
  static TakeoverNotice decode(Reader& r) {
    TakeoverNotice m;
    m.snapshot = RegionSnapshot::decode(r);
    m.flood_ttl = r.u8();
    return m;
  }
};

/// Transfers a region seat to the receiver: on departure (caretaker
/// handoff), split (the peer's new half), or adaptation (stolen/switched
/// seats).  The receiver determines its role by matching its own id against
/// region_state's owners.  When `vacate` names a region, the receiver drops
/// any seat it holds there first (e.g. the secondary seat it was stolen
/// from).
struct RegionHandoff {
  static constexpr MsgType kType = MsgType::kRegionHandoff;
  RegionSnapshot region_state;
  std::vector<RegionSnapshot> neighbors;
  RegionId vacate{};  ///< seat to drop before adopting (invalid = none)

  void encode(Writer& w) const {
    region_state.encode(w);
    detail::encode_snapshots(w, neighbors);
    w.region_id(vacate);
  }
  static RegionHandoff decode(Reader& r) {
    RegionHandoff m;
    m.region_state = RegionSnapshot::decode(r);
    m.neighbors = detail::decode_snapshots(r);
    m.vacate = r.region_id();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Heartbeats and dual-peer synchronization.
// ---------------------------------------------------------------------------

/// Liveness probe; dual peers of one region exchange these at a higher
/// frequency than primaries of different regions (per the paper).
struct Heartbeat {
  static constexpr MsgType kType = MsgType::kHeartbeat;
  RegionId region;
  double load = 0.0;
  double available = 0.0;

  void encode(Writer& w) const {
    w.region_id(region);
    w.f64(load);
    w.f64(available);
  }
  static Heartbeat decode(Reader& r) {
    Heartbeat m;
    m.region = r.region_id();
    m.load = r.f64();
    m.available = r.f64();
    return m;
  }
};

struct HeartbeatAck {
  static constexpr MsgType kType = MsgType::kHeartbeatAck;
  RegionId region;

  void encode(Writer& w) const { w.region_id(region); }
  static HeartbeatAck decode(Reader& r) { return {r.region_id()}; }
};

/// Primary -> secondary replication of application state (subscriptions and
/// published objects); `payload_bytes` models the replica size on the wire.
struct SyncState {
  static constexpr MsgType kType = MsgType::kSyncState;
  RegionId region;
  std::uint64_t version = 0;
  std::string payload;

  void encode(Writer& w) const {
    w.region_id(region);
    w.u64(version);
    w.string(payload);
  }
  static SyncState decode(Reader& r) {
    SyncState m;
    m.region = r.region_id();
    m.version = r.u64();
    m.payload = r.string();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Load-balance protocol.
// ---------------------------------------------------------------------------

/// Periodic workload gossip: snapshots of every region the sender owns.
struct LoadStatsExchange {
  static constexpr MsgType kType = MsgType::kLoadStatsExchange;
  std::vector<RegionSnapshot> regions;

  void encode(Writer& w) const { detail::encode_snapshots(w, regions); }
  static LoadStatsExchange decode(Reader& r) {
    return {detail::decode_snapshots(r)};
  }
};

/// Overloaded primary -> primary of `victim_region`: release your secondary
/// so it can take over my overloaded region (mechanisms a and f).
struct StealSecondaryRequest {
  static constexpr MsgType kType = MsgType::kStealSecondaryRequest;
  RegionId victim_region;
  RegionSnapshot overloaded;

  void encode(Writer& w) const {
    w.region_id(victim_region);
    overloaded.encode(w);
  }
  static StealSecondaryRequest decode(Reader& r) {
    StealSecondaryRequest m;
    m.victim_region = r.region_id();
    m.overloaded = RegionSnapshot::decode(r);
    return m;
  }
};

struct StealSecondaryGrant {
  static constexpr MsgType kType = MsgType::kStealSecondaryGrant;
  RegionId victim_region;
  NodeInfo stolen;

  void encode(Writer& w) const {
    w.region_id(victim_region);
    stolen.encode(w);
  }
  static StealSecondaryGrant decode(Reader& r) {
    StealSecondaryGrant m;
    m.victim_region = r.region_id();
    m.stolen = NodeInfo::decode(r);
    return m;
  }
};

struct StealSecondaryReject {
  static constexpr MsgType kType = MsgType::kStealSecondaryReject;
  RegionId victim_region;

  void encode(Writer& w) const { w.region_id(victim_region); }
  static StealSecondaryReject decode(Reader& r) { return {r.region_id()}; }
};

/// What a switch proposal swaps.
enum class SwitchKind : std::uint8_t {
  kPrimaryWithPrimary = 0,    ///< mechanisms (b) and (h)
  kPrimaryWithSecondary = 1,  ///< mechanisms (e) and (g)
};

/// Proposal to swap owner seats between the proposer's region and
/// `target_region` owned by the receiver.
struct SwitchRequest {
  static constexpr MsgType kType = MsgType::kSwitchRequest;
  SwitchKind kind = SwitchKind::kPrimaryWithPrimary;
  RegionSnapshot proposer_region;
  /// Neighbor table of the proposer's region, so a granting counterpart can
  /// adopt the region without a second round-trip.
  std::vector<RegionSnapshot> proposer_neighbors;
  RegionId target_region;

  void encode(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    proposer_region.encode(w);
    detail::encode_snapshots(w, proposer_neighbors);
    w.region_id(target_region);
  }
  static SwitchRequest decode(Reader& r) {
    SwitchRequest m;
    m.kind = static_cast<SwitchKind>(r.u8());
    m.proposer_region = RegionSnapshot::decode(r);
    m.proposer_neighbors = detail::decode_snapshots(r);
    m.target_region = r.region_id();
    return m;
  }
};

struct SwitchGrant {
  static constexpr MsgType kType = MsgType::kSwitchGrant;
  SwitchKind kind = SwitchKind::kPrimaryWithPrimary;
  RegionId target_region;
  NodeInfo counterpart;  ///< the node moving into the proposer's region

  void encode(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    w.region_id(target_region);
    counterpart.encode(w);
  }
  static SwitchGrant decode(Reader& r) {
    SwitchGrant m;
    m.kind = static_cast<SwitchKind>(r.u8());
    m.target_region = r.region_id();
    m.counterpart = NodeInfo::decode(r);
    return m;
  }
};

struct SwitchReject {
  static constexpr MsgType kType = MsgType::kSwitchReject;
  RegionId target_region;

  void encode(Writer& w) const { w.region_id(target_region); }
  static SwitchReject decode(Reader& r) { return {r.region_id()}; }
};

/// Proposal to merge the proposer's region into the receiver's adjacent
/// region (mechanism c); on grant the receiver owns the union.
struct MergeRequest {
  static constexpr MsgType kType = MsgType::kMergeRequest;
  RegionSnapshot proposer_region;
  /// Proposer's neighbor table; the merged region inherits the adjacent
  /// subset.
  std::vector<RegionSnapshot> proposer_neighbors;
  RegionId target_region;

  void encode(Writer& w) const {
    proposer_region.encode(w);
    detail::encode_snapshots(w, proposer_neighbors);
    w.region_id(target_region);
  }
  static MergeRequest decode(Reader& r) {
    MergeRequest m;
    m.proposer_region = RegionSnapshot::decode(r);
    m.proposer_neighbors = detail::decode_snapshots(r);
    m.target_region = r.region_id();
    return m;
  }
};

struct MergeGrant {
  static constexpr MsgType kType = MsgType::kMergeGrant;
  RegionSnapshot merged;  ///< the union region under the receiver

  void encode(Writer& w) const { merged.encode(w); }
  static MergeGrant decode(Reader& r) { return {RegionSnapshot::decode(r)}; }
};

struct MergeReject {
  static constexpr MsgType kType = MsgType::kMergeReject;
  RegionId target_region;

  void encode(Writer& w) const { w.region_id(target_region); }
  static MergeReject decode(Reader& r) { return {r.region_id()}; }
};

/// After a load-balance split (mechanism d): old region replaced by two.
struct SplitRegionNotice {
  static constexpr MsgType kType = MsgType::kSplitRegionNotice;
  RegionId old_region;
  RegionSnapshot low;
  RegionSnapshot high;

  void encode(Writer& w) const {
    w.region_id(old_region);
    low.encode(w);
    high.encode(w);
  }
  static SplitRegionNotice decode(Reader& r) {
    SplitRegionNotice m;
    m.old_region = r.region_id();
    m.low = RegionSnapshot::decode(r);
    m.high = RegionSnapshot::decode(r);
    return m;
  }
};

/// What the TTL-guided remote search is looking for.
enum class SearchWant : std::uint8_t {
  kSecondary = 0,  ///< a remote secondary owner (mechanisms f, g)
  kPrimary = 1,    ///< a remote primary owner (mechanism h)
};

/// TTL-guided flood over neighbor links for a remote candidate stronger
/// than `min_capacity` and with workload index below `max_index`.
struct TtlSearchRequest {
  static constexpr MsgType kType = MsgType::kTtlSearchRequest;
  std::uint32_t search_id = 0;
  NodeInfo origin;
  SearchWant want = SearchWant::kSecondary;
  double min_capacity = 0.0;
  double max_index = 0.0;
  std::uint8_t ttl = 0;    ///< maximum graph depth of the flood
  std::uint8_t depth = 0;  ///< hops traveled; replies come from depth >= 2

  void encode(Writer& w) const {
    w.u32(search_id);
    origin.encode(w);
    w.u8(static_cast<std::uint8_t>(want));
    w.f64(min_capacity);
    w.f64(max_index);
    w.u8(ttl);
    w.u8(depth);
  }
  static TtlSearchRequest decode(Reader& r) {
    TtlSearchRequest m;
    m.search_id = r.u32();
    m.origin = NodeInfo::decode(r);
    m.want = static_cast<SearchWant>(r.u8());
    m.min_capacity = r.f64();
    m.max_index = r.f64();
    m.ttl = r.u8();
    m.depth = r.u8();
    return m;
  }
};

struct TtlSearchReply {
  static constexpr MsgType kType = MsgType::kTtlSearchReply;
  std::uint32_t search_id = 0;
  RegionSnapshot candidate;
  SearchWant role = SearchWant::kSecondary;

  void encode(Writer& w) const {
    w.u32(search_id);
    candidate.encode(w);
    w.u8(static_cast<std::uint8_t>(role));
  }
  static TtlSearchReply decode(Reader& r) {
    TtlSearchReply m;
    m.search_id = r.u32();
    m.candidate = RegionSnapshot::decode(r);
    m.role = static_cast<SearchWant>(r.u8());
    return m;
  }
};

/// Liveness probe for a suspected-dead region, routed to the region's last
/// known center.  Whoever covers that point replies to the prober: with a
/// NeighborUpdate of its region (refuting the suspicion or correcting a
/// stale rectangle), plus a NeighborRemove when the probed region id no
/// longer exists.  No reply at all means the area is orphaned and the
/// prober may adopt it.
struct OwnerProbe {
  static constexpr MsgType kType = MsgType::kOwnerProbe;
  RegionId region;      ///< the suspect region
  NodeInfo prober;      ///< where to send the verdict

  void encode(Writer& w) const {
    w.region_id(region);
    prober.encode(w);
  }
  static OwnerProbe decode(Reader& r) {
    OwnerProbe m;
    m.region = r.region_id();
    m.prober = NodeInfo::decode(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Routed envelope.
// ---------------------------------------------------------------------------

/// Carrier for any message that must travel to the region covering `target`
/// via greedy geographic forwarding.  The inner message stays encoded while
/// in transit (intermediate hops never inspect it).
struct Routed {
  static constexpr MsgType kType = MsgType::kRouted;
  Point target;
  std::uint16_t hops = 0;
  std::vector<std::byte> inner;

  void encode(Writer& w) const {
    w.point(target);
    w.u16(hops);
    w.varint(inner.size());
    for (std::byte b : inner) w.u8(static_cast<std::uint8_t>(b));
  }
  static Routed decode(Reader& r) {
    Routed m;
    m.target = r.point();
    m.hops = r.u16();
    const auto n = r.varint();
    m.inner.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
      m.inner.push_back(static_cast<std::byte>(r.u8()));
    return m;
  }
};

// ---------------------------------------------------------------------------
// Application layer.
// ---------------------------------------------------------------------------

/// A location query: spatial region, filter condition, focal node (the
/// paper's example: "Inform me of the traffic around Exit 89 on I-85").
struct LocationQuery {
  static constexpr MsgType kType = MsgType::kLocationQuery;
  std::uint64_t query_id = 0;
  NodeInfo focal;
  Rect area;
  std::string filter;
  bool disseminated = false;  ///< set once the executor fans it out

  void encode(Writer& w) const {
    w.u64(query_id);
    focal.encode(w);
    w.rect(area);
    w.string(filter);
    w.boolean(disseminated);
  }
  static LocationQuery decode(Reader& r) {
    LocationQuery m;
    m.query_id = r.u64();
    m.focal = NodeInfo::decode(r);
    m.area = r.rect();
    m.filter = r.string();
    m.disseminated = r.boolean();
    return m;
  }
};

struct QueryResult {
  static constexpr MsgType kType = MsgType::kQueryResult;
  std::uint64_t query_id = 0;
  RegionId from_region;
  std::string payload;

  void encode(Writer& w) const {
    w.u64(query_id);
    w.region_id(from_region);
    w.string(payload);
  }
  static QueryResult decode(Reader& r) {
    QueryResult m;
    m.query_id = r.u64();
    m.from_region = r.region_id();
    m.payload = r.string();
    return m;
  }
};

/// Standing continuous query over an area, active for `duration` seconds.
struct Subscribe {
  static constexpr MsgType kType = MsgType::kSubscribe;
  std::uint64_t sub_id = 0;
  NodeInfo subscriber;
  Rect area;
  std::string filter;
  double duration = 0.0;
  bool disseminated = false;

  void encode(Writer& w) const {
    w.u64(sub_id);
    subscriber.encode(w);
    w.rect(area);
    w.string(filter);
    w.f64(duration);
    w.boolean(disseminated);
  }
  static Subscribe decode(Reader& r) {
    Subscribe m;
    m.sub_id = r.u64();
    m.subscriber = NodeInfo::decode(r);
    m.area = r.rect();
    m.filter = r.string();
    m.duration = r.f64();
    m.disseminated = r.boolean();
    return m;
  }
};

struct SubscribeAck {
  static constexpr MsgType kType = MsgType::kSubscribeAck;
  std::uint64_t sub_id = 0;
  RegionId region;

  void encode(Writer& w) const {
    w.u64(sub_id);
    w.region_id(region);
  }
  static SubscribeAck decode(Reader& r) {
    SubscribeAck m;
    m.sub_id = r.u64();
    m.region = r.region_id();
    return m;
  }
};

/// An information source publishes a located datum (camera frame summary,
/// parking-lot occupancy, ...). Routed to the covering region and matched
/// against stored subscriptions there.
struct Publish {
  static constexpr MsgType kType = MsgType::kPublish;
  Point location;
  std::string topic;
  std::string payload;

  void encode(Writer& w) const {
    w.point(location);
    w.string(topic);
    w.string(payload);
  }
  static Publish decode(Reader& r) {
    Publish m;
    m.location = r.point();
    m.topic = r.string();
    m.payload = r.string();
    return m;
  }
};

struct Notify {
  static constexpr MsgType kType = MsgType::kNotify;
  std::uint64_t sub_id = 0;
  std::string topic;
  std::string payload;

  void encode(Writer& w) const {
    w.u64(sub_id);
    w.string(topic);
    w.string(payload);
  }
  static Notify decode(Reader& r) {
    Notify m;
    m.sub_id = r.u64();
    m.topic = r.string();
    m.payload = r.string();
    return m;
  }
};

/// Cancels a standing subscription before its duration expires.  Carries
/// the original area so it can be routed and disseminated to exactly the
/// regions that stored the subscription.
struct Unsubscribe {
  static constexpr MsgType kType = MsgType::kUnsubscribe;
  std::uint64_t sub_id = 0;
  NodeInfo subscriber;
  Rect area;
  bool disseminated = false;

  void encode(Writer& w) const {
    w.u64(sub_id);
    subscriber.encode(w);
    w.rect(area);
    w.boolean(disseminated);
  }
  static Unsubscribe decode(Reader& r) {
    Unsubscribe m;
    m.sub_id = r.u64();
    m.subscriber = NodeInfo::decode(r);
    m.area = r.rect();
    m.disseminated = r.boolean();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Mobile-user layer.
// ---------------------------------------------------------------------------

/// Timestamped location report from a mobile user, forwarded by its access
/// proxy and routed to the region covering the new position.  `seq` is a
/// per-user monotonic counter so reordered or replayed reports cannot roll a
/// record backwards.  When `has_prev` is set the previous report's position
/// travels along: the ingesting owner uses it to (a) suppress duplicate
/// subscription notifications while the user wanders inside one subscribed
/// area and (b) evict the stale record from the old owning region when the
/// movement crossed a region boundary.
struct LocationUpdate {
  static constexpr MsgType kType = MsgType::kLocationUpdate;
  UserId user{};
  Point location{};
  std::uint64_t seq = 0;
  bool has_prev = false;
  Point prev_location{};
  NodeInfo reporter{};  ///< access proxy to acknowledge

  void encode(Writer& w) const {
    w.user_id(user);
    w.point(location);
    w.u64(seq);
    w.boolean(has_prev);
    if (has_prev) w.point(prev_location);
    reporter.encode(w);
  }
  static LocationUpdate decode(Reader& r) {
    LocationUpdate m;
    m.user = r.user_id();
    m.location = r.point();
    m.seq = r.u64();
    m.has_prev = r.boolean();
    if (m.has_prev) m.prev_location = r.point();
    m.reporter = NodeInfo::decode(r);
    return m;
  }
};

/// Owner -> access proxy: the update was ingested into `region`.
struct LocationUpdateAck {
  static constexpr MsgType kType = MsgType::kLocationUpdateAck;
  UserId user{};
  std::uint64_t seq = 0;
  RegionId region{};

  void encode(Writer& w) const {
    w.user_id(user);
    w.u64(seq);
    w.region_id(region);
  }
  static LocationUpdateAck decode(Reader& r) {
    LocationUpdateAck m;
    m.user = r.user_id();
    m.seq = r.u64();
    m.region = r.region_id();
    return m;
  }
};

/// New owning region -> old owning region (routed toward the user's previous
/// position): the user moved into `new_region`; drop any record with
/// sequence <= `seq`.  The record itself travels with the LocationUpdate, so
/// the handoff is an eviction notice, not a data transfer.
struct UserHandoff {
  static constexpr MsgType kType = MsgType::kUserHandoff;
  UserId user{};
  std::uint64_t seq = 0;
  RegionId new_region{};

  void encode(Writer& w) const {
    w.user_id(user);
    w.u64(seq);
    w.region_id(new_region);
  }
  static UserHandoff decode(Reader& r) {
    UserHandoff m;
    m.user = r.user_id();
    m.seq = r.u64();
    m.new_region = r.region_id();
    return m;
  }
};

/// Point lookup for a user, routed toward `hint` (the requester's last known
/// position for the user).  Whoever covers the hint answers from its
/// location store.
struct LocateRequest {
  static constexpr MsgType kType = MsgType::kLocateRequest;
  std::uint64_t request_id = 0;
  NodeInfo requester{};
  UserId user{};
  Point hint{};

  void encode(Writer& w) const {
    w.u64(request_id);
    requester.encode(w);
    w.user_id(user);
    w.point(hint);
  }
  static LocateRequest decode(Reader& r) {
    LocateRequest m;
    m.request_id = r.u64();
    m.requester = NodeInfo::decode(r);
    m.user = r.user_id();
    m.hint = r.point();
    return m;
  }
};

struct LocateReply {
  static constexpr MsgType kType = MsgType::kLocateReply;
  std::uint64_t request_id = 0;
  UserId user{};
  bool found = false;
  Point location{};
  std::uint64_t seq = 0;
  RegionId region{};
  std::uint16_t hops = 0;  ///< routed hops the request took to the owner

  void encode(Writer& w) const {
    w.u64(request_id);
    w.user_id(user);
    w.boolean(found);
    w.point(location);
    w.u64(seq);
    w.region_id(region);
    w.u16(hops);
  }
  static LocateReply decode(Reader& r) {
    LocateReply m;
    m.request_id = r.u64();
    m.user = r.user_id();
    m.found = r.boolean();
    m.location = r.point();
    m.seq = r.u64();
    m.region = r.region_id();
    m.hops = r.u16();
    return m;
  }
};

/// k-nearest-neighbour query from a serving-edge client: the `k` users
/// closest to `center`.  Answered with a QueryResult whose payload is the
/// canonical mobility::QueryResult encoding (kind tag + records), the same
/// bytes the in-process engine serializes — which is what lets the loopback
/// bench byte-compare wire streams against engine output.
struct NearestRequest {
  static constexpr MsgType kType = MsgType::kNearestRequest;
  std::uint64_t query_id = 0;
  Point center{};
  std::uint32_t k = 0;

  void encode(Writer& w) const {
    w.u64(query_id);
    w.point(center);
    w.u32(k);
  }
  static NearestRequest decode(Reader& r) {
    NearestRequest m;
    m.query_id = r.u64();
    m.center = r.point();
    m.k = r.u32();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Envelope variant + framing.
// ---------------------------------------------------------------------------

using Message = std::variant<
    BootstrapRegister, BootstrapEntryRequest, BootstrapEntryReply,
    JoinRequest, JoinProbeReply, SecondaryJoinRequest, SplitJoinRequest,
    JoinGrant, JoinReject, NeighborUpdate, NeighborRemove, LeaveNotice,
    TakeoverNotice, RegionHandoff, Heartbeat, HeartbeatAck, SyncState,
    LoadStatsExchange, StealSecondaryRequest, StealSecondaryGrant,
    StealSecondaryReject, SwitchRequest, SwitchGrant, SwitchReject,
    MergeRequest, MergeGrant, MergeReject, SplitRegionNotice,
    TtlSearchRequest, TtlSearchReply, OwnerProbe, Routed, LocationQuery,
    QueryResult, Subscribe, SubscribeAck, Publish, Notify, Unsubscribe,
    LocationUpdate, LocationUpdateAck, UserHandoff, LocateRequest,
    LocateReply, NearestRequest>;

/// Wire tag of a message held in the variant.
MsgType message_type(const Message& m);

/// Human-readable name of the message type (for traces and stats).
std::string_view message_name(MsgType type);

/// Frames a message as [u16 type][payload].
std::vector<std::byte> encode_message(const Message& m);

/// Parses a framed message; throws CodecError on malformed input.
Message decode_message(const std::byte* data, std::size_t size);
Message decode_message(const std::vector<std::byte>& bytes);

/// Encoded wire size of a message, plus a fixed per-packet overhead that
/// stands in for UDP/IP headers in the traffic accounting.
inline constexpr std::size_t kPacketOverheadBytes = 28;
std::size_t wire_size(const Message& m);

/// Wraps a message into a Routed envelope addressed at `target`.
Routed make_routed(const Point& target, const Message& inner);

/// Unwraps the inner message of a Routed envelope.
Message unwrap_routed(const Routed& r);

}  // namespace geogrid::net
