// Shared protocol descriptors.
//
// NodeInfo is the paper's five-attribute node identity
// <x, y, IP, port, properties>; the simulated transport uses NodeId as the
// address, and `capacity` is the one property GeoGrid itself consumes (the
// node's available network bandwidth, in normalized units).  RegionSnapshot
// is what a node knows about a region other than its own: the rectangle plus
// the ownership/capacity/load facts that the join-probing and load-balance
// rules consume.  Snapshots travel in neighbor lists, probe responses, load
// stats and TTL search replies.
#pragma once

#include <optional>

#include "common/geometry.h"
#include "common/ids.h"
#include "net/codec.h"

namespace geogrid::net {

/// Identity and service properties of a GeoGrid node.
struct NodeInfo {
  NodeId id{};
  Point coord{};         ///< geographic position of the node (GPS)
  double capacity = 1.0; ///< total capacity the node dedicates to GeoGrid

  friend bool operator==(const NodeInfo&, const NodeInfo&) = default;

  void encode(Writer& w) const {
    w.node_id(id);
    w.point(coord);
    w.f64(capacity);
  }
  static NodeInfo decode(Reader& r) {
    NodeInfo info;
    info.id = r.node_id();
    info.coord = r.point();
    info.capacity = r.f64();
    return info;
  }
};

/// A node's view of one region: geometry, owners, and load facts.
struct RegionSnapshot {
  RegionId region{};
  Rect rect{};
  NodeInfo primary{};
  std::optional<NodeInfo> secondary{};
  double load = 0.0;            ///< current workload mapped to the region
  double workload_index = 0.0;  ///< load / primary capacity
  int split_depth = 0;          ///< number of splits from the root region

  bool full() const noexcept { return secondary.has_value(); }

  /// Available capacity of the primary owner (capacity minus load, floored
  /// at zero) — the quantity the dual-peer join rule minimizes.
  double primary_available() const noexcept {
    const double avail = primary.capacity - load;
    return avail > 0.0 ? avail : 0.0;
  }

  friend bool operator==(const RegionSnapshot&, const RegionSnapshot&) = default;

  void encode(Writer& w) const {
    w.region_id(region);
    w.rect(rect);
    primary.encode(w);
    w.boolean(secondary.has_value());
    if (secondary) secondary->encode(w);
    w.f64(load);
    w.f64(workload_index);
    w.varint(static_cast<std::uint64_t>(split_depth));
  }
  static RegionSnapshot decode(Reader& r) {
    RegionSnapshot s;
    s.region = r.region_id();
    s.rect = r.rect();
    s.primary = NodeInfo::decode(r);
    if (r.boolean()) s.secondary = NodeInfo::decode(r);
    s.load = r.f64();
    s.workload_index = r.f64();
    s.split_depth = static_cast<int>(r.varint());
    return s;
  }
};

}  // namespace geogrid::net
