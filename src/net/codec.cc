#include "net/codec.h"

namespace geogrid::net {

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift >= 64) throw CodecError("varint overflow");
    const std::uint8_t byte = u8();
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace geogrid::net
