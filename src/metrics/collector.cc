#include "metrics/collector.h"

#include <algorithm>
#include <cmath>

#include "loadbalance/workload_index.h"
#include "overlay/router.h"

namespace geogrid::metrics {

Summary workload_summary(const overlay::Partition& partition,
                         const overlay::LoadFn& load_of) {
  const auto indexes =
      loadbalance::all_node_indexes(partition, load_of);
  return summarize(indexes);
}

OccupancyStats occupancy(const overlay::Partition& partition) {
  OccupancyStats stats;
  stats.regions = partition.region_count();
  for (const auto& [id, r] : partition.regions()) {
    if (r.full()) {
      ++stats.full;
    } else {
      ++stats.half_full;
    }
  }
  return stats;
}

Histogram region_area_histogram(const overlay::Partition& partition,
                                std::size_t bins) {
  double max_area = 0.0;
  for (const auto& [id, r] : partition.regions()) {
    max_area = std::max(max_area, r.rect.area());
  }
  Histogram h(0.0, std::max(max_area, 1e-9), bins);
  for (const auto& [id, r] : partition.regions()) h.add(r.rect.area());
  return h;
}

std::vector<ShadedRect> shaded_regions(const overlay::Partition& partition,
                                       const overlay::LoadFn& load_of) {
  std::vector<ShadedRect> out;
  out.reserve(partition.region_count());
  for (const auto& [id, r] : partition.regions()) {
    out.push_back(ShadedRect{
        r.rect, loadbalance::region_index(partition, load_of, id)});
  }
  return out;
}

Summary routing_hop_summary(const overlay::Partition& partition, Rng& rng,
                            std::size_t samples) {
  RunningStats hops;
  if (partition.region_count() == 0) return hops.summary();

  // Stable id list for reproducible sampling.
  std::vector<RegionId> ids;
  ids.reserve(partition.region_count());
  for (const auto& [id, r] : partition.regions()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  for (std::size_t i = 0; i < samples; ++i) {
    const RegionId from = ids[rng.uniform_index(ids.size())];
    const RegionId to = ids[rng.uniform_index(ids.size())];
    const Point target = partition.region(to).rect.center();
    const auto route = overlay::route_greedy(partition, from, target);
    if (route.reached) hops.add(static_cast<double>(route.hops));
  }
  return hops.summary();
}

Summary target_hop_summary(const overlay::Partition& partition, Rng& rng,
                           std::span<const Point> targets) {
  RunningStats hops;
  if (partition.region_count() == 0) return hops.summary();

  std::vector<RegionId> ids;
  ids.reserve(partition.region_count());
  for (const auto& [id, r] : partition.regions()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  for (const Point& target : targets) {
    const RegionId from = ids[rng.uniform_index(ids.size())];
    const auto route = overlay::route_greedy(partition, from, target);
    if (route.reached) hops.add(static_cast<double>(route.hops));
  }
  return hops.summary();
}

double area_capacity_correlation(const overlay::Partition& partition) {
  RunningStats area_stats;
  RunningStats cap_stats;
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(partition.region_count());
  for (const auto& [id, r] : partition.regions()) {
    const double area = r.rect.area();
    const double capacity = partition.node(r.primary).capacity;
    pairs.emplace_back(area, capacity);
    area_stats.add(area);
    cap_stats.add(capacity);
  }
  if (pairs.size() < 2) return 0.0;
  const double ma = area_stats.mean();
  const double mc = cap_stats.mean();
  double cov = 0.0;
  for (const auto& [a, c] : pairs) cov += (a - ma) * (c - mc);
  cov /= static_cast<double>(pairs.size());
  const double denom = area_stats.stddev() * cap_stats.stddev();
  return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace geogrid::metrics
