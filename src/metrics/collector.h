// Measurement collectors.
//
// Everything the paper's figures plot comes through here: the max/mean/
// standard deviation of the per-node workload index (Figures 5-10), the
// region size and load distributions (Figures 2-3), and the routing hop
// statistics behind the O(2*sqrt(N)) claim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ascii_render.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "overlay/partition.h"
#include "overlay/snapshot.h"

namespace geogrid::metrics {

/// Summary (count/mean/stddev/min/max) of all node workload indexes.
Summary workload_summary(const overlay::Partition& partition,
                         const overlay::LoadFn& load_of);

/// Region occupancy counts.
struct OccupancyStats {
  std::size_t regions = 0;
  std::size_t full = 0;       ///< regions with a dual peer
  std::size_t half_full = 0;  ///< single-owner regions
};
OccupancyStats occupancy(const overlay::Partition& partition);

/// Histogram of region areas (square miles).
Histogram region_area_histogram(const overlay::Partition& partition,
                                std::size_t bins = 16);

/// Shaded rectangles (region rect + workload index of its primary owner)
/// for the Figure 2/3 partition visualizations.
std::vector<ShadedRect> shaded_regions(const overlay::Partition& partition,
                                       const overlay::LoadFn& load_of);

/// Routes `samples` queries between uniformly random region pairs and
/// summarizes hop counts.
Summary routing_hop_summary(const overlay::Partition& partition, Rng& rng,
                            std::size_t samples);

/// Routes one request from a uniformly random source region toward each
/// target point and summarizes hop counts.  The mobile-user benchmarks feed
/// sampled user positions through this to measure locate-request routing
/// cost against the current partition.
Summary target_hop_summary(const overlay::Partition& partition, Rng& rng,
                           std::span<const Point> targets);

/// Correlation between region area and the primary owner's capacity —
/// quantifies Figure 3's claim that "more powerful nodes now own bigger
/// regions".  Pearson's r over (area, capacity) pairs.
double area_capacity_correlation(const overlay::Partition& partition);

}  // namespace geogrid::metrics
