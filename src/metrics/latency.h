// Log-scale latency histogram for the query-path benchmarks.
//
// Query latencies span seven orders of magnitude (a memoized locate is tens
// of nanoseconds; a plane-sized range query is milliseconds), so the
// uniform-bin Histogram the partition figures use would put everything in
// one bin.  LatencyHistogram buckets by octave (base-2 logarithm of the
// microsecond value) subdivided linearly: each octave [2^e, 2^(e+1)) splits
// into kSub equal sub-buckets, so a percentile estimate's upper edge is at
// most (1 + 1/kSub)x the true sample — 12.5% relative error at kSub = 8 —
// instead of the 2x a pure log2 histogram gives.  Octaves start at
// 2^kMinExp microseconds (~1ns, the practical floor of the monotonic
// clock), so sub-microsecond operations — the memoized locate path, the
// SIMD band filter per chunk — resolve into real buckets rather than
// saturating a single "< 1us" bin.  Recording is constant work and the
// array merges with one pass, which is how the batched engine's per-task
// tallies combine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace geogrid::metrics {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave.  8 keeps the table compact (4KB) while
  /// bounding percentile overshoot at 12.5%.
  static constexpr std::size_t kSub = 8;
  /// Exponent of the smallest resolved octave: 2^-10 us ~ 0.98ns.  Samples
  /// below it land in the underflow bucket (index 0).
  static constexpr int kMinExp = -10;
  /// Exponent of the largest resolved octave: 2^53 us ~ 285 years, beyond
  /// any latency a benchmark can record.  Larger samples clamp into it.
  static constexpr int kMaxExp = 53;
  static constexpr std::size_t kOctaves =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1);
  /// Bucket 0 is underflow; bucket 1 + (e - kMinExp)*kSub + s holds samples
  /// in [2^e * (1 + s/kSub), 2^e * (1 + (s+1)/kSub)).
  static constexpr std::size_t kBuckets = 1 + kOctaves * kSub;

  void record_micros(double micros) noexcept;
  void record_seconds(double seconds) noexcept {
    record_micros(seconds * 1e6);
  }

  /// Folds another histogram's counts into this one (per-thread merge).
  void merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  double max_micros() const noexcept { return max_micros_; }
  double sum_micros() const noexcept { return sum_micros_; }
  double mean_micros() const noexcept {
    return total_ == 0 ? 0.0 : sum_micros_ / static_cast<double>(total_);
  }

  /// Upper edge (micros) of the sub-bucket holding the p-th percentile
  /// sample, p in [0, 100].  Conservative: the true sample is at most
  /// (1 + 1/kSub)x smaller, i.e. within 12.5% at kSub = 8.
  double percentile_micros(double p) const noexcept;

  /// One-line "p50=… p95=… p99=… max=…" summary for reports.
  std::string summary() const;

 private:
  static std::size_t bucket_of(double micros) noexcept;
  static double bucket_upper_edge(std::size_t bucket) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
  double sum_micros_ = 0.0;
  double max_micros_ = 0.0;
};

}  // namespace geogrid::metrics
