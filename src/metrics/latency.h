// Log-scale latency histogram for the query-path benchmarks.
//
// Query latencies span four orders of magnitude (a memoized locate is tens
// of nanoseconds; a plane-sized range query is milliseconds), so the
// uniform-bin Histogram the partition figures use would put everything in
// one bin.  LatencyHistogram buckets by the base-2 logarithm of the
// microsecond value — constant work to record, ~2x worst-case relative
// error on a percentile estimate, and cheap to merge across worker
// threads, which is how the batched engine's per-task tallies combine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace geogrid::metrics {

class LatencyHistogram {
 public:
  /// Bucket b holds samples in [2^(b-1), 2^b) microseconds; bucket 0 holds
  /// everything below 1us.  64 buckets cover any double that can occur.
  static constexpr std::size_t kBuckets = 64;

  void record_micros(double micros) noexcept;
  void record_seconds(double seconds) noexcept {
    record_micros(seconds * 1e6);
  }

  /// Folds another histogram's counts into this one (per-thread merge).
  void merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  double max_micros() const noexcept { return max_micros_; }
  double sum_micros() const noexcept { return sum_micros_; }
  double mean_micros() const noexcept {
    return total_ == 0 ? 0.0 : sum_micros_ / static_cast<double>(total_);
  }

  /// Upper edge (micros) of the bucket holding the p-th percentile sample,
  /// p in [0, 100].  Conservative: the true sample is at most 2x smaller.
  double percentile_micros(double p) const noexcept;

  /// One-line "p50=… p95=… p99=… max=…" summary for reports.
  std::string summary() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
  double sum_micros_ = 0.0;
  double max_micros_ = 0.0;
};

}  // namespace geogrid::metrics
