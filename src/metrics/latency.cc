#include "metrics/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geogrid::metrics {

void LatencyHistogram::record_micros(double micros) noexcept {
  if (!(micros >= 0.0)) micros = 0.0;  // NaN / negative clock skew -> 0
  std::size_t bucket = 0;
  if (micros >= 1.0) {
    const int e = std::ilogb(micros);  // floor(log2) for finite positives
    bucket = std::min<std::size_t>(kBuckets - 1,
                                   static_cast<std::size_t>(e) + 1);
  }
  ++buckets_[bucket];
  ++total_;
  sum_micros_ += micros;
  max_micros_ = std::max(max_micros_, micros);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
  sum_micros_ += other.sum_micros_;
  max_micros_ = std::max(max_micros_, other.max_micros_);
}

double LatencyHistogram::percentile_micros(double p) const noexcept {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based, nearest-rank method.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Upper edge of bucket b: 2^b micros (bucket 0 = everything < 1us).
      return std::ldexp(1.0, static_cast<int>(b));
    }
  }
  return max_micros_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus mean=%.2fus",
                percentile_micros(50), percentile_micros(95),
                percentile_micros(99), max_micros_, mean_micros());
  return std::string(buf);
}

}  // namespace geogrid::metrics
