#include "metrics/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geogrid::metrics {

std::size_t LatencyHistogram::bucket_of(double micros) noexcept {
  if (micros < std::ldexp(1.0, kMinExp)) return 0;  // underflow
  int e = std::ilogb(micros);  // floor(log2) for finite positives
  if (e > kMaxExp) e = kMaxExp;
  // Mantissa position inside the octave, in [0, 1).  Clamp guards the
  // e == kMaxExp overflow case where the ratio exceeds 2.
  const double frac = std::min(std::ldexp(micros, -e) - 1.0, 1.0 - 1e-12);
  const auto sub = std::min<std::size_t>(
      kSub - 1, static_cast<std::size_t>(frac * static_cast<double>(kSub)));
  return 1 + static_cast<std::size_t>(e - kMinExp) * kSub + sub;
}

double LatencyHistogram::bucket_upper_edge(std::size_t bucket) noexcept {
  if (bucket == 0) return std::ldexp(1.0, kMinExp);
  const std::size_t z = bucket - 1;
  const int e = kMinExp + static_cast<int>(z / kSub);
  const double sub = static_cast<double>(z % kSub);
  return std::ldexp(1.0 + (sub + 1.0) / static_cast<double>(kSub), e);
}

void LatencyHistogram::record_micros(double micros) noexcept {
  if (!(micros >= 0.0)) micros = 0.0;  // NaN / negative clock skew -> 0
  ++buckets_[bucket_of(micros)];
  ++total_;
  sum_micros_ += micros;
  max_micros_ = std::max(max_micros_, micros);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
  sum_micros_ += other.sum_micros_;
  max_micros_ = std::max(max_micros_, other.max_micros_);
}

double LatencyHistogram::percentile_micros(double p) const noexcept {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based, nearest-rank method.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return bucket_upper_edge(b);
  }
  return max_micros_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.3fus p95=%.3fus p99=%.3fus max=%.3fus mean=%.3fus",
                percentile_micros(50), percentile_micros(95),
                percentile_micros(99), max_micros_, mean_micros());
  return std::string(buf);
}

}  // namespace geogrid::metrics
