# Empty compiler generated dependencies file for example_traffic_info.
# This may be replaced when dependencies are built.
