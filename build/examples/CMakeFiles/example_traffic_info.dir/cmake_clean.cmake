file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_info.dir/traffic_info.cpp.o"
  "CMakeFiles/example_traffic_info.dir/traffic_info.cpp.o.d"
  "example_traffic_info"
  "example_traffic_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
