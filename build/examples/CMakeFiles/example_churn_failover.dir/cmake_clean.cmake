file(REMOVE_RECURSE
  "CMakeFiles/example_churn_failover.dir/churn_failover.cpp.o"
  "CMakeFiles/example_churn_failover.dir/churn_failover.cpp.o.d"
  "example_churn_failover"
  "example_churn_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_churn_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
