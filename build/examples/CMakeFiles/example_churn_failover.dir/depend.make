# Empty dependencies file for example_churn_failover.
# This may be replaced when dependencies are built.
