# Empty dependencies file for example_event_parking.
# This may be replaced when dependencies are built.
