file(REMOVE_RECURSE
  "CMakeFiles/example_event_parking.dir/event_parking.cpp.o"
  "CMakeFiles/example_event_parking.dir/event_parking.cpp.o.d"
  "example_event_parking"
  "example_event_parking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_event_parking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
