
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/bootstrap.cc" "src/services/CMakeFiles/geogrid_services.dir/bootstrap.cc.o" "gcc" "src/services/CMakeFiles/geogrid_services.dir/bootstrap.cc.o.d"
  "/root/repo/src/services/geolocator.cc" "src/services/CMakeFiles/geogrid_services.dir/geolocator.cc.o" "gcc" "src/services/CMakeFiles/geogrid_services.dir/geolocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/geogrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geogrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geogrid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
