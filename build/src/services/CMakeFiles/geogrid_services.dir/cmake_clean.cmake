file(REMOVE_RECURSE
  "CMakeFiles/geogrid_services.dir/bootstrap.cc.o"
  "CMakeFiles/geogrid_services.dir/bootstrap.cc.o.d"
  "CMakeFiles/geogrid_services.dir/geolocator.cc.o"
  "CMakeFiles/geogrid_services.dir/geolocator.cc.o.d"
  "libgeogrid_services.a"
  "libgeogrid_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
