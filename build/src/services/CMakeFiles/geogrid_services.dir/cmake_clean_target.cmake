file(REMOVE_RECURSE
  "libgeogrid_services.a"
)
