# Empty dependencies file for geogrid_services.
# This may be replaced when dependencies are built.
