
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/basic_ops.cc" "src/overlay/CMakeFiles/geogrid_overlay.dir/basic_ops.cc.o" "gcc" "src/overlay/CMakeFiles/geogrid_overlay.dir/basic_ops.cc.o.d"
  "/root/repo/src/overlay/partition.cc" "src/overlay/CMakeFiles/geogrid_overlay.dir/partition.cc.o" "gcc" "src/overlay/CMakeFiles/geogrid_overlay.dir/partition.cc.o.d"
  "/root/repo/src/overlay/router.cc" "src/overlay/CMakeFiles/geogrid_overlay.dir/router.cc.o" "gcc" "src/overlay/CMakeFiles/geogrid_overlay.dir/router.cc.o.d"
  "/root/repo/src/overlay/snapshot.cc" "src/overlay/CMakeFiles/geogrid_overlay.dir/snapshot.cc.o" "gcc" "src/overlay/CMakeFiles/geogrid_overlay.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/geogrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geogrid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
