# Empty compiler generated dependencies file for geogrid_overlay.
# This may be replaced when dependencies are built.
