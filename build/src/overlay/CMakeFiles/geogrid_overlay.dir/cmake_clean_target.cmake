file(REMOVE_RECURSE
  "libgeogrid_overlay.a"
)
