file(REMOVE_RECURSE
  "CMakeFiles/geogrid_overlay.dir/basic_ops.cc.o"
  "CMakeFiles/geogrid_overlay.dir/basic_ops.cc.o.d"
  "CMakeFiles/geogrid_overlay.dir/partition.cc.o"
  "CMakeFiles/geogrid_overlay.dir/partition.cc.o.d"
  "CMakeFiles/geogrid_overlay.dir/router.cc.o"
  "CMakeFiles/geogrid_overlay.dir/router.cc.o.d"
  "CMakeFiles/geogrid_overlay.dir/snapshot.cc.o"
  "CMakeFiles/geogrid_overlay.dir/snapshot.cc.o.d"
  "libgeogrid_overlay.a"
  "libgeogrid_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
