file(REMOVE_RECURSE
  "CMakeFiles/geogrid_net.dir/codec.cc.o"
  "CMakeFiles/geogrid_net.dir/codec.cc.o.d"
  "CMakeFiles/geogrid_net.dir/messages.cc.o"
  "CMakeFiles/geogrid_net.dir/messages.cc.o.d"
  "libgeogrid_net.a"
  "libgeogrid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
