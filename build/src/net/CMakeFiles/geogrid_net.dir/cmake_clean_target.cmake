file(REMOVE_RECURSE
  "libgeogrid_net.a"
)
