# Empty dependencies file for geogrid_net.
# This may be replaced when dependencies are built.
