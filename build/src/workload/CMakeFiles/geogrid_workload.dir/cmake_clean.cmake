file(REMOVE_RECURSE
  "CMakeFiles/geogrid_workload.dir/capacity.cc.o"
  "CMakeFiles/geogrid_workload.dir/capacity.cc.o.d"
  "CMakeFiles/geogrid_workload.dir/hotspot.cc.o"
  "CMakeFiles/geogrid_workload.dir/hotspot.cc.o.d"
  "CMakeFiles/geogrid_workload.dir/query_gen.cc.o"
  "CMakeFiles/geogrid_workload.dir/query_gen.cc.o.d"
  "libgeogrid_workload.a"
  "libgeogrid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
