file(REMOVE_RECURSE
  "libgeogrid_workload.a"
)
