# Empty compiler generated dependencies file for geogrid_workload.
# This may be replaced when dependencies are built.
