# Empty compiler generated dependencies file for geogrid_sim.
# This may be replaced when dependencies are built.
