file(REMOVE_RECURSE
  "libgeogrid_sim.a"
)
