file(REMOVE_RECURSE
  "CMakeFiles/geogrid_sim.dir/event_loop.cc.o"
  "CMakeFiles/geogrid_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/geogrid_sim.dir/network.cc.o"
  "CMakeFiles/geogrid_sim.dir/network.cc.o.d"
  "libgeogrid_sim.a"
  "libgeogrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
