file(REMOVE_RECURSE
  "CMakeFiles/geogrid_core.dir/cluster.cc.o"
  "CMakeFiles/geogrid_core.dir/cluster.cc.o.d"
  "CMakeFiles/geogrid_core.dir/engine.cc.o"
  "CMakeFiles/geogrid_core.dir/engine.cc.o.d"
  "CMakeFiles/geogrid_core.dir/node.cc.o"
  "CMakeFiles/geogrid_core.dir/node.cc.o.d"
  "CMakeFiles/geogrid_core.dir/node_maintenance.cc.o"
  "CMakeFiles/geogrid_core.dir/node_maintenance.cc.o.d"
  "libgeogrid_core.a"
  "libgeogrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
