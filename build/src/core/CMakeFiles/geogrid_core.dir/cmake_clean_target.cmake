file(REMOVE_RECURSE
  "libgeogrid_core.a"
)
