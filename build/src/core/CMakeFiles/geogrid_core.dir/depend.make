# Empty dependencies file for geogrid_core.
# This may be replaced when dependencies are built.
