file(REMOVE_RECURSE
  "libgeogrid_common.a"
)
