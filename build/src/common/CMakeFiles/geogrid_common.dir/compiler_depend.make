# Empty compiler generated dependencies file for geogrid_common.
# This may be replaced when dependencies are built.
