file(REMOVE_RECURSE
  "CMakeFiles/geogrid_common.dir/ascii_render.cc.o"
  "CMakeFiles/geogrid_common.dir/ascii_render.cc.o.d"
  "CMakeFiles/geogrid_common.dir/csv.cc.o"
  "CMakeFiles/geogrid_common.dir/csv.cc.o.d"
  "CMakeFiles/geogrid_common.dir/geometry.cc.o"
  "CMakeFiles/geogrid_common.dir/geometry.cc.o.d"
  "CMakeFiles/geogrid_common.dir/histogram.cc.o"
  "CMakeFiles/geogrid_common.dir/histogram.cc.o.d"
  "CMakeFiles/geogrid_common.dir/logging.cc.o"
  "CMakeFiles/geogrid_common.dir/logging.cc.o.d"
  "CMakeFiles/geogrid_common.dir/rng.cc.o"
  "CMakeFiles/geogrid_common.dir/rng.cc.o.d"
  "CMakeFiles/geogrid_common.dir/stats.cc.o"
  "CMakeFiles/geogrid_common.dir/stats.cc.o.d"
  "libgeogrid_common.a"
  "libgeogrid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
