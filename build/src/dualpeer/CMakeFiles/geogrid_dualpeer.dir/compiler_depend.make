# Empty compiler generated dependencies file for geogrid_dualpeer.
# This may be replaced when dependencies are built.
