
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dualpeer/dual_ops.cc" "src/dualpeer/CMakeFiles/geogrid_dualpeer.dir/dual_ops.cc.o" "gcc" "src/dualpeer/CMakeFiles/geogrid_dualpeer.dir/dual_ops.cc.o.d"
  "/root/repo/src/dualpeer/join_policy.cc" "src/dualpeer/CMakeFiles/geogrid_dualpeer.dir/join_policy.cc.o" "gcc" "src/dualpeer/CMakeFiles/geogrid_dualpeer.dir/join_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/geogrid_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geogrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geogrid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
