file(REMOVE_RECURSE
  "CMakeFiles/geogrid_dualpeer.dir/dual_ops.cc.o"
  "CMakeFiles/geogrid_dualpeer.dir/dual_ops.cc.o.d"
  "CMakeFiles/geogrid_dualpeer.dir/join_policy.cc.o"
  "CMakeFiles/geogrid_dualpeer.dir/join_policy.cc.o.d"
  "libgeogrid_dualpeer.a"
  "libgeogrid_dualpeer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_dualpeer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
