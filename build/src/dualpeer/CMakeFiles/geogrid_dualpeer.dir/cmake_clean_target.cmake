file(REMOVE_RECURSE
  "libgeogrid_dualpeer.a"
)
