# Empty compiler generated dependencies file for geogrid_metrics.
# This may be replaced when dependencies are built.
