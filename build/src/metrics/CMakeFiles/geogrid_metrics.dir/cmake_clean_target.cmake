file(REMOVE_RECURSE
  "libgeogrid_metrics.a"
)
