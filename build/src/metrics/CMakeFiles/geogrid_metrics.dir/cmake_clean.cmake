file(REMOVE_RECURSE
  "CMakeFiles/geogrid_metrics.dir/collector.cc.o"
  "CMakeFiles/geogrid_metrics.dir/collector.cc.o.d"
  "libgeogrid_metrics.a"
  "libgeogrid_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
