file(REMOVE_RECURSE
  "CMakeFiles/geogrid_loadbalance.dir/driver.cc.o"
  "CMakeFiles/geogrid_loadbalance.dir/driver.cc.o.d"
  "CMakeFiles/geogrid_loadbalance.dir/mechanism.cc.o"
  "CMakeFiles/geogrid_loadbalance.dir/mechanism.cc.o.d"
  "CMakeFiles/geogrid_loadbalance.dir/planner.cc.o"
  "CMakeFiles/geogrid_loadbalance.dir/planner.cc.o.d"
  "CMakeFiles/geogrid_loadbalance.dir/snapshot_planner.cc.o"
  "CMakeFiles/geogrid_loadbalance.dir/snapshot_planner.cc.o.d"
  "CMakeFiles/geogrid_loadbalance.dir/ttl_search.cc.o"
  "CMakeFiles/geogrid_loadbalance.dir/ttl_search.cc.o.d"
  "CMakeFiles/geogrid_loadbalance.dir/workload_index.cc.o"
  "CMakeFiles/geogrid_loadbalance.dir/workload_index.cc.o.d"
  "libgeogrid_loadbalance.a"
  "libgeogrid_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geogrid_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
