file(REMOVE_RECURSE
  "libgeogrid_loadbalance.a"
)
