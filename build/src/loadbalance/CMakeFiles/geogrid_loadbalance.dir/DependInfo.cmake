
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadbalance/driver.cc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/driver.cc.o" "gcc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/driver.cc.o.d"
  "/root/repo/src/loadbalance/mechanism.cc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/mechanism.cc.o" "gcc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/mechanism.cc.o.d"
  "/root/repo/src/loadbalance/planner.cc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/planner.cc.o" "gcc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/planner.cc.o.d"
  "/root/repo/src/loadbalance/snapshot_planner.cc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/snapshot_planner.cc.o" "gcc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/snapshot_planner.cc.o.d"
  "/root/repo/src/loadbalance/ttl_search.cc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/ttl_search.cc.o" "gcc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/ttl_search.cc.o.d"
  "/root/repo/src/loadbalance/workload_index.cc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/workload_index.cc.o" "gcc" "src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/workload_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/geogrid_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geogrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geogrid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
