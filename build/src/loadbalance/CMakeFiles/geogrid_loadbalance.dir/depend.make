# Empty dependencies file for geogrid_loadbalance.
# This may be replaced when dependencies are built.
