# Empty dependencies file for bench_churn_resilience.
# This may be replaced when dependencies are built.
