file(REMOVE_RECURSE
  "CMakeFiles/bench_churn_resilience.dir/churn_resilience.cc.o"
  "CMakeFiles/bench_churn_resilience.dir/churn_resilience.cc.o.d"
  "bench_churn_resilience"
  "bench_churn_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_churn_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
