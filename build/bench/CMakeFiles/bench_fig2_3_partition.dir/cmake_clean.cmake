file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_partition.dir/fig2_3_partition.cc.o"
  "CMakeFiles/bench_fig2_3_partition.dir/fig2_3_partition.cc.o.d"
  "bench_fig2_3_partition"
  "bench_fig2_3_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
