file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mechanisms.dir/ablation_mechanisms.cc.o"
  "CMakeFiles/bench_ablation_mechanisms.dir/ablation_mechanisms.cc.o.d"
  "bench_ablation_mechanisms"
  "bench_ablation_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
