# Empty dependencies file for bench_routing_hops.
# This may be replaced when dependencies are built.
