file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_hops.dir/routing_hops.cc.o"
  "CMakeFiles/bench_routing_hops.dir/routing_hops.cc.o.d"
  "bench_routing_hops"
  "bench_routing_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
