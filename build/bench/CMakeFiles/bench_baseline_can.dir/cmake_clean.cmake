file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_can.dir/baseline_can.cc.o"
  "CMakeFiles/bench_baseline_can.dir/baseline_can.cc.o.d"
  "bench_baseline_can"
  "bench_baseline_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
