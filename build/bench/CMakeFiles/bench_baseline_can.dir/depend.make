# Empty dependencies file for bench_baseline_can.
# This may be replaced when dependencies are built.
