file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_convergence_rounds.dir/fig7_8_convergence_rounds.cc.o"
  "CMakeFiles/bench_fig7_8_convergence_rounds.dir/fig7_8_convergence_rounds.cc.o.d"
  "bench_fig7_8_convergence_rounds"
  "bench_fig7_8_convergence_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_convergence_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
