# Empty compiler generated dependencies file for bench_fig7_8_convergence_rounds.
# This may be replaced when dependencies are built.
