# Empty dependencies file for bench_fig9_10_convergence_ops.
# This may be replaced when dependencies are built.
