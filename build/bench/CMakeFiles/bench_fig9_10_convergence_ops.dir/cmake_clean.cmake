file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_convergence_ops.dir/fig9_10_convergence_ops.cc.o"
  "CMakeFiles/bench_fig9_10_convergence_ops.dir/fig9_10_convergence_ops.cc.o.d"
  "bench_fig9_10_convergence_ops"
  "bench_fig9_10_convergence_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_convergence_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
