# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_dualpeer[1]_include.cmake")
include("/root/repo/build/tests/test_loadbalance[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
