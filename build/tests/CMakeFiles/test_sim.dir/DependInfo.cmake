
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/event_loop_test.cc" "tests/CMakeFiles/test_sim.dir/event_loop_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/event_loop_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/test_sim.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/network_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geogrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/geogrid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/loadbalance/CMakeFiles/geogrid_loadbalance.dir/DependInfo.cmake"
  "/root/repo/build/src/dualpeer/CMakeFiles/geogrid_dualpeer.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/geogrid_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/geogrid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/geogrid_services.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/geogrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geogrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geogrid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
