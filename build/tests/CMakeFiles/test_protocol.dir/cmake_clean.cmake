file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/protocol_adaptation_test.cc.o"
  "CMakeFiles/test_protocol.dir/protocol_adaptation_test.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol_churn_test.cc.o"
  "CMakeFiles/test_protocol.dir/protocol_churn_test.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol_failure_test.cc.o"
  "CMakeFiles/test_protocol.dir/protocol_failure_test.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol_join_test.cc.o"
  "CMakeFiles/test_protocol.dir/protocol_join_test.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol_query_test.cc.o"
  "CMakeFiles/test_protocol.dir/protocol_query_test.cc.o.d"
  "test_protocol"
  "test_protocol.pdb"
  "test_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
