file(REMOVE_RECURSE
  "CMakeFiles/test_dualpeer.dir/dual_ops_test.cc.o"
  "CMakeFiles/test_dualpeer.dir/dual_ops_test.cc.o.d"
  "CMakeFiles/test_dualpeer.dir/join_policy_test.cc.o"
  "CMakeFiles/test_dualpeer.dir/join_policy_test.cc.o.d"
  "test_dualpeer"
  "test_dualpeer.pdb"
  "test_dualpeer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dualpeer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
