# Empty dependencies file for test_dualpeer.
# This may be replaced when dependencies are built.
