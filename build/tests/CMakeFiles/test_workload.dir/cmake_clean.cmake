file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/capacity_test.cc.o"
  "CMakeFiles/test_workload.dir/capacity_test.cc.o.d"
  "CMakeFiles/test_workload.dir/hotspot_test.cc.o"
  "CMakeFiles/test_workload.dir/hotspot_test.cc.o.d"
  "CMakeFiles/test_workload.dir/query_gen_test.cc.o"
  "CMakeFiles/test_workload.dir/query_gen_test.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
