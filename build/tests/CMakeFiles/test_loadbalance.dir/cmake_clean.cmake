file(REMOVE_RECURSE
  "CMakeFiles/test_loadbalance.dir/driver_test.cc.o"
  "CMakeFiles/test_loadbalance.dir/driver_test.cc.o.d"
  "CMakeFiles/test_loadbalance.dir/planner_test.cc.o"
  "CMakeFiles/test_loadbalance.dir/planner_test.cc.o.d"
  "CMakeFiles/test_loadbalance.dir/ttl_search_test.cc.o"
  "CMakeFiles/test_loadbalance.dir/ttl_search_test.cc.o.d"
  "CMakeFiles/test_loadbalance.dir/workload_index_test.cc.o"
  "CMakeFiles/test_loadbalance.dir/workload_index_test.cc.o.d"
  "test_loadbalance"
  "test_loadbalance.pdb"
  "test_loadbalance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
