file(REMOVE_RECURSE
  "CMakeFiles/test_partition.dir/basic_ops_test.cc.o"
  "CMakeFiles/test_partition.dir/basic_ops_test.cc.o.d"
  "CMakeFiles/test_partition.dir/partition_test.cc.o"
  "CMakeFiles/test_partition.dir/partition_test.cc.o.d"
  "CMakeFiles/test_partition.dir/router_test.cc.o"
  "CMakeFiles/test_partition.dir/router_test.cc.o.d"
  "CMakeFiles/test_partition.dir/snapshot_test.cc.o"
  "CMakeFiles/test_partition.dir/snapshot_test.cc.o.d"
  "test_partition"
  "test_partition.pdb"
  "test_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
