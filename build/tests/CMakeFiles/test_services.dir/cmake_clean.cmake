file(REMOVE_RECURSE
  "CMakeFiles/test_services.dir/bootstrap_test.cc.o"
  "CMakeFiles/test_services.dir/bootstrap_test.cc.o.d"
  "CMakeFiles/test_services.dir/geolocator_test.cc.o"
  "CMakeFiles/test_services.dir/geolocator_test.cc.o.d"
  "test_services"
  "test_services.pdb"
  "test_services[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
