// LatencyHistogram: log-scale bucketing, percentile bounds, merging.
#include "metrics/latency.h"

#include <gtest/gtest.h>

namespace geogrid::metrics {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile_micros(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_micros(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_micros(), 0.0);
}

TEST(LatencyHistogram, PercentileUpperBoundsTrueSample) {
  LatencyHistogram h;
  // 99 fast samples at ~2us, one slow outlier at ~3000us.
  for (int i = 0; i < 99; ++i) h.record_micros(2.0);
  h.record_micros(3000.0);
  EXPECT_EQ(h.count(), 100u);
  // Nearest-rank p50/p95 land in the [2,4) bucket; p100 in [2048,4096).
  EXPECT_DOUBLE_EQ(h.percentile_micros(50), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile_micros(95), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile_micros(100), 4096.0);
  EXPECT_DOUBLE_EQ(h.max_micros(), 3000.0);
  // The bucket edge is conservative: at most 2x above the true sample.
  EXPECT_GE(h.percentile_micros(50), 2.0);
  EXPECT_LE(h.percentile_micros(50), 2.0 * 2.0);
}

TEST(LatencyHistogram, SubMicrosecondSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.record_micros(0.25);
  h.record_seconds(1e-9);  // 0.001us
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile_micros(100), 1.0);  // bucket 0 upper edge
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 10; ++i) a.record_micros(3.0);
  for (int i = 0; i < 10; ++i) b.record_micros(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_DOUBLE_EQ(a.percentile_micros(25), 4.0);
  EXPECT_DOUBLE_EQ(a.percentile_micros(99), 128.0);
  EXPECT_DOUBLE_EQ(a.max_micros(), 100.0);
  EXPECT_NEAR(a.mean_micros(), (10 * 3.0 + 10 * 100.0) / 20.0, 1e-9);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.record_micros(10.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace geogrid::metrics
