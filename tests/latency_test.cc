// LatencyHistogram: linear-within-octave bucketing, percentile bounds,
// sub-microsecond resolution, merging.
#include "metrics/latency.h"

#include <cmath>

#include <gtest/gtest.h>

namespace geogrid::metrics {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile_micros(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_micros(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_micros(), 0.0);
}

TEST(LatencyHistogram, PercentileUpperBoundsTrueSample) {
  LatencyHistogram h;
  // 99 fast samples at ~2us, one slow outlier at ~3000us.
  for (int i = 0; i < 99; ++i) h.record_micros(2.0);
  h.record_micros(3000.0);
  EXPECT_EQ(h.count(), 100u);
  // 2.0us opens the [2, 4) octave: first sub-bucket, upper edge 2.25us.
  EXPECT_DOUBLE_EQ(h.percentile_micros(50), 2.25);
  EXPECT_DOUBLE_EQ(h.percentile_micros(95), 2.25);
  // 3000us sits in [2048, 4096): sub-bucket [2944, 3072), upper edge 3072.
  EXPECT_DOUBLE_EQ(h.percentile_micros(100), 3072.0);
  EXPECT_DOUBLE_EQ(h.max_micros(), 3000.0);
  // The sub-bucket edge overshoots the true sample by at most 1/kSub.
  EXPECT_GE(h.percentile_micros(50), 2.0);
  EXPECT_LE(h.percentile_micros(50), 2.0 * (1.0 + 1.0 / LatencyHistogram::kSub));
}

TEST(LatencyHistogram, SubMicrosecondSamplesResolve) {
  LatencyHistogram h;
  h.record_micros(0.25);
  h.record_seconds(1e-9);  // 0.001us = 1ns
  EXPECT_EQ(h.count(), 2u);
  // The 1ns sample resolves into the bottom octave [2^-10, 2^-9) instead
  // of saturating: its reported edge is ~1.1ns, not 1us.
  EXPECT_DOUBLE_EQ(h.percentile_micros(50), std::ldexp(1.125, -10));
  // 0.25us opens the [0.25, 0.5) octave: upper edge 0.28125us.
  EXPECT_DOUBLE_EQ(h.percentile_micros(100), 0.28125);
  // Both estimates stay within the 12.5% overshoot bound.
  EXPECT_LE(h.percentile_micros(100), 0.25 * 1.125);
  EXPECT_LE(h.percentile_micros(50), 0.001 * 1.125);
}

TEST(LatencyHistogram, UnderflowBucketCatchesSubNanosecond) {
  LatencyHistogram h;
  h.record_micros(1e-4);  // 0.1ns, below the smallest resolved octave
  h.record_micros(0.0);
  EXPECT_EQ(h.count(), 2u);
  // Underflow upper edge is the bottom octave's lower edge, 2^-10 us.
  EXPECT_DOUBLE_EQ(h.percentile_micros(100), std::ldexp(1.0, -10));
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 10; ++i) a.record_micros(3.0);
  for (int i = 0; i < 10; ++i) b.record_micros(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  // 3.0us: octave [2, 4), sub-bucket [3.0, 3.25), upper edge 3.25.
  EXPECT_DOUBLE_EQ(a.percentile_micros(25), 3.25);
  // 100us: octave [64, 128), sub-bucket [100, 104), upper edge 104.
  EXPECT_DOUBLE_EQ(a.percentile_micros(99), 104.0);
  EXPECT_DOUBLE_EQ(a.max_micros(), 100.0);
  EXPECT_NEAR(a.mean_micros(), (10 * 3.0 + 10 * 100.0) / 20.0, 1e-9);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.record_micros(10.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace geogrid::metrics
