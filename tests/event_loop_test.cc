// Discrete-event kernel: ordering, cancellation, virtual time.
#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace geogrid::sim {
namespace {

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, SameTimeFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  double fired_at = -1.0;
  loop.schedule_at(5.0, [&] {
    loop.schedule_after(2.5, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  EventHandle h = loop.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, FireAndForgetInterleavesWithHandles) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_fire_and_forget(2.0, [&] { order.push_back(2); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_fire_and_forget(1.0, [&] { order.push_back(10); });
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.run();
  // Same (time, schedule-order) contract as handled events.
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
  EXPECT_EQ(loop.fired(), 4u);
}

TEST(EventLoop, FireAndForgetClampsPastDelays) {
  EventLoop loop;
  double fired_at = -1.0;
  loop.schedule_at(5.0, [&] {
    loop.schedule_fire_and_forget(-2.0, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventLoop, CancelAfterFireIsNoop) {
  EventLoop loop;
  EventHandle h = loop.schedule_at(1.0, [] {});
  loop.run();
  h.cancel();  // must not crash or corrupt
  EXPECT_FALSE(h.pending());
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] { ++fired; });
  loop.schedule_at(2.0, [&] { ++fired; });
  loop.schedule_at(5.0, [&] { ++fired; });
  loop.run_until(3.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
  loop.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  loop.schedule_at(5.0, [] {});
  loop.run();
  double fired_at = -1.0;
  loop.schedule_at(1.0, [&] { fired_at = loop.now(); });  // in the past
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventLoop, EventsScheduledDuringRunAreProcessed) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(1.0, recurse);
  };
  loop.schedule_at(0.0, recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(loop.now(), 4.0);
}

TEST(EventLoop, MaxEventsBoundsRun) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_after(1.0, forever); };
  loop.schedule_at(0.0, forever);
  loop.run(100);
  EXPECT_EQ(loop.fired(), 100u);
}

}  // namespace
}  // namespace geogrid::sim
