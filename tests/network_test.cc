// Simulated network: delivery, latency, loss, failure injection, accounting.
#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace geogrid::sim {
namespace {

struct Recorder : Process {
  std::vector<std::pair<NodeId, net::MsgType>> received;
  std::vector<Time> times;
  EventLoop* loop = nullptr;

  void on_message(NodeId from, const net::Message& msg) override {
    received.emplace_back(from, net::message_type(msg));
    if (loop) times.push_back(loop->now());
  }
};

TEST(Network, DeliversWithLatency) {
  EventLoop loop;
  Network net(loop, Rng(1));
  Recorder a, b;
  b.loop = &loop;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{10, 0});
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{5}});
  loop.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, (NodeId{1}));
  EXPECT_EQ(b.received[0].second, net::MsgType::kHeartbeatAck);
  EXPECT_GT(b.times[0], 0.0);  // latency is never zero
}

TEST(Network, FartherNodesSeeHigherBaseLatency) {
  EventLoop loop;
  Network::Options opt;
  opt.latency.jitter_seconds = 0.0;  // deterministic
  Network net(loop, Rng(1), opt);
  Recorder near, far;
  near.loop = &far == &near ? nullptr : &loop;
  near.loop = &loop;
  far.loop = &loop;
  Recorder src;
  net.attach(NodeId{1}, src, Point{0, 0});
  net.attach(NodeId{2}, near, Point{1, 0});
  net.attach(NodeId{3}, far, Point{60, 0});
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  net.send(NodeId{1}, NodeId{3}, net::HeartbeatAck{RegionId{1}});
  loop.run();
  ASSERT_EQ(near.times.size(), 1u);
  ASSERT_EQ(far.times.size(), 1u);
  EXPECT_LT(near.times[0], far.times[0]);
}

TEST(Network, MessagesToDownNodesDrop) {
  EventLoop loop;
  Network net(loop, Rng(2));
  Recorder a, b;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{1, 1});
  net.set_up(NodeId{2}, false);
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  loop.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);

  net.set_up(NodeId{2}, true);
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  loop.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, MessagesFromDownNodesDrop) {
  EventLoop loop;
  Network net(loop, Rng(3));
  Recorder a, b;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{1, 1});
  net.set_up(NodeId{1}, false);
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  loop.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, CrashAfterSendDropsInFlight) {
  EventLoop loop;
  Network net(loop, Rng(4));
  Recorder a, b;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{1, 1});
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  net.set_up(NodeId{2}, false);  // receiver dies while message in flight
  loop.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, LossProbabilityDropsSomeMessages) {
  EventLoop loop;
  Network::Options opt;
  opt.loss_probability = 0.5;
  Network net(loop, Rng(5), opt);
  Recorder a, b;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{1, 1});
  for (int i = 0; i < 1000; ++i) {
    net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  }
  loop.run();
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
}

TEST(Network, SelfSendDeliversThroughLoop) {
  EventLoop loop;
  Network net(loop, Rng(6));
  Recorder a;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.send(NodeId{1}, NodeId{1}, net::HeartbeatAck{RegionId{1}});
  EXPECT_TRUE(a.received.empty());  // not synchronous
  loop.run();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(Network, AccountsTraffic) {
  EventLoop loop;
  Network net(loop, Rng(7));
  Recorder a, b;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{1, 1});
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  net.send(NodeId{1}, NodeId{2}, net::Heartbeat{RegionId{1}, 1.0, 2.0});
  loop.run();
  const auto& s = net.stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_GT(s.bytes_sent, 2 * net::kPacketOverheadBytes);
  EXPECT_EQ(s.count(net::MsgType::kHeartbeatAck), 1u);
  EXPECT_EQ(s.count(net::MsgType::kHeartbeat), 1u);
}

TEST(Network, VerifySerializationPreservesContent) {
  EventLoop loop;
  Network::Options opt;
  opt.verify_serialization = true;
  Network net(loop, Rng(8), opt);

  struct Inspect : Process {
    double load = 0.0;
    void on_message(NodeId, const net::Message& msg) override {
      load = std::get<net::Heartbeat>(msg).load;
    }
  } sink;
  Recorder src;
  net.attach(NodeId{1}, src, Point{0, 0});
  net.attach(NodeId{2}, sink, Point{1, 1});
  net.send(NodeId{1}, NodeId{2}, net::Heartbeat{RegionId{3}, 7.25, 1.0});
  loop.run();
  EXPECT_DOUBLE_EQ(sink.load, 7.25);
}

TEST(Network, DetachedNodeUnreachable) {
  EventLoop loop;
  Network net(loop, Rng(9));
  Recorder a, b;
  net.attach(NodeId{1}, a, Point{0, 0});
  net.attach(NodeId{2}, b, Point{1, 1});
  net.detach(NodeId{2});
  EXPECT_FALSE(net.is_attached(NodeId{2}));
  net.send(NodeId{1}, NodeId{2}, net::HeartbeatAck{RegionId{1}});
  loop.run();
  EXPECT_TRUE(b.received.empty());
}

}  // namespace
}  // namespace geogrid::sim
