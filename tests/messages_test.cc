// Protocol message framing: every message type round-trips losslessly.
#include "net/messages.h"

#include <gtest/gtest.h>

namespace geogrid::net {
namespace {

NodeInfo sample_node(std::uint32_t id, double capacity = 10.0) {
  NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{12.5, 47.25};
  n.capacity = capacity;
  return n;
}

RegionSnapshot sample_snapshot(std::uint32_t rid, bool with_secondary) {
  RegionSnapshot s;
  s.region = RegionId{rid};
  s.rect = Rect{16, 32, 16, 8};
  s.primary = sample_node(rid * 10, 100.0);
  if (with_secondary) s.secondary = sample_node(rid * 10 + 1, 10.0);
  s.load = 2.75;
  s.workload_index = 0.0275;
  s.split_depth = 5;
  return s;
}

/// Lossless round-trip: re-encoding the decoded message reproduces the
/// original bytes exactly.
void expect_roundtrip(const Message& m) {
  const auto bytes = encode_message(m);
  const Message decoded = decode_message(bytes);
  EXPECT_EQ(message_type(decoded), message_type(m));
  EXPECT_EQ(encode_message(decoded), bytes)
      << "lossy round-trip for " << message_name(message_type(m));
}

TEST(Messages, EveryTypeRoundTrips) {
  std::vector<Message> all;
  all.push_back(BootstrapRegister{sample_node(1)});
  all.push_back(BootstrapEntryRequest{sample_node(2)});
  all.push_back(BootstrapEntryReply{sample_node(3)});
  all.push_back(BootstrapEntryReply{std::nullopt});
  all.push_back(JoinRequest{sample_node(4)});
  all.push_back(JoinProbeReply{sample_snapshot(1, true),
                               {sample_snapshot(2, false),
                                sample_snapshot(3, true)}});
  all.push_back(SecondaryJoinRequest{sample_node(5), RegionId{9}});
  all.push_back(SplitJoinRequest{sample_node(6), RegionId{10}});
  {
    JoinGrant g;
    g.region_state = sample_snapshot(4, true);
    g.role = OwnerRole::kSecondary;
    g.neighbors = {sample_snapshot(5, false)};
    all.push_back(g);
  }
  all.push_back(JoinReject{"region changed"});
  all.push_back(NeighborUpdate{sample_snapshot(6, false)});
  all.push_back(NeighborRemove{RegionId{11}});
  all.push_back(LeaveNotice{RegionId{12}, true});
  all.push_back(TakeoverNotice{sample_snapshot(7, false)});
  {
    RegionHandoff h;
    h.region_state = sample_snapshot(8, true);
    h.neighbors = {sample_snapshot(9, false)};
    h.vacate = RegionId{13};
    all.push_back(h);
  }
  all.push_back(Heartbeat{RegionId{14}, 1.5, 8.5});
  all.push_back(HeartbeatAck{RegionId{15}});
  all.push_back(SyncState{RegionId{16}, 42, "replica-blob"});
  all.push_back(LoadStatsExchange{{sample_snapshot(10, true)}});
  all.push_back(StealSecondaryRequest{RegionId{17}, sample_snapshot(11, false)});
  all.push_back(StealSecondaryGrant{RegionId{18}, sample_node(7)});
  all.push_back(StealSecondaryReject{RegionId{19}});
  {
    SwitchRequest sr;
    sr.kind = SwitchKind::kPrimaryWithSecondary;
    sr.proposer_region = sample_snapshot(12, true);
    sr.proposer_neighbors = {sample_snapshot(13, false)};
    sr.target_region = RegionId{20};
    all.push_back(sr);
  }
  all.push_back(SwitchGrant{SwitchKind::kPrimaryWithPrimary, RegionId{21},
                            sample_node(8)});
  all.push_back(SwitchReject{RegionId{22}});
  {
    MergeRequest mr;
    mr.proposer_region = sample_snapshot(14, false);
    mr.proposer_neighbors = {sample_snapshot(15, true)};
    mr.target_region = RegionId{23};
    all.push_back(mr);
  }
  all.push_back(MergeGrant{sample_snapshot(16, true)});
  all.push_back(MergeReject{RegionId{24}});
  all.push_back(SplitRegionNotice{RegionId{25}, sample_snapshot(17, false),
                                  sample_snapshot(18, false)});
  {
    TtlSearchRequest t;
    t.search_id = 77;
    t.origin = sample_node(9);
    t.want = SearchWant::kPrimary;
    t.min_capacity = 100.0;
    t.max_index = 0.5;
    t.ttl = 3;
    t.depth = 2;
    all.push_back(t);
  }
  all.push_back(TtlSearchReply{88, sample_snapshot(19, true),
                               SearchWant::kSecondary});
  all.push_back(OwnerProbe{RegionId{28}, sample_node(12)});
  all.push_back(make_routed(Point{30, 40}, LocationQuery{}));
  {
    LocationQuery q;
    q.query_id = 123;
    q.focal = sample_node(10);
    q.area = Rect{20, 20, 4, 4};
    q.filter = "traffic";
    q.disseminated = true;
    all.push_back(q);
  }
  all.push_back(QueryResult{456, RegionId{26}, "payload"});
  {
    Subscribe s;
    s.sub_id = 789;
    s.subscriber = sample_node(11);
    s.area = Rect{10, 10, 2, 2};
    s.filter = "parking";
    s.duration = 1800.0;
    all.push_back(s);
  }
  all.push_back(SubscribeAck{789, RegionId{27}});
  all.push_back(Publish{Point{11, 11}, "parking", "lot A: 3 spots"});
  all.push_back(Notify{789, "parking", "lot A: 3 spots"});
  {
    Unsubscribe u;
    u.sub_id = 789;
    u.subscriber = sample_node(11);
    u.area = Rect{10, 10, 2, 2};
    u.disseminated = true;
    all.push_back(u);
  }
  {
    LocationUpdate u;
    u.user = UserId{321};
    u.location = Point{8.5, 9.25};
    u.seq = 17;
    u.has_prev = true;
    u.prev_location = Point{8.0, 9.0};
    u.reporter = sample_node(13);
    all.push_back(u);
  }
  {
    LocationUpdate fresh;  // first report: no previous position on the wire
    fresh.user = UserId{322};
    fresh.location = Point{1.0, 2.0};
    fresh.seq = 1;
    fresh.reporter = sample_node(14);
    all.push_back(fresh);
  }
  all.push_back(LocationUpdateAck{UserId{321}, 17, RegionId{29}});
  all.push_back(UserHandoff{UserId{321}, 17, RegionId{30}});
  {
    LocateRequest lr;
    lr.request_id = 9001;
    lr.requester = sample_node(15);
    lr.user = UserId{321};
    lr.hint = Point{8.0, 9.0};
    all.push_back(lr);
  }
  {
    LocateReply reply;
    reply.request_id = 9001;
    reply.user = UserId{321};
    reply.found = true;
    reply.location = Point{8.5, 9.25};
    reply.seq = 17;
    reply.region = RegionId{29};
    reply.hops = 6;
    all.push_back(reply);
  }
  all.push_back(LocateReply{9002, UserId{999}});  // not-found reply
  {
    NearestRequest nr;
    nr.query_id = 9003;
    nr.center = Point{7.5, 8.25};
    nr.k = 16;
    all.push_back(nr);
  }

  EXPECT_EQ(all.size(), 48u);  // every message type exercised
  for (const Message& m : all) expect_roundtrip(m);
}

// --- Mobile-user transfer message family --------------------------------
//
// EveryTypeRoundTrips proves byte-level round-trips; these additionally pin
// each decoded *field* (mirroring codec_test.cc's subscription-family
// coverage) so a codec change that swaps two same-width fields — which
// still re-encodes identically — is caught.

template <typename M>
M field_roundtrip(const M& m) {
  Writer w;
  m.encode(w);
  Reader r(w.bytes());
  M out = M::decode(r);
  EXPECT_TRUE(r.done()) << "decoder left trailing bytes";
  return out;
}

TEST(Messages, LocationUpdateFieldsRoundTrip) {
  LocationUpdate u;
  u.user = UserId{0xdeadbeef};
  u.location = Point{101.5, -7.25};
  u.seq = 0x1122334455667788ULL;
  u.has_prev = true;
  u.prev_location = Point{100.0, -6.0};
  u.reporter = sample_node(42, 12.5);
  const LocationUpdate d = field_roundtrip(u);
  EXPECT_EQ(d.user, u.user);
  EXPECT_EQ(d.location, u.location);
  EXPECT_EQ(d.seq, u.seq);
  EXPECT_TRUE(d.has_prev);
  EXPECT_EQ(d.prev_location, u.prev_location);
  EXPECT_EQ(d.reporter.id, u.reporter.id);
  EXPECT_EQ(d.reporter.coord, u.reporter.coord);
  EXPECT_DOUBLE_EQ(d.reporter.capacity, u.reporter.capacity);
}

TEST(Messages, LocationUpdateFirstReportOmitsPrev) {
  LocationUpdate u;
  u.user = UserId{7};
  u.location = Point{1.0, 2.0};
  u.seq = 1;
  u.reporter = sample_node(43);
  const LocationUpdate d = field_roundtrip(u);
  EXPECT_FALSE(d.has_prev);
  EXPECT_EQ(d.prev_location, Point{});  // never read off the wire
  // The optional field must actually be absent, not zero-encoded.
  LocationUpdate with_prev = u;
  with_prev.has_prev = true;
  Writer wa, wb;
  u.encode(wa);
  with_prev.encode(wb);
  EXPECT_EQ(wb.bytes().size(), wa.bytes().size() + 16);
}

TEST(Messages, LocationUpdateAckFieldsRoundTrip) {
  const LocationUpdateAck a{UserId{0xcafe}, 0x9876543210ULL, RegionId{314}};
  const LocationUpdateAck d = field_roundtrip(a);
  EXPECT_EQ(d.user, a.user);
  EXPECT_EQ(d.seq, a.seq);
  EXPECT_EQ(d.region, a.region);
}

TEST(Messages, UserHandoffFieldsRoundTrip) {
  // The eviction notice the old owning region receives after a migration:
  // user/seq/new_region are all same-width neighbors of the ack's fields,
  // so pin each one individually.
  const UserHandoff h{UserId{0xbeef}, 0x13579bdf02468aceULL, RegionId{628}};
  const UserHandoff d = field_roundtrip(h);
  EXPECT_EQ(d.user, h.user);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.new_region, h.new_region);
}

TEST(Messages, LocateRequestFieldsRoundTrip) {
  LocateRequest lr;
  lr.request_id = 0xfeed0000beefULL;
  lr.requester = sample_node(44, 99.0);
  lr.user = UserId{0x5555};
  lr.hint = Point{-3.5, 88.125};
  const LocateRequest d = field_roundtrip(lr);
  EXPECT_EQ(d.request_id, lr.request_id);
  EXPECT_EQ(d.requester.id, lr.requester.id);
  EXPECT_EQ(d.requester.coord, lr.requester.coord);
  EXPECT_DOUBLE_EQ(d.requester.capacity, lr.requester.capacity);
  EXPECT_EQ(d.user, lr.user);
  EXPECT_EQ(d.hint, lr.hint);
}

TEST(Messages, LocateReplyFieldsRoundTrip) {
  LocateReply reply;
  reply.request_id = 0x0123456789abcdefULL;
  reply.user = UserId{0xaaaa};
  reply.found = true;
  reply.location = Point{55.5, 66.75};
  reply.seq = 0xfedcba98ULL;
  reply.region = RegionId{2718};
  reply.hops = 0x1234;
  const LocateReply d = field_roundtrip(reply);
  EXPECT_EQ(d.request_id, reply.request_id);
  EXPECT_EQ(d.user, reply.user);
  EXPECT_TRUE(d.found);
  EXPECT_EQ(d.location, reply.location);
  EXPECT_EQ(d.seq, reply.seq);
  EXPECT_EQ(d.region, reply.region);
  EXPECT_EQ(d.hops, reply.hops);
}

TEST(Messages, LocateReplyNotFoundKeepsDefaults) {
  const LocateReply d = field_roundtrip(LocateReply{9002, UserId{999}});
  EXPECT_FALSE(d.found);
  EXPECT_EQ(d.seq, 0u);
  EXPECT_EQ(d.hops, 0u);
}

TEST(Messages, RegionHandoffFieldsRoundTrip) {
  RegionHandoff h;
  h.region_state = sample_snapshot(31, true);
  h.neighbors = {sample_snapshot(32, false), sample_snapshot(33, true)};
  h.vacate = RegionId{77};
  const RegionHandoff d = field_roundtrip(h);
  EXPECT_EQ(d.region_state.region, h.region_state.region);
  EXPECT_EQ(d.region_state.rect, h.region_state.rect);
  EXPECT_EQ(d.region_state.primary.id, h.region_state.primary.id);
  ASSERT_TRUE(d.region_state.secondary.has_value());
  EXPECT_EQ(d.region_state.secondary->id, h.region_state.secondary->id);
  EXPECT_DOUBLE_EQ(d.region_state.load, h.region_state.load);
  EXPECT_DOUBLE_EQ(d.region_state.workload_index,
                   h.region_state.workload_index);
  EXPECT_EQ(d.region_state.split_depth, h.region_state.split_depth);
  ASSERT_EQ(d.neighbors.size(), 2u);
  EXPECT_EQ(d.neighbors[0].region, h.neighbors[0].region);
  EXPECT_FALSE(d.neighbors[0].secondary.has_value());
  EXPECT_EQ(d.neighbors[1].region, h.neighbors[1].region);
  EXPECT_EQ(d.vacate, h.vacate);
}

// --- Load-balance / dual-peer control families --------------------------
//
// The same field-level discipline for the adaptation control plane: every
// message the planner and dual-peer protocols exchange pins each decoded
// field, so a swapped pair of same-width fields can't hide behind a
// byte-identical re-encode.

TEST(Messages, HeartbeatFamilyFieldsRoundTrip) {
  const Heartbeat hb{RegionId{41}, 3.25, 6.75};
  const Heartbeat d = field_roundtrip(hb);
  EXPECT_EQ(d.region, hb.region);
  EXPECT_DOUBLE_EQ(d.load, 3.25);
  EXPECT_DOUBLE_EQ(d.available, 6.75);

  EXPECT_EQ(field_roundtrip(HeartbeatAck{RegionId{42}}).region, RegionId{42});

  const SyncState s{RegionId{43}, 0xabcdef0123456789ULL, "subs-v2-blob"};
  const SyncState ds = field_roundtrip(s);
  EXPECT_EQ(ds.region, s.region);
  EXPECT_EQ(ds.version, s.version);
  EXPECT_EQ(ds.payload, s.payload);
}

TEST(Messages, LoadStatsExchangeFieldsRoundTrip) {
  const LoadStatsExchange ex{
      {sample_snapshot(51, true), sample_snapshot(52, false)}};
  const LoadStatsExchange d = field_roundtrip(ex);
  ASSERT_EQ(d.regions.size(), 2u);
  EXPECT_EQ(d.regions[0].region, RegionId{51});
  EXPECT_EQ(d.regions[0].rect, ex.regions[0].rect);
  EXPECT_EQ(d.regions[0].primary.id, ex.regions[0].primary.id);
  ASSERT_TRUE(d.regions[0].secondary.has_value());
  EXPECT_DOUBLE_EQ(d.regions[0].load, ex.regions[0].load);
  EXPECT_DOUBLE_EQ(d.regions[0].workload_index,
                   ex.regions[0].workload_index);
  EXPECT_EQ(d.regions[0].split_depth, ex.regions[0].split_depth);
  EXPECT_EQ(d.regions[1].region, RegionId{52});
  EXPECT_FALSE(d.regions[1].secondary.has_value());
}

TEST(Messages, StealSecondaryFamilyFieldsRoundTrip) {
  const StealSecondaryRequest req{RegionId{61}, sample_snapshot(62, true)};
  const StealSecondaryRequest dr = field_roundtrip(req);
  EXPECT_EQ(dr.victim_region, RegionId{61});
  EXPECT_EQ(dr.overloaded.region, RegionId{62});
  EXPECT_EQ(dr.overloaded.primary.id, req.overloaded.primary.id);

  const StealSecondaryGrant grant{RegionId{63}, sample_node(64, 50.0)};
  const StealSecondaryGrant dg = field_roundtrip(grant);
  EXPECT_EQ(dg.victim_region, RegionId{63});
  EXPECT_EQ(dg.stolen.id, NodeId{64});
  EXPECT_DOUBLE_EQ(dg.stolen.capacity, 50.0);

  EXPECT_EQ(field_roundtrip(StealSecondaryReject{RegionId{65}}).victim_region,
            RegionId{65});
}

TEST(Messages, SwitchFamilyFieldsRoundTrip) {
  SwitchRequest sr;
  sr.kind = SwitchKind::kPrimaryWithSecondary;
  sr.proposer_region = sample_snapshot(71, true);
  sr.proposer_neighbors = {sample_snapshot(72, false)};
  sr.target_region = RegionId{73};
  const SwitchRequest dr = field_roundtrip(sr);
  EXPECT_EQ(dr.kind, SwitchKind::kPrimaryWithSecondary);
  EXPECT_EQ(dr.proposer_region.region, RegionId{71});
  ASSERT_EQ(dr.proposer_neighbors.size(), 1u);
  EXPECT_EQ(dr.proposer_neighbors[0].region, RegionId{72});
  EXPECT_EQ(dr.target_region, RegionId{73});

  const SwitchGrant grant{SwitchKind::kPrimaryWithPrimary, RegionId{74},
                          sample_node(75)};
  const SwitchGrant dg = field_roundtrip(grant);
  EXPECT_EQ(dg.kind, SwitchKind::kPrimaryWithPrimary);
  EXPECT_EQ(dg.target_region, RegionId{74});
  EXPECT_EQ(dg.counterpart.id, NodeId{75});

  EXPECT_EQ(field_roundtrip(SwitchReject{RegionId{76}}).target_region,
            RegionId{76});
}

TEST(Messages, MergeFamilyFieldsRoundTrip) {
  MergeRequest mr;
  mr.proposer_region = sample_snapshot(81, false);
  mr.proposer_neighbors = {sample_snapshot(82, true),
                           sample_snapshot(83, false)};
  mr.target_region = RegionId{84};
  const MergeRequest dr = field_roundtrip(mr);
  EXPECT_EQ(dr.proposer_region.region, RegionId{81});
  ASSERT_EQ(dr.proposer_neighbors.size(), 2u);
  EXPECT_EQ(dr.proposer_neighbors[0].region, RegionId{82});
  EXPECT_EQ(dr.proposer_neighbors[1].region, RegionId{83});
  EXPECT_EQ(dr.target_region, RegionId{84});

  const MergeGrant dg = field_roundtrip(MergeGrant{sample_snapshot(85, true)});
  EXPECT_EQ(dg.merged.region, RegionId{85});
  ASSERT_TRUE(dg.merged.secondary.has_value());

  EXPECT_EQ(field_roundtrip(MergeReject{RegionId{86}}).target_region,
            RegionId{86});
}

TEST(Messages, SplitRegionNoticeFieldsRoundTrip) {
  const SplitRegionNotice n{RegionId{91}, sample_snapshot(92, false),
                            sample_snapshot(93, true)};
  const SplitRegionNotice d = field_roundtrip(n);
  EXPECT_EQ(d.old_region, RegionId{91});
  EXPECT_EQ(d.low.region, RegionId{92});
  EXPECT_EQ(d.high.region, RegionId{93});
  EXPECT_EQ(d.low.rect, n.low.rect);
  EXPECT_EQ(d.high.rect, n.high.rect);
}

TEST(Messages, TtlSearchFamilyFieldsRoundTrip) {
  TtlSearchRequest t;
  t.search_id = 0xfeedface;
  t.origin = sample_node(94, 200.0);
  t.want = SearchWant::kPrimary;
  t.min_capacity = 123.5;
  t.max_index = 0.125;
  t.ttl = 5;
  t.depth = 3;
  const TtlSearchRequest dt = field_roundtrip(t);
  EXPECT_EQ(dt.search_id, t.search_id);
  EXPECT_EQ(dt.origin.id, NodeId{94});
  EXPECT_EQ(dt.want, SearchWant::kPrimary);
  EXPECT_DOUBLE_EQ(dt.min_capacity, 123.5);
  EXPECT_DOUBLE_EQ(dt.max_index, 0.125);
  EXPECT_EQ(dt.ttl, 5);
  EXPECT_EQ(dt.depth, 3);

  const TtlSearchReply reply{0xcafebabe, sample_snapshot(95, true),
                             SearchWant::kSecondary};
  const TtlSearchReply dr = field_roundtrip(reply);
  EXPECT_EQ(dr.search_id, reply.search_id);
  EXPECT_EQ(dr.candidate.region, RegionId{95});
  EXPECT_EQ(dr.role, SearchWant::kSecondary);
}

TEST(Messages, OwnerProbeFieldsRoundTrip) {
  const OwnerProbe p{RegionId{96}, sample_node(97, 4.5)};
  const OwnerProbe d = field_roundtrip(p);
  EXPECT_EQ(d.region, RegionId{96});
  EXPECT_EQ(d.prober.id, NodeId{97});
  EXPECT_EQ(d.prober.coord, p.prober.coord);
  EXPECT_DOUBLE_EQ(d.prober.capacity, 4.5);
}

TEST(Messages, NearestRequestFieldsRoundTrip) {
  NearestRequest nr;
  nr.query_id = 0xabc000def;
  nr.center = Point{-12.25, 99.5};
  nr.k = 0x80000001u;  // forces the full u32 width
  const NearestRequest d = field_roundtrip(nr);
  EXPECT_EQ(d.query_id, nr.query_id);
  EXPECT_EQ(d.center, nr.center);
  EXPECT_EQ(d.k, nr.k);
}

TEST(Messages, UnknownTypeThrows) {
  Writer w;
  w.u16(0x7fff);
  EXPECT_THROW(decode_message(w.bytes()), CodecError);
}

TEST(Messages, TrailingBytesThrow) {
  auto bytes = encode_message(HeartbeatAck{RegionId{1}});
  bytes.push_back(std::byte{0});
  EXPECT_THROW(decode_message(bytes), CodecError);
}

TEST(Messages, RoutedEnvelopeWrapsInner) {
  LocationQuery q;
  q.query_id = 5;
  q.focal = sample_node(1);
  q.area = Rect{1, 2, 3, 4};
  const Routed env = make_routed(q.area.center(), q);
  EXPECT_EQ(env.target, (Point{2.5, 4.0}));
  const Message inner = unwrap_routed(env);
  ASSERT_TRUE(std::holds_alternative<LocationQuery>(inner));
  EXPECT_EQ(std::get<LocationQuery>(inner).query_id, 5u);
}

TEST(Messages, WireSizeIncludesOverhead) {
  const HeartbeatAck ack{RegionId{1}};
  EXPECT_EQ(wire_size(ack),
            encode_message(ack).size() + kPacketOverheadBytes);
}

TEST(Messages, NamesAreUnique) {
  EXPECT_EQ(message_name(MsgType::kHeartbeat), "Heartbeat");
  EXPECT_EQ(message_name(MsgType::kRouted), "Routed");
  EXPECT_EQ(message_name(static_cast<MsgType>(9999)), "Unknown");
}

}  // namespace
}  // namespace geogrid::net
