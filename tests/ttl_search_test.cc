// TTL-guided remote search over the region adjacency graph.
#include "loadbalance/ttl_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "overlay/basic_ops.h"
#include "overlay/partition.h"

namespace geogrid::loadbalance {
namespace {

using overlay::Partition;

net::NodeInfo make_node(std::uint32_t id, double x, double y) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{x, y};
  n.capacity = 10.0;
  return n;
}

/// Exactly uniform 4x4 grid (16 congruent 16x16-mile regions) built by
/// splitting every region once per round.
Partition grid16() {
  Partition p(Rect{0, 0, 64, 64});
  std::uint32_t id = 1;
  p.add_node(make_node(id, 8, 8));
  p.create_root(NodeId{id});
  ++id;
  for (int round = 0; round < 4; ++round) {
    std::vector<RegionId> existing;
    for (const auto& [rid, r] : p.regions()) existing.push_back(rid);
    for (const RegionId rid : existing) {
      p.add_node(make_node(id, 8, 8));
      p.split_explicit(rid, NodeId{id}, /*give_high=*/true);
      ++id;
    }
  }
  return p;
}

TEST(TtlSearch, ExcludesOriginAndRingOne) {
  const Partition p = grid16();
  const RegionId corner = p.locate({1, 1});
  const auto remote = remote_regions(p, corner, 2);
  EXPECT_FALSE(remote.empty());
  EXPECT_EQ(std::count(remote.begin(), remote.end(), corner), 0);
  for (const RegionId n : p.neighbors(corner)) {
    EXPECT_EQ(std::count(remote.begin(), remote.end(), n), 0);
  }
}

TEST(TtlSearch, RingTwoOfCornerHasThreeRegions) {
  const Partition p = grid16();
  const RegionId corner = p.locate({1, 1});
  // From a corner of a 4x4 grid: ring 2 = {(2,0), (1,1), (0,2)}.
  const auto remote = remote_regions(p, corner, 2);
  EXPECT_EQ(remote.size(), 3u);
}

TEST(TtlSearch, LargerTtlReachesFurther) {
  const Partition p = grid16();
  const RegionId corner = p.locate({1, 1});
  const auto r2 = remote_regions(p, corner, 2);
  const auto r3 = remote_regions(p, corner, 3);
  const auto r6 = remote_regions(p, corner, 6);
  EXPECT_LT(r2.size(), r3.size());
  // TTL 6 covers the full 4x4 grid minus origin and ring 1.
  EXPECT_EQ(r6.size(), 16u - 1u - p.neighbors(corner).size());
}

TEST(TtlSearch, NoDuplicates) {
  const Partition p = grid16();
  const RegionId center = p.locate({24, 24});
  auto remote = remote_regions(p, center, 4);
  auto sorted = remote;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(TtlSearch, TtlBelowTwoFindsNothing) {
  const Partition p = grid16();
  const RegionId corner = p.locate({1, 1});
  EXPECT_TRUE(remote_regions(p, corner, 1).empty());
  EXPECT_TRUE(remote_regions(p, corner, 0).empty());
}

TEST(TtlSearch, UnknownOriginFindsNothing) {
  const Partition p = grid16();
  EXPECT_TRUE(remote_regions(p, RegionId{9999}, 3).empty());
}

}  // namespace
}  // namespace geogrid::loadbalance
