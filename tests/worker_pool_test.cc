// WorkerPool: fork/join barrier correctness, fixed task affinity,
// exception safety from both workers and the dispatcher, and the
// no-thread-spawn guarantee of the serial configuration.  The stress
// tests drive many small generations back to back — the shape that
// exposes a torn barrier or a leaked job pointer under TSan.
#include "common/worker_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace geogrid::common {
namespace {

TEST(WorkerPool, RunsAllTasksExactlyOnce) {
  WorkerPool pool(4);
  ASSERT_EQ(pool.task_count(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t t) { ++hits[t]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SerialPoolSpawnsNoThreads) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.task_count(), 1u);
  EXPECT_EQ(pool.worker_thread_count(), 0u);
  // The single task runs on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.run([&](std::size_t t) {
    EXPECT_EQ(t, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(WorkerPool, ZeroMeansHardwareConcurrency) {
  WorkerPool pool(0);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(pool.task_count(), hw);
  EXPECT_EQ(pool.worker_thread_count(), hw - 1);
}

TEST(WorkerPool, TaskAffinityIsFixedAcrossGenerations) {
  WorkerPool pool(4);
  std::vector<std::thread::id> first(4);
  pool.run([&](std::size_t t) { first[t] = std::this_thread::get_id(); });
  for (int round = 0; round < 8; ++round) {
    pool.run([&](std::size_t t) {
      EXPECT_EQ(std::this_thread::get_id(), first[t]);
    });
  }
}

TEST(WorkerPool, RepeatedGenerationsStress) {
  // Many tiny batches: each generation's countdown must fully reset
  // before the next dispatch, and no task may observe a stale job.
  WorkerPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kGenerations = 2000;
  for (int g = 0; g < kGenerations; ++g) {
    pool.run([&, g](std::size_t t) {
      sum.fetch_add(static_cast<std::uint64_t>(g) * 4 + t,
                    std::memory_order_relaxed);
    });
  }
  // sum of (4g + t) over g in [0,2000), t in [0,4)
  std::uint64_t want = 0;
  for (std::uint64_t g = 0; g < kGenerations; ++g) {
    for (std::uint64_t t = 0; t < 4; ++t) want += g * 4 + t;
  }
  EXPECT_EQ(sum.load(), want);
}

TEST(WorkerPool, WorkerExceptionPropagatesAndDrains) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  EXPECT_THROW(
      pool.run([&](std::size_t t) {
        ++hits[t];
        if (t == 2) throw std::runtime_error("task 2 failed");
      }),
      std::runtime_error);
  // The generation drained: every other task still ran to completion.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, DispatcherExceptionDrainsBarrierBeforeUnwinding) {
  // Regression: fn(0) throwing on the dispatching thread must not unwind
  // past the barrier while workers still hold a pointer to fn's frame.
  // The workers flip their slots; if the dispatcher unwound early the
  // job context would dangle and the flips (or TSan) would catch it.
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  EXPECT_THROW(
      pool.run([&](std::size_t t) {
        if (t == 0) throw std::logic_error("dispatcher task failed");
        ++hits[t];
      }),
      std::logic_error);
  for (std::size_t t = 1; t < 4; ++t) EXPECT_EQ(hits[t].load(), 1);
}

TEST(WorkerPool, PoolIsReusableAfterThrow) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run([](std::size_t t) {
    if (t == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  // Subsequent generations behave normally and rethrow nothing.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    pool.run([&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 3);
  }
}

TEST(WorkerPool, FirstExceptionWinsWhenSeveralTasksThrow) {
  WorkerPool pool(4);
  // All tasks throw; exactly one exception must surface and the pool
  // must stay consistent.
  EXPECT_THROW(pool.run([](std::size_t t) {
    throw std::runtime_error("task " + std::to_string(t));
  }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.run([&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(WorkerPool, SerialPathPropagatesExceptions) {
  WorkerPool pool(1);
  EXPECT_THROW(
      pool.run([](std::size_t) { throw std::runtime_error("serial"); }),
      std::runtime_error);
  int ran = 0;
  pool.run([&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(WorkerPool, OversubscribedPoolCompletes) {
  // More tasks than cores: the barrier must not deadlock when workers
  // outnumber hardware threads.
  WorkerPool pool(16);
  std::atomic<int> ran{0};
  for (int round = 0; round < 100; ++round) {
    pool.run([&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(ran.load(), 1600);
}

}  // namespace
}  // namespace geogrid::common
