// Dual-peer join target selection (§2.3 rules, pure over snapshots).
#include "dualpeer/join_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace geogrid::dualpeer {
namespace {

net::RegionSnapshot snap(std::uint32_t rid, double primary_cap, double load,
                         bool full, double secondary_cap = 1.0) {
  net::RegionSnapshot s;
  s.region = RegionId{rid};
  s.rect = Rect{0, 0, 8, 8};
  s.primary.id = NodeId{rid * 10};
  s.primary.capacity = primary_cap;
  if (full) {
    net::NodeInfo sec;
    sec.id = NodeId{rid * 10 + 1};
    sec.capacity = secondary_cap;
    s.secondary = sec;
  }
  s.load = load;
  s.workload_index = primary_cap > 0 ? load / primary_cap : load;
  return s;
}

TEST(JoinPolicy, PrefersHalfFullRegionWithLeastAvailableCapacity) {
  const auto covering = snap(1, 100.0, 10.0, false);  // avail 90
  const std::vector<net::RegionSnapshot> neighbors{
      snap(2, 10.0, 8.0, false),   // avail 2 <- weakest open
      snap(3, 50.0, 10.0, false),  // avail 40
  };
  const auto d = select_join_target(covering, neighbors);
  EXPECT_EQ(d.action, JoinDecision::Action::kFillSecondary);
  EXPECT_EQ(d.region, (RegionId{2}));
}

TEST(JoinPolicy, CoveringRegionItselfCanWin) {
  const auto covering = snap(1, 5.0, 4.9, false);  // avail 0.1
  const std::vector<net::RegionSnapshot> neighbors{
      snap(2, 100.0, 1.0, false),
  };
  const auto d = select_join_target(covering, neighbors);
  EXPECT_EQ(d.action, JoinDecision::Action::kFillSecondary);
  EXPECT_EQ(d.region, (RegionId{1}));
}

TEST(JoinPolicy, AllFullMeansSplitWeakest) {
  const auto covering = snap(1, 100.0, 10.0, true, 50.0);
  const std::vector<net::RegionSnapshot> neighbors{
      snap(2, 10.0, 9.0, true, 20.0),  // avail 1 <- split victim
      snap(3, 60.0, 10.0, true, 30.0),
  };
  const auto d = select_join_target(covering, neighbors);
  EXPECT_EQ(d.action, JoinDecision::Action::kSplit);
  EXPECT_EQ(d.region, (RegionId{2}));
}

TEST(JoinPolicy, OverloadedOwnersTieBreakOnIndex) {
  // Both candidates have zero available capacity; the one with the higher
  // workload index wins (it needs the help more).
  const auto covering = snap(1, 10.0, 15.0, false);  // index 1.5
  const std::vector<net::RegionSnapshot> neighbors{
      snap(2, 10.0, 30.0, false),  // index 3.0 <- more overloaded
  };
  const auto d = select_join_target(covering, neighbors);
  EXPECT_EQ(d.region, (RegionId{2}));
}

TEST(JoinPolicy, DeterministicTieBreakOnRegionId) {
  const auto covering = snap(5, 10.0, 5.0, false);
  const std::vector<net::RegionSnapshot> neighbors{
      snap(3, 10.0, 5.0, false),  // identical: smaller id wins
  };
  const auto d = select_join_target(covering, neighbors);
  EXPECT_EQ(d.region, (RegionId{3}));
}

TEST(JoinPolicy, StrongerJoinerTakesPrimary) {
  EXPECT_TRUE(joiner_takes_primary(100.0, 10.0));
  EXPECT_FALSE(joiner_takes_primary(10.0, 100.0));
  EXPECT_FALSE(joiner_takes_primary(10.0, 10.0));  // ties keep incumbent
}

TEST(JoinPolicy, PickHalfWithLessAvailableCapacity) {
  const auto weak_half = snap(1, 10.0, 9.0, false);    // avail 1
  const auto strong_half = snap(2, 100.0, 9.0, false); // avail 91
  EXPECT_EQ(pick_half_to_join(weak_half, strong_half), (RegionId{1}));
  EXPECT_EQ(pick_half_to_join(strong_half, weak_half), (RegionId{1}));
}

TEST(JoinPolicy, CandidateOrderingIsStrictWeak) {
  const auto a = snap(1, 10.0, 2.0, false);
  const auto b = snap(2, 100.0, 2.0, false);
  EXPECT_TRUE(join_candidate_less(a, b));
  EXPECT_FALSE(join_candidate_less(b, a));
  EXPECT_FALSE(join_candidate_less(a, a));
}

}  // namespace
}  // namespace geogrid::dualpeer
