#include "common/histogram.h"

#include <gtest/gtest.h>

namespace geogrid {
namespace {

TEST(Histogram, BinsValuesUniformly) {
  Histogram h(0.0, 10.0, 5);
  for (double v : {0.5, 2.5, 4.5, 6.5, 8.5}) h.add(v);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 10.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 1.0 / 3.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string art = h.render(10);
  EXPECT_NE(art.find("##########"), std::string::npos);
  EXPECT_NE(art.find("10"), std::string::npos);
}

}  // namespace
}  // namespace geogrid
