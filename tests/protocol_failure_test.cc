// Protocol-mode failure handling: dual-peer fail-over, caretaker adoption,
// graceful departure.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace geogrid::core {
namespace {

Cluster::Options options(GridMode mode, std::uint64_t seed) {
  Cluster::Options opt;
  opt.node.mode = mode;
  opt.seed = seed;
  return opt;
}

TEST(ProtocolFailure, SecondaryTakesOverWhenPrimaryCrashes) {
  Cluster cluster(options(GridMode::kDualPeer, 10));
  auto& a = cluster.spawn_at({10, 10}, 100.0);  // will be primary
  auto& b = cluster.spawn_at({50, 50}, 1.0);    // will be secondary
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);
  ASSERT_TRUE(a.owned().begin()->second.is_primary());
  ASSERT_FALSE(b.owned().begin()->second.is_primary());

  a.crash();
  cluster.run_for(60);  // several failure-timeout windows

  ASSERT_EQ(b.owned().size(), 1u);
  EXPECT_TRUE(b.owned().begin()->second.is_primary());
  EXPECT_FALSE(b.owned().begin()->second.full());
  EXPECT_GE(b.counters().takeovers, 1u);
}

TEST(ProtocolFailure, PrimarySurvivesSecondaryCrash) {
  Cluster cluster(options(GridMode::kDualPeer, 11));
  auto& a = cluster.spawn_at({10, 10}, 100.0);
  auto& b = cluster.spawn_at({50, 50}, 1.0);
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);

  b.crash();
  cluster.run_for(60);

  ASSERT_EQ(a.owned().size(), 1u);
  EXPECT_TRUE(a.owned().begin()->second.is_primary());
  EXPECT_FALSE(a.owned().begin()->second.full());  // peer declared dead
}

TEST(ProtocolFailure, FailoverPreservesReplicatedSubscriptions) {
  Cluster cluster(options(GridMode::kDualPeer, 12));
  auto& a = cluster.spawn_at({10, 10}, 100.0);
  cluster.spawn_at({50, 50}, 1.0);
  auto& c = cluster.spawn_at({30, 30}, 10.0);
  // Fourth node lands in the half-full region covering (10, 10), giving it
  // a replica before the crash.
  auto& d = cluster.spawn_at({12, 12}, 20.0);
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);

  int notifies = 0;
  c.on_notify = [&](const net::Notify&) { ++notifies; };
  c.subscribe(Rect{8, 8, 4, 4}, "traffic", 10000.0);
  cluster.run_for(15);  // replication happens on peer-sync ticks

  // Kill whichever node is primary for the subscription area, after
  // verifying a replica exists.
  GeoGridNode* primary = cluster.primary_covering({10, 10});
  ASSERT_NE(primary, nullptr);
  bool replicated = false;
  for (const auto& [rid, region] : primary->owned()) {
    if (region.is_primary() && region.full()) replicated = true;
  }
  ASSERT_TRUE(replicated) << "subscription region never gained a replica";
  primary->crash();
  cluster.run_for(60);

  // The surviving replica must still match publications.
  GeoGridNode* publisher = (&a == primary) ? &d : &a;
  if (!publisher->joined() || publisher->owned().empty()) publisher = &c;
  publisher->publish({10, 10}, "traffic", "jam on I-85");
  cluster.run_for(10);
  EXPECT_GE(notifies, 1);
}

TEST(ProtocolFailure, CaretakerAdoptsOrphanRegion) {
  // Basic mode: no replicas, so a crashed owner's region must be adopted
  // by a neighbor (smallest-node-id caretaker election).
  Cluster cluster(options(GridMode::kBasic, 13));
  for (int i = 0; i < 20; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(30);

  auto& victim = *cluster.nodes()[7];
  const double victim_area = [&] {
    double a = 0.0;
    for (const auto& [rid, region] : victim.owned()) a += region.rect.area();
    return a;
  }();
  ASSERT_GT(victim_area, 0.0);
  victim.crash();
  cluster.run_for(120);  // allow detection + adoption + gossip settling

  // The plane must be fully covered again by the survivors.
  double covered = 0.0;
  for (const auto& node : cluster.nodes()) {
    if (node.get() == &victim) continue;
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) covered += region.rect.area();
    }
  }
  EXPECT_NEAR(covered, 64.0 * 64.0, 1e-6);
}

TEST(ProtocolFailure, GracefulLeaveHandsOverSeats) {
  Cluster cluster(options(GridMode::kDualPeer, 14));
  for (int i = 0; i < 30; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(20);

  auto& leaver = *cluster.nodes()[5];
  leaver.leave();
  cluster.run_for(60);

  EXPECT_TRUE(leaver.owned().empty());
  double covered = 0.0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) covered += region.rect.area();
    }
  }
  EXPECT_NEAR(covered, 64.0 * 64.0, 1e-6);
}

TEST(ProtocolFailure, QueriesStillWorkAfterFailover) {
  Cluster cluster(options(GridMode::kDualPeer, 15));
  for (int i = 0; i < 40; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(20);

  // Crash three nodes that hold primary seats.
  int crashed = 0;
  for (auto& node : cluster.nodes()) {
    if (crashed == 3) break;
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary() && region.full()) {
        node->crash();
        ++crashed;
        break;
      }
    }
  }
  ASSERT_EQ(crashed, 3);
  cluster.run_for(120);

  // A surviving node can still query anywhere.
  GeoGridNode* issuer = nullptr;
  for (auto& node : cluster.nodes()) {
    if (node->joined() && !node->owned().empty()) {
      issuer = node.get();
      break;
    }
  }
  ASSERT_NE(issuer, nullptr);
  int results = 0;
  issuer->on_result = [&](const net::QueryResult&) { ++results; };
  issuer->submit_query(Rect{31, 31, 2, 2}, "traffic");
  issuer->submit_query(Rect{5, 60, 2, 2}, "traffic");
  cluster.run_for(15);
  EXPECT_GE(results, 2);
}

}  // namespace
}  // namespace geogrid::core
