// Protocol-mode joins: real message exchanges build a consistent grid.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace geogrid::core {
namespace {

Cluster::Options options(GridMode mode, std::uint64_t seed) {
  Cluster::Options opt;
  opt.node.mode = mode;
  opt.seed = seed;
  return opt;
}

TEST(ProtocolJoin, FounderOwnsWholePlane) {
  Cluster cluster(options(GridMode::kBasic, 1));
  auto& first = cluster.spawn_at({10, 10}, 10.0);
  ASSERT_TRUE(cluster.run_until_joined());
  ASSERT_EQ(first.owned().size(), 1u);
  EXPECT_EQ(first.owned().begin()->second.rect, (Rect{0, 0, 64, 64}));
}

TEST(ProtocolJoin, BasicModeSplitsPerJoiner) {
  Cluster cluster(options(GridMode::kBasic, 2));
  for (int i = 0; i < 40; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(20);
  std::size_t regions = 0;
  for (const auto& node : cluster.nodes()) regions += node->owned().size();
  EXPECT_EQ(regions, 40u);  // one region per node in basic mode
  EXPECT_TRUE(cluster.check_consistency().empty());
}

TEST(ProtocolJoin, DualPeerFillsSeatsBeforeSplitting) {
  Cluster cluster(options(GridMode::kDualPeer, 3));
  for (int i = 0; i < 60; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(20);
  const auto errors = cluster.check_consistency();
  EXPECT_TRUE(errors.empty()) << errors.front();

  std::size_t primaries = 0, secondaries = 0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      (region.is_primary() ? primaries : secondaries) += 1;
    }
  }
  EXPECT_EQ(primaries + secondaries, 60u);
  // Most regions should be full (paper: dual peer halves region count).
  EXPECT_GT(secondaries, 15u);
  EXPECT_LT(primaries, 45u);
}

TEST(ProtocolJoin, StrongerJoinerBecomesPrimary) {
  Cluster cluster(options(GridMode::kDualPeer, 4));
  auto& weak = cluster.spawn_at({10, 10}, 1.0);
  auto& strong = cluster.spawn_at({50, 50}, 1000.0);
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(5);
  ASSERT_EQ(strong.owned().size(), 1u);
  EXPECT_TRUE(strong.owned().begin()->second.is_primary());
  ASSERT_EQ(weak.owned().size(), 1u);
  EXPECT_FALSE(weak.owned().begin()->second.is_primary());
}

TEST(ProtocolJoin, NeighborTablesMirrorGeometry) {
  Cluster cluster(options(GridMode::kBasic, 5));
  for (int i = 0; i < 25; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(30);  // let gossip settle

  // Collect the authoritative region map from all nodes.
  std::map<RegionId, Rect> rects;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) rects[rid] = region.rect;
  }
  // Every recorded neighbor entry must be geometrically adjacent and
  // up to date with the owner's actual rectangle.
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      for (const auto& [nid, snap] : region.neighbors) {
        ASSERT_TRUE(rects.contains(nid)) << "stale neighbor " << nid;
        EXPECT_TRUE(region.rect.edge_adjacent(rects.at(nid)))
            << "non-adjacent neighbor entry";
      }
    }
  }
}

TEST(ProtocolJoin, ModesAgreeWithEngineOnRegionBudget) {
  // Protocol dual-peer networks land in the same region-count band the
  // engine produces: roughly half the node count.
  Cluster cluster(options(GridMode::kDualPeer, 6));
  for (int i = 0; i < 80; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);
  std::size_t regions = 0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      regions += region.is_primary() ? 1 : 0;
    }
  }
  EXPECT_GE(regions, 80u * 2 / 5);
  EXPECT_LE(regions, 80u * 4 / 5);
}

TEST(ProtocolJoin, JoinsAreRoutedNotDirect) {
  Cluster cluster(options(GridMode::kBasic, 7));
  for (int i = 0; i < 30; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  // Forwarded Routed envelopes prove greedy multi-hop routing happened.
  std::uint64_t forwarded = 0;
  for (const auto& node : cluster.nodes()) {
    forwarded += node->counters().routed_forwarded;
  }
  EXPECT_GT(forwarded, 0u);
}

}  // namespace
}  // namespace geogrid::core
