// Mobile-user motion models and the engine-mode location directory.
#include "mobility/directory.h"
#include "mobility/motion.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "workload/hotspot.h"

namespace geogrid::mobility {
namespace {

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

bool inside_plane(const Point& p) {
  return kPlane.covers(p) || kPlane.covers_inclusive(p);
}

TEST(UserPopulation, SpawnsCountUsersWithSequentialIds) {
  UserPopulation pop(25, {}, nullptr, Rng(1));
  ASSERT_EQ(pop.users().size(), 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(pop.users()[i].id, UserId{static_cast<std::uint32_t>(i + 1)});
    EXPECT_TRUE(inside_plane(pop.users()[i].position));
    EXPECT_EQ(pop.users()[i].next_seq, 1u);
  }
}

TEST(UserPopulation, TrajectoriesAreSeedDeterministic) {
  UserPopulation a(50, {}, nullptr, Rng(99));
  UserPopulation b(50, {}, nullptr, Rng(99));
  double now = 0.0;
  for (int step = 0; step < 200; ++step) {
    now += 1.0;
    a.step(1.0, now);
    b.step(1.0, now);
  }
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.users()[i].position, b.users()[i].position) << "user " << i;
  }
}

TEST(UserPopulation, MovementRespectsSpeedBoundAndPlane) {
  UserPopulation::Options opt;
  opt.min_pause = 0.0;
  opt.max_pause = 0.0;  // keep everyone moving
  UserPopulation pop(40, opt, nullptr, Rng(5));
  std::vector<Point> before;
  for (const auto& u : pop.users()) before.push_back(u.position);
  double now = 0.0;
  for (int step = 0; step < 100; ++step) {
    now += 1.0;
    pop.step(1.0, now);
    for (std::size_t i = 0; i < pop.users().size(); ++i) {
      const MobileUser& u = pop.users()[i];
      EXPECT_TRUE(inside_plane(u.position));
      // One step of dt=1 covers at most max_speed miles (plus float fuzz).
      EXPECT_LE(distance(before[i], u.position), opt.max_speed + 1e-9);
      before[i] = u.position;
    }
  }
}

TEST(UserPopulation, HotspotAttractionConcentratesUsers) {
  Rng field_rng(3);
  workload::HotSpotField::Options fopt;
  fopt.hotspot_count = 2;
  workload::HotSpotField field(fopt, field_rng);

  UserPopulation::Options opt;
  opt.model = MotionModel::kHotspotAttracted;
  opt.attraction = 1.0;  // every waypoint targets a hot spot
  opt.attraction_jitter = 0.5;
  UserPopulation attracted(300, opt, &field, Rng(11));
  UserPopulation uniform(300, {}, nullptr, Rng(11));

  // Mean distance to the nearest hot spot should be far smaller for the
  // attracted population's spawn points.
  const auto mean_nearest = [&](const UserPopulation& pop) {
    double sum = 0.0;
    for (const auto& u : pop.users()) {
      double best = 1e9;
      for (const auto& spot : field.hotspots()) {
        best = std::min(best, distance(u.position, spot.center));
      }
      sum += best;
    }
    return sum / static_cast<double>(pop.users().size());
  };
  EXPECT_LT(mean_nearest(attracted), mean_nearest(uniform) * 0.5);
}

// --- LocationDirectory over a partition ------------------------------------

struct DirectoryFixture {
  overlay::Partition partition{kPlane};
  DirectoryFixture() {
    // Four quadrant regions via two split rounds.
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);   // Y split
    partition.split(root, c);                          // X split of south
    partition.split(north, d);                         // X split of north
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

LocationRecord rec(std::uint32_t user, double x, double y,
                   std::uint64_t seq = 1) {
  return LocationRecord{UserId{user}, Point{x, y}, seq, 0.0};
}

TEST(LocationDirectory, RoutesRecordsToCoveringRegion) {
  DirectoryFixture fx;
  LocationDirectory dir(fx.partition);
  const auto res = dir.apply_update(rec(1, 10.0, 10.0));
  EXPECT_TRUE(res.applied);
  EXPECT_FALSE(res.handoff);
  EXPECT_EQ(res.region, fx.partition.locate(Point{10.0, 10.0}));
  ASSERT_TRUE(dir.locate(UserId{1}).has_value());
  EXPECT_EQ(dir.region_of(UserId{1}), res.region);
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir.counters().locate_hits, 1u);
}

TEST(LocationDirectory, BoundaryCrossingCountsAsHandoff) {
  DirectoryFixture fx;
  LocationDirectory dir(fx.partition);
  EXPECT_TRUE(dir.apply_update(rec(1, 10.0, 10.0, 1)).applied);
  const RegionId first = dir.region_of(UserId{1});
  const auto crossed = dir.apply_update(rec(1, 50.0, 50.0, 2));
  EXPECT_TRUE(crossed.applied);
  EXPECT_TRUE(crossed.handoff);
  EXPECT_NE(crossed.region, first);
  EXPECT_EQ(dir.counters().handoffs, 1u);
  // The old region's store no longer holds the user.
  ASSERT_NE(dir.store(first), nullptr);
  EXPECT_FALSE(dir.store(first)->locate(UserId{1}).has_value());
  EXPECT_EQ(dir.size(), 1u);
}

TEST(LocationDirectory, StaleUpdatesAreCountedNotApplied) {
  DirectoryFixture fx;
  LocationDirectory dir(fx.partition);
  EXPECT_TRUE(dir.apply_update(rec(1, 10.0, 10.0, 5)).applied);
  EXPECT_FALSE(dir.apply_update(rec(1, 11.0, 11.0, 5)).applied);
  EXPECT_FALSE(dir.apply_update(rec(1, 50.0, 50.0, 4)).applied);  // crossing
  EXPECT_EQ(dir.counters().updates_stale, 2u);
  EXPECT_EQ(dir.locate(UserId{1})->position, (Point{10.0, 10.0}));
}

TEST(LocationDirectory, RangeAndKNearestSpanRegions) {
  DirectoryFixture fx;
  LocationDirectory dir(fx.partition);
  // A cluster straddling the center point of the plane: one user per
  // quadrant, a stone's throw from (32, 32), plus one far away.
  EXPECT_TRUE(dir.apply_update(rec(1, 31.0, 31.0)).applied);
  EXPECT_TRUE(dir.apply_update(rec(2, 33.0, 31.0)).applied);
  EXPECT_TRUE(dir.apply_update(rec(3, 31.0, 33.0)).applied);
  EXPECT_TRUE(dir.apply_update(rec(4, 33.0, 33.0)).applied);
  EXPECT_TRUE(dir.apply_update(rec(5, 60.0, 60.0)).applied);
  EXPECT_EQ(dir.range(Rect{30.0, 30.0, 4.0, 4.0}).size(), 4u);
  const auto nearest = dir.k_nearest(Point{32.0, 32.0}, 4);
  ASSERT_EQ(nearest.size(), 4u);
  for (const auto& r : nearest) EXPECT_NE(r.user, UserId{5});
}

TEST(LocationDirectory, FleetOfUsersStaysConsistentUnderMotion) {
  DirectoryFixture fx;
  LocationDirectory dir(fx.partition);
  UserPopulation::Options opt;
  opt.max_pause = 2.0;
  UserPopulation pop(200, opt, nullptr, Rng(21));
  double now = 0.0;
  for (int step = 0; step < 50; ++step) {
    now += 1.0;
    pop.step(1.0, now);
    for (auto& u : pop.users()) {
      const auto res =
          dir.apply_update({u.id, u.position, u.next_seq++, now});
      EXPECT_TRUE(res.applied);
    }
  }
  EXPECT_EQ(dir.size(), 200u);
  EXPECT_EQ(dir.counters().updates_applied, 200u * 50u);
  // Every user is locatable and stored in the region covering its position.
  for (const auto& u : pop.users()) {
    const auto stored = dir.locate(u.id);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(stored->position, u.position);
    EXPECT_EQ(dir.region_of(u.id), fx.partition.locate(u.position));
  }
  // The whole-plane range scan sees exactly the population.
  EXPECT_EQ(dir.range(kPlane).size(), 200u);
}

}  // namespace
}  // namespace geogrid::mobility
