// ASCII partition/field rendering and id formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "common/ascii_render.h"
#include "common/ids.h"

namespace geogrid {
namespace {

TEST(Ids, ValidityAndFormatting) {
  EXPECT_FALSE(kInvalidNode.valid());
  EXPECT_TRUE((NodeId{3}).valid());
  std::ostringstream os;
  os << NodeId{7} << ' ' << RegionId{9} << ' ' << kInvalidRegion;
  EXPECT_EQ(os.str(), "n7 r9 r<invalid>");
}

TEST(Ids, OrderingAndHashing) {
  EXPECT_LT((NodeId{1}), (NodeId{2}));
  EXPECT_EQ(std::hash<NodeId>{}(NodeId{5}), std::hash<NodeId>{}(NodeId{5}));
  EXPECT_LT((NodeId{5}), kInvalidNode);  // invalid sorts last
}

TEST(Render, PartitionShowsBordersAndShades) {
  // Region boundary at x=25 is deliberately unaligned with the character
  // raster so border cells land within the marking threshold.
  const Rect plane{0, 0, 60, 60};
  const std::vector<ShadedRect> regions{
      {Rect{0, 0, 25, 60}, 0.0},
      {Rect{25, 0, 35, 60}, 1.0},
  };
  const std::string art = render_partition(plane, regions, 8, 15);
  EXPECT_NE(art.find('|'), std::string::npos);   // vertical border
  EXPECT_NE(art.find('@'), std::string::npos);   // hottest shade
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 8);
  // No '?' cells: every sample point was covered by some region.
  EXPECT_EQ(art.find('?'), std::string::npos);
}

TEST(Render, UncoveredCellsAreMarked) {
  const Rect plane{0, 0, 64, 64};
  const std::vector<ShadedRect> regions{{Rect{0, 0, 32, 64}, 0.5}};
  const std::string art = render_partition(plane, regions, 4, 8);
  EXPECT_NE(art.find('?'), std::string::npos);  // east half uncovered
}

TEST(Render, FieldRampIsMonotonic) {
  const Rect plane{0, 0, 64, 64};
  const auto field = [](Point p) { return p.x; };  // brighter to the east
  const std::string art = render_field(plane, field, 1, 16);
  // Westmost cell must be the dimmest character, eastmost the brightest.
  EXPECT_EQ(art.front(), ' ');
  EXPECT_EQ(art[15], '@');
}

TEST(Render, ZeroFieldRendersBlank) {
  const Rect plane{0, 0, 64, 64};
  const std::string art =
      render_field(plane, [](Point) { return 0.0; }, 2, 4);
  for (char c : art) EXPECT_TRUE(c == ' ' || c == '\n');
}

}  // namespace
}  // namespace geogrid
