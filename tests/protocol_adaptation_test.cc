// Protocol-mode load-balance adaptation: the message handshakes move owner
// seats and reduce imbalance, with no global coordinator.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/cluster.h"

namespace geogrid::core {
namespace {

Cluster::Options adaptive_options(std::uint64_t seed) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeerAdaptive;
  opt.seed = seed;
  return opt;
}

/// Std-dev of per-node workload indexes across the cluster.
double imbalance(Cluster& cluster) {
  RunningStats rs;
  for (const auto& node : cluster.nodes()) {
    if (node->joined()) rs.add(node->workload_index());
  }
  return rs.stddev();
}

class ProtocolAdaptationTest : public ::testing::Test {
 protected:
  ProtocolAdaptationTest()
      : cluster_(adaptive_options(77)), field_rng_(123),
        field_(field_options(), field_rng_) {}

  static workload::HotSpotField::Options field_options() {
    workload::HotSpotField::Options opt;
    opt.cells_x = 128;
    opt.cells_y = 128;
    opt.hotspot_count = 6;
    return opt;
  }

  /// Runs `seconds` of virtual time, refreshing node loads from the field
  /// every second (ownership moves change which node carries which load).
  void run_with_loads(double seconds) {
    for (int i = 0; i < static_cast<int>(seconds); ++i) {
      cluster_.apply_field(field_);
      cluster_.run_for(1.0);
    }
  }

  Cluster cluster_;
  Rng field_rng_;
  workload::HotSpotField field_;
};

TEST_F(ProtocolAdaptationTest, HandshakesExecuteAndImproveBalance) {
  for (int i = 0; i < 60; ++i) cluster_.spawn();
  ASSERT_TRUE(cluster_.run_until_joined());
  cluster_.run_for(20);

  cluster_.apply_field(field_);
  const double before = imbalance(cluster_);

  run_with_loads(120.0);  // many adaptation ticks

  std::uint64_t started = 0, completed = 0;
  for (const auto& node : cluster_.nodes()) {
    started += node->counters().adaptations_started;
    completed += node->counters().adaptations_completed;
  }
  EXPECT_GT(started, 0u);
  EXPECT_GT(completed, 0u);
  EXPECT_LE(completed, started);

  cluster_.apply_field(field_);
  const double after = imbalance(cluster_);
  EXPECT_LT(after, before);

  const auto errors = cluster_.check_consistency();
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST_F(ProtocolAdaptationTest, AdaptationSurvivesMovingHotspots) {
  for (int i = 0; i < 50; ++i) cluster_.spawn();
  ASSERT_TRUE(cluster_.run_until_joined());
  cluster_.run_for(20);

  for (int epoch = 0; epoch < 6; ++epoch) {
    field_.migrate(field_rng_, 4 + epoch % 7);
    run_with_loads(30.0);
    const auto errors = cluster_.check_consistency();
    ASSERT_TRUE(errors.empty())
        << "epoch " << epoch << ": " << errors.front();
  }
}

TEST(ProtocolAdaptation, NoLoadMeansNoAdaptations) {
  Cluster cluster(adaptive_options(88));
  for (int i = 0; i < 30; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(120);  // no loads ever applied

  std::uint64_t started = 0;
  for (const auto& node : cluster.nodes()) {
    started += node->counters().adaptations_started;
  }
  EXPECT_EQ(started, 0u);
}

TEST(ProtocolAdaptation, DualPeerModeDoesNotAdapt) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeer;  // adaptation disabled by mode
  opt.seed = 99;
  Cluster cluster(opt);
  for (int i = 0; i < 30; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());

  Rng rng(5);
  workload::HotSpotField field(
      workload::HotSpotField::Options{.cells_x = 64, .cells_y = 64,
                                      .hotspot_count = 5},
      rng);
  for (int i = 0; i < 60; ++i) {
    cluster.apply_field(field);
    cluster.run_for(1.0);
  }
  std::uint64_t started = 0;
  for (const auto& node : cluster.nodes()) {
    started += node->counters().adaptations_started;
  }
  EXPECT_EQ(started, 0u);
}

}  // namespace
}  // namespace geogrid::core
