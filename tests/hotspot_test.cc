// Hot-spot workload field: the 1 - d/r falloff, migration, region loads.
#include "workload/hotspot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace geogrid::workload {
namespace {

HotSpotField::Options small_field() {
  HotSpotField::Options opt;
  opt.plane = Rect{0, 0, 64, 64};
  opt.cells_x = 64;
  opt.cells_y = 64;
  opt.hotspot_count = 0;  // tests add their own
  return opt;
}

TEST(HotSpot, IntensityFalloff) {
  const HotSpot h{Point{10, 10}, 4.0};
  EXPECT_DOUBLE_EQ(h.intensity_at({10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(h.intensity_at({12, 10}), 0.5);
  EXPECT_DOUBLE_EQ(h.intensity_at({14, 10}), 0.0);   // on the border
  EXPECT_DOUBLE_EQ(h.intensity_at({20, 10}), 0.0);   // outside
}

TEST(HotSpotField, RadiiWithinPaperBounds) {
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 50;
  Rng rng(1);
  HotSpotField field(opt, rng);
  for (const auto& h : field.hotspots()) {
    EXPECT_GE(h.radius, 0.1);
    EXPECT_LE(h.radius, 10.0);
  }
}

TEST(HotSpotField, FieldSumsHotSpots) {
  Rng rng(2);
  HotSpotField field(small_field(), rng);
  field.mutable_hotspots().push_back(HotSpot{{20, 20}, 4.0});
  field.mutable_hotspots().push_back(HotSpot{{22, 20}, 4.0});
  field.rebuild();
  EXPECT_NEAR(field.at({21, 20}), (1.0 - 1.0 / 4.0) * 2.0, 1e-12);
}

TEST(HotSpotField, RegionLoadEqualsTotalOverPlane) {
  Rng rng(3);
  HotSpotField field(small_field(), rng);
  field.mutable_hotspots().push_back(HotSpot{{32, 32}, 8.0});
  field.rebuild();
  const double total = field.total_load();
  EXPECT_GT(total, 0.0);
  // Sum over the four quadrants must reproduce the total exactly (prefix
  // sums + half-open cell assignment leave no cell double-counted).
  double quadrants = 0.0;
  quadrants += field.region_load({0, 0, 32, 32});
  quadrants += field.region_load({32, 0, 32, 32});
  quadrants += field.region_load({0, 32, 32, 32});
  quadrants += field.region_load({32, 32, 32, 32});
  EXPECT_NEAR(quadrants, total, total * 1e-9);
}

TEST(HotSpotField, RegionLoadIsResolutionIndependent) {
  HotSpotField::Options coarse = small_field();
  HotSpotField::Options fine = small_field();
  fine.cells_x = 256;
  fine.cells_y = 256;
  Rng rng_a(4);
  Rng rng_b(4);
  HotSpotField fa(coarse, rng_a), fb(fine, rng_b);
  fa.mutable_hotspots().push_back(HotSpot{{32, 32}, 8.0});
  fb.mutable_hotspots().push_back(HotSpot{{32, 32}, 8.0});
  fa.rebuild();
  fb.rebuild();
  const Rect probe{16, 16, 32, 32};
  // Loads are integrals of the same field: within discretization error.
  EXPECT_NEAR(fa.region_load(probe), fb.region_load(probe),
              fa.region_load(probe) * 0.05);
}

TEST(HotSpotField, LoadConcentratesAtCenter) {
  Rng rng(5);
  HotSpotField field(small_field(), rng);
  field.mutable_hotspots().push_back(HotSpot{{32, 32}, 8.0});
  field.rebuild();
  const double center = field.region_load({28, 28, 8, 8});
  const double edge = field.region_load({0, 0, 8, 8});
  EXPECT_GT(center, 0.0);
  EXPECT_DOUBLE_EQ(edge, 0.0);
}

TEST(HotSpotField, MigrationKeepsHotSpotsOnPlane) {
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 10;
  Rng rng(6);
  HotSpotField field(opt, rng);
  for (int epoch = 0; epoch < 100; ++epoch) {
    field.migrate(rng);
    for (const auto& h : field.hotspots()) {
      EXPECT_GE(h.center.x, 0.0);
      EXPECT_LE(h.center.x, 64.0);
      EXPECT_GE(h.center.y, 0.0);
      EXPECT_LE(h.center.y, 64.0);
      EXPECT_GE(h.radius, 0.1);  // radius never changes during migration
      EXPECT_LE(h.radius, 10.0);
    }
  }
}

TEST(HotSpotField, MigrationStepBounded) {
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 5;
  Rng rng(7);
  HotSpotField field(opt, rng);
  const auto before = field.hotspots();
  field.migrate(rng);
  const auto& after = field.hotspots();
  for (std::size_t i = 0; i < before.size(); ++i) {
    // Step size is U(0, 2r); reflection can only shorten displacement.
    EXPECT_LE(distance(before[i].center, after[i].center),
              2.0 * before[i].radius + 1e-9);
  }
}

TEST(HotSpotField, MigrationMovesTheLoad) {
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 8;
  Rng rng(8);
  HotSpotField field(opt, rng);
  const double before = field.region_load({0, 0, 16, 16});
  field.migrate(rng, 20);
  const double total = field.total_load();
  EXPECT_GT(total, 0.0);
  // After 20 epochs at least something about the field changed.
  const double after = field.region_load({0, 0, 16, 16});
  EXPECT_TRUE(before != after || field.hotspots()[0].center.x != 0.0);
}

TEST(HotSpotField, AdvanceIsDeterministicPerSeedAndTick) {
  // advance(seed, tick) must be a pure function of the current hot spots
  // and (seed, tick): two fields in the same state stepped with the same
  // arguments stay identical, regardless of any interleaved sampling done
  // on either field's behalf elsewhere.
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 12;
  Rng rng_a(20), rng_b(20);
  HotSpotField fa(opt, rng_a), fb(opt, rng_b);
  Rng noise(99);
  for (std::uint64_t tick = 0; tick < 25; ++tick) {
    fa.advance(7, tick);
    fb.sample_weighted_point(noise);  // unrelated use must not perturb fb
    fb.advance(7, tick);
    ASSERT_EQ(fa.hotspots().size(), fb.hotspots().size());
    for (std::size_t i = 0; i < fa.hotspots().size(); ++i) {
      EXPECT_DOUBLE_EQ(fa.hotspots()[i].center.x, fb.hotspots()[i].center.x);
      EXPECT_DOUBLE_EQ(fa.hotspots()[i].center.y, fb.hotspots()[i].center.y);
      EXPECT_DOUBLE_EQ(fa.hotspots()[i].radius, fb.hotspots()[i].radius);
    }
    EXPECT_DOUBLE_EQ(fa.total_load(), fb.total_load());
  }
}

TEST(HotSpotField, AdvanceIsReplayable) {
  // Re-running the same tick schedule from the same starting field must
  // reproduce the trajectory exactly — the property the adaptation
  // harness's live/reference comparison rests on.
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 12;
  Rng rng_a(21), rng_b(21);
  HotSpotField first(opt, rng_a);
  std::vector<std::vector<HotSpot>> trajectory;
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    first.advance(42, tick);
    trajectory.push_back(first.hotspots());
  }
  HotSpotField replay(opt, rng_b);
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    replay.advance(42, tick);
    const auto& want = trajectory[tick];
    const auto& got = replay.hotspots();
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(want[i].center.x, got[i].center.x);
      EXPECT_DOUBLE_EQ(want[i].center.y, got[i].center.y);
    }
  }
}

TEST(HotSpotField, AdvanceVariesBySeedTickAndHotSpot) {
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 12;
  Rng rng_a(22), rng_b(22), rng_c(22);
  HotSpotField fa(opt, rng_a), fb(opt, rng_b), fc(opt, rng_c);
  fa.advance(1, 0);
  fb.advance(2, 0);  // different seed
  fc.advance(1, 1);  // different tick
  auto same = [](const HotSpotField& x, const HotSpotField& y) {
    for (std::size_t i = 0; i < x.hotspots().size(); ++i) {
      if (x.hotspots()[i].center.x != y.hotspots()[i].center.x ||
          x.hotspots()[i].center.y != y.hotspots()[i].center.y) {
        return false;
      }
    }
    return true;
  };
  EXPECT_FALSE(same(fa, fb));
  EXPECT_FALSE(same(fa, fc));
  // Hot spots move independently: not every displacement vector repeats.
  const auto& hs = fa.hotspots();
  bool varied = false;
  for (std::size_t i = 1; i < hs.size() && !varied; ++i) {
    varied = hs[i].center.x != hs[0].center.x;
  }
  EXPECT_TRUE(varied);
}

TEST(HotSpotField, AdvanceObeysMigrationInvariants) {
  // Same physical rules as migrate(): on-plane centers, bounded step,
  // unchanged radii, rebuilt prefix sums.
  HotSpotField::Options opt = small_field();
  opt.hotspot_count = 10;
  Rng rng(23);
  HotSpotField field(opt, rng);
  for (std::uint64_t tick = 0; tick < 50; ++tick) {
    const auto before = field.hotspots();
    field.advance(9, tick);
    const auto& after = field.hotspots();
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_GE(after[i].center.x, 0.0);
      EXPECT_LE(after[i].center.x, 64.0);
      EXPECT_GE(after[i].center.y, 0.0);
      EXPECT_LE(after[i].center.y, 64.0);
      EXPECT_DOUBLE_EQ(after[i].radius, before[i].radius);
      EXPECT_LE(distance(before[i].center, after[i].center),
                2.0 * before[i].radius + 1e-9);
    }
  }
  double cells = 0.0;
  for (std::size_t ix = 0; ix < 64; ++ix) {
    for (std::size_t iy = 0; iy < 64; ++iy) {
      cells += field.cell_workload(ix, iy);
    }
  }
  EXPECT_NEAR(cells, field.total_load(), field.total_load() * 1e-9 + 1e-12);
}

TEST(HotSpotField, WeightedSamplingPrefersHotCells) {
  Rng rng(9);
  HotSpotField field(small_field(), rng);
  field.mutable_hotspots().push_back(HotSpot{{48, 48}, 6.0});
  field.rebuild();
  int near_hotspot = 0;
  for (int i = 0; i < 2000; ++i) {
    const Point p = field.sample_weighted_point(rng);
    if (distance(p, {48, 48}) <= 7.0) ++near_hotspot;
  }
  EXPECT_GT(near_hotspot, 1900);  // essentially all mass is in the circle
}

TEST(HotSpotField, ZeroFieldSamplesUniformly) {
  Rng rng(10);
  HotSpotField field(small_field(), rng);  // no hot spots at all
  int left = 0;
  for (int i = 0; i < 2000; ++i) {
    if (field.sample_weighted_point(rng).x < 32.0) ++left;
  }
  EXPECT_NEAR(left, 1000, 150);
}

TEST(HotSpotField, CellWorkloadMatchesPrefixSums) {
  Rng rng(11);
  HotSpotField field(small_field(), rng);
  field.mutable_hotspots().push_back(HotSpot{{32, 32}, 8.0});
  field.rebuild();
  double cells = 0.0;
  for (std::size_t ix = 0; ix < 64; ++ix) {
    for (std::size_t iy = 0; iy < 64; ++iy) {
      cells += field.cell_workload(ix, iy);
    }
  }
  EXPECT_NEAR(cells, field.total_load(), field.total_load() * 1e-9);
}

}  // namespace
}  // namespace geogrid::workload
