// Snapshot construction from the partition.
#include "overlay/snapshot.h"

#include <gtest/gtest.h>

#include "overlay/partition.h"

namespace geogrid::overlay {
namespace {

net::NodeInfo make_node(std::uint32_t id, double cap) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{10, 10};
  n.capacity = cap;
  return n;
}

TEST(Snapshot, CarriesOwnershipAndLoad) {
  Partition p(Rect{0, 0, 64, 64});
  p.add_node(make_node(1, 10.0));
  p.add_node(make_node(2, 100.0));
  const RegionId root = p.create_root(NodeId{1});
  p.set_secondary(root, NodeId{2});

  const auto snap =
      make_snapshot(p, root, [](RegionId) { return 5.0; });
  EXPECT_EQ(snap.region, root);
  EXPECT_EQ(snap.rect, (Rect{0, 0, 64, 64}));
  EXPECT_EQ(snap.primary.id, (NodeId{1}));
  ASSERT_TRUE(snap.secondary.has_value());
  EXPECT_EQ(snap.secondary->id, (NodeId{2}));
  EXPECT_DOUBLE_EQ(snap.load, 5.0);
  EXPECT_DOUBLE_EQ(snap.workload_index, 0.5);
  EXPECT_TRUE(snap.full());
  EXPECT_DOUBLE_EQ(snap.primary_available(), 5.0);
}

TEST(Snapshot, AvailableCapacityFloorsAtZero) {
  Partition p(Rect{0, 0, 64, 64});
  p.add_node(make_node(1, 2.0));
  const RegionId root = p.create_root(NodeId{1});
  const auto snap =
      make_snapshot(p, root, [](RegionId) { return 50.0; });
  EXPECT_DOUBLE_EQ(snap.primary_available(), 0.0);
  EXPECT_DOUBLE_EQ(snap.workload_index, 25.0);
}

TEST(Snapshot, NeighborSnapshotsCoverAllLinks) {
  Partition p(Rect{0, 0, 64, 64});
  p.add_node(make_node(1, 10.0));
  p.add_node(make_node(2, 10.0));
  p.add_node(make_node(3, 10.0));
  const RegionId a = p.create_root(NodeId{1});
  p.split_explicit(a, NodeId{2}, true);
  p.split_explicit(a, NodeId{3}, true);
  const auto snaps =
      neighbor_snapshots(p, a, [](RegionId) { return 0.0; });
  EXPECT_EQ(snaps.size(), p.neighbors(a).size());
}

TEST(Snapshot, NullLoadFnMeansZeroLoad) {
  Partition p(Rect{0, 0, 64, 64});
  p.add_node(make_node(1, 10.0));
  const RegionId root = p.create_root(NodeId{1});
  const auto snap = make_snapshot(p, root, nullptr);
  EXPECT_DOUBLE_EQ(snap.load, 0.0);
  EXPECT_DOUBLE_EQ(snap.workload_index, 0.0);
}

}  // namespace
}  // namespace geogrid::overlay
