// Dual-peer membership over the Partition: joins fill seats before
// splitting; departures activate secondaries.
#include "dualpeer/dual_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/hotspot.h"

namespace geogrid::dualpeer {
namespace {

using overlay::Partition;

const Rect kPlane{0, 0, 64, 64};

net::NodeInfo make_node(std::uint32_t id, double x, double y,
                        double capacity) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{x, y};
  n.capacity = capacity;
  return n;
}

overlay::LoadFn zero_load() {
  return [](RegionId) { return 0.0; };
}

TEST(DualJoin, SecondNodeFillsRootAsSecondary) {
  Partition p(kPlane);
  dual_join(p, make_node(1, 10, 10, 10.0), zero_load());
  dual_join(p, make_node(2, 50, 50, 5.0), zero_load());
  EXPECT_EQ(p.region_count(), 1u);  // no split: seat filled instead
  const auto& root = p.regions().begin()->second;
  EXPECT_TRUE(root.full());
  EXPECT_EQ(root.primary, (NodeId{1}));  // incumbent stronger, keeps primary
  EXPECT_EQ(*root.secondary, (NodeId{2}));
}

TEST(DualJoin, StrongerJoinerTakesPrimaryRole) {
  Partition p(kPlane);
  dual_join(p, make_node(1, 10, 10, 5.0), zero_load());
  dual_join(p, make_node(2, 50, 50, 500.0), zero_load());
  const auto& root = p.regions().begin()->second;
  EXPECT_EQ(root.primary, (NodeId{2}));
  EXPECT_EQ(*root.secondary, (NodeId{1}));
}

TEST(DualJoin, ThirdNodeSplitsFullRoot) {
  Partition p(kPlane);
  dual_join(p, make_node(1, 10, 10, 10.0), zero_load());
  dual_join(p, make_node(2, 50, 50, 5.0), zero_load());
  dual_join(p, make_node(3, 30, 30, 7.0), zero_load());
  EXPECT_EQ(p.region_count(), 2u);
  // All three nodes hold exactly one seat.
  int seats = 0;
  for (const auto& [id, r] : p.regions()) {
    seats += 1 + (r.full() ? 1 : 0);
  }
  EXPECT_EQ(seats, 3);
  EXPECT_TRUE(p.validate().empty());
}

TEST(DualJoin, HalvesRegionCountVersusBasic) {
  Rng rng(5);
  Partition p(kPlane);
  std::uint32_t id = 1;
  for (int i = 0; i < 200; ++i) {
    dual_join(p,
              make_node(id++, rng.uniform(0.01, 64), rng.uniform(0.01, 64),
                        rng.chance(0.5) ? 10.0 : 100.0),
              zero_load());
  }
  // 200 nodes over dual-peer seats: region count near 100, far below 200.
  EXPECT_LE(p.region_count(), 140u);
  EXPECT_GE(p.region_count(), 80u);
  EXPECT_TRUE(p.validate().empty());
}

TEST(DualJoin, JoinsLoadedRegionFirst) {
  // Root is full; neighbors half-full.  A loaded, weak region must attract
  // the joiner as its secondary.
  Partition p(kPlane);
  workload::HotSpotField::Options fopt;
  fopt.cells_x = 64;
  fopt.cells_y = 64;
  fopt.hotspot_count = 0;
  Rng rng(1);
  workload::HotSpotField field(fopt, rng);
  field.mutable_hotspots().push_back(workload::HotSpot{{16, 16}, 6.0});
  field.rebuild();
  const overlay::LoadFn load = [&](RegionId rid) {
    return field.region_load(p.region(rid).rect);
  };
  dual_join(p, make_node(1, 10, 10, 10.0), load);
  dual_join(p, make_node(2, 50, 50, 10.0), load);
  dual_join(p, make_node(3, 20, 20, 10.0), load);  // splits the root
  // Now join near the hot spot: the weakest owner there should gain a peer.
  dual_join(p, make_node(4, 15, 15, 10.0), load);
  const RegionId hot = p.locate({16, 16});
  EXPECT_TRUE(p.region(hot).full());
  EXPECT_TRUE(p.validate().empty());
}

TEST(DualLeave, SecondaryDepartureLeavesHalfFull) {
  Partition p(kPlane);
  dual_join(p, make_node(1, 10, 10, 10.0), zero_load());
  dual_join(p, make_node(2, 50, 50, 5.0), zero_load());
  dual_leave(p, NodeId{2});
  const auto& root = p.regions().begin()->second;
  EXPECT_FALSE(root.full());
  EXPECT_EQ(root.primary, (NodeId{1}));
  EXPECT_EQ(p.node_count(), 1u);
}

TEST(DualLeave, PrimaryDepartureActivatesSecondary) {
  Partition p(kPlane);
  dual_join(p, make_node(1, 10, 10, 10.0), zero_load());
  dual_join(p, make_node(2, 50, 50, 5.0), zero_load());
  dual_leave(p, NodeId{1});
  const auto& root = p.regions().begin()->second;
  EXPECT_EQ(root.primary, (NodeId{2}));
  EXPECT_FALSE(root.full());
  EXPECT_TRUE(p.validate().empty());
}

TEST(DualFail, FailoverMatchesDeparture) {
  Partition p(kPlane);
  dual_join(p, make_node(1, 10, 10, 10.0), zero_load());
  dual_join(p, make_node(2, 50, 50, 5.0), zero_load());
  dual_fail(p, NodeId{1});
  EXPECT_EQ(p.regions().begin()->second.primary, (NodeId{2}));
}

TEST(DualChurn, RandomJoinLeaveFailKeepsInvariants) {
  Partition p(kPlane);
  Rng rng(21);
  std::vector<std::uint32_t> alive;
  std::uint32_t next = 1;
  for (int step = 0; step < 400; ++step) {
    const bool join = alive.size() < 4 || rng.chance(0.6);
    if (join) {
      const auto id = next++;
      dual_join(p,
                make_node(id, rng.uniform(0.01, 64), rng.uniform(0.01, 64),
                          rng.chance(0.3) ? 100.0 : 10.0),
                zero_load());
      alive.push_back(id);
    } else {
      const auto idx = rng.uniform_index(alive.size());
      if (rng.chance(0.5)) {
        dual_leave(p, NodeId{alive[idx]});
      } else {
        dual_fail(p, NodeId{alive[idx]});
      }
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(p.validate_fast().empty()) << "step " << step;
    ASSERT_EQ(p.node_count(), alive.size());
  }
  EXPECT_TRUE(p.validate().empty());
}

}  // namespace
}  // namespace geogrid::dualpeer
