// ShardedDirectory: batched parallel ingestion, shard-count invariance,
// handoff eviction ordering and parity with the serial LocationDirectory.
#include "mobility/sharded_directory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "mobility/directory.h"
#include "mobility/motion.h"

namespace geogrid::mobility {
namespace {

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

// Four quadrant regions via two split rounds (same shape as the
// LocationDirectory fixture, so the two suites exercise one geometry).
struct QuadrantFixture {
  overlay::Partition partition{kPlane};
  QuadrantFixture() {
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);
    partition.split(root, c);
    partition.split(north, d);
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

LocationRecord rec(std::uint32_t user, double x, double y,
                   std::uint64_t seq = 1) {
  return LocationRecord{UserId{user}, Point{x, y}, seq, 0.0};
}

/// One seeded motion trace, chopped into per-tick batches.
std::vector<std::vector<LocationRecord>> make_trace(std::size_t users,
                                                    int ticks,
                                                    std::uint64_t seed) {
  UserPopulation::Options opt;
  opt.max_pause = 2.0;
  UserPopulation pop(users, opt, nullptr, Rng(seed));
  std::vector<std::vector<LocationRecord>> batches;
  double now = 0.0;
  for (int step = 0; step < ticks; ++step) {
    now += 1.0;
    pop.step(1.0, now);
    std::vector<LocationRecord> batch;
    batch.reserve(users);
    for (auto& u : pop.users()) {
      batch.push_back({u.id, u.position, u.next_seq++, now});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<std::byte> snapshot(const ShardedDirectory& dir) {
  net::Writer w;
  dir.serialize(w);
  return std::move(w).take();
}

TEST(ShardedDirectory, ShardCountInvariance) {
  // The acceptance-criteria test: the same update trace through K=1 and
  // K=8 must leave byte-identical serialized stores and equal counters.
  QuadrantFixture fx;
  ShardedDirectory serial(fx.partition, {.shards = 1});
  ShardedDirectory sharded(fx.partition, {.shards = 8});
  EXPECT_EQ(serial.shard_count(), 1u);
  EXPECT_EQ(sharded.shard_count(), 8u);

  for (const auto& batch : make_trace(300, 40, 77)) {
    serial.apply_updates(batch);
    sharded.apply_updates(batch);
  }
  EXPECT_EQ(serial.size(), 300u);
  EXPECT_EQ(sharded.size(), 300u);
  EXPECT_EQ(serial.counters().updates_applied,
            sharded.counters().updates_applied);
  EXPECT_EQ(serial.counters().updates_stale, sharded.counters().updates_stale);
  EXPECT_EQ(serial.counters().handoffs, sharded.counters().handoffs);
  EXPECT_EQ(snapshot(serial), snapshot(sharded));
}

TEST(ShardedDirectory, MatchesSerialLocationDirectory) {
  // Batched sharded ingestion must agree with the record-at-a-time serial
  // directory on every observable: per-user locate, region assignment,
  // whole-plane range, k-nearest and the shared counters.
  QuadrantFixture fx;
  LocationDirectory reference(fx.partition);
  ShardedDirectory sharded(fx.partition, {.shards = 4});

  const auto batches = make_trace(200, 30, 21);
  for (const auto& batch : batches) {
    for (const auto& r : batch) reference.apply_update(r);
    sharded.apply_updates(batch);
  }
  // Replay an old batch: every record is stale for both engines.
  for (const auto& r : batches[5]) reference.apply_update(r);
  sharded.apply_updates(batches[5]);

  EXPECT_EQ(reference.size(), sharded.size());
  EXPECT_EQ(reference.counters().updates_applied,
            sharded.counters().updates_applied);
  EXPECT_EQ(reference.counters().updates_stale,
            sharded.counters().updates_stale);
  EXPECT_EQ(reference.counters().handoffs, sharded.counters().handoffs);
  EXPECT_EQ(sharded.counters().updates_stale, 200u);

  for (std::uint32_t u = 1; u <= 200; ++u) {
    const auto a = reference.locate(UserId{u});
    const auto b = sharded.locate(UserId{u});
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(reference.region_of(UserId{u}), sharded.region_of(UserId{u}));
  }
  EXPECT_EQ(reference.range(kPlane).size(), sharded.range(kPlane).size());
  const auto ka = reference.k_nearest(Point{32, 32}, 10);
  const auto kb = sharded.k_nearest(Point{32, 32}, 10);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
}

TEST(ShardedDirectory, SameBatchHandoffDanceKeepsNewestRecord) {
  // A user crossing A -> B -> back to A inside one batch: the eviction
  // messages must drain in dispatch order so the seq-3 record survives in
  // A and B ends up empty.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 8});
  const std::vector<LocationRecord> batch = {
      rec(1, 10.0, 10.0, 1), rec(1, 50.0, 50.0, 2), rec(1, 11.0, 11.0, 3)};
  dir.apply_updates(batch);

  EXPECT_EQ(dir.counters().updates_applied, 3u);
  EXPECT_EQ(dir.counters().handoffs, 2u);
  const auto located = dir.locate(UserId{1});
  ASSERT_TRUE(located.has_value());
  EXPECT_EQ(located->position, (Point{11.0, 11.0}));
  EXPECT_EQ(located->seq, 3u);

  const RegionId home = fx.partition.locate(Point{11.0, 11.0});
  const RegionId away = fx.partition.locate(Point{50.0, 50.0});
  EXPECT_EQ(dir.region_of(UserId{1}), home);
  ASSERT_NE(dir.store(home), nullptr);
  EXPECT_EQ(dir.store(home)->size(), 1u);
  ASSERT_NE(dir.store(away), nullptr);
  EXPECT_EQ(dir.store(away)->size(), 0u);
}

TEST(ShardedDirectory, SeqGuardFiltersStaleAndReplayedRecords) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4});
  const std::vector<LocationRecord> batch = {
      rec(1, 10.0, 10.0, 5),
      rec(1, 11.0, 11.0, 5),   // replay of the same seq
      rec(1, 50.0, 50.0, 4)};  // reordered older report, crossing
  dir.apply_updates(batch);
  EXPECT_EQ(dir.counters().updates_applied, 1u);
  EXPECT_EQ(dir.counters().updates_stale, 2u);
  EXPECT_EQ(dir.counters().handoffs, 0u);
  EXPECT_EQ(dir.locate(UserId{1})->position, (Point{10.0, 10.0}));
}

TEST(ShardedDirectory, ApplyUpdateReportsAppliedHandoffAndRegion) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  const auto first = dir.apply_update(rec(1, 10.0, 10.0, 1));
  EXPECT_TRUE(first.applied);
  EXPECT_FALSE(first.handoff);
  EXPECT_EQ(first.region, fx.partition.locate(Point{10.0, 10.0}));

  const auto crossed = dir.apply_update(rec(1, 50.0, 50.0, 2));
  EXPECT_TRUE(crossed.applied);
  EXPECT_TRUE(crossed.handoff);
  EXPECT_EQ(crossed.region, fx.partition.locate(Point{50.0, 50.0}));

  const auto stale = dir.apply_update(rec(1, 20.0, 20.0, 2));
  EXPECT_FALSE(stale.applied);
  EXPECT_FALSE(stale.handoff);
  EXPECT_EQ(dir.size(), 1u);
}

TEST(ShardedDirectory, FastPathEngagesOnRepeatReports) {
  // Second report from inside the same region must resolve via the rect
  // memo, not a partition walk.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 1});
  dir.apply_update(rec(1, 10.0, 10.0, 1));
  EXPECT_EQ(dir.counters().locate_fast_path, 0u);  // first report is cold
  dir.apply_update(rec(1, 10.5, 10.5, 2));
  EXPECT_EQ(dir.counters().locate_fast_path, 1u);
  dir.apply_update(rec(1, 50.0, 50.0, 3));  // crossing: memo rect misses
  EXPECT_EQ(dir.counters().locate_fast_path, 1u);
  EXPECT_EQ(dir.counters().handoffs, 1u);
}

TEST(ShardedDirectory, ObservesPartitionSplitsBetweenBatches) {
  // The rect memo must be invalidated by geometry changes: after a split,
  // reports land in the new covering region, not the memoized old one.
  overlay::Partition partition(kPlane);
  const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
  const RegionId root = partition.create_root(a);
  ShardedDirectory dir(partition, {.shards = 2});
  EXPECT_TRUE(dir.apply_update(rec(1, 50.0, 50.0, 1)).applied);
  EXPECT_EQ(dir.region_of(UserId{1}), root);

  const NodeId b = partition.add_node({NodeId{2}, Point{50, 50}, 10.0});
  partition.split(root, b);
  EXPECT_TRUE(dir.apply_update(rec(1, 50.5, 50.5, 2)).applied);
  const RegionId covering = partition.locate(Point{50.5, 50.5});
  EXPECT_EQ(dir.region_of(UserId{1}), covering);
  ASSERT_TRUE(dir.locate(UserId{1}).has_value());
  EXPECT_EQ(dir.locate(UserId{1})->seq, 2u);
  // If the user changed regions, the old store must have evicted it.
  if (covering != root) {
    ASSERT_NE(dir.store(root), nullptr);
    EXPECT_EQ(dir.store(root)->size(), 0u);
  }
}

TEST(ShardedDirectory, DefaultShardCountUsesHardware) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition);  // shards = 0 -> hardware threads
  EXPECT_GE(dir.shard_count(), 1u);
  for (const auto& batch : make_trace(50, 5, 9)) dir.apply_updates(batch);
  EXPECT_EQ(dir.size(), 50u);
}

}  // namespace
}  // namespace geogrid::mobility
