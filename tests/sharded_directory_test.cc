// ShardedDirectory: batched parallel ingestion, shard-count invariance,
// handoff eviction ordering and parity with the serial LocationDirectory.
#include "mobility/sharded_directory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "mobility/directory.h"
#include "mobility/motion.h"

namespace geogrid::mobility {
namespace {

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

// Four quadrant regions via two split rounds (same shape as the
// LocationDirectory fixture, so the two suites exercise one geometry).
struct QuadrantFixture {
  overlay::Partition partition{kPlane};
  QuadrantFixture() {
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);
    partition.split(root, c);
    partition.split(north, d);
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

LocationRecord rec(std::uint32_t user, double x, double y,
                   std::uint64_t seq = 1) {
  return LocationRecord{UserId{user}, Point{x, y}, seq, 0.0};
}

/// One seeded motion trace, chopped into per-tick batches.
std::vector<std::vector<LocationRecord>> make_trace(std::size_t users,
                                                    int ticks,
                                                    std::uint64_t seed) {
  UserPopulation::Options opt;
  opt.max_pause = 2.0;
  UserPopulation pop(users, opt, nullptr, Rng(seed));
  std::vector<std::vector<LocationRecord>> batches;
  double now = 0.0;
  for (int step = 0; step < ticks; ++step) {
    now += 1.0;
    pop.step(1.0, now);
    std::vector<LocationRecord> batch;
    batch.reserve(users);
    for (auto& u : pop.users()) {
      batch.push_back({u.id, u.position, u.next_seq++, now});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<std::byte> snapshot(const ShardedDirectory& dir) {
  net::Writer w;
  dir.serialize(w);
  return std::move(w).take();
}

TEST(ShardedDirectory, ShardCountInvariance) {
  // The acceptance-criteria test: the same update trace through K=1 and
  // K=8 must leave byte-identical serialized stores and equal counters.
  QuadrantFixture fx;
  ShardedDirectory serial(fx.partition, {.shards = 1});
  ShardedDirectory sharded(fx.partition, {.shards = 8});
  EXPECT_EQ(serial.shard_count(), 1u);
  EXPECT_EQ(sharded.shard_count(), 8u);

  for (const auto& batch : make_trace(300, 40, 77)) {
    serial.apply_updates(batch);
    sharded.apply_updates(batch);
  }
  EXPECT_EQ(serial.size(), 300u);
  EXPECT_EQ(sharded.size(), 300u);
  EXPECT_EQ(serial.counters().updates_applied,
            sharded.counters().updates_applied);
  EXPECT_EQ(serial.counters().updates_stale, sharded.counters().updates_stale);
  EXPECT_EQ(serial.counters().handoffs, sharded.counters().handoffs);
  EXPECT_EQ(snapshot(serial), snapshot(sharded));
}

TEST(ShardedDirectory, MixedBatchSurvivesMemoRehash) {
  // Regression: phase A caches pointers into the per-user memo; the
  // pre-phase-B reserve for a batch's new users can rehash the memo and
  // leave every cached pointer for an *existing* user dangling.  A batch
  // mixing returning users with enough first-time users to force growth
  // must still apply cleanly (ASan turns the stale pointers into a hard
  // failure; in plain builds the seq guard reads garbage).
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4});

  std::vector<LocationRecord> first;
  for (std::uint32_t u = 1; u <= 100; ++u) {
    first.push_back(rec(u, 1.0 + (u % 60), 1.0 + (u % 60), 1));
  }
  dir.apply_updates(first);
  ASSERT_EQ(dir.counters().updates_applied, 100u);

  // Returning users first (their memo pointers get cached), then enough
  // new users that reserve() must grow the table under those pointers.
  std::vector<LocationRecord> mixed;
  for (std::uint32_t u = 1; u <= 100; ++u) {
    mixed.push_back(rec(u, 2.0 + (u % 60), 2.0 + (u % 60), 2));
  }
  for (std::uint32_t u = 101; u <= 4100; ++u) {
    mixed.push_back(rec(u, 1.0 + (u % 62), 1.0 + (u % 62), 1));
  }
  dir.apply_updates(mixed);

  EXPECT_EQ(dir.counters().updates_applied, 100u + mixed.size());
  EXPECT_EQ(dir.counters().updates_stale, 0u);
  for (std::uint32_t u : {1u, 50u, 100u}) {
    const auto found = dir.locate(UserId{u});
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->seq, 2u);
    EXPECT_EQ(found->position.x, 2.0 + (u % 60));
  }
  EXPECT_TRUE(dir.locate(UserId{4100}).has_value());
}

TEST(ShardedDirectory, MatchesSerialLocationDirectory) {
  // Batched sharded ingestion must agree with the record-at-a-time serial
  // directory on every observable: per-user locate, region assignment,
  // whole-plane range, k-nearest and the shared counters.
  QuadrantFixture fx;
  LocationDirectory reference(fx.partition);
  ShardedDirectory sharded(fx.partition, {.shards = 4});

  const auto batches = make_trace(200, 30, 21);
  for (const auto& batch : batches) {
    for (const auto& r : batch) reference.apply_update(r);
    sharded.apply_updates(batch);
  }
  // Replay an old batch: every record is stale for both engines.
  for (const auto& r : batches[5]) reference.apply_update(r);
  sharded.apply_updates(batches[5]);

  EXPECT_EQ(reference.size(), sharded.size());
  EXPECT_EQ(reference.counters().updates_applied,
            sharded.counters().updates_applied);
  EXPECT_EQ(reference.counters().updates_stale,
            sharded.counters().updates_stale);
  EXPECT_EQ(reference.counters().handoffs, sharded.counters().handoffs);
  EXPECT_EQ(sharded.counters().updates_stale, 200u);

  for (std::uint32_t u = 1; u <= 200; ++u) {
    const auto a = reference.locate(UserId{u});
    const auto b = sharded.locate(UserId{u});
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(reference.region_of(UserId{u}), sharded.region_of(UserId{u}));
  }
  EXPECT_EQ(reference.range(kPlane).size(), sharded.range(kPlane).size());
  const auto ka = reference.k_nearest(Point{32, 32}, 10);
  const auto kb = sharded.k_nearest(Point{32, 32}, 10);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
}

TEST(ShardedDirectory, SameBatchHandoffDanceKeepsNewestRecord) {
  // A user crossing A -> B -> back to A inside one batch: the eviction
  // messages must drain in dispatch order so the seq-3 record survives in
  // A and B ends up empty.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 8});
  const std::vector<LocationRecord> batch = {
      rec(1, 10.0, 10.0, 1), rec(1, 50.0, 50.0, 2), rec(1, 11.0, 11.0, 3)};
  dir.apply_updates(batch);

  EXPECT_EQ(dir.counters().updates_applied, 3u);
  EXPECT_EQ(dir.counters().handoffs, 2u);
  const auto located = dir.locate(UserId{1});
  ASSERT_TRUE(located.has_value());
  EXPECT_EQ(located->position, (Point{11.0, 11.0}));
  EXPECT_EQ(located->seq, 3u);

  const RegionId home = fx.partition.locate(Point{11.0, 11.0});
  const RegionId away = fx.partition.locate(Point{50.0, 50.0});
  EXPECT_EQ(dir.region_of(UserId{1}), home);
  ASSERT_NE(dir.store(home), nullptr);
  EXPECT_EQ(dir.store(home)->size(), 1u);
  ASSERT_NE(dir.store(away), nullptr);
  EXPECT_EQ(dir.store(away)->size(), 0u);
}

TEST(ShardedDirectory, SeqGuardFiltersStaleAndReplayedRecords) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4});
  const std::vector<LocationRecord> batch = {
      rec(1, 10.0, 10.0, 5),
      rec(1, 11.0, 11.0, 5),   // replay of the same seq
      rec(1, 50.0, 50.0, 4)};  // reordered older report, crossing
  dir.apply_updates(batch);
  EXPECT_EQ(dir.counters().updates_applied, 1u);
  EXPECT_EQ(dir.counters().updates_stale, 2u);
  EXPECT_EQ(dir.counters().handoffs, 0u);
  EXPECT_EQ(dir.locate(UserId{1})->position, (Point{10.0, 10.0}));
}

TEST(ShardedDirectory, ApplyUpdateReportsAppliedHandoffAndRegion) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  const auto first = dir.apply_update(rec(1, 10.0, 10.0, 1));
  EXPECT_TRUE(first.applied);
  EXPECT_FALSE(first.handoff);
  EXPECT_EQ(first.region, fx.partition.locate(Point{10.0, 10.0}));

  const auto crossed = dir.apply_update(rec(1, 50.0, 50.0, 2));
  EXPECT_TRUE(crossed.applied);
  EXPECT_TRUE(crossed.handoff);
  EXPECT_EQ(crossed.region, fx.partition.locate(Point{50.0, 50.0}));

  const auto stale = dir.apply_update(rec(1, 20.0, 20.0, 2));
  EXPECT_FALSE(stale.applied);
  EXPECT_FALSE(stale.handoff);
  EXPECT_EQ(dir.size(), 1u);
}

TEST(ShardedDirectory, FastPathEngagesOnRepeatReports) {
  // Second report from inside the same region must resolve via the rect
  // memo, not a partition walk.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 1});
  dir.apply_update(rec(1, 10.0, 10.0, 1));
  EXPECT_EQ(dir.counters().locate_fast_path, 0u);  // first report is cold
  dir.apply_update(rec(1, 10.5, 10.5, 2));
  EXPECT_EQ(dir.counters().locate_fast_path, 1u);
  dir.apply_update(rec(1, 50.0, 50.0, 3));  // crossing: memo rect misses
  EXPECT_EQ(dir.counters().locate_fast_path, 1u);
  EXPECT_EQ(dir.counters().handoffs, 1u);
}

TEST(ShardedDirectory, ObservesPartitionSplitsBetweenBatches) {
  // The rect memo must be invalidated by geometry changes: after a split,
  // reports land in the new covering region, not the memoized old one.
  overlay::Partition partition(kPlane);
  const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
  const RegionId root = partition.create_root(a);
  ShardedDirectory dir(partition, {.shards = 2});
  EXPECT_TRUE(dir.apply_update(rec(1, 50.0, 50.0, 1)).applied);
  EXPECT_EQ(dir.region_of(UserId{1}), root);

  const NodeId b = partition.add_node({NodeId{2}, Point{50, 50}, 10.0});
  partition.split(root, b);
  EXPECT_TRUE(dir.apply_update(rec(1, 50.5, 50.5, 2)).applied);
  const RegionId covering = partition.locate(Point{50.5, 50.5});
  EXPECT_EQ(dir.region_of(UserId{1}), covering);
  ASSERT_TRUE(dir.locate(UserId{1}).has_value());
  EXPECT_EQ(dir.locate(UserId{1})->seq, 2u);
  // If the user changed regions, the old store must have evicted it.
  if (covering != root) {
    ASSERT_NE(dir.store(root), nullptr);
    EXPECT_EQ(dir.store(root)->size(), 0u);
  }
}

TEST(ShardedDirectory, DeltaTrackingRecordsAppliedUsersPerEpoch) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  ASSERT_TRUE(dir.tracks_deltas());

  dir.apply_updates(std::vector<LocationRecord>{
      rec(3, 10, 10, 1), rec(1, 10, 10, 1), rec(2, 50, 50, 1)});
  // Epoch 2: one applied record; the seq-replay must not dirty user 2.
  dir.apply_updates(std::vector<LocationRecord>{
      rec(1, 11, 11, 2), rec(2, 50, 50, 1)});

  ASSERT_EQ(dir.epoch_deltas().size(), 2u);
  EXPECT_EQ(dir.epoch_deltas()[0].epoch, 1u);
  EXPECT_EQ(dir.epoch_deltas()[1].epoch, 2u);
  EXPECT_EQ(dir.epoch_deltas()[1].users,
            (std::vector<UserId>{UserId{1}}));

  const auto all = dir.changed_since(0);
  ASSERT_TRUE(all.has_value());  // sorted + deduplicated union
  EXPECT_EQ(*all, (std::vector<UserId>{UserId{1}, UserId{2}, UserId{3}}));
  const auto recent = dir.changed_since(1);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(*recent, (std::vector<UserId>{UserId{1}}));
  const auto none = dir.changed_since(dir.ingest_epoch());
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());
}

TEST(ShardedDirectory, DeltaIsShardCountInvariant) {
  QuadrantFixture fx;
  ShardedDirectory serial(fx.partition, {.shards = 1, .track_deltas = true});
  ShardedDirectory sharded(fx.partition, {.shards = 8, .track_deltas = true});
  for (const auto& batch : make_trace(200, 10, 31)) {
    serial.apply_updates(batch);
    sharded.apply_updates(batch);
  }
  for (std::uint64_t since = 0; since <= 10; ++since) {
    const auto a = serial.changed_since(since);
    const auto b = sharded.changed_since(since);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b) << "since=" << since;
  }
}

TEST(ShardedDirectory, DeltaSurvivesCowSliceSharingAcrossPublishes) {
  // The satellite acceptance test: publishing shares clean slices between
  // consecutive snapshots (copy-on-write), and the dirty-user tracking must
  // stay correct across that sharing — the second snapshot's delta names
  // exactly the users re-ingested after the first publish, while untouched
  // shard slices remain the same objects in both snapshots.
  QuadrantFixture fx;
  constexpr std::size_t kShards = 8;
  ShardedDirectory dir(fx.partition,
                       {.shards = kShards, .track_deltas = true});

  // Epoch 1: one user per quadrant.
  dir.apply_updates(std::vector<LocationRecord>{
      rec(1, 10, 10, 1), rec(2, 10, 50, 1), rec(3, 50, 10, 1),
      rec(4, 50, 50, 1)});
  const auto s1 = dir.publish_snapshot();
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->epoch(), 1u);
  ASSERT_TRUE(s1->has_delta());  // first publish: delta since epoch 0
  EXPECT_EQ(s1->delta_base_epoch(), 0u);
  EXPECT_EQ(std::vector<UserId>(s1->delta().begin(), s1->delta().end()),
            (std::vector<UserId>{UserId{1}, UserId{2}, UserId{3}, UserId{4}}));

  // Epoch 2: only user 1 moves (within its quadrant — no handoff), so only
  // that region's shard is dirtied.
  dir.apply_updates(std::vector<LocationRecord>{rec(1, 12, 12, 2)});
  const auto s2 = dir.publish_snapshot();
  EXPECT_EQ(s2->epoch(), 2u);
  ASSERT_TRUE(s2->has_delta());
  EXPECT_EQ(s2->delta_base_epoch(), s1->epoch());
  EXPECT_EQ(std::vector<UserId>(s2->delta().begin(), s2->delta().end()),
            (std::vector<UserId>{UserId{1}}));

  // COW isolation: the first snapshot still reads the epoch-1 world, and
  // its delta stamp did not change retroactively.
  ASSERT_TRUE(s1->locate(UserId{1}).has_value());
  EXPECT_EQ(s1->locate(UserId{1})->position, (Point{10.0, 10.0}));
  EXPECT_EQ(s2->locate(UserId{1})->position, (Point{12.0, 12.0}));
  EXPECT_EQ(s1->delta().size(), 4u);

  // COW sharing: every region whose shard was not dirtied by the epoch-2
  // write is served by the *same* frozen store object in both snapshots.
  const RegionId moved = fx.partition.locate(Point{12.0, 12.0});
  const std::size_t dirty_shard = shard_of_region(moved, kShards);
  std::size_t shared_regions = 0;
  for (std::uint32_t u = 2; u <= 4; ++u) {
    const RegionId r = dir.region_of(UserId{u});
    if (shard_of_region(r, kShards) == dirty_shard) continue;
    EXPECT_EQ(s1->store(r), s2->store(r)) << "slice recopied for region "
                                          << r.value;
    ++shared_regions;
  }
  EXPECT_GT(shared_regions, 0u);  // the fixture must actually share a slice

  // And tracking keeps working after the shared publish: a third epoch's
  // delta is relative to s2, not polluted by the shared history.
  dir.apply_updates(std::vector<LocationRecord>{rec(4, 51, 51, 2)});
  const auto s3 = dir.publish_snapshot();
  EXPECT_EQ(s3->delta_base_epoch(), s2->epoch());
  EXPECT_EQ(std::vector<UserId>(s3->delta().begin(), s3->delta().end()),
            (std::vector<UserId>{UserId{4}}));
}

TEST(ShardedDirectory, DeltaRetentionTrimsOldestAndChangedSinceFallsBack) {
  QuadrantFixture fx;
  ShardedDirectory dir(
      fx.partition,
      {.shards = 2, .track_deltas = true, .delta_retention = 2});
  for (std::uint64_t e = 1; e <= 4; ++e) {
    dir.apply_updates(std::vector<LocationRecord>{
        rec(static_cast<std::uint32_t>(e), 10, 10, 1)});
  }
  EXPECT_EQ(dir.epoch_deltas().size(), 2u);
  EXPECT_EQ(dir.delta_floor(), 2u);  // epochs 1 and 2 discarded
  EXPECT_FALSE(dir.changed_since(0).has_value());  // predates retained history
  EXPECT_FALSE(dir.changed_since(1).has_value());
  const auto from_floor = dir.changed_since(2);
  ASSERT_TRUE(from_floor.has_value());
  EXPECT_EQ(*from_floor, (std::vector<UserId>{UserId{3}, UserId{4}}));
}

TEST(ShardedDirectory, TrimDeltasRaisesFloor) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2, .track_deltas = true});
  for (std::uint64_t e = 1; e <= 3; ++e) {
    dir.apply_updates(std::vector<LocationRecord>{
        rec(static_cast<std::uint32_t>(e), 10, 10, 1)});
  }
  dir.trim_deltas(2);
  EXPECT_EQ(dir.delta_floor(), 2u);
  EXPECT_EQ(dir.epoch_deltas().size(), 1u);
  EXPECT_FALSE(dir.changed_since(1).has_value());
  ASSERT_TRUE(dir.changed_since(2).has_value());
  EXPECT_EQ(*dir.changed_since(2), (std::vector<UserId>{UserId{3}}));
}

TEST(ShardedDirectory, DeltasOffByDefault) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  EXPECT_FALSE(dir.tracks_deltas());
  dir.apply_updates(std::vector<LocationRecord>{rec(1, 10, 10, 1)});
  EXPECT_TRUE(dir.epoch_deltas().empty());
  EXPECT_FALSE(dir.changed_since(0).has_value());
  const auto snap = dir.publish_snapshot();
  EXPECT_FALSE(snap->has_delta());
  EXPECT_TRUE(snap->delta().empty());
}

TEST(ShardedDirectory, DefaultShardCountUsesHardware) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition);  // shards = 0 -> hardware threads
  EXPECT_GE(dir.shard_count(), 1u);
  for (const auto& batch : make_trace(50, 5, 9)) dir.apply_updates(batch);
  EXPECT_EQ(dir.size(), 50u);
}

// --- Region migration (adaptation support) ------------------------------

/// Three users per quadrant at known points; user ids 1..12 with SE users
/// being 4, 5, 6 (the quadrant retired by the merge tests below).  The SW
/// users sit at y > 16 so the depth-2 split of that quadrant (cut line
/// y = 16) strands all three in the new high half — and nobody lies
/// exactly on a split line, where cover is legitimately ambiguous (covers()
/// is closed on the high edge, so boundary records stay with their hinted
/// region while a hint-less rebuild may home them across the line).
std::vector<LocationRecord> quadrant_population() {
  std::vector<LocationRecord> batch;
  std::uint32_t id = 1;
  for (const Point c : {Point{16, 19}, Point{48, 16}, Point{16, 48},
                        Point{48, 48}}) {
    for (int k = 0; k < 3; ++k) {
      batch.push_back(rec(id++, c.x + k, c.y + k));
    }
  }
  return batch;
}

TEST(ShardedDirectory, MigrateRegionsRehomesRecordsAfterMerge) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  dir.apply_updates(quadrant_population());

  const RegionId sw = fx.partition.locate({16, 16});
  const RegionId se = fx.partition.locate({48, 16});
  fx.partition.merge(sw, se);  // SE retired; its records are now misplaced

  const auto rpt = dir.migrate_regions();
  EXPECT_TRUE(rpt.complete());
  EXPECT_EQ(rpt.moved, 3u);  // exactly the SE users
  EXPECT_EQ(rpt.dropped, 0u);
  EXPECT_EQ(rpt.stores_retired, 1u);
  EXPECT_GE(rpt.scanned, 12u);
  EXPECT_EQ(dir.counters().migration_passes, 1u);
  EXPECT_EQ(dir.counters().migrated_records, 3u);

  // Everyone is still locatable, and the migrated users now live in the
  // widened region.
  for (std::uint32_t u = 1; u <= 12; ++u) {
    EXPECT_TRUE(dir.locate(UserId{u}).has_value()) << "user " << u;
  }
  for (std::uint32_t u = 4; u <= 6; ++u) {
    EXPECT_EQ(dir.region_of(UserId{u}), sw) << "user " << u;
  }

  // Migration is snapshot-consistent: byte-identical to a directory built
  // from scratch on the merged partition from the same records.
  ShardedDirectory rebuilt(fx.partition, {.shards = 1});
  rebuilt.apply_updates(quadrant_population());
  EXPECT_EQ(snapshot(dir), snapshot(rebuilt));
}

TEST(ShardedDirectory, ChangedSinceReportsUsersVanishedViaMigration) {
  // A consumer diffing epochs must learn that the SE users' records moved
  // even though no update for them was ingested: migration pushes its own
  // epoch delta.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  dir.apply_updates(quadrant_population());
  const std::uint64_t before = dir.ingest_epoch();

  const RegionId sw = fx.partition.locate({16, 16});
  fx.partition.merge(sw, fx.partition.locate({48, 16}));
  dir.migrate_regions();

  EXPECT_EQ(dir.ingest_epoch(), before + 1);  // migration is an epoch
  const auto delta = dir.changed_since(before);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(*delta,
            (std::vector<UserId>{UserId{4}, UserId{5}, UserId{6}}));
  ASSERT_FALSE(dir.epoch_deltas().empty());
  EXPECT_EQ(dir.epoch_deltas().back().epoch, before + 1);

  // A published snapshot after migration reflects the new homes.
  const auto snap = dir.publish_snapshot();
  EXPECT_EQ(snap->epoch(), dir.ingest_epoch());
  net::Writer a, b;
  snap->serialize(a);
  dir.serialize(b);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(ShardedDirectory, MigrationNoOpWhenNothingMisplaced) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2, .track_deltas = true});
  dir.apply_updates(quadrant_population());
  const std::uint64_t epoch = dir.ingest_epoch();
  const auto deltas = dir.epoch_deltas().size();

  const auto rpt = dir.migrate_regions();
  EXPECT_TRUE(rpt.complete());
  EXPECT_EQ(rpt.moved, 0u);
  EXPECT_EQ(rpt.stores_retired, 0u);
  EXPECT_EQ(dir.ingest_epoch(), epoch);  // no work -> no epoch, no delta
  EXPECT_EQ(dir.epoch_deltas().size(), deltas);
}

TEST(ShardedDirectory, MigrationFilterDropLeavesRecordForRetry) {
  // A vetoed transfer (the dropped-message fault) must not lose the
  // record: it stays in the old store, still locatable, and a later clean
  // pass completes the migration.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  dir.apply_updates(quadrant_population());
  const RegionId sw = fx.partition.locate({16, 16});
  const RegionId se = fx.partition.locate({48, 16});
  fx.partition.merge(sw, se);

  const auto first = dir.migrate_regions(
      [](UserId user, RegionId, RegionId) { return user != UserId{5}; });
  EXPECT_FALSE(first.complete());
  EXPECT_EQ(first.moved, 2u);
  EXPECT_EQ(first.dropped, 1u);
  EXPECT_EQ(first.stores_retired, 0u);  // old store still holds user 5
  EXPECT_EQ(dir.counters().migration_dropped, 1u);
  ASSERT_TRUE(dir.locate(UserId{5}).has_value());
  EXPECT_EQ(dir.region_of(UserId{5}), se);  // left in place, not lost

  const auto retry = dir.migrate_regions();
  EXPECT_TRUE(retry.complete());
  EXPECT_EQ(retry.moved, 1u);
  EXPECT_EQ(retry.stores_retired, 1u);
  EXPECT_EQ(dir.region_of(UserId{5}), sw);

  ShardedDirectory rebuilt(fx.partition, {.shards = 1});
  rebuilt.apply_updates(quadrant_population());
  EXPECT_EQ(snapshot(dir), snapshot(rebuilt));
}

TEST(ShardedDirectory, MigrationIsShardCountInvariant) {
  // The determinism contract extends to migration: the same trace, merge
  // and migration through K=1 and K=8 leave byte-identical stores and the
  // same migration report.
  QuadrantFixture fx1, fx8;
  ShardedDirectory serial(fx1.partition, {.shards = 1, .track_deltas = true});
  ShardedDirectory sharded(fx8.partition, {.shards = 8, .track_deltas = true});
  for (const auto& batch : make_trace(200, 10, 55)) {
    serial.apply_updates(batch);
    sharded.apply_updates(batch);
  }
  for (auto* fx : {&fx1, &fx8}) {
    fx->partition.merge(fx->partition.locate({16, 16}),
                        fx->partition.locate({48, 16}));
  }
  const auto a = serial.migrate_regions();
  const auto b = sharded.migrate_regions();
  EXPECT_EQ(a.moved, b.moved);
  EXPECT_EQ(a.stores_retired, b.stores_retired);
  EXPECT_EQ(snapshot(serial), snapshot(sharded));
  const auto da = serial.changed_since(serial.ingest_epoch() - 1);
  const auto db = sharded.changed_since(sharded.ingest_epoch() - 1);
  ASSERT_TRUE(da.has_value());
  ASSERT_TRUE(db.has_value());
  EXPECT_EQ(*da, *db);
}

TEST(ShardedDirectory, MigrationAfterSplitMovesOnlyTheSplitHalf) {
  // Splitting a region strands the records of the half that moved to the
  // new region; everyone else must be untouched.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  dir.apply_updates(quadrant_population());

  const RegionId sw = fx.partition.locate({16, 16});
  const NodeId extra = fx.partition.add_node({NodeId{9}, Point{20, 20}, 10.0});
  fx.partition.split(sw, extra);

  const auto rpt = dir.migrate_regions();
  EXPECT_TRUE(rpt.complete());
  EXPECT_GT(rpt.moved, 0u);
  EXPECT_LE(rpt.moved, 3u);  // at most the SW users
  EXPECT_EQ(rpt.stores_retired, 0u);  // split retires nothing

  ShardedDirectory rebuilt(fx.partition, {.shards = 1});
  rebuilt.apply_updates(quadrant_population());
  EXPECT_EQ(snapshot(dir), snapshot(rebuilt));
}

}  // namespace
}  // namespace geogrid::mobility
