#include "workload/query_gen.h"

#include <gtest/gtest.h>

namespace geogrid::workload {
namespace {

class QueryGenTest : public ::testing::Test {
 protected:
  QueryGenTest() : rng_(1), field_(field_options(), rng_) {
    field_.mutable_hotspots().push_back(HotSpot{{40, 40}, 5.0});
    field_.rebuild();
  }

  static HotSpotField::Options field_options() {
    HotSpotField::Options opt;
    opt.cells_x = 64;
    opt.cells_y = 64;
    opt.hotspot_count = 0;
    return opt;
  }

  Rng rng_;
  HotSpotField field_;
};

TEST_F(QueryGenTest, AreasStayOnPlane) {
  QueryGenerator gen(field_, {}, Rng(2));
  for (int i = 0; i < 1000; ++i) {
    const Rect a = gen.next_area();
    EXPECT_GE(a.x, 0.0);
    EXPECT_GE(a.y, 0.0);
    EXPECT_LE(a.right(), 64.0 + kGeoEps);
    EXPECT_LE(a.top(), 64.0 + kGeoEps);
    EXPECT_GT(a.area(), 0.0);
  }
}

TEST_F(QueryGenTest, RadiusMapsToSquareSides) {
  QueryGenerator::Options opt;
  opt.min_radius_miles = 1.0;
  opt.max_radius_miles = 1.0;
  opt.background_fraction = 0.0;
  QueryGenerator gen(field_, opt, Rng(3));
  for (int i = 0; i < 100; ++i) {
    const Rect a = gen.next_area();
    // A radius-γ circular query becomes a (2γ x 2γ) rectangle, clipped.
    EXPECT_LE(a.width, 2.0 + 1e-9);
    EXPECT_LE(a.height, 2.0 + 1e-9);
  }
}

TEST_F(QueryGenTest, QueriesConcentrateOnHotSpot) {
  QueryGenerator::Options opt;
  opt.background_fraction = 0.0;
  QueryGenerator gen(field_, opt, Rng(4));
  int hot = 0;
  for (int i = 0; i < 500; ++i) {
    const Rect a = gen.next_area();
    if (distance(a.center(), {40, 40}) < 8.0) ++hot;
  }
  EXPECT_GT(hot, 450);
}

TEST_F(QueryGenTest, QueryIdsAreUniqueAndMonotonic) {
  QueryGenerator gen(field_, {}, Rng(5));
  net::NodeInfo focal;
  focal.id = NodeId{1};
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const auto q = gen.next_query(focal);
    EXPECT_GT(q.query_id, last);
    last = q.query_id;
  }
  EXPECT_EQ(gen.issued(), 100u);
}

TEST_F(QueryGenTest, QueriesCarryFocalAndFilter) {
  QueryGenerator gen(field_, {}, Rng(6));
  net::NodeInfo focal;
  focal.id = NodeId{77};
  const auto q = gen.next_query(focal);
  EXPECT_EQ(q.focal.id, (NodeId{77}));
  EXPECT_FALSE(q.filter.empty());
}

TEST_F(QueryGenTest, SubscriptionsCarryDuration) {
  QueryGenerator gen(field_, {}, Rng(7));
  net::NodeInfo subscriber;
  subscriber.id = NodeId{8};
  const auto s = gen.next_subscription(subscriber, 1800.0);
  EXPECT_DOUBLE_EQ(s.duration, 1800.0);
  EXPECT_EQ(s.subscriber.id, (NodeId{8}));
}

}  // namespace
}  // namespace geogrid::workload
