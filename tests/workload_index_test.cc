// Workload index and the sqrt(2) adaptation trigger.
#include "loadbalance/workload_index.h"

#include <gtest/gtest.h>

#include "overlay/basic_ops.h"

namespace geogrid::loadbalance {
namespace {

using overlay::Partition;

const Rect kPlane{0, 0, 64, 64};

net::NodeInfo make_node(std::uint32_t id, double x, double y,
                        double capacity) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{x, y};
  n.capacity = capacity;
  return n;
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    overlay::basic_join(p, make_node(1, 10, 10, 10.0));  // SW
    overlay::basic_join(p, make_node(2, 10, 50, 100.0)); // N
    overlay::basic_join(p, make_node(3, 50, 10, 10.0));  // SE
    r1 = p.primary_regions(NodeId{1}).front();
    r2 = p.primary_regions(NodeId{2}).front();
    r3 = p.primary_regions(NodeId{3}).front();
  }

  overlay::LoadFn loads(double l1, double l2, double l3) {
    return [=, this](RegionId rid) {
      if (rid == r1) return l1;
      if (rid == r2) return l2;
      return l3;
    };
  }

  Partition p{kPlane};
  RegionId r1, r2, r3;
};

TEST_F(IndexTest, NodeIndexIsLoadOverCapacity) {
  const auto load = loads(5.0, 20.0, 0.0);
  EXPECT_DOUBLE_EQ(node_index(p, load, NodeId{1}), 0.5);
  EXPECT_DOUBLE_EQ(node_index(p, load, NodeId{2}), 0.2);
  EXPECT_DOUBLE_EQ(node_index(p, load, NodeId{3}), 0.0);
}

TEST_F(IndexTest, RegionIndexUsesPrimaryCapacity) {
  const auto load = loads(5.0, 20.0, 0.0);
  EXPECT_DOUBLE_EQ(region_index(p, load, r2), 0.2);
}

TEST_F(IndexTest, NeighborOwnersExcludeSelf) {
  const auto owners = neighbor_owners(p, NodeId{1});
  EXPECT_EQ(owners.size(), 2u);
  for (const NodeId o : owners) EXPECT_NE(o, (NodeId{1}));
}

TEST_F(IndexTest, MinNeighborIndex) {
  const auto load = loads(5.0, 20.0, 1.0);
  // Node 1's neighbors: node 2 (idx 0.2), node 3 (idx 0.1).
  EXPECT_DOUBLE_EQ(min_neighbor_index(p, load, NodeId{1}), 0.1);
}

TEST_F(IndexTest, TriggerRequiresSqrtTwoRatio) {
  // Node 1 idx = load/10; min neighbor = 0.1.
  // Trigger iff idx > sqrt(2) * 0.1 = 0.1414...
  EXPECT_FALSE(should_adapt(p, loads(1.4, 20.0, 1.0), NodeId{1},
                            std::numbers::sqrt2));
  EXPECT_TRUE(should_adapt(p, loads(1.5, 20.0, 1.0), NodeId{1},
                           std::numbers::sqrt2));
}

TEST_F(IndexTest, ZeroLoadNeverTriggers) {
  EXPECT_FALSE(should_adapt(p, loads(0.0, 0.0, 0.0), NodeId{1},
                            std::numbers::sqrt2));
}

TEST_F(IndexTest, AllNodeIndexesCoversEveryNode) {
  const auto v = all_node_indexes(p, loads(1.0, 2.0, 3.0));
  EXPECT_EQ(v.size(), 3u);
}

TEST(IndexSingle, IsolatedRootNeverTriggers) {
  Partition p(kPlane);
  overlay::basic_join(p, make_node(1, 10, 10, 10.0));
  const overlay::LoadFn load = [](RegionId) { return 100.0; };
  EXPECT_FALSE(should_adapt(p, load, NodeId{1}, std::numbers::sqrt2));
}

TEST_F(IndexTest, MultiRegionOwnerSumsLoads) {
  // Hand node 1 a second region (caretaker scenario).
  p.set_primary(r3, NodeId{1});
  const auto load = loads(5.0, 0.0, 15.0);
  EXPECT_DOUBLE_EQ(node_load(p, load, NodeId{1}), 20.0);
  EXPECT_DOUBLE_EQ(node_index(p, load, NodeId{1}), 2.0);
}

}  // namespace
}  // namespace geogrid::loadbalance
