// Property suite: partition invariants hold under arbitrary seeded
// membership histories, for every grid mode.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dualpeer/dual_ops.h"
#include "overlay/basic_ops.h"

namespace geogrid {
namespace {

using core::GridMode;
using core::GridSimulation;
using core::SimulationOptions;

struct Params {
  GridMode mode;
  std::uint64_t seed;
};

class PartitionProperties : public ::testing::TestWithParam<Params> {};

TEST_P(PartitionProperties, ChurnPreservesTilingAndIndexes) {
  const auto [mode, seed] = GetParam();
  SimulationOptions opt;
  opt.mode = mode;
  opt.node_count = 0;
  opt.seed = seed;
  opt.field.cells_x = 64;
  opt.field.cells_y = 64;
  GridSimulation sim(opt);
  Rng rng(seed ^ 0xabcdef);

  std::vector<NodeId> alive;
  for (int step = 0; step < 250; ++step) {
    if (alive.size() < 4 || rng.chance(0.65)) {
      alive.push_back(sim.add_node());
    } else {
      const auto idx = rng.uniform_index(alive.size());
      sim.remove_node(alive[idx], /*crash=*/rng.chance(0.5));
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(sim.partition().validate_fast().empty()) << "step " << step;
  }
  ASSERT_TRUE(sim.partition().validate().empty());

  // Exact cover: every random point belongs to exactly one region.
  for (int i = 0; i < 300; ++i) {
    const Point p{rng.uniform(1e-6, 64.0), rng.uniform(1e-6, 64.0)};
    int covered = 0;
    for (const auto& [id, r] : sim.partition().regions()) {
      covered += r.rect.covers(p) ? 1 : 0;
    }
    EXPECT_EQ(covered, 1);
  }

  // Every alive node holds at least one seat or lost it to a merge — but
  // never a dangling seat to a dead node (validate checked that); and each
  // region's owners are alive.
  for (const auto& [id, r] : sim.partition().regions()) {
    EXPECT_TRUE(sim.partition().has_node(r.primary));
    if (r.secondary) {
      EXPECT_TRUE(sim.partition().has_node(*r.secondary));
    }
  }
}

TEST_P(PartitionProperties, LocateAgreesWithCoverTest) {
  const auto [mode, seed] = GetParam();
  SimulationOptions opt;
  opt.mode = mode;
  opt.node_count = 150;
  opt.seed = seed;
  opt.field.cells_x = 64;
  opt.field.cells_y = 64;
  GridSimulation sim(opt);
  Rng rng(seed + 99);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(1e-6, 64.0), rng.uniform(1e-6, 64.0)};
    const RegionId located = sim.partition().locate(p);
    ASSERT_TRUE(located.valid());
    EXPECT_TRUE(sim.partition().region(located).rect.covers(p) ||
                sim.partition().region(located).rect.covers_inclusive(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModesManySeeds, PartitionProperties,
    ::testing::Values(Params{GridMode::kBasic, 1}, Params{GridMode::kBasic, 2},
                      Params{GridMode::kBasic, 3},
                      Params{GridMode::kDualPeer, 1},
                      Params{GridMode::kDualPeer, 2},
                      Params{GridMode::kDualPeer, 3},
                      Params{GridMode::kDualPeerAdaptive, 1},
                      Params{GridMode::kDualPeerAdaptive, 2},
                      Params{GridMode::kDualPeerAdaptive, 3}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      std::string name;
      switch (param_info.param.mode) {
        case GridMode::kBasic: name = "Basic"; break;
        case GridMode::kDualPeer: name = "DualPeer"; break;
        case GridMode::kDualPeerAdaptive: name = "Adaptive"; break;
        case GridMode::kCanBaseline: name = "Can"; break;
      }
      return name + "Seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace geogrid
