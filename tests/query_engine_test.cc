// QueryEngine: shard/thread-count invariance of batched reads, agreement
// with the serial per-call read path, resolver correctness, and snapshot
// isolation under concurrent ingestion.
#include "mobility/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "mobility/motion.h"
#include "mobility/sharded_directory.h"
#include "overlay/region_resolver.h"

namespace geogrid::mobility {
namespace {

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

// Four quadrant regions via two split rounds (the mobile-layer fixture
// geometry shared with the ShardedDirectory suite).
struct QuadrantFixture {
  overlay::Partition partition{kPlane};
  QuadrantFixture() {
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);
    partition.split(root, c);
    partition.split(north, d);
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

std::vector<std::vector<LocationRecord>> make_trace(std::size_t users,
                                                    int ticks,
                                                    std::uint64_t seed) {
  UserPopulation::Options opt;
  opt.max_pause = 2.0;
  UserPopulation pop(users, opt, nullptr, Rng(seed));
  std::vector<std::vector<LocationRecord>> batches;
  double now = 0.0;
  for (int step = 0; step < ticks; ++step) {
    now += 1.0;
    pop.step(1.0, now);
    std::vector<LocationRecord> batch;
    batch.reserve(users);
    for (auto& u : pop.users()) {
      batch.push_back({u.id, u.position, u.next_seq++, now});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// A mixed locate/range/kNN workload over the fixture plane.
std::vector<Query> make_queries(std::size_t count, std::size_t users,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 3) {
      case 0:
        qs.push_back(Query::locate(
            UserId{static_cast<std::uint32_t>(1 + rng.uniform_index(users))}));
        break;
      case 1: {
        const double w = rng.uniform(0.5, 8.0);
        const double h = rng.uniform(0.5, 8.0);
        const double x = rng.uniform(0.0, 64.0 - w);
        const double y = rng.uniform(0.0, 64.0 - h);
        qs.push_back(Query::range(Rect{x, y, w, h}));
        break;
      }
      default:
        qs.push_back(Query::nearest(
            Point{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)},
            static_cast<std::uint32_t>(1 + rng.uniform_index(16))));
    }
  }
  return qs;
}

std::vector<std::byte> result_bytes(std::span<const QueryResult> results) {
  net::Writer w;
  QueryEngine::serialize(w, results);
  return std::move(w).take();
}

std::vector<std::byte> snapshot_bytes(const DirectorySnapshot& snap) {
  net::Writer w;
  snap.serialize(w);
  return std::move(w).take();
}

TEST(QueryEngine, ResultsInvariantAcrossShardAndThreadCounts) {
  // The acceptance-criteria test: the same query batch over equivalent
  // directories must serialize byte-identically for every (shard count,
  // thread count) combination.
  QuadrantFixture fx;
  const auto trace = make_trace(400, 30, 77);
  const auto queries = make_queries(600, 400, 31);

  std::vector<std::byte> reference;
  std::vector<std::byte> reference_snapshot;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    ShardedDirectory dir(fx.partition, {.shards = shards});
    for (const auto& batch : trace) dir.apply_updates(batch);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      QueryEngine engine(dir, {.threads = threads});
      EXPECT_EQ(engine.thread_count(), threads);
      const auto results = engine.run(queries);
      ASSERT_EQ(results.size(), queries.size());
      const auto bytes = result_bytes(results);
      const auto snap_bytes = snapshot_bytes(*dir.current_snapshot());
      if (reference.empty()) {
        reference = bytes;
        reference_snapshot = snap_bytes;
        EXPECT_GT(engine.counters().locate_hits, 0u);
        EXPECT_GT(engine.counters().records_returned, 0u);
      } else {
        EXPECT_EQ(bytes, reference)
            << "K=" << shards << " T=" << threads << " diverged";
        EXPECT_EQ(snap_bytes, reference_snapshot);
      }
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(QueryEngine, AgreesWithSerialPerCallReadPath) {
  // Locate answers match ShardedDirectory::locate; range answers hold the
  // same record multiset as the serial full-region scan; kNN matches the
  // serial path exactly (both are exact, with the same tie-break).
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4});
  for (const auto& batch : make_trace(300, 25, 5)) dir.apply_updates(batch);
  QueryEngine engine(dir, {.threads = 2});

  const auto queries = make_queries(300, 300, 77);
  const auto results = engine.run(queries);
  ASSERT_EQ(results.size(), queries.size());
  const auto sorted = [](std::vector<LocationRecord> v) {
    std::sort(v.begin(), v.end(),
              [](const LocationRecord& a, const LocationRecord& b) {
                return a.user < b.user;
              });
    return v;
  };
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    const QueryResult& r = results[i];
    ASSERT_EQ(r.kind, q.kind);
    switch (q.kind) {
      case Query::Kind::kLocate: {
        const auto expect = dir.locate(q.user);
        ASSERT_EQ(r.found, expect.has_value());
        if (expect) EXPECT_EQ(r.located, *expect);
        break;
      }
      case Query::Kind::kRange:
        EXPECT_EQ(sorted(r.records), sorted(dir.range(q.rect)));
        break;
      case Query::Kind::kNearest: {
        const auto expect = dir.k_nearest(q.point, q.k);
        ASSERT_EQ(r.records.size(), expect.size());
        for (std::size_t j = 0; j < expect.size(); ++j) {
          EXPECT_EQ(r.records[j], expect[j]);
        }
        break;
      }
    }
  }
}

TEST(QueryEngine, SnapshotsAreImmutableAcrossEpochs) {
  // A held snapshot keeps answering at its epoch while the directory moves
  // on; a fresh run() observes the new epoch.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  dir.apply_updates(std::vector<LocationRecord>{
      {UserId{1}, Point{10, 10}, 1, 0.0}});
  const auto old_snap = dir.publish_snapshot();
  EXPECT_EQ(old_snap->epoch(), 1u);
  const auto old_bytes = snapshot_bytes(*old_snap);

  dir.apply_updates(std::vector<LocationRecord>{
      {UserId{1}, Point{50, 50}, 2, 1.0}});
  QueryEngine engine(dir, {.threads = 1});
  const std::vector<Query> q = {Query::locate(UserId{1})};

  const auto stale = engine.run_on(*old_snap, q);
  ASSERT_TRUE(stale[0].found);
  EXPECT_EQ(stale[0].located.seq, 1u);
  EXPECT_EQ(stale[0].located.position, (Point{10, 10}));
  EXPECT_EQ(engine.counters().last_epoch, 1u);

  const auto fresh = engine.run(q);
  ASSERT_TRUE(fresh[0].found);
  EXPECT_EQ(fresh[0].located.seq, 2u);
  EXPECT_EQ(engine.counters().last_epoch, 2u);

  // The held snapshot did not change underneath the reader.
  EXPECT_EQ(snapshot_bytes(*old_snap), old_bytes);
}

TEST(QueryEngine, CleanShardSlicesAreSharedBetweenSnapshots) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 8});
  for (const auto& batch : make_trace(200, 10, 3)) dir.apply_updates(batch);
  dir.publish_snapshot();
  const auto first_copied = dir.counters().snapshot_slices_copied;
  EXPECT_GT(first_copied, 0u);

  // Publishing again at the same epoch is free.
  dir.publish_snapshot();
  EXPECT_EQ(dir.counters().snapshot_slices_copied, first_copied);

  // One user's update dirties at most two shards (target + eviction);
  // republish must not recopy all eight slices.
  dir.apply_updates(std::vector<LocationRecord>{
      {UserId{1}, Point{10, 10}, 1000, 99.0}});
  dir.publish_snapshot();
  EXPECT_LE(dir.counters().snapshot_slices_copied, first_copied + 2);
}

TEST(QueryEngine, ConcurrentIngestNeverTearsASnapshot) {
  // The isolation contract: while a writer applies single-epoch batches
  // (every record of batch e carries seq == e) and publishes after each, a
  // reader racing it must only ever observe snapshots where ALL users
  // carry one single seq — a mixed-seq view would mean a torn epoch.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4});
  constexpr std::size_t kUsers = 200;
  constexpr std::uint64_t kEpochs = 120;

  std::vector<Query> locates;
  locates.reserve(kUsers);
  for (std::uint32_t u = 1; u <= kUsers; ++u) {
    locates.push_back(Query::locate(UserId{u}));
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> snapshots_read{0};
  std::atomic<std::uint64_t> distinct_epochs{0};

  // Epoch 1 lands before the reader starts: the resolver's first rebuild
  // (and the only one — the geometry is static here) happens writer-side
  // before any concurrent reads, per the quiesced-geometry contract.
  Rng rng(9);
  std::vector<LocationRecord> batch(kUsers);
  const auto fill_batch = [&](std::uint64_t epoch) {
    for (std::uint32_t u = 1; u <= kUsers; ++u) {
      batch[u - 1] = LocationRecord{
          UserId{u}, Point{rng.uniform(0.5, 63.5), rng.uniform(0.5, 63.5)},
          epoch, static_cast<double>(epoch)};
    }
  };
  fill_batch(1);
  dir.apply_updates(batch);
  dir.publish_snapshot();

  std::thread reader([&] {
    QueryEngine engine(dir, {.threads = 1});
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = dir.current_snapshot();
      if (snap == nullptr) continue;
      const auto results = engine.run_on(*snap, locates);
      std::uint64_t seen_seq = 0;
      for (const auto& r : results) {
        if (!r.found) {
          ++violations;  // every epoch reports every user
          continue;
        }
        if (seen_seq == 0) seen_seq = r.located.seq;
        if (r.located.seq != seen_seq) ++violations;
      }
      // The single seq equals the snapshot's epoch by construction.
      if (seen_seq != snap->epoch()) ++violations;
      if (snap->epoch() != last_epoch) {
        last_epoch = snap->epoch();
        ++distinct_epochs;
      }
      ++snapshots_read;
    }
  });

  for (std::uint64_t epoch = 2; epoch <= kEpochs; ++epoch) {
    fill_batch(epoch);
    dir.apply_updates(batch);
    dir.publish_snapshot();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(snapshots_read.load(), 0u);
  EXPECT_GE(distinct_epochs.load(), 1u);
  EXPECT_EQ(dir.current_snapshot()->epoch(), kEpochs);
}

TEST(RegionResolver, MatchesBruteForceDiscovery) {
  // intersecting() must return exactly the regions a full scan finds, and
  // each_by_distance() must visit every region with a valid lower bound.
  QuadrantFixture fx;
  overlay::RegionResolver resolver(fx.partition);
  resolver.refresh();
  ASSERT_EQ(resolver.region_count(), fx.partition.region_count());

  Rng rng(4);
  std::vector<RegionId> got;
  for (int i = 0; i < 200; ++i) {
    const double w = rng.uniform(0.1, 30.0);
    const double h = rng.uniform(0.1, 30.0);
    const Rect rect{rng.uniform(0.0, 64.0 - w), rng.uniform(0.0, 64.0 - h), w,
                    h};
    std::vector<RegionId> expect;
    for (const auto& [id, region] : fx.partition.regions()) {
      if (region.rect.intersects(rect) || region.rect.edge_adjacent(rect)) {
        expect.push_back(id);
      }
    }
    std::sort(expect.begin(), expect.end());
    resolver.intersecting(rect, got);
    EXPECT_EQ(got, expect);
  }

  overlay::RegionResolver::NearScratch scratch;
  for (int i = 0; i < 100; ++i) {
    const Point p{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)};
    std::size_t visited = 0;
    double last_floor = 0.0;
    resolver.each_by_distance(
        p, scratch,
        [&](double floor) {
          // The per-ring bound is monotone non-decreasing.
          EXPECT_GE(floor, last_floor);
          last_floor = floor;
          return true;
        },
        [&](RegionId id, double dist, double floor) {
          // The advertised lower bound must never exceed the exact
          // distance of any region in the ring it opens.
          EXPECT_LE(floor, dist + 1e-9);
          EXPECT_DOUBLE_EQ(dist, fx.partition.region(id).rect.distance_to(p));
          ++visited;
          return true;
        });
    EXPECT_EQ(visited, fx.partition.region_count());
  }

  // resolve() agrees with the partition's locate, fast path or not.
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(0.001, 63.999), rng.uniform(0.001, 63.999)};
    bool fast = false;
    const RegionId cold = resolver.resolve(p, kInvalidRegion, &fast);
    EXPECT_FALSE(fast);
    EXPECT_EQ(cold, fx.partition.locate(p));
    fast = false;
    const RegionId hinted = resolver.resolve(p, cold, &fast);
    EXPECT_TRUE(fast);
    EXPECT_EQ(hinted, cold);
  }
}

}  // namespace
}  // namespace geogrid::mobility
