// LocationStore: seq-guarded ingestion, spatial queries, serialization.
#include "mobility/location_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace geogrid::mobility {
namespace {

LocationRecord rec(std::uint32_t user, double x, double y,
                   std::uint64_t seq = 1, double t = 0.0) {
  return LocationRecord{UserId{user}, Point{x, y}, seq, t};
}

TEST(LocationStore, IngestAndLocate) {
  LocationStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.ingest(rec(1, 10.0, 20.0, 1, 5.0)));
  ASSERT_TRUE(store.locate(UserId{1}).has_value());
  EXPECT_EQ(store.locate(UserId{1})->position, (Point{10.0, 20.0}));
  EXPECT_EQ(store.locate(UserId{1})->timestamp, 5.0);
  EXPECT_FALSE(store.locate(UserId{2}).has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(LocationStore, StaleAndReplayedReportsAreRejected) {
  LocationStore store;
  EXPECT_TRUE(store.ingest(rec(1, 1.0, 1.0, 5)));
  EXPECT_FALSE(store.ingest(rec(1, 2.0, 2.0, 5)));  // replay of same seq
  EXPECT_FALSE(store.ingest(rec(1, 3.0, 3.0, 4)));  // reordered older report
  EXPECT_EQ(store.locate(UserId{1})->position, (Point{1.0, 1.0}));
  EXPECT_TRUE(store.ingest(rec(1, 2.0, 2.0, 6)));
  EXPECT_EQ(store.locate(UserId{1})->position, (Point{2.0, 2.0}));
  EXPECT_EQ(store.size(), 1u);  // updates never duplicate the record
}

TEST(LocationStore, UpdateMovesRecordBetweenCells) {
  LocationStore store(1.0);
  EXPECT_TRUE(store.ingest(rec(1, 0.5, 0.5, 1)));
  EXPECT_TRUE(store.ingest(rec(1, 10.5, 10.5, 2)));
  // The old cell must not still report the user.
  EXPECT_TRUE(store.range(Rect{0, 0, 2, 2}).empty());
  const auto hits = store.range(Rect{10, 10, 2, 2});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].user, UserId{1});
}

TEST(LocationStore, EraseIfStaleRespectsNewerRecord) {
  LocationStore store;
  EXPECT_TRUE(store.ingest(rec(1, 1.0, 1.0, 10)));
  EXPECT_FALSE(store.erase_if_stale(UserId{1}, 9));  // record is newer
  EXPECT_TRUE(store.locate(UserId{1}).has_value());
  EXPECT_TRUE(store.erase_if_stale(UserId{1}, 10));  // eviction authority
  EXPECT_FALSE(store.locate(UserId{1}).has_value());
  EXPECT_FALSE(store.erase_if_stale(UserId{1}, 99));  // already gone
}

TEST(LocationStore, RangeReturnsExactlyCoveredUsers) {
  LocationStore store(1.0);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(store.ingest(rec(i + 1, 0.5 + i, 0.5 + i)));
  }
  auto hits = store.range(Rect{2.0, 2.0, 3.0, 3.0});
  std::vector<std::uint32_t> ids;
  for (const auto& h : hits) ids.push_back(h.user.value);
  std::sort(ids.begin(), ids.end());
  // Users at (2.5,2.5), (3.5,3.5), (4.5,4.5) fall inside [2,5]x[2,5].
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{3, 4, 5}));
}

TEST(LocationStore, KNearestOrdersByDistance) {
  LocationStore store(1.0);
  EXPECT_TRUE(store.ingest(rec(1, 1.0, 0.0)));
  EXPECT_TRUE(store.ingest(rec(2, 3.0, 0.0)));
  EXPECT_TRUE(store.ingest(rec(3, 7.0, 0.0)));
  EXPECT_TRUE(store.ingest(rec(4, 20.0, 0.0)));
  const auto nearest = store.k_nearest(Point{0.0, 0.0}, 3);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0].user, UserId{1});
  EXPECT_EQ(nearest[1].user, UserId{2});
  EXPECT_EQ(nearest[2].user, UserId{3});
}

TEST(LocationStore, KNearestHandlesFewerRecordsThanK) {
  LocationStore store;
  EXPECT_TRUE(store.ingest(rec(1, 5.0, 5.0)));
  EXPECT_EQ(store.k_nearest(Point{0, 0}, 10).size(), 1u);
  EXPECT_TRUE(store.k_nearest(Point{0, 0}, 0).empty());
  LocationStore empty;
  EXPECT_TRUE(empty.k_nearest(Point{0, 0}, 5).empty());
}

TEST(LocationStore, KNearestMatchesBruteForce) {
  LocationStore store(2.0);
  Rng rng(42);
  std::vector<LocationRecord> all;
  for (std::uint32_t i = 1; i <= 200; ++i) {
    const auto r = rec(i, rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0));
    all.push_back(r);
    EXPECT_TRUE(store.ingest(r));
  }
  const Point q{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)};
  auto expected = all;
  std::sort(expected.begin(), expected.end(),
            [&q](const LocationRecord& a, const LocationRecord& b) {
              const double da = distance(a.position, q);
              const double db = distance(b.position, q);
              if (da != db) return da < db;
              return a.user < b.user;
            });
  const auto got = store.k_nearest(q, 17);
  ASSERT_EQ(got.size(), 17u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].user, expected[i].user) << "rank " << i;
  }
}

TEST(LocationStore, SerializationRoundTrips) {
  LocationStore store(0.5);
  Rng rng(7);
  for (std::uint32_t i = 1; i <= 50; ++i) {
    EXPECT_TRUE(store.ingest(rec(i, rng.uniform(0.0, 64.0),
                                 rng.uniform(0.0, 64.0), i, i * 0.25)));
  }
  net::Writer w;
  store.encode(w);
  const auto bytes = std::move(w).take();
  net::Reader r(bytes.data(), bytes.size());
  const LocationStore copy = LocationStore::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(copy.cell_size(), 0.5);
  ASSERT_EQ(copy.size(), store.size());
  for (std::uint32_t i = 1; i <= 50; ++i) {
    const auto a = store.locate(UserId{i});
    const auto b = copy.locate(UserId{i});
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
  }
  // The rebuilt spatial index answers identically.
  const Rect window{16, 16, 8, 8};
  EXPECT_EQ(store.range(window).size(), copy.range(window).size());
}

TEST(LocationStore, EncodeIsCanonicalAcrossIngestionOrder) {
  // Two stores holding the same records must serialize byte-identically
  // no matter what order (and with what interleaved churn) the records
  // arrived — this is what makes the sharded directory's snapshots
  // shard-count independent.
  LocationStore forward(1.0);
  LocationStore shuffled(1.0);
  std::vector<LocationRecord> records;
  Rng rng(11);
  for (std::uint32_t i = 1; i <= 64; ++i) {
    records.push_back(rec(i, rng.uniform(0.0, 32.0), rng.uniform(0.0, 32.0),
                          i, i * 0.5));
  }
  for (const auto& r : records) EXPECT_TRUE(forward.ingest(r));
  // Reverse order, with an extra insert/erase churn in the middle.
  for (std::size_t i = records.size(); i-- > 0;) {
    EXPECT_TRUE(shuffled.ingest(records[i]));
    if (i == records.size() / 2) {
      EXPECT_TRUE(shuffled.ingest(rec(999, 1.0, 1.0, 1)));
      EXPECT_TRUE(shuffled.erase_if_stale(UserId{999}, 1));
    }
  }
  net::Writer wa;
  net::Writer wb;
  forward.encode(wa);
  shuffled.encode(wb);
  EXPECT_EQ(std::move(wa).take(), std::move(wb).take());
}

TEST(LocationStore, EraseIfStaleIsNoOpAgainstNewerIngest) {
  // The handoff race: an eviction for seq N arrives after the user already
  // reported seq N+1 back into this region.  The eviction must not destroy
  // the newer record.
  LocationStore store;
  EXPECT_TRUE(store.ingest(rec(1, 1.0, 1.0, 5)));
  EXPECT_TRUE(store.erase_if_stale(UserId{1}, 5));  // user left...
  EXPECT_TRUE(store.ingest(rec(1, 2.0, 2.0, 7)));   // ...and came back
  EXPECT_FALSE(store.erase_if_stale(UserId{1}, 6));  // late eviction: no-op
  ASSERT_TRUE(store.locate(UserId{1}).has_value());
  EXPECT_EQ(store.locate(UserId{1})->seq, 7u);
  EXPECT_EQ(store.locate(UserId{1})->position, (Point{2.0, 2.0}));
}

}  // namespace
}  // namespace geogrid::mobility
