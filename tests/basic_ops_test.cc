// Basic GeoGrid membership: join splits the covering region; leave repairs.
#include "overlay/basic_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "overlay/partition.h"

namespace geogrid::overlay {
namespace {

const Rect kPlane{0, 0, 64, 64};

net::NodeInfo make_node(std::uint32_t id, double x, double y,
                        double capacity = 10.0) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{x, y};
  n.capacity = capacity;
  return n;
}

TEST(BasicJoin, FirstNodeFoundsGrid) {
  Partition p(kPlane);
  const auto r = basic_join(p, make_node(1, 10, 10));
  EXPECT_EQ(p.region_count(), 1u);
  EXPECT_EQ(p.region(r.region).rect, kPlane);
  EXPECT_EQ(r.routing_hops, 0u);
}

TEST(BasicJoin, JoinerOwnsRegionCoveringItsCoordinate) {
  Partition p(kPlane);
  basic_join(p, make_node(1, 10, 10));
  const auto r2 = basic_join(p, make_node(2, 10, 50));
  EXPECT_TRUE(p.region(r2.region).rect.covers(Point{10, 50}));
  EXPECT_EQ(p.region(r2.region).primary, (NodeId{2}));
}

TEST(BasicJoin, SameHalfJoinStillSplits) {
  Partition p(kPlane);
  basic_join(p, make_node(1, 10, 10));
  // Joiner lands in the same (south) half as the incumbent: the incumbent
  // keeps its covering half, the joiner takes the other.
  const auto r2 = basic_join(p, make_node(2, 12, 12));
  EXPECT_EQ(p.region_count(), 2u);
  EXPECT_EQ(p.region(r2.region).rect, (Rect{0, 32, 64, 32}));
}

TEST(BasicJoin, NNodesNRegions) {
  Partition p(kPlane);
  Rng rng(3);
  for (std::uint32_t i = 1; i <= 100; ++i) {
    basic_join(p, make_node(i, rng.uniform(0.01, 64), rng.uniform(0.01, 64)));
  }
  EXPECT_EQ(p.region_count(), 100u);
  EXPECT_EQ(p.node_count(), 100u);
  EXPECT_TRUE(p.validate().empty());
}

TEST(BasicLeave, MergeWithSibling) {
  Partition p(kPlane);
  basic_join(p, make_node(1, 10, 10));
  basic_join(p, make_node(2, 10, 50));
  basic_leave(p, NodeId{2});
  EXPECT_EQ(p.region_count(), 1u);
  EXPECT_EQ(p.node_count(), 1u);
  EXPECT_EQ(p.regions().begin()->second.rect, kPlane);
  EXPECT_TRUE(p.validate().empty());
}

TEST(BasicLeave, CaretakerTakesUnmergeableRegion) {
  Partition p(kPlane);
  basic_join(p, make_node(1, 10, 10));   // SW after splits
  basic_join(p, make_node(2, 10, 50));   // N half
  basic_join(p, make_node(3, 50, 10));   // SE quarter
  // Now: r1=<0,0,32,32>, r3=<32,0,32,32>, r2=<0,32,64,32>.
  // Node 2's region cannot merge with either quarter -> caretaker.
  basic_leave(p, NodeId{2});
  EXPECT_EQ(p.region_count(), 3u);  // region survives under a caretaker
  EXPECT_EQ(p.node_count(), 2u);
  for (const auto& [id, r] : p.regions()) {
    EXPECT_NE(r.primary, (NodeId{2}));
  }
  EXPECT_TRUE(p.validate().empty());
}

TEST(BasicLeave, LastNodeRetiresGrid) {
  Partition p(kPlane);
  basic_join(p, make_node(1, 10, 10));
  basic_leave(p, NodeId{1});
  EXPECT_EQ(p.region_count(), 0u);
  EXPECT_EQ(p.node_count(), 0u);
}

TEST(BasicLeave, RandomChurnPreservesInvariants) {
  Partition p(kPlane);
  Rng rng(11);
  std::vector<std::uint32_t> alive;
  std::uint32_t next_id = 1;
  for (int step = 0; step < 300; ++step) {
    const bool join = alive.size() < 3 || rng.chance(0.6);
    if (join) {
      const auto id = next_id++;
      basic_join(p,
                 make_node(id, rng.uniform(0.01, 64), rng.uniform(0.01, 64)));
      alive.push_back(id);
    } else {
      const auto idx = rng.uniform_index(alive.size());
      basic_leave(p, NodeId{alive[idx]});
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(p.validate_fast().empty()) << "step " << step;
  }
  EXPECT_TRUE(p.validate().empty());
  EXPECT_EQ(p.node_count(), alive.size());
}

TEST(RepairRegion, PromotesSurvivingSecondary) {
  Partition p(kPlane);
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 12, 12));
  const RegionId root = p.create_root(NodeId{1});
  p.set_secondary(root, NodeId{2});
  repair_region(p, root, NodeId{1});
  EXPECT_EQ(p.region(root).primary, (NodeId{2}));
  EXPECT_FALSE(p.region(root).full());
}

}  // namespace
}  // namespace geogrid::overlay
