// Cluster harness utilities (the protocol-mode testbed itself).
#include "core/cluster.h"

#include <gtest/gtest.h>

namespace geogrid::core {
namespace {

Cluster::Options dual_options(std::uint64_t seed) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeer;
  opt.seed = seed;
  return opt;
}

TEST(Cluster, GrowBringsEveryoneIn) {
  Cluster cluster(dual_options(1));
  cluster.grow(25);
  for (const auto& node : cluster.nodes()) EXPECT_TRUE(node->joined());
  EXPECT_EQ(cluster.nodes().size(), 25u);
}

TEST(Cluster, CoveredAreaEqualsPlane) {
  Cluster cluster(dual_options(2));
  cluster.grow(20);
  cluster.run_for(10);
  EXPECT_NEAR(cluster.covered_area(), 64.0 * 64.0, 1e-6);
}

TEST(Cluster, PrimaryCoveringFindsUniqueOwner) {
  Cluster cluster(dual_options(3));
  cluster.grow(15);
  cluster.run_for(10);
  GeoGridNode* owner = cluster.primary_covering({33.3, 30.7});
  ASSERT_NE(owner, nullptr);
  bool covers = false;
  for (const auto& [rid, region] : owner->owned()) {
    if (region.is_primary() && region.rect.covers(Point{33.3, 30.7})) {
      covers = true;
    }
  }
  EXPECT_TRUE(covers);
}

TEST(Cluster, ApplyFieldSetsLoads) {
  Cluster cluster(dual_options(4));
  cluster.grow(10);
  Rng rng(5);
  workload::HotSpotField field(
      workload::HotSpotField::Options{.cells_x = 64, .cells_y = 64,
                                      .hotspot_count = 0},
      rng);
  field.mutable_hotspots().push_back(workload::HotSpot{{32, 32}, 10.0});
  field.rebuild();
  cluster.apply_field(field);
  double total = 0.0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) total += region.load;
    }
  }
  EXPECT_NEAR(total, field.total_load(), field.total_load() * 1e-9);
}

TEST(Cluster, DeterministicAcrossRuns) {
  auto build = [](std::uint64_t seed) {
    Cluster cluster(dual_options(seed));
    cluster.grow(20);
    cluster.run_for(10);
    std::vector<std::pair<std::uint32_t, double>> shape;
    for (const auto& node : cluster.nodes()) {
      for (const auto& [rid, region] : node->owned()) {
        if (region.is_primary()) {
          shape.emplace_back(rid.value, region.rect.area());
        }
      }
    }
    std::sort(shape.begin(), shape.end());
    return shape;
  };
  EXPECT_EQ(build(7), build(7));
  EXPECT_NE(build(7), build(8));
}

TEST(Cluster, NetworkStatsAccumulate) {
  Cluster cluster(dual_options(9));
  cluster.grow(10);
  const auto sent = cluster.network().stats().messages_sent;
  EXPECT_GT(sent, 0u);
  cluster.run_for(20);  // heartbeats keep flowing
  EXPECT_GT(cluster.network().stats().messages_sent, sent);
}

}  // namespace
}  // namespace geogrid::core
