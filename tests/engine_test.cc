// Engine-mode end-to-end: the three system variants reproduce the paper's
// qualitative results on small populations.
#include "core/engine.h"

#include <gtest/gtest.h>

#include "metrics/collector.h"

namespace geogrid::core {
namespace {

SimulationOptions base_options(GridMode mode, std::size_t nodes,
                               std::uint64_t seed) {
  SimulationOptions opt;
  opt.mode = mode;
  opt.node_count = nodes;
  opt.seed = seed;
  opt.field.cells_x = 128;
  opt.field.cells_y = 128;
  return opt;
}

TEST(Engine, BasicBuildsOneRegionPerNode) {
  GridSimulation sim(base_options(GridMode::kBasic, 300, 1));
  EXPECT_EQ(sim.partition().region_count(), 300u);
  EXPECT_EQ(sim.partition().node_count(), 300u);
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(Engine, DualPeerHalvesRegionCount) {
  GridSimulation basic(base_options(GridMode::kBasic, 400, 2));
  GridSimulation dual(base_options(GridMode::kDualPeer, 400, 2));
  EXPECT_LT(dual.partition().region_count(),
            basic.partition().region_count() * 3 / 4);
  EXPECT_TRUE(dual.partition().validate().empty());
}

TEST(Engine, DualPeerImprovesBalanceOverBasic) {
  // Same seed => same hot spots and node stream; only the policy differs.
  GridSimulation basic(base_options(GridMode::kBasic, 500, 3));
  GridSimulation dual(base_options(GridMode::kDualPeer, 500, 3));
  const Summary sb = basic.workload_summary();
  const Summary sd = dual.workload_summary();
  EXPECT_LT(sd.stddev, sb.stddev);
  EXPECT_LT(sd.mean, sb.mean);
}

TEST(Engine, AdaptationImprovesOverDualPeerByALot) {
  GridSimulation basic(base_options(GridMode::kBasic, 500, 4));
  GridSimulation adaptive(
      base_options(GridMode::kDualPeerAdaptive, 500, 4));
  for (int i = 0; i < 15; ++i) {
    if (adaptive.driver().run_round().executed == 0) break;
  }
  const Summary sb = basic.workload_summary();
  const Summary sa = adaptive.workload_summary();
  // The paper's headline: an order of magnitude on both metrics.
  EXPECT_LT(sa.stddev * 5.0, sb.stddev);
  EXPECT_LT(sa.mean * 5.0, sb.mean);
}

TEST(Engine, SameSeedIsFullyReproducible) {
  GridSimulation a(base_options(GridMode::kDualPeerAdaptive, 200, 5));
  GridSimulation b(base_options(GridMode::kDualPeerAdaptive, 200, 5));
  a.driver().run_round();
  b.driver().run_round();
  const Summary sa = a.workload_summary();
  const Summary sb = b.workload_summary();
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
  EXPECT_DOUBLE_EQ(sa.stddev, sb.stddev);
  EXPECT_DOUBLE_EQ(sa.max, sb.max);
  EXPECT_EQ(a.partition().region_count(), b.partition().region_count());
}

TEST(Engine, DifferentSeedsDiffer) {
  GridSimulation a(base_options(GridMode::kBasic, 200, 6));
  GridSimulation b(base_options(GridMode::kBasic, 200, 7));
  EXPECT_NE(a.workload_summary().stddev, b.workload_summary().stddev);
}

TEST(Engine, MembershipDynamics) {
  GridSimulation sim(base_options(GridMode::kDualPeer, 100, 8));
  const NodeId added = sim.add_node_at(Point{32, 32}, 50.0);
  EXPECT_TRUE(sim.partition().has_node(added));
  sim.remove_node(added, /*crash=*/false);
  EXPECT_FALSE(sim.partition().has_node(added));
  EXPECT_TRUE(sim.partition().validate().empty());

  const NodeId crashed = sim.add_node_at(Point{10, 10}, 5.0);
  sim.remove_node(crashed, /*crash=*/true);
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(Engine, HotspotMigrationChangesLoads) {
  GridSimulation sim(base_options(GridMode::kDualPeer, 200, 9));
  const Summary before = sim.workload_summary();
  sim.migrate_hotspots(10);
  const Summary after = sim.workload_summary();
  EXPECT_NE(before.stddev, after.stddev);
}

TEST(Engine, JoinHopsScaleSubLinearly) {
  GridSimulation small(base_options(GridMode::kBasic, 64, 10));
  GridSimulation large(base_options(GridMode::kBasic, 1024, 10));
  // O(sqrt(N)) routing: 16x nodes -> about 4x hops, far below 16x.
  EXPECT_LT(large.mean_join_hops(), small.mean_join_hops() * 8.0);
  EXPECT_GT(large.mean_join_hops(), small.mean_join_hops());
}

TEST(Engine, AreaCapacityCorrelationPositiveUnderDualPeer) {
  GridSimulation dual(base_options(GridMode::kDualPeer, 500, 11));
  // Figure 3's claim: powerful nodes end up owning bigger regions.
  EXPECT_GT(metrics::area_capacity_correlation(dual.partition()), 0.05);
}

}  // namespace
}  // namespace geogrid::core
