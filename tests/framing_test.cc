// FrameDecoder against hostile and fragmented byte streams: the serving
// edge's first line of defence must turn every malformed input into a
// typed error without ever reading past the buffered bytes.
#include "net/framing.h"

#include <gtest/gtest.h>

#include <cstring>

namespace geogrid::net {
namespace {

using Status = FrameDecoder::Status;

Message sample_message() {
  LocationUpdateAck ack;
  ack.user = UserId{321};
  ack.seq = 17;
  ack.region = RegionId{29};
  return ack;
}

TEST(Framing, RoundTripSingleFrame) {
  const Message m = sample_message();
  const std::vector<std::byte> wire = encode_frame(m);

  FrameDecoder dec;
  dec.feed(wire);
  FrameDecoder::Result r = dec.next();
  ASSERT_EQ(r.status, Status::kFrame);
  ASSERT_TRUE(r.message.has_value());
  EXPECT_EQ(encode_message(*r.message), encode_message(m));
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_EQ(dec.next().status, Status::kNeedMore);
}

TEST(Framing, AppendFrameReturnsFramedSize) {
  std::vector<std::byte> out;
  const std::size_t n = append_frame(sample_message(), out);
  EXPECT_EQ(n, out.size());
  const std::size_t m = append_frame(sample_message(), out);
  EXPECT_EQ(n + m, out.size());
}

TEST(Framing, ByteAtATimeReassembly) {
  std::vector<std::byte> wire;
  const Message m = sample_message();
  for (int i = 0; i < 3; ++i) append_frame(m, wire);

  FrameDecoder dec;
  std::size_t frames = 0;
  for (std::byte b : wire) {
    dec.feed(&b, 1);
    while (true) {
      FrameDecoder::Result r = dec.next();
      if (r.status != Status::kFrame) {
        ASSERT_EQ(r.status, Status::kNeedMore);
        break;
      }
      EXPECT_EQ(encode_message(*r.message), encode_message(m));
      ++frames;
    }
  }
  EXPECT_EQ(frames, 3u);
}

TEST(Framing, EveryPrefixTruncationNeedsMore) {
  // No strict prefix of a valid frame may produce a frame or an error.
  const std::vector<std::byte> wire = encode_frame(sample_message());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    EXPECT_EQ(dec.next().status, Status::kNeedMore) << "cut at " << cut;
    EXPECT_FALSE(dec.failed());
  }
}

TEST(Framing, TruncatedVarintPrefixWaits) {
  // 0x80 0x80: two continuation bytes and then silence — an incomplete
  // length, not (yet) an error.
  const std::byte partial[] = {std::byte{0x80}, std::byte{0x80}};
  FrameDecoder dec;
  dec.feed(partial, sizeof(partial));
  EXPECT_EQ(dec.next().status, Status::kNeedMore);
  EXPECT_FALSE(dec.failed());
}

TEST(Framing, OverlongVarintPrefixFails) {
  // Six continuation bytes: no frame length needs that width; a peer
  // sending it is feeding garbage, and waiting forever would be the bug.
  std::vector<std::byte> bad(6, std::byte{0x80});
  FrameDecoder dec;
  dec.feed(bad);
  FrameDecoder::Result r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("varint"), std::string::npos);
  EXPECT_TRUE(dec.failed());
}

TEST(Framing, OversizedLengthPrefixFailsBeforeBuffering) {
  // A frame announcing 1 GB against a 1 KB cap must die on the prefix
  // alone — no body bytes are ever required.
  Writer w;
  w.varint(1u << 30);
  FrameDecoder dec(FrameDecoder::Options{1024});
  dec.feed(w.bytes());
  FrameDecoder::Result r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("oversized"), std::string::npos);
}

TEST(Framing, FrameAtExactlyMaxSizePasses) {
  const Message m = sample_message();
  const std::size_t body = encode_message(m).size();
  FrameDecoder dec(FrameDecoder::Options{body});
  dec.feed(encode_frame(m));
  EXPECT_EQ(dec.next().status, Status::kFrame);

  FrameDecoder tight(FrameDecoder::Options{body - 1});
  tight.feed(encode_frame(m));
  EXPECT_EQ(tight.next().status, Status::kError);
}

TEST(Framing, UnknownMessageTagFails) {
  Writer body;
  body.u16(0x7fff);  // no such MsgType
  Writer wire;
  wire.varint(body.size());
  FrameDecoder dec;
  dec.feed(wire.bytes());
  dec.feed(body.bytes());
  FrameDecoder::Result r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("unknown message type"), std::string::npos);
}

TEST(Framing, TruncatedBodyInsideFrameFails) {
  // A complete frame whose declared length cuts a field in half: the
  // codec's truncation error must surface as kError, not an overread.
  const std::vector<std::byte> msg = encode_message(sample_message());
  Writer wire;
  wire.varint(msg.size() - 1);
  FrameDecoder dec;
  dec.feed(wire.bytes());
  dec.feed(msg.data(), msg.size() - 1);
  EXPECT_EQ(dec.next().status, Status::kError);
}

TEST(Framing, TrailingGarbageInsideFrameFails) {
  std::vector<std::byte> msg = encode_message(sample_message());
  msg.push_back(std::byte{0xee});
  Writer wire;
  wire.varint(msg.size());
  FrameDecoder dec;
  dec.feed(wire.bytes());
  dec.feed(msg);
  FrameDecoder::Result r = dec.next();
  ASSERT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("trailing"), std::string::npos);
}

TEST(Framing, ZeroLengthFrameFails) {
  // length 0 means no type tag at all — truncated message.
  const std::byte zero{0x00};
  FrameDecoder dec;
  dec.feed(&zero, 1);
  EXPECT_EQ(dec.next().status, Status::kError);
}

TEST(Framing, ErrorIsStickyAndDropsBuffer) {
  FrameDecoder dec;
  std::vector<std::byte> bad(6, std::byte{0x80});
  dec.feed(bad);
  ASSERT_EQ(dec.next().status, Status::kError);
  // A valid frame fed afterwards must not resurrect the stream: framing
  // was lost, the connection is done.
  dec.feed(encode_frame(sample_message()));
  EXPECT_EQ(dec.next().status, Status::kError);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Framing, ManyFramesAcrossChunksCompactTheBuffer) {
  // Stream 2k frames in ragged chunk sizes; the decoder must hand back
  // every frame in order while its buffer stays bounded (compaction).
  std::vector<std::byte> wire;
  constexpr std::size_t kFrames = 2000;
  for (std::size_t i = 0; i < kFrames; ++i) {
    LocationUpdateAck ack;
    ack.user = UserId{static_cast<std::uint32_t>(i)};
    ack.seq = i;
    ack.region = RegionId{7};
    append_frame(Message{ack}, wire);
  }

  FrameDecoder dec;
  std::size_t fed = 0;
  std::size_t got = 0;
  std::size_t chunk = 1;
  while (fed < wire.size()) {
    const std::size_t n = std::min(chunk, wire.size() - fed);
    dec.feed(wire.data() + fed, n);
    fed += n;
    chunk = chunk % 613 + 7;  // ragged, deterministic
    while (true) {
      FrameDecoder::Result r = dec.next();
      if (r.status != Status::kFrame) break;
      const auto& ack = std::get<LocationUpdateAck>(*r.message);
      EXPECT_EQ(ack.seq, got);
      ++got;
    }
    EXPECT_LT(dec.buffered(), 8192u);
  }
  EXPECT_EQ(got, kFrames);
}

TEST(Framing, EveryPrefixOfMalformedStreamNeverOverreads) {
  // Fuzz-ish sweep: truncate a stream that *ends* malformed at every
  // possible point.  Whatever the cut, the decoder must answer from
  // buffered bytes only — ASan turns any overread into a hard failure.
  std::vector<std::byte> wire = encode_frame(sample_message());
  Writer badbody;
  badbody.u16(0x7ffe);
  Writer badlen;
  badlen.varint(badbody.size());
  wire.insert(wire.end(), badlen.bytes().begin(), badlen.bytes().end());
  wire.insert(wire.end(), badbody.bytes().begin(), badbody.bytes().end());

  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    while (true) {
      FrameDecoder::Result r = dec.next();
      if (r.status == Status::kFrame) continue;
      if (r.status == Status::kNeedMore) break;
      EXPECT_TRUE(dec.failed());
      break;
    }
  }
}

}  // namespace
}  // namespace geogrid::net
